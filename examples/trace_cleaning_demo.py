"""Anatomy of the cleaning pipeline on one noisy taxi shift.

Takes a single raw engine-on trip (a whole shift chaining several
customer runs), shows the ordering repair decision, which Table 2 rules
fire, and what survives the segment filters.  Also demonstrates the trace
I/O round trip.

Run:  python examples/trace_cleaning_demo.py
"""

import tempfile
from pathlib import Path

from repro.cleaning import CleaningPipeline
from repro.cleaning.ordering import repair_ordering
from repro.cleaning.segmentation import segment_trip
from repro.experiments import format_table
from repro.roadnet import build_synthetic_oulu
from repro.traces import FleetSpec, TaxiFleetSimulator
from repro.traces.io import read_points_csv, write_points_csv
from repro.traces.noise import reordering_damage


def main() -> None:
    city = build_synthetic_oulu()
    fleet, __ = TaxiFleetSimulator(city, FleetSpec(n_days=2, seed=17)).simulate()

    # Pick the noisiest shift: the one whose id/time orderings disagree most.
    trip = max(fleet.trips, key=reordering_damage)
    print(f"Raw trip {trip.trip_id} (car {trip.car_id}): {len(trip)} route "
          f"points over {trip.total_time_s / 3600:.1f} h, "
          f"{trip.total_distance_m / 1000:.1f} km as stored")
    print(f"Adjacent id/time order disagreements: {reordering_damage(trip)}")

    repaired, report = repair_ordering(trip)
    print(format_table(
        ["Ordering", "Trip distance (km)"],
        [["by point id", round(report.distance_by_id_m / 1000, 3)],
         ["by timestamp", round(report.distance_by_time_m / 1000, 3)],
         [f"chosen: {report.chosen}", round(min(
             report.distance_by_id_m, report.distance_by_time_m) / 1000, 3)]],
    ))

    segments, seg_report = segment_trip(repaired)
    print(f"\nSegmentation: {len(segments)} segments, rule firings "
          f"{dict(seg_report.rule_hits)}")
    print(format_table(
        ["Segment", "Points", "Duration (min)", "Distance (km)"],
        [[s.segment_id, len(s), round(s.duration_s / 60, 1),
          round(s.distance_m / 1000, 2)] for s in segments],
    ))

    # Full pipeline over the fleet, for the per-stage accounting.
    result = CleaningPipeline().run(fleet)
    r = result.report
    print(f"\nWhole fleet: {r.trips_in} trips -> {r.segments_out} segments; "
          f"repaired {r.reordered_trips} trips "
          f"({r.reordering_saved_m / 1000:.1f} km of zigzag removed), "
          f"dropped {r.duplicates_removed} duplicates, "
          f"{r.outliers_removed} glitches")

    # Round-trip the raw data through the CSV format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "points.csv"
        n = write_points_csv(fleet, path)
        back = read_points_csv(path)
        print(f"\nI/O round trip: wrote {n} points, "
              f"read back {back.point_count} in {len(back)} trips — "
              f"{'lossless' if back.point_count == n else 'MISMATCH'}")


if __name__ == "__main__":
    main()
