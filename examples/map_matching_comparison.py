"""Compare the paper's incremental matcher against the HMM baseline.

Simulates a small fleet, cleans it, and matches every segment with both
algorithms, reporting edge-level accuracy against the simulator's ground
truth and wall-clock throughput.

Run:  python examples/map_matching_comparison.py
"""

import time

from repro.cleaning import CleaningPipeline
from repro.experiments import format_table
from repro.matching import HmmMatcher, IncrementalMatcher
from repro.roadnet import build_synthetic_oulu
from repro.traces import FleetSpec, TaxiFleetSimulator


def truth_for(runs, seg):
    best, overlap = None, 0.0
    for run in runs:
        if run.car_id != seg.car_id:
            continue
        lo = max(run.start_time_s, seg.start_time_s)
        hi = min(run.end_time_s, seg.end_time_s)
        if hi - lo > overlap:
            overlap, best = hi - lo, run
    return best


def evaluate(matcher, name, segments, runs, to_xy):
    t0 = time.perf_counter()
    jaccards = []
    matched = 0
    for seg in segments:
        route = matcher.match(seg.points, to_xy, seg.segment_id, seg.car_id)
        if route is None or not route.edge_sequence:
            continue
        matched += 1
        run = truth_for(runs, seg)
        if run is None:
            continue
        got, truth = set(route.edge_ids), set(run.edge_ids)
        jaccards.append(len(got & truth) / len(got | truth))
    elapsed = time.perf_counter() - t0
    return [
        name,
        f"{matched}/{len(segments)}",
        round(sum(jaccards) / len(jaccards), 3),
        round(1000.0 * elapsed / len(segments), 1),
    ]


def main() -> None:
    print("Building city and simulating 8 days of driving ...")
    city = build_synthetic_oulu()
    fleet, runs = TaxiFleetSimulator(city, FleetSpec(n_days=8, seed=9)).simulate()
    segments = CleaningPipeline().run(fleet).segments[:120]
    print(f"{len(segments)} cleaned segments to match\n")

    def to_xy(p):
        return city.projector.to_xy(p.lat, p.lon)

    rows = [
        evaluate(IncrementalMatcher(city.graph), "incremental (paper)",
                 segments, runs, to_xy),
        evaluate(HmmMatcher(city.graph), "HMM / Viterbi baseline",
                 segments, runs, to_xy),
    ]
    print(format_table(
        ["Matcher", "Matched", "Mean edge Jaccard", "ms / segment"], rows
    ))


if __name__ == "__main__":
    main()
