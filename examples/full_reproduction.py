"""Full-year reproduction: regenerate every table and figure of the paper.

Runs the study at the paper's timescale (1 Oct 2012 - 30 Sep 2013, seven
taxis) and writes all tables and figure data series under
``examples/out/``.  Expect a few minutes of runtime.

Run:  python examples/full_reproduction.py [--days N]
"""

import argparse
from pathlib import Path

from repro.experiments import (
    OuluStudy,
    StudyConfig,
    fig3_speed_points,
    fig7_qq,
    fig8_intercepts,
    fig9_intercept_map,
    fig10_weather_low_speed,
    format_table,
    render_funnel,
    render_table4,
    render_table5,
    seasonal_speed_deltas,
    table1_junction_pairs,
    table2_rule_hits,
    table4_route_summaries,
    table5_cell_speed_strata,
)
from repro.traces import FleetSpec

OUT = Path(__file__).parent / "out"


def save(name: str, text: str) -> None:
    OUT.mkdir(exist_ok=True)
    (OUT / name).write_text(text + "\n")
    print(f"\n### {name}\n{text}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=365,
                        help="study length in days (default: the full year)")
    parser.add_argument("--seed", type=int, default=2012)
    args = parser.parse_args()

    config = StudyConfig(fleet=FleetSpec(n_days=args.days, seed=args.seed))
    print(f"Simulating {args.days} days of seven-taxi operation ...")
    result = OuluStudy(config).run()
    print(f"{len(result.fleet)} raw trips, {result.fleet.point_count} route "
          f"points, {len(result.clean.segments)} cleaned segments, "
          f"{len(result.kept_transitions)} post-filtered transitions")

    # Table 1 — junction pairs.
    rows = table1_junction_pairs(result.city, limit=12)
    save("table1.txt", format_table(
        ["Junction 1", "elements", "Junction 2"],
        [[r["junction1"], "{" + ",".join(map(str, r["elements"])) + "}",
          r["junction2"]] for r in rows],
    ))

    # Table 2 — segmentation rules (behavioural).
    save("table2.txt", format_table(
        ["Rule", "Description", "Firings"],
        [[r["rule"], r["description"], r["hits"]]
         for r in table2_rule_hits(result.clean)],
    ))

    # Table 3 — the funnel.
    save("table3.txt", render_funnel(result))

    # Table 4 — route statistics.
    save("table4.txt", render_table4(table4_route_summaries(result)))

    # Table 5 — cell speed strata.
    save("table5.txt", render_table5(table5_cell_speed_strata(result)))

    # Fig. 3 — point speeds of taxi 1 (summary + sample).
    points = fig3_speed_points(result, car_id=1)
    save("fig3.txt", f"taxi 1 matched point speeds: {len(points)} points; "
         f"sample: {[(round(x), round(y), round(v, 1)) for x, y, v in points[:5]]}")

    # Fig. 5 — seasonal deltas.
    deltas = seasonal_speed_deltas(result)
    save("fig5.txt", format_table(
        ["Season", "Delta vs annual mean (km/h)"],
        [[s, round(d, 2)] for s, d in deltas.items()],
    ))

    # Figs. 7-9 — mixed model outputs.
    qq = fig7_qq(result)
    save("fig7.txt", format_table(
        ["Theoretical quantile", "Cell intercept"],
        [[round(t, 3), round(v, 2)] for t, v in qq[:: max(1, len(qq) // 25)]],
    ))
    rows8 = fig8_intercepts(result)
    save("fig8.txt", format_table(
        ["Cell", "Intercept", "Lower", "Upper", "n"],
        [[str(r["cell"]), round(r["intercept"], 2), round(r["lower"], 2),
          round(r["upper"], 2), r["n"]]
         for r in rows8[:: max(1, len(rows8) // 25)]],
    ))
    cells9 = fig9_intercept_map(result)
    ranked = sorted(cells9.items(), key=lambda kv: kv[1]["intercept"])
    save("fig9.txt", format_table(
        ["Cell", "x", "y", "Intercept", "n"],
        [[str(k), round(v["centre"][0]), round(v["centre"][1]),
          round(v["intercept"], 2), v["n"]]
         for k, v in ranked[:8] + ranked[-8:]],
    ))

    # Fig. 10 — weather classes.
    data = fig10_weather_low_speed(result, lights_threshold=5)
    save("fig10.txt", format_table(
        ["Temp class", "low-speed % (<5 lights)", "low-speed % (>=5 lights)"],
        [[cls, *(("-" if v is None else round(v, 1))
                 for v in groups.values())] for cls, groups in data.items()],
    ))

    print(f"\nAll artefacts written to {OUT}/")


if __name__ == "__main__":
    main()
