"""Quickstart: run the whole pipeline and print the paper's Table 3.

Builds the synthetic downtown-Oulu map, simulates a taxi fleet for two
weeks, cleans and segments the traces, extracts origin-destination
transitions through the thick-geometry gates, map-matches them, and
prints the resulting funnel plus the headline Table 4 statistics.

Run:  python examples/quickstart.py
"""

from repro.experiments import (
    OuluStudy,
    StudyConfig,
    render_funnel,
    render_table4,
    table4_route_summaries,
)
from repro.traces import FleetSpec


def main() -> None:
    config = StudyConfig(fleet=FleetSpec(n_days=14, seed=42))
    print("Running a 14-day study (7 taxis) ...")
    result = OuluStudy(config).run()

    print(f"\nRaw trips: {len(result.fleet)}  "
          f"route points: {result.fleet.point_count}")
    print(f"Cleaned segments: {len(result.clean.segments)}  "
          f"(reordered trips repaired: {result.clean.report.reordered_trips})")
    print(f"Post-filtered transitions: {len(result.kept_transitions)}")

    print("\nTable 3 — map matching the trip segments")
    print(render_funnel(result))

    print("\nTable 4 — summary statistics of the selected features")
    print(render_table4(table4_route_summaries(result)))

    if result.mixed is not None:
        blups = list(result.mixed.blup.values())
        print(
            f"\nMixed model: residual variance {result.mixed.sigma2:.1f}, "
            f"cell variance {result.mixed.sigma2_u:.1f}, "
            f"cell intercepts in [{min(blups):.1f}, {max(blups):.1f}] km/h"
        )


if __name__ == "__main__":
    main()
