"""Information discovery on top of the cleaned, matched data.

Runs the study, then the four follow-on analyses the paper's conclusions
point at: hotspot detection from dwell events, pedestrian-crowd fusion
with the mixed-model intercepts, per-edge traffic-state estimation, and
the eco-routing / driving-coach reports.

Run:  python examples/information_discovery.py
"""

from repro.analysis import (
    DrivingCoach,
    TrafficStateEstimator,
    detect_hotspots,
    eco_route_comparison,
    extract_dwells,
)
from repro.experiments import OuluStudy, StudyConfig, format_table
from repro.experiments.extensions import covariate_mixed_model, pedestrian_fusion
from repro.traces import FleetSpec


def main() -> None:
    print("Running a 20-day study ...")
    result = OuluStudy(StudyConfig(fleet=FleetSpec(n_days=20, seed=8))).run()
    city = result.city

    # 1. Hotspots from dwell events.
    dwells = extract_dwells(
        result.fleet, lambda p: city.projector.to_xy(p.lat, p.lon)
    )
    hotspots = detect_hotspots(dwells, eps=180.0, min_pts=6)
    print(f"\n1. {len(dwells)} dwell events -> {len(hotspots)} hotspots")
    print(format_table(
        ["Rank", "x", "y", "Events", "Cars"],
        [[i + 1, round(h.centroid[0]), round(h.centroid[1]), h.n_events, h.n_cars]
         for i, h in enumerate(hotspots[:5])],
    ))

    # 2. Pedestrian fusion: what explains slow cells beyond map features?
    fit = pedestrian_fusion(result)
    print("\n2. Cell intercepts ~ pedestrians + map features:")
    print(format_table(
        ["Term", "Coefficient"],
        [[n, round(c, 4)] for n, c in zip(fit.names, fit.coefficients)],
    ))

    # 3. Covariate mixed model (paper model (2)).
    model = covariate_mixed_model(result)
    print("\n3. Point speed ~ map features + (1 | cell):")
    print(format_table(
        ["Feature", "km/h per unit"],
        [[n, round(model.fixed_effect(n), 2)]
         for n in model.fixed_names if n != "(intercept)"],
    ))
    print(f"   cell variance {result.mixed.sigma2_u:.1f} -> "
          f"{model.sigma2_u:.1f} after controlling for features")

    # 4. Traffic state and eco-routing.
    estimator = TrafficStateEstimator(city.graph)
    for __, route in result.kept():
        estimator.add_route(route)
    congested = estimator.congested_edges(threshold=0.75, min_observations=5)
    print(f"\n4. Traffic state: {estimator.coverage():.0%} edge coverage, "
          f"{len(congested)} congested edges (< 75% of free flow)")

    n1 = city.graph.nearest_node((0.0, 2000.0))
    n2 = city.graph.nearest_node((-600.0, -1800.0))
    print("\n   Eco-routes T -> L:")
    print(format_table(
        ["Route", "Dist (m)", "Stops", "Fuel (ml)"],
        [[e.label, round(e.distance_m), round(e.expected_stops, 1),
          round(e.expected_fuel_ml)]
         for e in eco_route_comparison(city.graph, city.map_db,
                                       n1.node_id, n2.node_id, k=3)],
    ))

    coach = DrivingCoach(result.route_stats)
    print("\n   Driving coach (fleet ranking by fuel economy):")
    print(format_table(
        ["Car", "Fuel ml/km", "Low speed %"],
        [[r.car_id, round(r.fuel_per_km_ml, 1), round(r.low_speed_pct, 1)]
         for r in coach.fleet_reports()],
    ))


if __name__ == "__main__":
    main()
