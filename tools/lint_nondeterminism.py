"""Lint: no ambient nondeterminism inside the fault-injection layer.

The whole point of ``repro.faults`` is *replayable* chaos: every fault
decision flows from a seeded :class:`~repro.faults.FaultPlan`, so a
failing chaos run reproduces bit-for-bit from its seed.  A stray
``time.time()`` / ``random.random()`` / ``os.getpid()`` in that layer
(or in the chaos test suite) silently re-introduces run-to-run variance
— the flake class this PR exists to eliminate.

Call sites that are *intentional* (asserting that worker PIDs differ,
injectable sleep hooks) carry a ``# nondet-ok: <reason>`` marker on the
line.  Everything else fails this check:

    python tools/lint_nondeterminism.py

Run by the CI lint job next to ruff and lint_scalar_kernels.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Where determinism is load-bearing: the fault layer itself and the
#: chaos suite that replays it.
DEFAULT_TARGETS = (
    REPO / "src" / "repro" / "faults",
    *sorted((REPO / "tests").glob("test_faults_*.py")),
    REPO / "tests" / "conftest.py",
)

#: Ambient-entropy call sites.  ``time.sleep`` is deliberately absent —
#: backoff pacing never feeds a decision (and tests inject a fake sleep).
FORBIDDEN = re.compile(
    r"\b(?:time\.time|time\.time_ns|time\.monotonic|time\.perf_counter"
    r"|random\.\w+|datetime\.now|datetime\.utcnow"
    r"|os\.getpid|os\.urandom|uuid\.uuid[14])\s*\("
)
MARKER = "# nondet-ok"


def _python_files(target: Path) -> list[Path]:
    if target.is_dir():
        return sorted(target.rglob("*.py"))
    return [target] if target.suffix == ".py" else []


def find_offenders(targets: tuple[Path, ...] | list[Path]) -> list[tuple[Path, int, str]]:
    """``(path, lineno, line)`` for every unmarked entropy call."""
    offenders: list[tuple[Path, int, str]] = []
    for target in targets:
        for path in _python_files(target):
            for lineno, line in enumerate(path.read_text().splitlines(), start=1):
                if FORBIDDEN.search(line) and MARKER not in line:
                    offenders.append((path, lineno, line.strip()))
    return offenders


def main(argv: list[str] | None = None) -> int:
    targets = tuple(Path(a) for a in argv) if argv else DEFAULT_TARGETS
    offenders = find_offenders(targets)
    if offenders:
        print("lint_nondeterminism: ambient entropy in a determinism-critical path:")
        for path, lineno, line in offenders:
            rel = path.relative_to(REPO) if path.is_relative_to(REPO) else path
            print(f"  {rel}:{lineno}: {line}")
        print(
            "Derive the value from the FaultPlan seed, inject it as a "
            f"parameter, or mark the line '{MARKER}: <reason>'."
        )
        return 1
    print("lint_nondeterminism: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
