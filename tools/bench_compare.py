"""Compare perf-bench timings against a committed baseline.

CI's ``bench`` job runs the ``benchmarks/test_perf_*.py`` modules (which
dump ``benchmarks/out/BENCH_<module>.json``; see ``benchmarks/conftest``)
and then calls this script.  A benchmark *regresses* when its median
timing exceeds the committed baseline median by more than the threshold
(default +25%); any regression fails the job.

Benchmarks absent from the baseline (newly added) or absent from the
results (not collected on this run) are reported but never fail — the
gate only guards benchmarks both sides know about.  Refresh the baseline
with ``--update`` after an intentional perf change:

    python tools/bench_compare.py --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "benchmarks" / "baseline.json"
DEFAULT_RESULTS = REPO / "benchmarks" / "out"

#: The stat the baseline gate compares.  Median is robust to scheduler
#: noise on shared CI runners; min/mean travel along in the dumps.
STAT = "median"

#: Overhead ratio gates, read from a benchmark's ``extra_info``.  A
#: ratio prices a small structural overhead (a few %), which machine-load
#: drift between two separately-timed benchmarks easily dwarfs — so the
#: benchmarks measure each ratio themselves with *interleaved* pairs
#: (both workloads back-to-back under the same load; quiet-machine
#: floors compared) and publish the result in ``extra_info``.  This gate just
#: compares the published number against the limit.  A missing bench or
#: key is reported and skipped, not failed.
RATIO_GATES = [
    {
        "name": "robustness guard overhead",
        "bench": "test_perf_study_serial",
        "key": "guard_overhead",
        "limit": 1.03,
    },
    {
        "name": "journal+export overhead",
        "bench": "test_perf_study_journaled",
        "key": "journal_overhead",
        "limit": 1.03,
    },
    {
        # A warm shard-store rerun must stay at least 2x faster than a
        # cold populate, or delta recomputation has regressed into
        # overhead (decode slower than compute, spurious misses, ...).
        "name": "warm store speedup",
        "bench": "test_perf_study_warm_store",
        "key": "warm_cold_ratio",
        "limit": 0.5,
    },
    {
        # The bucket-based many-to-many kernel must beat looped
        # point-to-point CH queries by >= 4x on the 64x64 table
        # (measured ~11x; the whole point of sharing upward searches).
        "name": "route matrix speedup",
        "bench": "test_route_matrix_vs_looped_ch",
        "key": "matrix_loop_ratio",
        "limit": 0.25,
    },
    {
        # Trip-level gap batches are tiny and cache-collapsed, so
        # batched gap-fill is a parity play: guard that the planner's
        # collect/resolve machinery stays within noise of the per-gap
        # loop (measured ~1.0-1.2 interleaved).
        "name": "batched gap-fill parity",
        "bench": "test_gapfill_batched_vs_pergap",
        "key": "gapfill_batch_ratio",
        "limit": 1.4,
    },
    {
        # The vectorized Viterbi decode (NumPy forward pass + one
        # many-to-many transition-distance batch per trip, CH engine)
        # must stay >= 4x faster than the scalar reference decode with
        # its per-candidate capped Dijkstras (measured ~0.2
        # interleaved).
        "name": "vectorized Viterbi speedup",
        "bench": "test_perf_hmm_matcher",
        "key": "hmm_viterbi_ratio",
        "limit": 0.25,
    },
    {
        # Micro-batch streaming folds the identical stage functions one
        # trip at a time; per-row ingest and open-trip bookkeeping must
        # stay within 1.5x of the batch fold on the same CSV (measured
        # ~1.1-1.3 interleaved).
        "name": "stream fold overhead",
        "bench": "test_perf_stream_replay",
        "key": "stream_overhead",
        "limit": 1.5,
    },
]


def _find_extra(results: dict[str, dict], test_name: str, key: str) -> float | None:
    """The ``extra_info[key]`` of the benchmark named ``test_name``."""
    for fullname, entry in results.items():
        if fullname.split("::")[-1] == test_name:
            value = entry.get("extra_info", {}).get(key)
            if isinstance(value, (int, float)):
                return float(value)
    return None


def compare_ratios(results: dict[str, dict]) -> tuple[list[str], bool]:
    """Render one report line per ratio gate; True when any gate failed."""
    lines = []
    failed = False
    for gate in RATIO_GATES:
        ratio = _find_extra(results, gate["bench"], gate["key"])
        if ratio is None:
            lines.append(
                f"  SKIPPED  {gate['name']}: "
                f"{gate['bench']} extra_info[{gate['key']!r}] not in this run (not gated)"
            )
            continue
        verdict = "ok      " if ratio <= gate["limit"] else "EXCEEDED"
        if ratio > gate["limit"]:
            failed = True
        lines.append(
            f"  {verdict} {gate['name']}: "
            f"{gate['bench']}.{gate['key']} = {ratio:.3f} "
            f"(limit {gate['limit']:.2f})"
        )
    return lines, failed


def load_results(results_dir: Path) -> dict[str, dict]:
    """All benchmark entries from ``BENCH_*.json`` dumps, by fullname."""
    entries: dict[str, dict] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        doc = json.loads(path.read_text())
        for entry in doc.get("benchmarks", []):
            entries[entry["fullname"]] = entry
    return entries


def load_meta(results_dir: Path) -> dict:
    """The run-identity block of the dumps (all modules share one run)."""
    for path in sorted(results_dir.glob("BENCH_*.json")):
        meta = json.loads(path.read_text()).get("meta")
        if meta:
            return meta
    return {}


def load_baseline(path: Path) -> dict[str, dict]:
    if not path.exists():
        return {}
    return json.loads(path.read_text()).get("benchmarks", {})


def write_baseline(path: Path, results: dict[str, dict]) -> None:
    doc = {
        "stat": STAT,
        "benchmarks": {
            fullname: {STAT: entry[STAT]}
            for fullname, entry in sorted(results.items())
            if STAT in entry
        },
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")


def compare(
    baseline: dict[str, dict],
    results: dict[str, dict],
    threshold: float,
) -> tuple[list[str], bool]:
    """Render one report line per benchmark; True when anything regressed."""
    lines = []
    failed = False
    for fullname in sorted(set(baseline) | set(results)):
        base = baseline.get(fullname, {}).get(STAT)
        current = results.get(fullname, {}).get(STAT)
        if base is None:
            lines.append(f"  NEW      {fullname}: {current:.4f}s (no baseline; not gated)")
            continue
        if current is None:
            lines.append(f"  MISSING  {fullname}: in baseline but not in this run")
            continue
        ratio = current / base if base > 0 else float("inf")
        delta = f"{(ratio - 1) * 100:+.1f}%"
        if ratio > 1 + threshold:
            failed = True
            lines.append(f"  REGRESSED {fullname}: {base:.4f}s -> {current:.4f}s ({delta})")
        else:
            lines.append(f"  ok       {fullname}: {base:.4f}s -> {current:.4f}s ({delta})")
    return lines, failed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--results", type=Path, default=DEFAULT_RESULTS)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown of the median (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current results instead of comparing",
    )
    args = parser.parse_args(argv)

    results = load_results(args.results)
    if not results:
        print(f"bench_compare: no BENCH_*.json files under {args.results}", file=sys.stderr)
        return 2

    if args.update:
        write_baseline(args.baseline, results)
        print(f"bench_compare: wrote {len(results)} baseline medians to {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    if not baseline:
        print(f"bench_compare: no baseline at {args.baseline}; run with --update", file=sys.stderr)
        return 2

    meta = load_meta(args.results)
    if meta:
        ident = " ".join(
            f"{key}={meta[key]}"
            for key in ("run_id", "git_sha", "python")
            if meta.get(key)
        )
        print(f"bench_compare: results from {ident}")
    lines, failed = compare(baseline, results, args.threshold)
    print(f"bench_compare: {STAT} vs {args.baseline.name}, threshold +{args.threshold:.0%}")
    print("\n".join(lines))
    ratio_lines, ratio_failed = compare_ratios(results)
    print("bench_compare: same-run ratio gates")
    print("\n".join(ratio_lines))
    if failed or ratio_failed:
        print("bench_compare: FAIL — at least one gate exceeded", file=sys.stderr)
        return 1
    print("bench_compare: all benchmarks within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
