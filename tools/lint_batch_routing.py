"""Lint: no unmarked per-pair routing calls in matching/analysis.

The matching and analysis packages own the workloads with many routing
queries per unit of work (gap-fill endpoint combinations, gate OD
matrices, route-variant detours).  Their fast paths go through the
many-to-many planner — :class:`repro.roadnet.routing.RouteBatch` and the
``repro.roadnet.ch.matrix`` kernels — which share upward searches and
batch the cache round-trips.  A new call site of the point-to-point
:func:`repro.roadnet.routing.cached_shortest_path` in these packages is
almost always a perf regression sneaking in: one engine query and one
cache round-trip per pair inside a loop instead of one batched resolve.

Per-pair calls that are *intentional* (the flat-engine fallback a batch
degrades to, or a genuinely single query) carry a ``# batch-ok:
<reason>`` marker on the call line.  Everything else fails this check:

    python tools/lint_batch_routing.py

Run by the CI lint job next to ruff.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BATCHED_DIRS = (
    REPO / "src" / "repro" / "matching",
    REPO / "src" / "repro" / "analysis",
)

#: Call sites of the per-pair query helper.  Imports and docstring
#: references are not flagged — only an actual call puts the module on
#: the per-pair path.
CALL_RE = re.compile(r"\bcached_shortest_path\s*\(")
MARKER = "# batch-ok"

#: The HMM matcher additionally must not grow unmarked per-candidate
#: capped Dijkstras: its transition distances go through
#: ``RouteBatch.resolve_costs`` (one many-to-many batch per trip).  The
#: word boundary keeps ``multi_target_dijkstra``/``bidirectional_dijkstra``
#: out of scope — ``_`` is a word character, so only plain ``dijkstra(``
#: (or an attribute access ending in it) matches.
DIJKSTRA_RE = re.compile(r"\bdijkstra\s*\(")
HMM_FILE = REPO / "src" / "repro" / "matching" / "hmm.py"


def find_offenders(
    *roots: Path, pattern: re.Pattern[str] = CALL_RE
) -> list[tuple[Path, int, str]]:
    """``(path, lineno, line)`` for every unmarked per-pair call.

    A root may be a directory (scanned recursively) or a single file.
    """
    offenders: list[tuple[Path, int, str]] = []
    for root in roots:
        paths = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in paths:
            for lineno, line in enumerate(path.read_text().splitlines(), start=1):
                if pattern.search(line) and MARKER not in line:
                    offenders.append((path, lineno, line.strip()))
    return offenders


def main(argv: list[str] | None = None) -> int:
    roots = tuple(Path(arg) for arg in argv) if argv else BATCHED_DIRS
    offenders = find_offenders(*roots)
    if not argv:
        offenders += find_offenders(HMM_FILE, pattern=DIJKSTRA_RE)

    def rel(path: Path) -> Path:
        return path.relative_to(REPO) if path.is_relative_to(REPO) else path

    if not offenders:
        print(
            "lint_batch_routing: OK ("
            + ", ".join(str(rel(root)) for root in roots)
            + ")"
        )
        return 0
    print("lint_batch_routing: unmarked per-pair routing calls in batched packages:")
    for path, lineno, line in offenders:
        print(f"  {rel(path)}:{lineno}: {line}")
    print(
        "Route query sets through RouteBatch.resolve (repro.roadnet.routing), or\n"
        f"mark an intentional per-pair call with '{MARKER}: <reason>' on the call line."
    )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
