"""Lint: no unmarked scalar-haversine imports inside the cleaning package.

The cleaning stage owns the hottest per-point loops in the pipeline, and
its fast paths go through :mod:`repro.geo.vector`.  A new import of the
scalar :func:`repro.geo.distance.haversine_m` in ``repro/cleaning/`` is
almost always a perf regression sneaking in — per-pair trig calls in a
loop instead of one batch kernel.

Scalar imports that are *intentional* (the reference implementations the
vectorized kernels are verified against, or genuinely per-pair
predicates) carry a ``# scalar-ok: <reason>`` marker on the import line.
Everything else fails this check:

    python tools/lint_scalar_kernels.py

Run by the CI lint job next to ruff.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CLEANING_DIR = REPO / "src" / "repro" / "cleaning"

#: Import lines that pull the scalar kernel into a module's namespace.
#: Call sites are not flagged — once the import carries a marker, the
#: module has declared why it is on the scalar path.
IMPORT_RE = re.compile(
    r"^\s*(?:from\s+repro\.geo(?:\.distance)?\s+import\s+.*\bhaversine_m\b"
    r"|import\s+repro\.geo\.distance\b)"
)
MARKER = "# scalar-ok"


def find_offenders(root: Path) -> list[tuple[Path, int, str]]:
    """``(path, lineno, line)`` for every unmarked scalar import."""
    offenders: list[tuple[Path, int, str]] = []
    for path in sorted(root.glob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if IMPORT_RE.match(line) and MARKER not in line:
                offenders.append((path, lineno, line.strip()))
    return offenders


def main(argv: list[str] | None = None) -> int:
    root = Path(argv[0]) if argv else CLEANING_DIR
    offenders = find_offenders(root)

    def rel(path: Path) -> Path:
        return path.relative_to(REPO) if path.is_relative_to(REPO) else path

    if not offenders:
        print(f"lint_scalar_kernels: OK ({rel(root)})")
        return 0
    print("lint_scalar_kernels: unmarked scalar haversine_m imports in the cleaning package:")
    for path, lineno, line in offenders:
        print(f"  {rel(path)}:{lineno}: {line}")
    print(
        "Use the vectorized kernels (repro.geo.vector) in cleaning hot paths, or\n"
        f"mark an intentional scalar import with '{MARKER}: <reason>' on the import line."
    )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
