"""Validate run journals (``events.jsonl``) and JSON log streams.

CI's ``obs-smoke`` job runs a small study with ``--log-json``, then
checks that every line the run produced is machine-consumable:

* **journal**: each line is one JSON object; the first event is a
  ``run_start`` header carrying ``journal_schema``/``run_id``; every
  ``kind`` is one of :data:`repro.obs.journal.EVENT_KINDS`; sequence
  numbers ``i`` increase strictly; every ``span_close`` closes a span
  that was opened; the file ends with ``run_end``.  (The *read* path
  tolerates a truncated final line — a crashed run is still inspectable
  — but a run that claims success must produce a complete journal,
  which is what this validator enforces.)
* **log** (``--log FILE``): each non-empty line is one JSON object with
  the ``ts``/``level``/``logger``/``event`` keys the
  :class:`~repro.obs.log.JsonFormatter` guarantees.

Usage::

    python tools/validate_journal.py out/events.jsonl [--log study.log]

Exit 0 when everything conforms; each violation prints one line and
fails the run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.journal import EVENT_KINDS, JOURNAL_SCHEMA_VERSION  # noqa: E402

#: Keys every JSON log line carries (see ``repro.obs.log.JsonFormatter``).
LOG_KEYS = ("ts", "level", "logger", "event")


def validate_journal(path: Path) -> list[str]:
    """All conformance violations of one journal file (empty = valid)."""
    problems: list[str] = []
    lines = path.read_text().splitlines()
    if not lines:
        return [f"{path}: empty journal"]
    events = []
    for index, line in enumerate(lines, start=1):
        if not line.strip():
            problems.append(f"{path}:{index}: blank line")
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{index}: not valid JSON ({exc.msg})")
            continue
        if not isinstance(event, dict):
            problems.append(f"{path}:{index}: not a JSON object")
            continue
        events.append((index, event))

    last_seq = None
    open_spans: dict[str, int] = {}
    run_id = None
    last_checkpoint_seq = 0
    for position, (index, event) in enumerate(events):
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            problems.append(f"{path}:{index}: unknown event kind {kind!r}")
            continue
        seq = event.get("i")
        if not isinstance(seq, int):
            problems.append(f"{path}:{index}: missing integer sequence 'i'")
        elif last_seq is not None and seq <= last_seq:
            problems.append(
                f"{path}:{index}: sequence 'i' not increasing "
                f"({seq} after {last_seq})"
            )
        if isinstance(seq, int):
            last_seq = seq
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{path}:{index}: missing numeric 'ts'")
        if position == 0:
            if kind != "run_start":
                problems.append(f"{path}:{index}: first event is not run_start")
            elif event.get("journal_schema") != JOURNAL_SCHEMA_VERSION:
                problems.append(
                    f"{path}:{index}: journal_schema "
                    f"{event.get('journal_schema')!r} != {JOURNAL_SCHEMA_VERSION}"
                )
            run_id = event.get("run_id")
            if not run_id:
                problems.append(f"{path}:{index}: run_start has no run_id")
        elif run_id and event.get("run_id") not in (None, run_id):
            problems.append(
                f"{path}:{index}: run_id {event.get('run_id')!r} != header's"
            )
        if kind == "span_open":
            span_id = event.get("span_id")
            if not span_id:
                problems.append(f"{path}:{index}: span_open without span_id")
            else:
                open_spans[span_id] = index
        elif kind == "span_close":
            span_id = event.get("span_id")
            if span_id in open_spans:
                del open_spans[span_id]
            elif event.get("span_kind") == "detail":
                # Detail spans emit one self-contained close, no open.
                if not span_id or not event.get("name"):
                    problems.append(
                        f"{path}:{index}: detail span_close without "
                        f"span_id/name"
                    )
            else:
                problems.append(
                    f"{path}:{index}: span_close for never-opened "
                    f"span {span_id!r}"
                )
        elif kind == "stream.checkpoint":
            # Checkpoints carry their content key and a strictly
            # increasing sequence — resume provenance depends on both.
            if not event.get("key"):
                problems.append(
                    f"{path}:{index}: stream.checkpoint without key"
                )
            seq = event.get("checkpoint_seq")
            if not isinstance(seq, int) or seq <= last_checkpoint_seq:
                problems.append(
                    f"{path}:{index}: checkpoint_seq {seq!r} not above "
                    f"{last_checkpoint_seq}"
                )
            else:
                last_checkpoint_seq = seq
        elif kind == "stream.resume":
            if not isinstance(event.get("checkpoint_seq"), int) or \
                    not isinstance(event.get("rows_ingested"), int):
                problems.append(
                    f"{path}:{index}: stream.resume missing "
                    f"checkpoint_seq/rows_ingested"
                )
            else:
                # A resumed service continues the restored sequence.
                last_checkpoint_seq = event["checkpoint_seq"]
        elif kind == "stream.trip_close":
            if not isinstance(event.get("trip_id"), int) or \
                    not event.get("reason"):
                problems.append(
                    f"{path}:{index}: stream.trip_close missing "
                    f"trip_id/reason"
                )
        elif kind == "stream.dead_letter":
            if not event.get("reason_kind"):
                problems.append(
                    f"{path}:{index}: stream.dead_letter without reason_kind"
                )
        elif kind == "stream.batch":
            if not isinstance(event.get("batch_seq"), int) or \
                    not isinstance(event.get("rows_ingested"), int):
                problems.append(
                    f"{path}:{index}: stream.batch missing "
                    f"batch_seq/rows_ingested"
                )
    if events and events[-1][1].get("kind") != "run_end":
        problems.append(f"{path}: does not end with run_end (incomplete run)")
    for span_id, index in sorted(open_spans.items(), key=lambda kv: kv[1]):
        problems.append(f"{path}:{index}: span {span_id!r} never closed")
    return problems


def validate_log(path: Path) -> list[str]:
    """All violations of one JSON-mode log stream (empty = valid)."""
    problems: list[str] = []
    for index, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{index}: not valid JSON ({exc.msg})")
            continue
        if not isinstance(record, dict):
            problems.append(f"{path}:{index}: not a JSON object")
            continue
        missing = [key for key in LOG_KEYS if key not in record]
        if missing:
            problems.append(
                f"{path}:{index}: log line missing {', '.join(missing)}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("journals", type=Path, nargs="+",
                        help="events.jsonl journal file(s) to validate")
    parser.add_argument("--log", type=Path, action="append", default=[],
                        metavar="FILE",
                        help="also validate a JSON-mode log stream")
    args = parser.parse_args(argv)

    problems: list[str] = []
    for path in args.journals:
        problems.extend(validate_journal(path))
    for path in args.log:
        problems.extend(validate_log(path))
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"validate_journal: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    checked = len(args.journals) + len(args.log)
    print(f"validate_journal: ok ({checked} file(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
