#!/usr/bin/env python
"""CI gate: delta recomputation is warm, byte-identical, and precise.

Drives ``repro study`` as a subprocess (the real CLI path) three times
against one shard store and asserts the store's contract:

1. **Cold** populates the store.
2. **Warm** (identical config) must serve ≥90% of stage artefacts from
   cache with *zero* misses, and reproduce every table/figure artefact
   and ``errors.jsonl`` byte-for-byte, plus the deterministic
   (fold-side) metric counters exactly.  Compute-side counters (e.g.
   ``od.crossings_detected``, ``routing.*``) legitimately don't fire on
   cache hits and are not compared.
3. **Flipped** (``--matcher hmm``) must recompute *only* the dependent
   stages: clean and extract artefacts still hit (the matcher cannot
   change them), match and features miss on every shard.  The flip runs
   against a pruned *copy* of the store holding only the base run's
   keys — so the assertions stay exact even when CI restores a store
   (via ``actions/cache``) that already saw a flipped run, and the
   persisted store itself never accumulates flip artefacts.

Run from the repo root: ``python tools/check_incremental.py``.
Exits non-zero with a diagnosis on any violation; wired into the CI
``incremental`` job.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Artefacts that must be byte-identical between cold and warm runs.
ARTEFACTS = (
    "table2.txt", "table3.txt", "table4.txt", "table5.txt",
    "fig5.txt", "fig10.txt", "errors.jsonl",
)

#: Counter families that are deterministic fold-side accounting — always
#: published from the folded per-unit results, so they must match
#: exactly between cold and warm runs.
DETERMINISTIC_COUNTERS = (
    "clean.", "od.segments_total", "od.filtered_cleaned",
    "od.transitions_total", "od.within_centre",
)


def run_study(out: Path, store: Path, days: int, extra: list[str]) -> None:
    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    cmd = [
        sys.executable, "-m", "repro", "study",
        "--days", str(days), "--out", str(out),
        "--store-dir", str(store), "--quiet", *extra,
    ]
    subprocess.run(cmd, check=True, env=env, cwd=REPO)


def store_counters(out: Path) -> dict[str, float]:
    counters = json.loads((out / "metrics.json").read_text())["counters"]
    return {k: v for k, v in counters.items() if k.startswith("store.")}


def deterministic_counters(out: Path) -> dict[str, float]:
    counters = json.loads((out / "metrics.json").read_text())["counters"]
    return {
        k: v for k, v in counters.items()
        if any(k.startswith(prefix) for prefix in DETERMINISTIC_COUNTERS)
    }


def touched_keys(out: Path) -> set[str]:
    """Every store key the run's journal saw (hit, miss or write)."""
    keys = set()
    for line in (out / "events.jsonl").read_text().splitlines():
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if event.get("kind") == "store" and event.get("key"):
            keys.add(event["key"])
    return keys


def pruned_copy(store: Path, dest: Path, keys: set[str]) -> None:
    """A store at ``dest`` holding only ``keys`` of ``store``."""
    shutil.rmtree(dest, ignore_errors=True)
    (dest / "objects").mkdir(parents=True)
    shutil.copy2(store / "STORE_VERSION", dest / "STORE_VERSION")
    for key in keys:
        src = store / "objects" / key[:2] / key
        if src.exists():
            shutil.copytree(src, dest / "objects" / key[:2] / key)


def check(condition: bool, message: str, failures: list[str]) -> None:
    tag = "ok  " if condition else "FAIL"
    print(f"  {tag} {message}")
    if not condition:
        failures.append(message)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=int, default=6,
                        help="study scale (default 6 — several shards)")
    parser.add_argument("--workdir", type=Path, default=None,
                        help="working directory (default: a temp dir); "
                             "the store goes in WORKDIR/store, so CI can "
                             "persist it across workflow runs")
    args = parser.parse_args()

    workdir = args.workdir or Path(tempfile.mkdtemp(prefix="incremental-"))
    workdir.mkdir(parents=True, exist_ok=True)
    store = workdir / "store"
    failures: list[str] = []

    print(f"incremental check: days={args.days} workdir={workdir}")
    run_study(workdir / "cold", store, args.days, [])
    run_study(workdir / "warm", store, args.days, [])

    print("warm rerun:")
    sc = store_counters(workdir / "warm")
    hits = sc.get("store.hits", 0)
    misses = sc.get("store.misses", 0)
    check(misses == 0, f"zero misses (got {misses})", failures)
    check(
        hits > 0 and hits / (hits + misses) >= 0.9,
        f"hit rate >= 90% ({hits} hits / {misses} misses)", failures,
    )
    check(
        sc.get("store.recomputed", 0) == 0,
        f"zero shards recomputed (got {sc.get('store.recomputed', 0)})",
        failures,
    )
    for name in ARTEFACTS:
        cold_bytes = (workdir / "cold" / name).read_bytes()
        warm_bytes = (workdir / "warm" / name).read_bytes()
        check(cold_bytes == warm_bytes, f"{name} byte-identical", failures)
    cold_counters = deterministic_counters(workdir / "cold")
    warm_counters = deterministic_counters(workdir / "warm")
    check(
        cold_counters == warm_counters,
        "deterministic metric counters identical", failures,
    )

    # A config flip must dirty only the stages that depend on the field:
    # matcher enters at the match stage, so clean/extract stay warm.
    # Flip against a pruned copy holding only the base run's keys, so a
    # store restored from a previous CI run (which already saw a flip)
    # cannot fake the miss counts — and the persisted store stays
    # flip-free.
    flip_store = workdir / "store-flip"
    pruned_copy(store, flip_store, touched_keys(workdir / "warm"))
    run_study(workdir / "flipped", flip_store, args.days, ["--matcher", "hmm"])
    print("config flip (--matcher hmm):")
    fc = store_counters(workdir / "flipped")
    shards = fc.get("store.hits.clean", 0)
    check(shards > 0, f"clean artefacts still hit ({shards} shards)", failures)
    check(
        fc.get("store.hits.extract", 0) == shards,
        "extract artefacts still hit", failures,
    )
    check(
        fc.get("store.misses.clean", 0) == 0
        and fc.get("store.misses.extract", 0) == 0,
        "no upstream shard recomputed", failures,
    )
    check(
        fc.get("store.misses.match", 0) == shards,
        f"every match shard recomputed ({shards})", failures,
    )
    check(
        fc.get("store.misses.features", 0) == shards,
        f"every features shard recomputed ({shards})", failures,
    )

    if failures:
        print(f"incremental check: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("incremental check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
