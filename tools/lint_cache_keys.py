#!/usr/bin/env python
"""Lint: every StudyConfig field must be covered by the cache keys.

The shard store's correctness hinges on one invariant: any
``StudyConfig`` field that can change a stage's output must be part of
that stage's cache key.  A field added without key coverage would make
warm runs silently serve stale artefacts — the worst possible failure
mode for a cache.

This lint enforces the invariant structurally: each ``StudyConfig``
field must appear in ``repro.store.cachekey.STAGE_FIELDS`` (keyed), in
``EXCLUDED_FIELDS`` (explicitly excluded, with a reason), or carry a
``# cachekey-ok`` comment on its declaration line in ``study.py`` (the
escape hatch for fields that are provably output-neutral).  Entries
naming fields that no longer exist are flagged too, so the maps cannot
rot.

Run from the repo root: ``PYTHONPATH=src python tools/lint_cache_keys.py``.
Exits non-zero on any violation; wired into the CI lint job.
"""

from __future__ import annotations

import dataclasses
import inspect
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.study import StudyConfig  # noqa: E402
from repro.store.cachekey import EXCLUDED_FIELDS, STAGE_FIELDS  # noqa: E402

_ESCAPE_RE = re.compile(r"^\s*(\w+)\s*:.*#\s*cachekey-ok\b")


def escaped_fields(source: str) -> set[str]:
    """Field names whose declaration carries a ``# cachekey-ok`` comment."""
    return {
        m.group(1)
        for line in source.splitlines()
        if (m := _ESCAPE_RE.match(line))
    }


def lint(config_cls=StudyConfig, source: str | None = None) -> list[str]:
    """All coverage violations (empty = clean)."""
    if source is None:
        source = inspect.getsource(sys.modules[config_cls.__module__])
    keyed = {name for fields in STAGE_FIELDS.values() for name in fields}
    escaped = escaped_fields(source)
    config_fields = {f.name for f in dataclasses.fields(config_cls)}
    problems = []
    for name in sorted(config_fields):
        covered = name in keyed or name in EXCLUDED_FIELDS or name in escaped
        if not covered:
            problems.append(
                f"{config_cls.__name__}.{name} is not covered: add it to a "
                "stage in STAGE_FIELDS, to EXCLUDED_FIELDS with a reason, or "
                "mark the field declaration with '# cachekey-ok'"
            )
    for name in sorted(keyed - config_fields):
        problems.append(
            f"STAGE_FIELDS names {name!r}, which is not a "
            f"{config_cls.__name__} field (stale entry?)"
        )
    for name in sorted(set(EXCLUDED_FIELDS) - config_fields):
        problems.append(
            f"EXCLUDED_FIELDS names {name!r}, which is not a "
            f"{config_cls.__name__} field (stale entry?)"
        )
    for name in sorted(keyed & set(EXCLUDED_FIELDS)):
        problems.append(
            f"{name!r} is both keyed (STAGE_FIELDS) and excluded "
            "(EXCLUDED_FIELDS) — pick one"
        )
    return problems


def main() -> int:
    problems = lint()
    for problem in problems:
        print(f"lint_cache_keys: {problem}", file=sys.stderr)
    if not problems:
        keyed = {name for fields in STAGE_FIELDS.values() for name in fields}
        n = len(dataclasses.fields(StudyConfig))
        print(
            f"lint_cache_keys: OK — {n} StudyConfig fields covered "
            f"({len(keyed)} keyed, {len(EXCLUDED_FIELDS)} excluded)"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
