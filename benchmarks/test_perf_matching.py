"""Engineering benches: map-matching throughput, incremental vs HMM."""

from repro.matching import HmmMatcher, IncrementalMatcher


def _segments(bench_study, n):
    return bench_study.clean.segments[:n]


def test_perf_incremental_matcher(benchmark, bench_study, save_artifact):
    city = bench_study.city
    segments = _segments(bench_study, 40)
    matcher = IncrementalMatcher(city.graph)

    def to_xy(p):
        return city.projector.to_xy(p.lat, p.lon)

    def run():
        matched = 0
        for seg in segments:
            route = matcher.match(seg.points, to_xy, seg.segment_id, seg.car_id)
            if route is not None and route.edge_sequence:
                matched += 1
        return matched

    matched = benchmark(run)
    save_artifact(
        "perf_matching_incremental.txt",
        f"matched {matched}/{len(segments)} segments per round",
    )
    assert matched >= len(segments) * 0.95


def test_perf_hmm_matcher(benchmark, bench_study):
    city = bench_study.city
    segments = _segments(bench_study, 10)
    matcher = HmmMatcher(city.graph)

    def to_xy(p):
        return city.projector.to_xy(p.lat, p.lon)

    def run():
        return sum(
            1 for seg in segments
            if matcher.match(seg.points, to_xy) is not None
        )

    matched = benchmark(run)
    assert matched == len(segments)
