"""Engineering benches: map-matching throughput, incremental vs HMM.

``test_perf_hmm_matcher`` publishes ``hmm_viterbi_ratio`` — the
vectorized Viterbi decode (NumPy forward pass + one many-to-many
transition-distance batch per trip, prepared CH engine) vs the scalar
reference decode (pure-Python forward pass, one capped Dijkstra per
previous-candidate exit per transition) over the same pre-built
candidate layers.  Candidate generation and gap filling are identical
stages on both sides and are excluded from the measurement.  The
committed gate lives in ``tools/bench_compare.py`` (limit 0.25, i.e.
the decode must stay >= 4x faster); ``hmm_viterbi_flat_ratio`` (same
kernel on the flat engine, where cache misses fall back to
multi-target Dijkstras) is published alongside for context, ungated.
"""

import math
import time

import pytest

from repro.matching import HmmMatcher, IncrementalMatcher
from repro.matching.candidates import candidates_for_points
from repro.matching.hmm import _collect_transition_pairs
from repro.matching.types import edge_entries, edge_exits, movement_directions
from repro.roadnet.ch import prepare_ch
from repro.roadnet.routing import RouteCache

from benchmarks.test_perf_route_matrix import _reset_matrix_memos


def _segments(bench_study, n):
    return bench_study.clean.segments[:n]


@pytest.fixture(scope="module")
def hmm_decode_workload(bench_study):
    """Pre-built Viterbi inputs for the decode bench, prepared once.

    Mirrors :meth:`HmmMatcher.match` up to the decoder branch: candidate
    layers (empty layers dropped), straight-line distances, transition
    caps, and the trip's batched query set.
    """
    city = bench_study.city
    projector = city.projector
    matcher = HmmMatcher(city.graph)
    prepped = []
    for seg in _segments(bench_study, 150):
        xys = [projector.to_xy(p.lat, p.lon) for p in seg.points]
        movements = movement_directions(xys)
        all_candidates = candidates_for_points(
            city.graph, xys, movements, matcher.config.candidates
        )
        layers, kept_xys = [], []
        for xy, cands in zip(xys, all_candidates):
            if cands:
                layers.append(cands)
                kept_xys.append(xy)
        if len(layers) < 2:
            continue
        straights = [
            math.hypot(
                kept_xys[i][0] - kept_xys[i - 1][0],
                kept_xys[i][1] - kept_xys[i - 1][1],
            )
            for i in range(1, len(layers))
        ]
        caps = [
            max(300.0, s * matcher.config.max_network_factor)
            for s in straights
        ]
        exits_per = [[edge_exits(c.edge) for c in layer] for layer in layers]
        entries_per = [
            [edge_entries(c.edge) for c in layer] for layer in layers
        ]
        pairs, source_caps, __ = _collect_transition_pairs(
            layers, caps, exits_per, entries_per
        )
        prepped.append(
            (layers, straights, caps, pairs, source_caps, exits_per,
             entries_per)
        )
    assert len(prepped) >= 100  # the bench needs a real workload
    return city.graph, prepped


def test_perf_incremental_matcher(benchmark, bench_study, save_artifact):
    city = bench_study.city
    segments = _segments(bench_study, 40)
    matcher = IncrementalMatcher(city.graph)

    def to_xy(p):
        return city.projector.to_xy(p.lat, p.lon)

    def run():
        matched = 0
        for seg in segments:
            route = matcher.match(seg.points, to_xy, seg.segment_id, seg.car_id)
            if route is not None and route.edge_sequence:
                matched += 1
        return matched

    matched = benchmark(run)
    save_artifact(
        "perf_matching_incremental.txt",
        f"matched {matched}/{len(segments)} segments per round",
    )
    assert matched >= len(segments) * 0.95


def test_perf_hmm_matcher(benchmark, bench_study, hmm_decode_workload):
    graph, prepped = hmm_decode_workload
    ch_engine = prepare_ch(graph, weight="length")

    def scalar_sweep():
        matcher = HmmMatcher(
            graph, route_cache=RouteCache(), vectorized_viterbi=False
        )
        t0 = time.perf_counter()
        for layers, straights, caps, *__ in prepped:
            matcher._viterbi_scalar(layers, straights, caps)
        return time.perf_counter() - t0

    def vectorized_sweep(engine):
        if engine is not None:
            _reset_matrix_memos(engine)
        matcher = HmmMatcher(
            graph, route_cache=RouteCache(), routing_engine=engine
        )
        t0 = time.perf_counter()
        for args in prepped:
            matcher._viterbi_vectorized(*args)
        return time.perf_counter() - t0

    def measure_once(engine):
        return vectorized_sweep(engine) / scalar_sweep()

    measure_once(ch_engine)  # warm allocator / code paths
    ratio_ch = min(measure_once(ch_engine) for __ in range(3))
    ratio_flat = min(measure_once(None) for __ in range(3))
    benchmark.extra_info["hmm_viterbi_ratio"] = round(ratio_ch, 4)
    benchmark.extra_info["hmm_viterbi_flat_ratio"] = round(ratio_flat, 4)
    benchmark.extra_info["hmm_decode_trips"] = len(prepped)
    benchmark.pedantic(
        lambda: vectorized_sweep(ch_engine), rounds=3, iterations=1
    )
    # The committed gate lives in tools/bench_compare.py (limit 0.25);
    # this looser assert just catches a broken kernel immediately.
    assert ratio_ch < 1.0, (
        f"vectorized Viterbi slower than scalar ({ratio_ch:.2f}x)"
    )


def test_hmm_matcher_end_to_end_sanity(bench_study):
    """The full vectorized matcher still matches every bench segment."""
    city = bench_study.city
    segments = _segments(bench_study, 10)
    engine = prepare_ch(city.graph, weight="length")
    matcher = HmmMatcher(
        city.graph, route_cache=RouteCache(), routing_engine=engine
    )

    def to_xy(p):
        return city.projector.to_xy(p.lat, p.lon)

    matched = sum(
        1 for seg in segments
        if matcher.match(seg.points, to_xy) is not None
    )
    assert matched == len(segments)
