"""Perf benches for the many-to-many CH kernels and batched gap-fill.

Two measurements, both published as interleaved ratios (see the
``RATIO_GATES`` rationale in ``tools/bench_compare.py``):

* ``matrix_loop_ratio`` — one :func:`route_matrix` call over an
  ``n x n`` endpoint set vs the same table built from looped
  point-to-point :meth:`CHEngine.shortest_path` queries.  This is the
  matrix-shaped workload the bucket algorithm exists for (OD gate
  matrices, route-frequency detours); the kernel shares upward searches
  and bucket scans across the whole table and must stay well under the
  looped cost (gate: <= 0.25, i.e. >= 4x faster; measured ~0.09).

* ``gapfill_batch_ratio`` — :func:`connect_matches` over a matched
  bench fleet with ``batch_routing`` on vs off, same prepared CH
  engine, fresh route cache per mode per round.  Trip-level gap batches
  are *small* (a handful of endpoint pairs) and the shared
  :class:`RouteCache` already collapses repeat queries, so batching is
  a parity play here, not a speedup: the gate (<= 1.4) guards that the
  batch planner's collect/resolve machinery never meaningfully regresses
  the per-gap loop while keeping artefacts byte-identical.  The big
  many-to-many wins live in the matrix-shaped benches above.
"""

import statistics
import time

import pytest

from repro.cleaning import CleaningPipeline
from repro.matching import IncrementalMatcher
from repro.matching.gapfill import connect_matches
from repro.roadnet.ch import prepare_ch
from repro.roadnet.ch.matrix import route_matrix
from repro.roadnet.routing import RouteCache
from repro.traces import FleetSpec, TaxiFleetSimulator


def _endpoints(city, n, seed):
    import random

    rng = random.Random(seed)
    nodes = [node.node_id for node in city.graph.nodes()]
    return [rng.choice(nodes) for __ in range(n)]


def _reset_matrix_memos(engine):
    """Drop the engine-level memos the matrix kernels amortise through.

    The looped point-to-point side never touches these, so clearing them
    before every timed matrix pass keeps the two sides comparable
    (otherwise round 2+ of the matrix bench would measure dict lookups).
    """
    engine._expansion.clear()
    engine._fwd_search_memo.clear()
    engine._bwd_search_memo.clear()


@pytest.fixture(scope="module")
def matrix_ch(bench_city):
    return prepare_ch(bench_city.graph, weight="time")


@pytest.fixture(scope="module")
def gapfill_workload(bench_city):
    """Matched routes for the gap-fill bench, prepared once.

    The matcher runs with the same CH engine the bench then times
    gap-fill against; matching itself is *not* part of the measurement.
    """
    engine = prepare_ch(bench_city.graph, weight="length")
    fleet, __ = TaxiFleetSimulator(
        bench_city, FleetSpec(n_days=6, seed=2012)
    ).simulate()
    clean = CleaningPipeline().run(fleet)
    projector = bench_city.projector
    matcher = IncrementalMatcher(bench_city.graph, routing_engine=engine)
    routes = []
    for i, segment in enumerate(clean.segments):
        route = matcher.match(
            segment.points,
            lambda p: projector.to_xy(p.lat, p.lon),
            segment_id=i,
            car_id=segment.car_id,
        )
        if route is not None:
            routes.append(route)
    assert len(routes) >= 100  # the bench needs a real workload
    return engine, routes


def test_route_matrix_vs_looped_ch(benchmark, bench_city, matrix_ch):
    sources = _endpoints(bench_city, n=64, seed=4)
    targets = _endpoints(bench_city, n=64, seed=5)

    def measure_once():
        _reset_matrix_memos(matrix_ch)
        t0 = time.perf_counter()
        for s in sources:
            for t in targets:
                matrix_ch.shortest_path(s, t)
        t_loop = time.perf_counter() - t0
        _reset_matrix_memos(matrix_ch)
        t0 = time.perf_counter()
        result = route_matrix(matrix_ch, sources, targets)
        t_matrix = time.perf_counter() - t0
        assert result.costs.shape == (64, 64)
        return t_matrix / t_loop

    measure_once()  # warm allocator / code paths
    ratio = min(measure_once() for __ in range(3))
    benchmark.extra_info["matrix_loop_ratio"] = round(ratio, 4)
    benchmark.pedantic(
        lambda: (_reset_matrix_memos(matrix_ch),
                 route_matrix(matrix_ch, sources, targets)),
        rounds=3,
        iterations=1,
    )
    # The committed gate lives in tools/bench_compare.py (limit 0.25);
    # this looser assert just catches a broken kernel immediately.
    assert ratio < 1.0, f"route_matrix slower than looped CH ({ratio:.2f}x)"


def test_gapfill_batched_vs_pergap(benchmark, bench_city, gapfill_workload):
    engine, routes = gapfill_workload
    graph = bench_city.graph

    def sweep(batch):
        cache = RouteCache(max_entries=50_000)
        t0 = time.perf_counter()
        for route in routes:
            connect_matches(
                graph, route, route_cache=cache,
                engine=engine, batch_routing=batch,
            )
        return time.perf_counter() - t0

    # Identity check first (and warm-up): batching must not change a
    # single edge sequence.
    sweep(False)
    per_gap = [list(route.edge_sequence) for route in routes]
    sweep(True)
    assert [list(route.edge_sequence) for route in routes] == per_gap

    ratios = []
    for __ in range(5):
        t_off = sweep(False)
        t_on = sweep(True)
        ratios.append(t_on / t_off)
    ratio = statistics.median(ratios)
    benchmark.extra_info["gapfill_batch_ratio"] = round(ratio, 4)
    benchmark.extra_info["gapfill_routes"] = len(routes)
    benchmark.pedantic(lambda: sweep(True), rounds=3, iterations=1)
    # Committed gate: tools/bench_compare.py, limit 1.4 (parity guard).
    assert ratio < 2.0, f"batched gap-fill regressed badly ({ratio:.2f}x)"
