"""Extensions: OD flows and functionally critical network locations.

Related work the paper builds on: taxi OD flows reveal city structure
(Liu et al. [12], Zhu et al. [2]); functionally critical locations fall
out of trajectory usage (Zhou et al. [3]).
"""

from repro.analysis import build_od_matrix, critical_edges, flow_table
from repro.experiments import format_table
from repro.traces.simulator import Region


def test_ext_od_flows(benchmark, bench_study, save_artifact):
    matrix = benchmark.pedantic(build_od_matrix, args=(bench_study.runs,),
                                rounds=1, iterations=1)

    headers = ["origin \\ dest"] + [r.value for r in Region]
    save_artifact("ext_od_flows.txt", format_table(headers, flow_table(matrix))
                  + f"\n\npeak hour: {matrix.peak_hour()}:00, "
                  f"core share: {matrix.core_share():.0%}")

    # City structure: the core dominates, flows are roughly balanced.
    assert matrix.core_share() > 0.7
    assert matrix.flow(Region.CORE, Region.CORE) > 0
    for region in (Region.NORTH, Region.SOUTH_S, Region.SOUTH_L):
        assert matrix.symmetry(Region.CORE, region) > 0.3


def test_ext_critical_locations(benchmark, bench_study, save_artifact):
    routes = [route for __, route in bench_study.kept()]

    scored = benchmark.pedantic(
        critical_edges, args=(bench_study.city.graph, routes),
        kwargs={"top_k": 8, "n_pairs": 30}, rounds=1, iterations=1,
    )

    rows = []
    for c in scored:
        edge = bench_study.city.graph.edge(c.edge_id)
        mid = edge.geometry.interpolate(edge.length / 2.0)
        rows.append([c.edge_id, round(mid[0]), round(mid[1]), c.usage,
                     round(c.detour_factor, 3), c.disconnects])
    save_artifact("ext_critical_locations.txt", format_table(
        ["Edge", "x", "y", "Traversals", "Detour factor", "Disconnects"], rows,
    ))

    assert len(scored) == 8
    # Removing a heavily used edge never shortens the network.
    assert all(c.detour_factor >= 1.0 - 1e-9 for c in scored)
    # At least one observed edge is structurally critical (gate arterials
    # are the only ways in and out of the study area).
    assert any(c.is_critical for c in scored)
