"""Ablation: map-matching under low-sampling-rate traces.

The paper's related work highlights map-matching of low-sampling-rate GPS
(Lou et al. [19]) as its own problem.  This bench degrades the emission
rate of the event-based sampler and measures how the incremental matcher
and the HMM baseline hold up: sparser fixes mean larger gaps for Dijkstra
to fill and less greedy context, so accuracy decays — the HMM's global
decoding is expected to degrade more gracefully.
"""

from repro.cleaning import CleaningPipeline
from repro.experiments import format_table
from repro.matching import HmmMatcher, IncrementalMatcher, evaluate_matcher
from repro.traces import FleetSpec, TaxiFleetSimulator
from repro.traces.noise import NoiseSpec


def _evaluate_at(city, emit_time_s, emit_dist_m, matcher_cls, n_segments=50):
    spec = FleetSpec(
        n_days=3, seed=18,
        emit_time_s=emit_time_s, emit_dist_m=emit_dist_m,
        emit_heading_deg=90.0, emit_speed_kmh=60.0,   # force time/dist pacing
        noise=NoiseSpec(gps_sigma_m=4.0, reorder_prob=0.0, glitch_prob=0.0,
                        duplicate_prob=0.0),
    )
    fleet, runs = TaxiFleetSimulator(city, spec).simulate()
    segments = CleaningPipeline().run(fleet).segments[:n_segments]

    def to_xy(p):
        return city.projector.to_xy(p.lat, p.lon)

    evaluation = evaluate_matcher(
        matcher_cls(city.graph), segments, runs, city.graph, to_xy
    )
    points_per_segment = (
        sum(len(s.points) for s in segments) / len(segments) if segments else 0
    )
    return evaluation, points_per_segment


def test_ablation_sampling_rate(benchmark, bench_city, save_artifact):
    rates = [(40.0, 230.0), (90.0, 500.0), (180.0, 1200.0)]

    def run():
        rows = []
        for emit_time, emit_dist in rates:
            inc, pts = _evaluate_at(bench_city, emit_time, emit_dist,
                                    IncrementalMatcher)
            hmm, __ = _evaluate_at(bench_city, emit_time, emit_dist,
                                   HmmMatcher, n_segments=20)
            rows.append((emit_time, pts, inc.mean_jaccard, hmm.mean_jaccard))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    save_artifact("ablation_sampling_rate.txt", format_table(
        ["Emit interval (s)", "Fixes/segment", "Incremental Jaccard",
         "HMM Jaccard"],
        [[int(t), round(p, 1), round(i, 3), round(h, 3)] for t, p, i, h in rows],
    ))

    dense = rows[0]
    sparse = rows[-1]
    # Sparser traces mean fewer fixes per segment...
    assert sparse[1] < dense[1]
    # ...and matching accuracy decays but stays usable thanks to the
    # Dijkstra gap filling (the paper's pgRouting step).
    assert dense[2] > 0.8
    assert sparse[2] > 0.45
    assert sparse[2] <= dense[2] + 0.02
