"""Extensions: hotspots, pedestrian fusion, traffic state, eco-routing.

The paper's conclusions point at these follow-on analyses; each bench
runs one on the study output and asserts its headline finding.
"""

from repro.analysis import DrivingCoach, TrafficStateEstimator, detect_hotspots, eco_route_comparison, extract_dwells
from repro.experiments import format_table
from repro.experiments.extensions import pedestrian_fusion


def test_ext_hotspot_detection(benchmark, bench_study, save_artifact):
    city = bench_study.city

    def to_xy(p):
        return city.projector.to_xy(p.lat, p.lon)

    dwells = extract_dwells(bench_study.fleet, to_xy)
    hotspots = benchmark.pedantic(
        detect_hotspots, args=(dwells,), kwargs={"eps": 180.0, "min_pts": 6},
        rounds=1, iterations=1,
    )

    rows = [[i + 1, round(h.centroid[0]), round(h.centroid[1]), h.n_events,
             h.n_cars, round(h.total_dwell_s / 3600.0, 1)]
            for i, h in enumerate(hotspots[:8])]
    save_artifact("ext_hotspots.txt", format_table(
        ["Rank", "x (m)", "y (m)", "Events", "Cars", "Dwell (h)"], rows
    ))

    assert len(dwells) > 500
    assert hotspots
    # The busiest hotspot engages the whole fleet and sits downtown.
    top = hotspots[0]
    assert top.n_cars >= 5
    assert city.central_area.contains(top.centroid)


def test_ext_pedestrian_fusion(benchmark, bench_study, save_artifact):
    fit = benchmark.pedantic(pedestrian_fusion, args=(bench_study,),
                             rounds=1, iterations=1)

    rows = [[name, round(coef, 4)] for name, coef
            in zip(fit.names, fit.coefficients)]
    save_artifact("ext_pedestrian_fusion.txt",
                  format_table(["Term", "Coefficient"], rows))

    # Crowds slow traffic beyond the static map features (area B).
    assert fit.coefficient("pedestrians") < 0.0


def test_ext_traffic_state(benchmark, bench_study, save_artifact):
    estimator = TrafficStateEstimator(bench_study.city.graph)

    def ingest():
        est = TrafficStateEstimator(bench_study.city.graph)
        for __, route in bench_study.kept():
            est.add_route(route)
        return est

    estimator = benchmark(ingest)

    congested = estimator.congested_edges(threshold=0.75, min_observations=5)
    rows = [[s.edge_id, s.n_observations, round(s.mean_speed_kmh, 1),
             round(s.free_flow_kmh, 1), round(s.congestion_ratio, 2)]
            for s in congested[:10]]
    header = f"coverage: {estimator.coverage():.1%} of edges observed"
    save_artifact("ext_traffic_state.txt", header + "\n" + format_table(
        ["Edge", "Obs", "Mean km/h", "Free flow", "Ratio"], rows
    ))

    assert estimator.coverage() > 0.1
    assert congested, "the lit core must show congested edges"


def test_ext_eco_routing(benchmark, bench_study, save_artifact):
    city = bench_study.city
    n1 = city.graph.nearest_node((0.0, 2000.0))
    n2 = city.graph.nearest_node((-600.0, -1800.0))  # T -> L

    estimates = benchmark.pedantic(
        eco_route_comparison,
        args=(city.graph, city.map_db, n1.node_id, n2.node_id),
        kwargs={"k": 3}, rounds=1, iterations=1,
    )

    rows = [[e.label, round(e.distance_m), round(e.expected_time_s),
             round(e.expected_stops, 1), round(e.expected_fuel_ml),
             round(e.fuel_per_km, 1)] for e in estimates]
    save_artifact("ext_eco_routing.txt", format_table(
        ["Route", "Dist (m)", "Time (s)", "Stops", "Fuel (ml)", "ml/km"], rows
    ))

    assert len(estimates) >= 2
    # The eco-best route stops less than the worst alternative.
    assert estimates[0].expected_stops <= estimates[-1].expected_stops


def test_ext_driving_coach(benchmark, bench_study, save_artifact):
    coach = DrivingCoach(bench_study.route_stats)
    reports = benchmark.pedantic(coach.fleet_reports, rounds=1, iterations=1)

    rows = [[r.car_id, r.n_transitions, round(r.fuel_per_km_ml, 1),
             round(r.low_speed_pct, 1), round(r.fuel_percentile),
             round(r.low_speed_percentile)] for r in reports]
    save_artifact("ext_driving_coach.txt", format_table(
        ["Car", "Transitions", "Fuel ml/km", "Low speed %",
         "Fuel pctile", "Low-speed pctile"], rows
    ))

    assert len(reports) >= 5
    # Fuel economy and low-speed exposure correlate across drivers
    # (Spearman-ish check: best-fuel driver is not the worst idler).
    best = reports[0]
    worst = reports[-1]
    assert best.fuel_per_km_ml < worst.fuel_per_km_ml
