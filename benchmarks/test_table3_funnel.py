"""Table 3 — the per-car map-matching funnel.

Regenerates the paper's funnel (trip segments -> filtered and cleaned ->
transitions -> within centre -> post-filtered) and benchmarks transition
extraction over the cleaned segments.
"""

from repro.experiments import render_funnel
from repro.od import Gate, TransitionExtractor


def test_table3_funnel(benchmark, bench_study, save_artifact):
    city = bench_study.city
    projector = city.projector

    def to_xy(p):
        return projector.to_xy(p.lat, p.lon)

    gates = [
        Gate(name=name, road=road, half_width_m=city.spec.gate_half_width_m)
        for name, road in city.gate_roads.items()
    ]
    extractor = TransitionExtractor(gates, city.central_area)

    benchmark(extractor.extract, bench_study.clean.segments, to_xy)

    text = render_funnel(bench_study)
    save_artifact("table3_funnel.txt", text)

    # Shape targets from the paper's Table 3 (ratios, not absolutes).
    total = sum(r.total_segments for r in bench_study.funnel)
    filtered = sum(r.filtered_cleaned for r in bench_study.funnel)
    transitions = sum(r.transitions_total for r in bench_study.funnel)
    centre = sum(r.within_centre for r in bench_study.funnel)
    post = sum(r.post_filtered for r in bench_study.funnel)
    assert 0.15 < filtered / total < 0.55        # paper: 636/2409 ~ 0.26
    assert 0.02 < transitions / filtered < 0.35  # paper: 89/636 ~ 0.14
    assert centre / transitions > 0.6            # paper: 79/89 ~ 0.89
    assert 0.4 < post / centre <= 1.0            # paper: 65/79 ~ 0.82
    # Every car contributes and the funnel is monotone per car.
    assert len(bench_study.funnel) == 7
    for row in bench_study.funnel:
        assert (row.total_segments >= row.filtered_cleaned
                >= row.transitions_total >= row.within_centre
                >= row.post_filtered)
