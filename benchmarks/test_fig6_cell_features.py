"""Fig. 6 — average speed and map properties per cell for the L-T direction.

Reproduces the per-cell fusion the paper plots: average point speed plus
the counts of the four studied features.  Shape targets: the L-T corridor
passes through cells with fewer features than the study-area average
(the paper's region "below line D"), and feature-rich cells are slower.
"""

from repro.experiments import format_table
from repro.experiments.figures import fig6_cell_features


def test_fig6_cell_features(benchmark, bench_study, save_artifact):
    directions = {t.direction for t, __ in bench_study.kept()}
    direction = "L-T" if "L-T" in directions else sorted(directions)[0]

    cells = benchmark(fig6_cell_features, bench_study, direction)

    rows = []
    for key, info in sorted(cells.items()):
        rows.append([
            str(key), round(info["avg_speed"], 1), info["n"],
            info["traffic_lights"], info["bus_stops"],
            info["pedestrian_crossings"], info["junctions"],
        ])
    text = format_table(
        ["Cell", "Avg km/h", "Points", "Lights", "Bus", "Ped.cross", "Junctions"],
        rows[:25],
    )
    census = bench_study.city.feature_census()
    header = (
        f"Direction {direction}; study-area census: "
        f"{{{census['traffic_light']},{census['bus_stop']},"
        f"{census['pedestrian_crossing']},{census['junctions']}}} "
        "(lights, bus stops, pedestrian crossings, crossings) — paper: {67,48,293,271}"
    )
    save_artifact("fig6_cell_features.txt", header + "\n" + text)

    assert cells
    # Feature-rich cells are slower than feature-free cells on this route.
    rich = [c["avg_speed"] for c in cells.values() if c["traffic_lights"] > 0]
    free = [c["avg_speed"] for c in cells.values()
            if c["traffic_lights"] == 0 and c["bus_stops"] == 0]
    if rich and free:
        assert sum(rich) / len(rich) < sum(free) / len(free)
    # The corridor includes low-feature cells (below "line D").
    low_feature = [
        c for c in cells.values()
        if c["traffic_lights"] == 0 and c["pedestrian_crossings"] <= 2
    ]
    assert len(low_feature) >= 3
