"""Extension: route-frequency analysis per OD direction.

The paper's premise is that taxi drivers freely select routes; this bench
quantifies it — route variants per direction, their shares, and the
fastest-variant recommendation — following the hierarchical route mining
of the related work (Li et al. [18]).
"""

from repro.analysis.routefreq import build_direction_profiles
from repro.experiments import format_table


def test_ext_route_frequency(benchmark, bench_study, save_artifact):
    profiles = benchmark.pedantic(
        build_direction_profiles, args=(bench_study.kept(),),
        rounds=1, iterations=1,
    )

    rows = []
    for direction in sorted(profiles):
        profile = profiles[direction]
        best = profile.fastest()
        rows.append([
            direction, profile.n_trips, profile.n_variants,
            round(profile.diversity, 2),
            round(profile.most_frequent().share, 2),
            round(best.mean_time_s), len(best.signature),
        ])
    save_artifact("ext_route_frequency.txt", format_table(
        ["Direction", "Trips", "Variants", "Eff. routes",
         "Top share", "Fastest mean (s)", "Fastest hops"], rows,
    ))

    assert profiles
    # Free route choice: at least one direction has multiple variants.
    assert any(p.n_variants > 1 for p in profiles.values())
    for profile in profiles.values():
        assert profile.diversity >= 1.0
        # The recommended (fastest) variant is never slower than the most
        # frequent one on mean observed time.
        assert profile.fastest().mean_time_s <= profile.most_frequent().mean_time_s
