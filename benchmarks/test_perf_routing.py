"""Engineering benches: Dijkstra / A* / bidirectional / CH on the city graph.

This module is the engine-comparison suite for the pgRouting role: every
engine answers the same query workload so the BENCH_routing.json medians
are directly comparable, and the contraction hierarchy's preprocessing
cost is benched separately from its per-query cost.
"""

import random
import statistics
import time
from pathlib import Path

import pytest

from repro.roadnet.ch import prepare_ch, save_ch
from repro.roadnet.routing import astar, bidirectional_dijkstra, shortest_path

OUT_DIR = Path(__file__).parent / "out"


def _node_pairs(city, n=50, seed=4):
    rng = random.Random(seed)
    nodes = [node.node_id for node in city.graph.nodes()]
    return [(rng.choice(nodes), rng.choice(nodes)) for __ in range(n)]


@pytest.fixture(scope="session")
def bench_ch(bench_city):
    """The hierarchy all CH benches query (prepared once, ``time`` weight
    to match the flat-engine benches); persisted so CI can archive it."""
    engine = prepare_ch(bench_city.graph, weight="time")
    OUT_DIR.mkdir(exist_ok=True)
    save_ch(engine, OUT_DIR / "ch_oulu.npz")
    return engine


def test_perf_dijkstra(benchmark, bench_city):
    pairs = _node_pairs(bench_city)

    def run():
        found = 0
        for s, t in pairs:
            if shortest_path(bench_city.graph, s, t, weight="time").found:
                found += 1
        return found

    found = benchmark(run)
    assert found >= len(pairs) * 0.9  # the city is essentially connected


def test_perf_astar(benchmark, bench_city):
    pairs = _node_pairs(bench_city)

    def run():
        return sum(
            1 for s, t in pairs
            if astar(bench_city.graph, s, t, weight="time").found
        )

    found = benchmark(run)
    assert found >= len(pairs) * 0.9


def test_perf_bidirectional(benchmark, bench_city):
    pairs = _node_pairs(bench_city)

    def run():
        return sum(
            1 for s, t in pairs
            if bidirectional_dijkstra(bench_city.graph, s, t, weight="time").found
        )

    found = benchmark(run)
    assert found >= len(pairs) * 0.9


def test_perf_ch_queries(benchmark, bench_city, bench_ch):
    pairs = _node_pairs(bench_city)

    def run():
        return sum(1 for s, t in pairs if bench_ch.shortest_path(s, t).found)

    found = benchmark(run)
    assert found >= len(pairs) * 0.9


def test_perf_ch_prepare(benchmark, bench_city):
    engine = benchmark(prepare_ch, bench_city.graph, "time")
    assert engine.node_ids.shape[0] == len(bench_city.graph.nodes())


def test_ch_at_least_5x_faster_than_dijkstra(bench_city, bench_ch):
    # The acceptance bar for the hierarchy: once preprocessing is paid,
    # queries must beat flat Dijkstra by >= 5x on the synthetic city.
    # Medians over repeated sweeps of the same workload keep this stable.
    pairs = _node_pairs(bench_city, n=100, seed=17)

    def sweep(query):
        start = time.perf_counter()
        for s, t in pairs:
            query(s, t)
        return time.perf_counter() - start

    flat = statistics.median(
        sweep(lambda s, t: shortest_path(bench_city.graph, s, t, weight="time"))
        for __ in range(7)
    )
    ch = statistics.median(
        sweep(bench_ch.shortest_path) for __ in range(7)
    )
    assert flat / ch >= 5.0, f"CH speedup only {flat / ch:.2f}x"


def test_ch_costs_match_dijkstra_on_bench_workload(bench_city, bench_ch):
    for s, t in _node_pairs(bench_city, n=100, seed=8):
        plain = shortest_path(bench_city.graph, s, t, weight="time")
        ch = bench_ch.shortest_path(s, t)
        assert ch.found == plain.found
        if plain.found:
            assert ch.cost == pytest.approx(plain.cost, rel=1e-9)


def test_astar_explores_not_worse_than_dijkstra_cost(bench_city, benchmark):
    pairs = _node_pairs(bench_city, n=20, seed=9)

    def run():
        diffs = []
        for s, t in pairs:
            d = shortest_path(bench_city.graph, s, t)
            a = astar(bench_city.graph, s, t)
            if d.found:
                diffs.append(abs(a.cost - d.cost))
        return max(diffs) if diffs else 0.0

    worst = benchmark(run)
    assert worst < 1e-6
