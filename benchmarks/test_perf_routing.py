"""Engineering benches: Dijkstra / A* on the city graph (pgRouting role)."""

import random

from repro.roadnet.routing import astar, shortest_path


def _node_pairs(city, n=50, seed=4):
    rng = random.Random(seed)
    nodes = [node.node_id for node in city.graph.nodes()]
    return [(rng.choice(nodes), rng.choice(nodes)) for __ in range(n)]


def test_perf_dijkstra(benchmark, bench_city):
    pairs = _node_pairs(bench_city)

    def run():
        found = 0
        for s, t in pairs:
            if shortest_path(bench_city.graph, s, t, weight="time").found:
                found += 1
        return found

    found = benchmark(run)
    assert found >= len(pairs) * 0.9  # the city is essentially connected


def test_perf_astar(benchmark, bench_city):
    pairs = _node_pairs(bench_city)

    def run():
        return sum(
            1 for s, t in pairs
            if astar(bench_city.graph, s, t, weight="time").found
        )

    found = benchmark(run)
    assert found >= len(pairs) * 0.9


def test_astar_explores_not_worse_than_dijkstra_cost(bench_city, benchmark):
    pairs = _node_pairs(bench_city, n=20, seed=9)

    def run():
        diffs = []
        for s, t in pairs:
            d = shortest_path(bench_city.graph, s, t)
            a = astar(bench_city.graph, s, t)
            if d.found:
                diffs.append(abs(a.cost - d.cost))
        return max(diffs) if diffs else 0.0

    worst = benchmark(run)
    assert worst < 1e-6
