"""Ablation: gap interpolation under transmission dropout.

Related work (Jiang et al. [17]) restores lost sensor data with linear
interpolation.  This bench drops 45 % of fixes in transmission, then
matches segments raw vs gap-interpolated, showing interpolation keeps
matching quality and point density up when the device loses data.
"""

from repro.cleaning import CleaningPipeline, InterpolationConfig, interpolate_gaps
from repro.cleaning.segmentation import TripSegment
from repro.experiments import format_table
from repro.matching import IncrementalMatcher, evaluate_matcher
from repro.traces import FleetSpec, TaxiFleetSimulator
from repro.traces.noise import NoiseSpec


def test_ablation_interpolation_under_dropout(benchmark, bench_city, save_artifact):
    spec = FleetSpec(
        n_days=4, seed=12,
        noise=NoiseSpec(gps_sigma_m=4.0, reorder_prob=0.0, glitch_prob=0.0,
                        duplicate_prob=0.0, dropout_prob=0.45),
    )
    fleet, runs = TaxiFleetSimulator(bench_city, spec).simulate()
    segments = CleaningPipeline().run(fleet).segments[:80]

    def to_xy(p):
        return bench_city.projector.to_xy(p.lat, p.lon)

    config = InterpolationConfig(max_gap_s=50.0, target_spacing_s=25.0)

    def run():
        matcher = IncrementalMatcher(bench_city.graph)
        raw = evaluate_matcher(matcher, segments, runs, bench_city.graph, to_xy)
        filled_segments = []
        total_added = 0
        for seg in segments:
            points, added = interpolate_gaps(seg.points, config)
            total_added += added
            filled_segments.append(
                TripSegment(segment_id=seg.segment_id, trip_id=seg.trip_id,
                            car_id=seg.car_id, index=seg.index, points=points)
            )
        filled = evaluate_matcher(
            matcher, filled_segments, runs, bench_city.graph, to_xy
        )
        return raw, filled, total_added

    raw, filled, added = benchmark.pedantic(run, rounds=1, iterations=1)

    save_artifact("ablation_interpolation.txt", format_table(
        ["Variant", "Jaccard", "Length error", "Match dist (m)"],
        [["45% dropout, raw", round(raw.mean_jaccard, 3),
          round(raw.mean_length_error, 3), round(raw.mean_match_distance_m, 1)],
         ["45% dropout + interpolation", round(filled.mean_jaccard, 3),
          round(filled.mean_length_error, 3),
          round(filled.mean_match_distance_m, 1)],
         [f"(synthetic fixes added: {added})", "", "", ""]],
    ))

    # Interpolation restores point density across dropout gaps...
    assert added > 50
    # ...at a bounded accuracy cost: straight-line fills can cut corners
    # near turns, so matching may move a few points to parallel edges, but
    # never collapses.  The honest finding is "density up, accuracy
    # roughly unchanged", and both evaluations stay strong.
    assert filled.mean_jaccard >= raw.mean_jaccard - 0.05
    assert filled.mean_jaccard > 0.8 and raw.mean_jaccard > 0.8
    assert filled.mean_length_error < 0.2
