"""Ablation: incremental matcher look-ahead depth and direction data.

The paper uses the incremental algorithm "enhanced with information
retrieved from the digital map (like road directions)".  This bench
quantifies both enhancements against simulator ground truth.
"""

from repro.experiments import format_table
from repro.matching import IncrementalMatcher
from repro.matching.candidates import CandidateConfig
from repro.matching.incremental import IncrementalConfig


def _truth_for(runs, seg):
    best, overlap = None, 0.0
    for run in runs:
        if run.car_id != seg.car_id:
            continue
        lo = max(run.start_time_s, seg.start_time_s)
        hi = min(run.end_time_s, seg.end_time_s)
        if hi - lo > overlap:
            overlap = hi - lo
            best = run
    return best


def _accuracy(bench_study, config):
    city = bench_study.city
    matcher = IncrementalMatcher(city.graph, config)

    def to_xy(p):
        return city.projector.to_xy(p.lat, p.lon)

    jaccards = []
    for seg in bench_study.clean.segments[:80]:
        run = _truth_for(bench_study.runs, seg)
        if run is None:
            continue
        route = matcher.match(seg.points, to_xy, seg.segment_id, seg.car_id)
        if route is None or not route.edge_sequence:
            jaccards.append(0.0)
            continue
        got = set(route.edge_ids)
        truth = set(run.edge_ids)
        jaccards.append(len(got & truth) / len(got | truth))
    return sum(jaccards) / len(jaccards)


def test_ablation_matching(benchmark, bench_study, save_artifact):
    configs = {
        "look-ahead 2 + directions (paper)": IncrementalConfig(look_ahead=2),
        "look-ahead 0": IncrementalConfig(look_ahead=0),
        "no direction penalty": IncrementalConfig(
            look_ahead=2,
            candidates=CandidateConfig(oneway_penalty=0.0, mu_orientation=0.0),
        ),
    }

    def run():
        return {name: _accuracy(bench_study, cfg) for name, cfg in configs.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_table(
        ["Matcher variant", "Mean edge Jaccard vs ground truth"],
        [[name, round(acc, 3)] for name, acc in results.items()],
    )
    save_artifact("ablation_matching.txt", text)

    full = results["look-ahead 2 + directions (paper)"]
    assert full > 0.6
    # The full configuration is at least as accurate as each ablation.
    assert full >= results["look-ahead 0"] - 0.02
    assert full >= results["no direction penalty"] - 0.02
