"""Table 4 — summary statistics of the selected features per OD direction.

Regenerates the paper's Table 4 (six-number summaries of route time,
distance, low/normal speed shares, map attribute counts and fuel) and
asserts its headline orderings: the through-core directions (T-S, S-T)
show more low speed, less normal speed and longer times than the bypass
directions (T-L, L-T).
"""

from repro.experiments import render_table4
from repro.experiments.tables import table4_route_summaries


def _dir_mean(summaries, metric, directions):
    vals = [summaries[metric][d].mean for d in directions if d in summaries[metric]]
    return sum(vals) / len(vals)


def test_table4_route_stats(benchmark, bench_study, save_artifact):
    summaries = benchmark(table4_route_summaries, bench_study)

    save_artifact("table4_route_stats.txt", render_table4(summaries))

    core = ("T-S", "S-T")
    bypass = ("T-L", "L-T")

    # Low speed: core clearly above bypass (paper: ~33-38 % vs ~23-24 %).
    assert _dir_mean(summaries, "low_speed_pct", core) > _dir_mean(
        summaries, "low_speed_pct", bypass
    )
    # Normal speed: ordered the other way (paper: ~6-9 % vs ~15 %).
    assert _dir_mean(summaries, "normal_speed_pct", bypass) > 0.6 * _dir_mean(
        summaries, "normal_speed_pct", core
    )
    # Route time: core slower (paper: 0.135-0.153 h vs 0.107-0.114 h).
    assert _dir_mean(summaries, "route_time_h", core) > _dir_mean(
        summaries, "route_time_h", bypass
    )
    # Traffic lights: core routes pass more lights than the bypass.
    assert _dir_mean(summaries, "n_traffic_lights", core) > _dir_mean(
        summaries, "n_traffic_lights", bypass
    )
    # Junction counts are similar across directions (paper: all ~22-24).
    j_core = _dir_mean(summaries, "n_junctions", core)
    j_bypass = _dir_mean(summaries, "n_junctions", bypass)
    assert 0.5 < j_core / j_bypass < 2.0
    # Fuel correlates with low speed: core burns at least as much per trip
    # despite similar route lengths (paper: 240-265 ml vs 212-231 ml).
    assert _dir_mean(summaries, "fuel_ml", core) > 0.9 * _dir_mean(
        summaries, "fuel_ml", bypass
    )
    # Distances in the paper's magnitude band (km-scale city trips).
    for d in core + bypass:
        if d in summaries["route_distance_km"]:
            assert 1.0 < summaries["route_distance_km"][d].mean < 8.0
