"""Fig. 8 — cell intercepts with confidence limits.

Shape targets from the paper's caterpillar plot: "while the variation is
large for some cells, for most cells the result is solid" — most
intervals exclude zero at the extremes, and interval width shrinks with
the number of measurements in the cell.
"""

from repro.experiments import format_table
from repro.experiments.figures import fig8_intercepts


def test_fig8_intercepts(benchmark, bench_study, save_artifact):
    rows = benchmark(fig8_intercepts, bench_study)

    text = format_table(
        ["Cell", "Intercept", "Lower", "Upper", "n"],
        [[str(r["cell"]), round(r["intercept"], 2), round(r["lower"], 2),
          round(r["upper"], 2), r["n"]] for r in rows[:: max(1, len(rows) // 30)]],
    )
    save_artifact("fig8_intercepts.txt", text)

    assert rows
    values = [r["intercept"] for r in rows]
    assert values == sorted(values)
    # The most extreme cells are confidently non-zero.
    assert rows[0]["upper"] < 0.0 or rows[-1]["lower"] > 0.0
    # Well-measured cells have tighter limits than sparse cells.
    widths_big = [r["upper"] - r["lower"] for r in rows if r["n"] >= 30]
    widths_small = [r["upper"] - r["lower"] for r in rows if r["n"] <= 5]
    if widths_big and widths_small:
        assert (sum(widths_big) / len(widths_big)
                < sum(widths_small) / len(widths_small))
