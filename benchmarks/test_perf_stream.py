"""Perf: streaming replay vs the batch study on the same CSV.

The stream folds one trip at a time through the identical stage
functions, so the price of micro-batching (per-row ingest, open-trip
bookkeeping, watermark/window accounting) is a structural overhead on
top of the batch fold.  ``extra_info['stream_overhead']`` carries the
interleaved ratio; ``tools/bench_compare.py`` gates it at 1.5x.
"""

from __future__ import annotations

import pytest

from repro.experiments import OuluStudy, StudyConfig
from repro.faults import Quarantine
from repro.stream import StreamConfig, StreamService
from repro.traces import FleetSpec, TaxiFleetSimulator
from repro.traces.io import read_points_csv, write_points_csv

from test_perf_pipeline import _interleaved_overhead

#: Same scale as the serial-study benches: per-trip work dominates.
_STREAM_DAYS = 3


@pytest.fixture(scope="module")
def stream_csv(bench_city, tmp_path_factory):
    config = StudyConfig(fleet=FleetSpec(n_days=_STREAM_DAYS, seed=31))
    fleet, __ = TaxiFleetSimulator(bench_city, config.fleet).simulate()
    path = tmp_path_factory.mktemp("perf-stream") / "points.csv"
    write_points_csv(fleet, path)
    return config, path


def _batch_fold(config, path) -> int:
    quarantine = Quarantine()
    fleet = read_points_csv(path, quarantine=quarantine)
    return len(OuluStudy(config).run(fleet=fleet).kept_transitions)


def _stream_fold(config, path) -> int:
    service = StreamService(
        StreamConfig(study=config, input=str(path), batch_size=64)
    )
    return service.run().kept_count


def test_perf_stream_replay(benchmark, stream_csv):
    """Streaming fold of a replayed CSV (the `repro serve` hot path).

    ``extra_info['stream_overhead']`` is the interleaved ratio of the
    stream fold over the batch fold on the same file — both sides read
    the CSV, so the ratio prices only the incremental machinery.
    """
    config, path = stream_csv
    kept_batch = _batch_fold(config, path)
    kept = benchmark(_stream_fold, config, path)
    assert kept == kept_batch, "stream and batch disagree on kept count"
    benchmark.extra_info["stream_overhead"] = round(
        _interleaved_overhead(
            lambda: _batch_fold(config, path),
            lambda: _stream_fold(config, path),
            pairs=8,
            settled=1.3,
        ),
        3,
    )
