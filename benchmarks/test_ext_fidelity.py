"""Extension: pipeline fidelity against ground truth.

The reproduction's advantage over the paper: the simulator knows the true
customer runs and gate crossings, so the pipeline's recall/precision are
measurable — numbers the original authors could not compute.
"""

from repro.experiments import format_table
from repro.experiments.fidelity import segmentation_fidelity, transition_fidelity


def test_ext_pipeline_fidelity(benchmark, bench_study, save_artifact):
    def run():
        seg = segmentation_fidelity(bench_study.clean.segments, bench_study.runs)
        trans = transition_fidelity(bench_study)
        return seg, trans

    seg, trans = benchmark.pedantic(run, rounds=1, iterations=1)

    save_artifact("ext_fidelity.txt", format_table(
        ["Stage", "Metric", "Value"],
        [
            ["segmentation", "true runs", seg.n_runs],
            ["segmentation", "recall", round(seg.recall, 3)],
            ["segmentation", "boundary MAE (s)", round(seg.boundary_mae_s, 1)],
            ["transitions", "true gate-pair runs", trans.n_true],
            ["transitions", "detected (within centre)", trans.n_detected],
            ["transitions", "precision", round(trans.precision, 3)],
            ["transitions", "recall (incl. centre filter)", round(trans.recall, 3)],
        ],
    ))

    assert seg.recall > 0.9
    assert seg.boundary_mae_s < 60.0
    assert trans.precision > 0.85
    assert trans.recall > 0.3
