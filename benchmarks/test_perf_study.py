"""Engineering bench: the full end-to-end study at small scale."""

from repro.experiments import OuluStudy, StudyConfig
from repro.traces import FleetSpec


def test_perf_end_to_end_study(benchmark, save_artifact):
    config = StudyConfig(fleet=FleetSpec(n_days=3, seed=77))

    result = benchmark.pedantic(lambda: OuluStudy(config).run(),
                                rounds=3, iterations=1)

    save_artifact(
        "perf_study.txt",
        f"3-day study: {len(result.fleet)} trips, "
        f"{result.fleet.point_count} points, "
        f"{len(result.clean.segments)} segments, "
        f"{len(result.kept_transitions)} transitions",
    )
    assert result.clean.segments
