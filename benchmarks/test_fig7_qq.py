"""Fig. 7 — QQ plot of the BLUP cell intercepts.

The paper reads the plot as "with the exception of only the far edges,
the Gaussian regularization indeed seems justified".  The quantitative
shape target is a high QQ correlation with possible edge deviations.
"""

from repro.experiments import render_series
from repro.experiments.figures import fig7_qq
from repro.stats.qq import qq_correlation


def test_fig7_qq_plot(benchmark, bench_study, save_artifact):
    pairs = benchmark(fig7_qq, bench_study)

    text = render_series(
        "theoretical quantile -> cell intercept (km/h)", pairs[:: max(1, len(pairs) // 30)]
    )
    corr = qq_correlation(list(bench_study.mixed.blup.values()))
    save_artifact("fig7_qq.txt", f"QQ correlation: {corr:.4f}\n" + text)

    assert len(pairs) == len(bench_study.mixed.groups)
    # Gaussianity holds for the bulk of the cells.
    assert corr > 0.93
    # Theoretical quantiles are symmetric and increasing.
    theo = [t for t, __ in pairs]
    assert theo == sorted(theo)
    assert abs(theo[0] + theo[-1]) < 1e-9
