"""Fig. 4 — taxi 1 data categorised according to the direction.

Reproduces the per-direction speed series and checks the directional
effect the paper reads off the figure: through-core directions carry more
slow traffic than the bypass directions.
"""

from repro.experiments import format_table
from repro.experiments.figures import fig4_direction_speeds
from repro.stats.descriptive import mean


def test_fig4_direction_speeds(benchmark, bench_study, save_artifact):
    # Aggregate over all cars for a robust directional comparison; also
    # emit the single-car view the paper shows.
    per_dir_all: dict[str, list[float]] = {}
    for car in sorted({t.segment.car_id for t, __ in bench_study.kept()}):
        for direction, speeds in fig4_direction_speeds(bench_study, car).items():
            per_dir_all.setdefault(direction, []).extend(speeds)

    car1 = sorted({t.segment.car_id for t, __ in bench_study.kept()})[0]
    benchmark(fig4_direction_speeds, bench_study, car1)

    rows = [
        [d, len(v), round(mean(v), 2), round(min(v), 1), round(max(v), 1)]
        for d, v in sorted(per_dir_all.items())
    ]
    text = format_table(["Direction", "Points", "Mean km/h", "Min", "Max"], rows)
    save_artifact("fig4_direction_speeds.txt", text)

    core = per_dir_all.get("T-S", []) + per_dir_all.get("S-T", [])
    bypass = per_dir_all.get("T-L", []) + per_dir_all.get("L-T", [])
    assert core and bypass
    # Core directions include more low-speed points.
    core_low = sum(1 for v in core if v < 10.0) / len(core)
    bypass_low = sum(1 for v in bypass if v < 10.0) / len(bypass)
    assert core_low > bypass_low
