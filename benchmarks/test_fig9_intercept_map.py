"""Fig. 9 — cell intercept predictions on the map.

Paper reading: intercepts range roughly -15..+20 km/h; the most
interesting negative effects sit at the very centre (hotspot, lights) with
reductions up to -8 km/h, and dead-end areas also reduce speeds.
"""

from repro.experiments import format_table
from repro.experiments.figures import fig9_intercept_map


def test_fig9_intercept_map(benchmark, bench_study, save_artifact):
    cells = benchmark(fig9_intercept_map, bench_study)

    ranked = sorted(cells.items(), key=lambda kv: kv[1]["intercept"])
    rows = [
        [str(k), round(v["centre"][0]), round(v["centre"][1]),
         round(v["intercept"], 2), v["n"]]
        for k, v in ranked[:10] + ranked[-10:]
    ]
    text = format_table(["Cell", "x (m)", "y (m)", "Intercept", "n"], rows)
    save_artifact("fig9_intercept_map.txt", text)

    values = [v["intercept"] for v in cells.values()]
    # Range target: strong negative and positive effects, tens of km/h.
    assert min(values) < -5.0
    assert max(values) > 5.0
    assert min(values) > -40.0 and max(values) < 40.0
    # The slowest cells are inside the city (centre/hotspot region), not
    # out on the fast arterials.
    slowest = [v for __, v in ranked[:5]]
    for info in slowest:
        x, y = info["centre"]
        assert max(abs(x), abs(y)) < 1500.0
    # Centre-of-town cells show a clear reduction (paper: up to -8 km/h).
    central = [
        v["intercept"] for v in cells.values()
        if abs(v["centre"][0]) <= 400.0 and abs(v["centre"][1]) <= 400.0
    ]
    assert central and min(central) < -4.0
