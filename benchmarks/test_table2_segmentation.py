"""Table 2 — the time-based segmentation rules.

Table 2 in the paper is the rule list itself; the reproducible artefact is
behavioural: how often each rule fires on a fleet with real taxi dwell
structure, and the throughput of the full cleaning pipeline.
"""

from repro.cleaning import CleaningPipeline
from repro.experiments import format_table
from repro.experiments.tables import table2_rule_hits


def test_table2_segmentation_rules(benchmark, bench_study, save_artifact):
    fleet = bench_study.fleet

    result = benchmark(CleaningPipeline().run, fleet)

    rows = table2_rule_hits(result)
    text = format_table(
        ["Rule", "Description", "Firings"],
        [[r["rule"], r["description"], r["hits"]] for r in rows],
    )
    report = result.report
    extra = format_table(
        ["Stage", "Count"],
        [
            ["raw trips in", report.trips_in],
            ["route points in", report.points_in],
            ["trips with repaired ordering", report.reordered_trips],
            ["duplicate points removed", report.duplicates_removed],
            ["coordinate glitches removed", report.outliers_removed],
            ["segments out", report.segments_out],
            ["segments dropped (<5 points)", report.segments_dropped_short],
            ["segments dropped (>30 km)", report.segments_dropped_long],
        ],
    )
    save_artifact("table2_segmentation.txt", text + "\n\n" + extra)

    # Shape: dwell-driven rule 1 dominates; the pipeline repairs the
    # injected error classes and produces analysable segments.
    hits = {r["rule"]: r["hits"] for r in rows}
    assert hits[1] > 0
    assert hits[1] >= hits[2] and hits[1] >= hits[3]
    assert report.reordered_trips > 0
    assert report.segments_out > report.trips_in
