"""Table 5 — effect of traffic lights and bus stops on cell average speed.

Regenerates the paper's Table 5: per-cell average point speeds stratified
by whether the 200 m cell contains traffic lights / bus stops.  The shape
targets are the paper's two findings: lit cells are slower on average and
far less variable (paper: mean 18.7 vs 25.5 km/h, variance 48 vs 231).
"""

from repro.experiments.rendering import render_table5
from repro.experiments.tables import table5_cell_speed_strata


def test_table5_cell_speed_strata(benchmark, bench_study, save_artifact):
    strata = benchmark(table5_cell_speed_strata, bench_study)

    save_artifact("table5_cell_speeds.txt", render_table5(strata))

    lit = strata["lights>0"]
    unlit = strata["lights=0"]
    assert lit["n_cells"] > 0 and unlit["n_cells"] > 0
    # Lights decrease the average speed...
    assert lit["mean"] < unlit["mean"]
    # ...and lit cells are much less variable than unlit ones.
    assert lit["var"] < unlit["var"]
    # The lights+bus stratum behaves like the lights stratum (paper note).
    both = strata["lights>0,bus>0"]
    if both["n_cells"] > 0:
        assert abs(both["mean"] - lit["mean"]) < 8.0
    # Maxima: unlit cells reach far higher speeds (paper 53.3 vs 32.1).
    assert unlit["max"] > lit["max"]
