"""Fig. 3 — cleaned and preprocessed speed data for taxi 1.

The paper's figure is a map of matched point speeds for one taxi.  The
reproduction emits the same scatter data (x, y, speed) and summarises it;
the shape targets are coverage (points all over the study area) and a
speed distribution spanning stop-and-go to arterial cruise.
"""

from repro.experiments import format_table
from repro.experiments.figures import fig3_speed_points
from repro.stats import six_number_summary


def test_fig3_speed_points(benchmark, bench_study, save_artifact):
    cars = sorted({t.segment.car_id for t, __ in bench_study.kept()})
    car = cars[0]

    points = benchmark(fig3_speed_points, bench_study, car)

    speeds = [v for __, __, v in points]
    summary = six_number_summary(speeds)
    text = format_table(
        ["Points", "Min", "1st Q", "Med", "Mean", "3rd Q", "Max"],
        [[len(points), *summary.as_row()]],
        digits=1,
    )
    sample = format_table(
        ["x (m)", "y (m)", "speed (km/h)"],
        [[round(x, 1), round(y, 1), round(v, 1)] for x, y, v in points[:10]],
        digits=1,
    )
    save_artifact("fig3_speed_map.txt", text + "\n\nFirst points:\n" + sample)

    # Shape: hundreds of matched point speeds for one car (paper: 4186
    # for taxi 1 over a full year), spanning the city north-south.
    assert len(points) > 50
    ys = [y for __, y, __ in points]
    assert max(ys) - min(ys) > 2000.0
    assert summary.minimum < 12.0    # stop-and-go present
    assert summary.maximum > 35.0    # arterial cruise present
