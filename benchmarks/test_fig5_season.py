"""Fig. 5 — taxi data categorised according to the season.

Runs over the full study year and reproduces the paper's seasonal
mean-speed deltas against the annual mean (-0.07 winter, +0.46 spring,
+0.70 summer, +1.38 autumn).  The shape target is the ordering
winter < spring < summer < autumn, with a km/h-scale spread.
"""

from repro.experiments import format_table
from repro.experiments.figures import fig5_season_speeds, seasonal_speed_deltas


def test_fig5_seasonal_deltas(benchmark, year_study, save_artifact):
    deltas = benchmark(seasonal_speed_deltas, year_study)

    paper = {"winter": -0.07, "spring": 0.46, "summer": 0.70, "autumn": 1.38}
    rows = [
        [season, round(deltas.get(season, float("nan")), 2), paper[season]]
        for season in ("winter", "spring", "summer", "autumn")
    ]
    text = format_table(
        ["Season", "Measured delta (km/h)", "Paper delta (km/h)"], rows
    )
    save_artifact("fig5_season_speeds.txt", text)

    assert set(deltas) == {"winter", "spring", "summer", "autumn"}
    # Ordering target: winter slowest ... autumn fastest.
    assert deltas["winter"] < deltas["spring"] < deltas["autumn"]
    assert deltas["winter"] < deltas["summer"] < deltas["autumn"]
    # Magnitudes are km/h scale, not tens of km/h.
    assert all(abs(v) < 6.0 for v in deltas.values())


def test_fig5_single_car_series(benchmark, year_study, save_artifact):
    cars = sorted({t.segment.car_id for t, __ in year_study.kept()})
    by_season = benchmark(fig5_season_speeds, year_study, cars[0])
    rows = [
        [s, len(v), round(sum(v) / len(v), 2)] for s, v in sorted(by_season.items())
    ]
    save_artifact(
        "fig5_single_car.txt",
        format_table(["Season", "Points", "Mean km/h"], rows),
    )
    assert len(by_season) == 4  # a year of driving covers every season
