"""Perf bench: the shard store's warm-cache speedup.

Prices the store's two costs and its payoff in one place:

* ``test_perf_study_cold_store`` — a cold populate run (compute + encode
  + atomic writes); tracked against the committed baseline so the
  store's write-side overhead stays visible.
* ``test_perf_study_warm_store`` — a fully warm rerun (decode mmapped
  artefacts, fold, no stage compute).  ``extra_info['warm_cold_ratio']``
  carries warm/cold measured back-to-back in this process;
  ``tools/bench_compare.py`` gates it at ≤0.5 — if a warm run stops
  being at least 2× faster than a cold one, the delta-recomputation
  machinery has regressed into overhead.
"""

from __future__ import annotations

import shutil
from time import perf_counter

from repro.experiments import OuluStudy, StudyConfig
from repro.store import StoreConfig
from repro.traces import FleetSpec

#: Store-bench scale — smaller than the 60-day artefact benches because
#: every cold round re-runs the full pipeline.
STORE_BENCH_DAYS = 20


def _study(store_dir=None) -> int:
    config = StudyConfig(
        fleet=FleetSpec(n_days=STORE_BENCH_DAYS, seed=2012),
        store=StoreConfig(dir=str(store_dir)) if store_dir is not None else None,
    )
    return len(OuluStudy(config).run().kept_transitions)


def _cold(store_root) -> int:
    shutil.rmtree(store_root, ignore_errors=True)
    return _study(store_root)


def test_perf_study_cold_store(benchmark, tmp_path):
    """Cold populate: full compute plus shard encode + atomic writes."""
    kept = benchmark.pedantic(
        _cold, args=(tmp_path / "store",), rounds=3, warmup_rounds=1,
        iterations=1,
    )
    assert kept == _study()


def test_perf_study_warm_store(benchmark, tmp_path):
    """Warm rerun: every shard hits; only decode + folds remain."""
    store = tmp_path / "store"
    kept_cold = _cold(store)  # populate once
    kept = benchmark.pedantic(
        _study, args=(store,), rounds=5, warmup_rounds=1, iterations=1
    )
    assert kept == kept_cold

    # Ratio for the bench_compare gate, measured back-to-back in this
    # process so machine-load drift hits both sides equally.  Best of
    # the trials wins: the gate is one-sided (only a high ratio fails),
    # so a load burst inflating one trial cannot fake a regression.
    best = float("inf")
    for __ in range(3):
        t0 = perf_counter()
        _cold(store)
        cold_s = perf_counter() - t0
        t0 = perf_counter()
        _study(store)
        warm_s = perf_counter() - t0
        best = min(best, warm_s / cold_s)
        if best <= 0.4:  # comfortably inside the 0.5 limit
            break
    benchmark.extra_info["warm_cold_ratio"] = round(best, 4)
