"""Benchmark fixtures.

The bench study runs at a larger scale than the test suite (60 simulated
days, deterministic seed).  Every table/figure bench renders the same rows
the paper reports, asserts the reproduction's *shape*, and persists the
rendered artefact under ``benchmarks/out/``.

Perf benches additionally dump their timing stats as ``BENCH_<name>.json``
files under ``benchmarks/out/`` (one per bench module), so the perf
trajectory accumulates across PRs and regressions are diffable.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments import OuluStudy, StudyConfig
from repro.obs import RunContext, run_metadata
from repro.roadnet import build_synthetic_oulu
from repro.traces import FleetSpec

#: Scale of the bench study; the paper's corpus is a full year (365).
BENCH_DAYS = 60

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_city():
    return build_synthetic_oulu()


@pytest.fixture(scope="session")
def bench_study():
    config = StudyConfig(fleet=FleetSpec(n_days=BENCH_DAYS, seed=2012))
    return OuluStudy(config).run()


@pytest.fixture(scope="session")
def year_study():
    """A study over the full paper period (used by the seasonal benches)."""
    config = StudyConfig(fleet=FleetSpec(n_days=365, seed=2012))
    return OuluStudy(config).run()


@pytest.fixture(scope="session")
def save_artifact():
    """Callable fixture: persist a rendered table/series and echo it."""
    OUT_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (OUT_DIR / name).write_text(text + "\n")
        print(f"\n=== {name} (bench scale: {BENCH_DAYS} days vs paper's 365) ===")
        print(text)

    return save


#: Timing fields exported per benchmark into the BENCH_*.json dumps.
_STAT_FIELDS = ("min", "max", "mean", "median", "stddev", "rounds", "iterations")


def pytest_sessionfinish(session, exitstatus):
    """Persist every collected benchmark's timings as BENCH_<module>.json."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(bench_session, "benchmarks", None):
        return
    by_module: dict[str, list[dict]] = {}
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        module = Path(bench.fullname.split("::")[0]).stem.removeprefix("test_")
        entry = {"name": bench.name, "fullname": bench.fullname}
        for field in _STAT_FIELDS:
            value = getattr(stats, field, None)
            if value is not None:
                entry[field] = value
        extra = getattr(bench, "extra_info", None)
        if extra:
            # Benches attach derived measurements here (e.g. the
            # interleaved overhead ratios bench_compare gates on).
            entry["extra_info"] = dict(extra)
        by_module.setdefault(module, []).append(entry)
    OUT_DIR.mkdir(exist_ok=True)
    # One identity block per dump (run_id, git SHA, Python, wall clock)
    # so BENCH_*.json files are comparable across machines and PRs;
    # tools/bench_compare.py echoes it and ignores it for gating.
    meta = {**run_metadata(RunContext.create()), "ended": round(time.time(), 3)}
    for module, entries in by_module.items():
        path = OUT_DIR / f"BENCH_{module}.json"
        # Stage + atomic rename: an interrupt mid-dump must never leave a
        # truncated BENCH_*.json for bench_compare to choke on.
        tmp = path.with_suffix(f".json.tmp-{os.getpid()}")
        tmp.write_text(
            json.dumps({"meta": meta, "benchmarks": entries}, indent=2) + "\n"
        )
        os.replace(tmp, path)
