"""Benchmark fixtures.

The bench study runs at a larger scale than the test suite (60 simulated
days, deterministic seed).  Every table/figure bench renders the same rows
the paper reports, asserts the reproduction's *shape*, and persists the
rendered artefact under ``benchmarks/out/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import OuluStudy, StudyConfig
from repro.roadnet import build_synthetic_oulu
from repro.traces import FleetSpec

#: Scale of the bench study; the paper's corpus is a full year (365).
BENCH_DAYS = 60

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_city():
    return build_synthetic_oulu()


@pytest.fixture(scope="session")
def bench_study():
    config = StudyConfig(fleet=FleetSpec(n_days=BENCH_DAYS, seed=2012))
    return OuluStudy(config).run()


@pytest.fixture(scope="session")
def year_study():
    """A study over the full paper period (used by the seasonal benches)."""
    config = StudyConfig(fleet=FleetSpec(n_days=365, seed=2012))
    return OuluStudy(config).run()


@pytest.fixture(scope="session")
def save_artifact():
    """Callable fixture: persist a rendered table/series and echo it."""
    OUT_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (OUT_DIR / name).write_text(text + "\n")
        print(f"\n=== {name} (bench scale: {BENCH_DAYS} days vs paper's 365) ===")
        print(text)

    return save
