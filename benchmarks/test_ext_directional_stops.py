"""Extension: directional bus-stop counts per route.

The paper: "The number of bus stops along routes is not calculated
because the current map does not give information about the direction of
a particular bus stop."  The synthetic extract carries a kerb-side
``serves_heading`` attribute, so the missing Table 4 row becomes
computable — and it is directional: a route and its reverse are served by
different stops.
"""

from collections import defaultdict

from repro.experiments import format_table
from repro.features import directional_bus_stops


def test_ext_directional_bus_stops(benchmark, bench_study, save_artifact):
    city = bench_study.city

    def run():
        by_dir = defaultdict(list)
        for transition, route in bench_study.kept():
            by_dir[transition.direction].append(
                directional_bus_stops(route, city.graph, city.map_db)
            )
        return by_dir

    by_dir = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [d, len(v), round(sum(v) / len(v), 2), min(v), max(v)]
        for d, v in sorted(by_dir.items())
    ]
    save_artifact("ext_directional_stops.txt", format_table(
        ["Direction", "Trips", "Mean stops (served)", "Min", "Max"], rows,
    ))

    assert by_dir
    all_counts = [v for vs in by_dir.values() for v in vs]
    assert any(v > 0 for v in all_counts)
    # Directionality: at least two directions differ in their mean.
    means = [sum(v) / len(v) for v in by_dir.values() if v]
    assert max(means) - min(means) > 0.5
