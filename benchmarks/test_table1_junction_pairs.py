"""Table 1 — junction pairs with merged traffic-element arrays.

Regenerates the paper's Table 1 from the synthetic Digiroad extract and
benchmarks the map-preparation step (endpoint classification + chain
merging) that produces it.
"""

from repro.experiments import format_table
from repro.experiments.tables import table1_junction_pairs
from repro.roadnet.graphbuild import build_road_graph


def test_table1_junction_pairs(benchmark, bench_city, save_artifact):
    elements = bench_city.map_db.elements()

    graph, pairs = benchmark(build_road_graph, elements)

    rows = table1_junction_pairs(bench_city, limit=8)
    text = format_table(
        ["Junction 1 (EPSG:4326)", "elements", "Junction 2 (EPSG:4326)"],
        [[r["junction1"], "{" + ",".join(map(str, r["elements"])) + "}", r["junction2"]]
         for r in rows],
    )
    save_artifact("table1_junction_pairs.txt", text)

    # Shape: every element lands in exactly one edge; multi-element edges
    # exist (the whole point of the preparation step).
    used = [eid for p in pairs for eid in p.element_ids]
    assert sorted(used) == sorted(e.element_id for e in elements)
    assert any(len(p.element_ids) >= 2 for p in pairs)
    assert graph.edge_count == len(pairs)
