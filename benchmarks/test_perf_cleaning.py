"""Engineering benches: scalar vs vectorized cleaning kernels.

The vectorized fast path earns its keep on long traces — a year-scale
corpus replays whole days of points through segmentation at once — so
these benches run on dense synthetic trips (thousands of points), where
array construction amortises.  The scalar twins of each bench keep the
reference path's cost on record, and the speedup test is the hard gate
the ISSUE's fast path must clear: vectorized segmentation at least 3x
faster than the scalar walk on the same workload.
"""

import random
import statistics
import time

from repro.cleaning.ordering import repair_ordering
from repro.cleaning.segmentation import segment_trip
from repro.traces.model import RoutePoint, Trip

import pytest

#: Dense-trace workload: a handful of long trips rather than many short
#: ones — the regime the columnar kernels target.
N_TRIPS = 8
POINTS_PER_TRIP = 4000


def _dense_trip(trip_id: int, n: int, seed: int) -> Trip:
    rng = random.Random(seed)
    lat, lon, t = 65.0, 25.4, 0.0
    points = []
    for i in range(n):
        lat += rng.gauss(0.0, 0.0004)
        lon += rng.gauss(0.0, 0.0008)
        t += rng.uniform(2.0, 12.0)
        points.append(
            RoutePoint(
                point_id=i + 1,
                trip_id=trip_id,
                lat=lat,
                lon=lon,
                time_s=t,
                speed_kmh=rng.uniform(0.0, 80.0),
                fuel_ml=10.0 * i,
            )
        )
    return Trip(trip_id=trip_id, car_id=1 + trip_id % 7, points=points)


@pytest.fixture(scope="module")
def dense_trips():
    return [
        _dense_trip(trip_id=k + 1, n=POINTS_PER_TRIP, seed=100 + k)
        for k in range(N_TRIPS)
    ]


def _segment_all(trips, vectorized):
    total = 0
    for trip in trips:
        segments, __ = segment_trip(trip, vectorized=vectorized)
        total += len(segments)
    return total


def _order_all(trips, vectorized):
    consistent = 0
    for trip in trips:
        __, report = repair_ordering(trip, vectorized=vectorized)
        consistent += report.was_consistent
    return consistent


def test_perf_segmentation_scalar(benchmark, dense_trips):
    total = benchmark(lambda: _segment_all(dense_trips, vectorized=False))
    assert total >= N_TRIPS  # every trip yields at least one segment


def test_perf_segmentation_vectorized(benchmark, dense_trips):
    total = benchmark(lambda: _segment_all(dense_trips, vectorized=True))
    assert total >= N_TRIPS


def test_perf_ordering_scalar(benchmark, dense_trips):
    consistent = benchmark(lambda: _order_all(dense_trips, vectorized=False))
    assert consistent == N_TRIPS  # the dense trips arrive in order


def test_perf_ordering_vectorized(benchmark, dense_trips):
    consistent = benchmark(lambda: _order_all(dense_trips, vectorized=True))
    assert consistent == N_TRIPS


def test_vectorized_segmentation_at_least_3x_faster(dense_trips):
    def sweep(vectorized):
        start = time.perf_counter()
        _segment_all(dense_trips, vectorized=vectorized)
        return time.perf_counter() - start

    scalar = statistics.median(sweep(False) for __ in range(7))
    vectorized = statistics.median(sweep(True) for __ in range(7))
    assert scalar / vectorized >= 3.0, (
        f"vectorized segmentation speedup only {scalar / vectorized:.2f}x"
    )


def test_vectorized_results_identical_on_bench_workload(dense_trips):
    # The perf workload itself doubles as an equivalence witness.
    for trip in dense_trips:
        scalar_segments, scalar_report = segment_trip(trip)
        vec_segments, vec_report = segment_trip(trip, vectorized=True)
        assert scalar_report.rule_hits == vec_report.rule_hits
        assert [s.points for s in scalar_segments] == [s.points for s in vec_segments]
