"""Extension: digital-map quality validation.

The paper: "in data analysis, accuracy and correctness of the digital map
information is important".  The bench validates the clean synthetic
extract (no defects) and a deliberately corrupted copy (all defect
classes detected).
"""

from repro.experiments import format_table
from repro.geo.geometry import LineString
from repro.roadnet import validate_map
from repro.roadnet.digiroad import MapDatabase
from repro.roadnet.elements import PointObject, PointObjectKind, TrafficElement
from repro.roadnet.graphbuild import build_road_graph


def test_ext_map_validation(benchmark, bench_city, save_artifact):
    report = benchmark(validate_map, bench_city.map_db, bench_city.graph)
    assert report.ok, f"synthetic extract has defects: {report.counts()}"

    # Corrupt a copy: add an island, a sliver, a mad limit, a lost stop.
    db = MapDatabase()
    db.add_elements(bench_city.map_db.elements())
    db.add_element(TrafficElement(
        element_id=990_001, geometry=LineString([(50_000, 0), (50_100, 0)])))
    db.add_element(TrafficElement(
        element_id=990_002, geometry=LineString([(50_000, 0), (50_000, 100)])))
    db.add_element(TrafficElement(
        element_id=990_003, geometry=LineString([(0, 0), (0.1, 0)])))
    db.add_element(TrafficElement(
        element_id=990_004, geometry=LineString([(30_000, 0), (30_100, 0)]),
        speed_limit_kmh=300.0))
    db.add_point_object(PointObject(
        990_005, PointObjectKind.BUS_STOP, (99_999.0, 99_999.0)))
    graph, __ = build_road_graph(db.elements())
    bad = validate_map(db, graph)

    rows = [[kind, count] for kind, count in sorted(bad.counts().items())]
    save_artifact("ext_map_validation.txt", format_table(
        ["Defect class", "Count"], rows,
    ))

    counts = bad.counts()
    assert counts.get("degenerate_element", 0) >= 1
    assert counts.get("implausible_speed_limit", 0) >= 1
    assert counts.get("detached_object", 0) >= 1
    assert counts.get("disconnected_component", 0) >= 1
