"""Ablation: the shorter-length ordering rule vs trusting one key.

DESIGN.md calls out the ordering-repair rule (Sec. IV.B) for ablation:
how much trip distance does the geometric arbitration recover compared to
always trusting point ids or always trusting timestamps?
"""

import random

from repro.cleaning.ordering import repair_ordering
from repro.experiments import format_table
from repro.traces.model import RoutePoint, Trip, trip_distance_m
from repro.traces.noise import NoiseSpec, apply_noise


def _trips(n=60, seed=5):
    rng = random.Random(seed)
    spec = NoiseSpec(gps_sigma_m=0.0, reorder_prob=1.0, reorder_swaps=3,
                     glitch_prob=0.0, duplicate_prob=0.0)
    out = []
    for k in range(n):
        points = [
            RoutePoint(point_id=i, trip_id=k, lat=65.0 + i * 2e-3,
                       lon=25.0 + (i % 3) * 1e-3, time_s=float(i * 45))
            for i in range(1, 15)
        ]
        clean = Trip(trip_id=k, car_id=1, points=points)
        out.append((clean, apply_noise(clean, spec, rng)))
    return out


def _excess(points, truth_m):
    return trip_distance_m(points) - truth_m


def test_ablation_ordering_rule(benchmark, save_artifact):
    trips = _trips()

    def run():
        excess_repair = excess_ids = excess_time = 0.0
        for clean, noisy in trips:
            truth = clean.total_distance_m
            repaired, __ = repair_ordering(noisy)
            excess_repair += _excess(repaired.points, truth)
            excess_ids += _excess(
                sorted(noisy.points, key=lambda p: p.point_id), truth)
            excess_time += _excess(
                sorted(noisy.points, key=lambda p: p.time_s), truth)
        n = len(trips)
        return excess_repair / n, excess_ids / n, excess_time / n

    repair, ids, times = benchmark(run)
    text = format_table(
        ["Strategy", "Mean excess distance (m)"],
        [["shorter-length rule (paper)", round(repair, 1)],
         ["always trust point ids", round(ids, 1)],
         ["always trust timestamps", round(times, 1)]],
    )
    save_artifact("ablation_ordering.txt", text)

    # The paper's rule dominates either single-key strategy, because the
    # corrupted key differs per trip.
    assert repair <= ids + 1e-6
    assert repair <= times + 1e-6
    assert repair < max(ids, times) * 0.6
