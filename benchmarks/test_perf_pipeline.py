"""Engineering benches: simulator, cleaning, grid and REML throughput."""

import random

from repro.features import GridAccumulator, GridSpec
from repro.roadnet import build_synthetic_oulu
from repro.stats import RandomInterceptModel
from repro.traces import FleetSpec, TaxiFleetSimulator


def test_perf_city_build(benchmark):
    city = benchmark(build_synthetic_oulu)
    assert city.graph.edge_count > 150


def test_perf_simulator_day(benchmark, bench_city):
    spec = FleetSpec(n_days=1, seed=77)

    def run():
        fleet, runs = TaxiFleetSimulator(bench_city, spec).simulate()
        return fleet.point_count

    points = benchmark(run)
    assert points > 500


def test_perf_grid_accumulation(benchmark):
    rng = random.Random(0)
    points = [
        ((rng.uniform(-1000, 1000), rng.uniform(-1000, 1000)), rng.uniform(0, 60))
        for __ in range(20_000)
    ]

    def run():
        grid = GridAccumulator(GridSpec(200.0))
        for xy, v in points:
            grid.add_point(xy, v)
        return len(grid)

    cells = benchmark(run)
    assert cells > 50


def test_perf_reml_fit(benchmark):
    rng = random.Random(1)
    y = []
    groups = []
    for g in range(120):
        effect = rng.gauss(0.0, 4.0)
        for __ in range(rng.randint(3, 60)):
            y.append(25.0 + effect + rng.gauss(0.0, 6.0))
            groups.append(g)

    result = benchmark(RandomInterceptModel().fit, y, groups)
    assert result.sigma2_u > 1.0


def test_perf_spatial_edge_queries(benchmark, bench_city):
    rng = random.Random(2)
    queries = [
        (rng.uniform(-1000, 1000), rng.uniform(-1000, 1000)) for __ in range(500)
    ]

    def run():
        return sum(len(bench_city.graph.edges_near(q, 60.0)) for q in queries)

    hits = benchmark(run)
    assert hits > 500
