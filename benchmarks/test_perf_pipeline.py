"""Engineering benches: simulator, cleaning, grid and REML throughput."""

import random

from repro.experiments import OuluStudy, StudyConfig
from repro.faults import RobustnessConfig
from repro.features import GridAccumulator, GridSpec
from repro.parallel import ExecutorConfig
from repro.roadnet import build_synthetic_oulu
from repro.stats import RandomInterceptModel
from repro.traces import FleetSpec, TaxiFleetSimulator

#: Scale of the serial-vs-parallel study benches below; big enough that
#: per-trip work dominates, small enough to keep the bench job quick.
_PAR_DAYS = 3


def test_perf_city_build(benchmark):
    city = benchmark(build_synthetic_oulu)
    assert city.graph.edge_count > 150


def test_perf_simulator_day(benchmark, bench_city):
    spec = FleetSpec(n_days=1, seed=77)

    def run():
        fleet, runs = TaxiFleetSimulator(bench_city, spec).simulate()
        return fleet.point_count

    points = benchmark(run)
    assert points > 500


def test_perf_grid_accumulation(benchmark):
    rng = random.Random(0)
    points = [
        ((rng.uniform(-1000, 1000), rng.uniform(-1000, 1000)), rng.uniform(0, 60))
        for __ in range(20_000)
    ]

    def run():
        grid = GridAccumulator(GridSpec(200.0))
        for xy, v in points:
            grid.add_point(xy, v)
        return len(grid)

    cells = benchmark(run)
    assert cells > 50


def test_perf_reml_fit(benchmark):
    rng = random.Random(1)
    y = []
    groups = []
    for g in range(120):
        effect = rng.gauss(0.0, 4.0)
        for __ in range(rng.randint(3, 60)):
            y.append(25.0 + effect + rng.gauss(0.0, 6.0))
            groups.append(g)

    result = benchmark(RandomInterceptModel().fit, y, groups)
    assert result.sigma2_u > 1.0


def _study_transitions(workers: int, guarded: bool = True) -> int:
    config = StudyConfig(
        fleet=FleetSpec(n_days=_PAR_DAYS, seed=31),
        executor=ExecutorConfig(workers=workers),
        robustness=RobustnessConfig() if guarded else None,
    )
    return len(OuluStudy(config).run().kept_transitions)


def _journaled_study(out_dir) -> int:
    """The serial study with the run journal and OpenMetrics export on."""
    from repro.obs import FileJournal, RunContext, use_journal, write_textfile

    config = StudyConfig(
        fleet=FleetSpec(n_days=_PAR_DAYS, seed=31),
        executor=ExecutorConfig(workers=0),
        robustness=RobustnessConfig(),
    )
    ctx = RunContext.create()
    journal = FileJournal(out_dir / "events.jsonl", ctx)
    try:
        with use_journal(journal):
            result = OuluStudy(config).run(run_context=ctx)
        journal.close("ok")
    except Exception:
        journal.close("error")
        raise
    write_textfile(out_dir / "metrics.prom", result.metrics)
    return len(result.kept_transitions)


def _interleaved_overhead(
    base, instrumented, pairs: int = 24, trials: int = 3, settled: float = 1.02
) -> float:
    """Overhead ratio of two workloads, measured noise-robustly.

    Each trial runs the pair back-to-back ``pairs`` times and compares
    the sides' quiet-machine floors (mean of the 3 smallest timings).
    Interleaving matters: timing all rounds of one side, then all rounds
    of the other (what separate benchmarks do) bakes any machine-load
    drift between the two blocks into the ratio — observed at 10%+ on
    shared runners, swamping the few-percent structural overhead being
    priced.

    The gate this feeds is one-sided (only a *high* ratio fails), so a
    high trial is re-measured and the best trial wins: a load burst that
    covers one whole trial window inflates that trial only, while a real
    regression exceeds the limit in every trial.  Trials stop early once
    the ratio is comfortably inside the limit (``settled``).
    """
    from time import perf_counter

    def floor(times: list[float]) -> float:
        return sum(sorted(times)[:3]) / 3

    base()
    instrumented()  # warm both paths (imports, caches)
    best = float("inf")
    for __ in range(trials):
        base_times, instrumented_times = [], []
        for ___ in range(pairs):
            t0 = perf_counter()
            base()
            base_times.append(perf_counter() - t0)
            t0 = perf_counter()
            instrumented()
            instrumented_times.append(perf_counter() - t0)
        best = min(best, floor(instrumented_times) / floor(base_times))
        if best <= settled:
            break
    return best


def test_perf_study_serial(benchmark):
    """Baseline for the parallel bench: the same study, one process.

    Runs with the default degradation guards on — this is the
    production configuration.  ``extra_info['guard_overhead']`` carries
    the interleaved guarded/unguarded ratio that
    ``tools/bench_compare.py`` gates at ≤1.03 (the guards' happy-path
    cost).
    """
    kept = benchmark.pedantic(
        _study_transitions, args=(0,), rounds=5, warmup_rounds=1, iterations=1
    )
    benchmark.extra_info["guard_overhead"] = round(
        _interleaved_overhead(
            lambda: _study_transitions(0, False), lambda: _study_transitions(0)
        ),
        4,
    )
    assert kept > 0


def test_perf_study_unguarded(benchmark):
    """Reference without degradation guards (``robustness=None``).

    Identical work to ``test_perf_study_serial`` minus the per-unit
    guard wrappers; tracked against the committed baseline like every
    other bench (the guard-cost *ratio* gate lives in
    ``test_perf_study_serial``'s ``extra_info``, measured interleaved).
    """
    kept = benchmark.pedantic(
        _study_transitions, args=(0, False), rounds=5, warmup_rounds=1, iterations=1
    )
    assert kept == _study_transitions(0)


def test_perf_study_journaled(benchmark, tmp_path):
    """The serial study with the run journal and OpenMetrics export on.

    Identical work to ``test_perf_study_serial`` plus everything the
    observability layer adds per unit (journal span/lineage events,
    detail spans, the textfile export at the end).
    ``extra_info['journal_overhead']`` carries the interleaved
    journaled/serial ratio that ``tools/bench_compare.py`` gates at
    ≤1.03.
    """
    kept = benchmark.pedantic(
        _journaled_study, args=(tmp_path,), rounds=5, warmup_rounds=1, iterations=1
    )
    benchmark.extra_info["journal_overhead"] = round(
        _interleaved_overhead(
            lambda: _study_transitions(0), lambda: _journaled_study(tmp_path)
        ),
        4,
    )
    assert kept == _study_transitions(0)


def test_perf_study_workers4(benchmark):
    """Per-trip stages fanned over 4 workers (pool startup included).

    The speedup over ``test_perf_study_serial`` only materialises on a
    multi-core runner; the bench records both timings rather than
    asserting a ratio, and ``tools/bench_compare.py`` gates each against
    its own committed baseline.
    """
    kept = benchmark.pedantic(_study_transitions, args=(4,), rounds=3, iterations=1)
    assert kept == _study_transitions(0)


def test_perf_spatial_edge_queries(benchmark, bench_city):
    rng = random.Random(2)
    queries = [
        (rng.uniform(-1000, 1000), rng.uniform(-1000, 1000)) for __ in range(500)
    ]

    def run():
        return sum(len(bench_city.graph.edges_near(q, 60.0)) for q in queries)

    hits = benchmark(run)
    assert hits > 500
