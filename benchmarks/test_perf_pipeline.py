"""Engineering benches: simulator, cleaning, grid and REML throughput."""

import random

from repro.experiments import OuluStudy, StudyConfig
from repro.faults import RobustnessConfig
from repro.features import GridAccumulator, GridSpec
from repro.parallel import ExecutorConfig
from repro.roadnet import build_synthetic_oulu
from repro.stats import RandomInterceptModel
from repro.traces import FleetSpec, TaxiFleetSimulator

#: Scale of the serial-vs-parallel study benches below; big enough that
#: per-trip work dominates, small enough to keep the bench job quick.
_PAR_DAYS = 3


def test_perf_city_build(benchmark):
    city = benchmark(build_synthetic_oulu)
    assert city.graph.edge_count > 150


def test_perf_simulator_day(benchmark, bench_city):
    spec = FleetSpec(n_days=1, seed=77)

    def run():
        fleet, runs = TaxiFleetSimulator(bench_city, spec).simulate()
        return fleet.point_count

    points = benchmark(run)
    assert points > 500


def test_perf_grid_accumulation(benchmark):
    rng = random.Random(0)
    points = [
        ((rng.uniform(-1000, 1000), rng.uniform(-1000, 1000)), rng.uniform(0, 60))
        for __ in range(20_000)
    ]

    def run():
        grid = GridAccumulator(GridSpec(200.0))
        for xy, v in points:
            grid.add_point(xy, v)
        return len(grid)

    cells = benchmark(run)
    assert cells > 50


def test_perf_reml_fit(benchmark):
    rng = random.Random(1)
    y = []
    groups = []
    for g in range(120):
        effect = rng.gauss(0.0, 4.0)
        for __ in range(rng.randint(3, 60)):
            y.append(25.0 + effect + rng.gauss(0.0, 6.0))
            groups.append(g)

    result = benchmark(RandomInterceptModel().fit, y, groups)
    assert result.sigma2_u > 1.0


def _study_transitions(workers: int, guarded: bool = True) -> int:
    config = StudyConfig(
        fleet=FleetSpec(n_days=_PAR_DAYS, seed=31),
        executor=ExecutorConfig(workers=workers),
        robustness=RobustnessConfig() if guarded else None,
    )
    return len(OuluStudy(config).run().kept_transitions)


def test_perf_study_serial(benchmark):
    """Baseline for the parallel bench: the same study, one process.

    Runs with the default degradation guards on — this is the
    production configuration, and ``tools/bench_compare.py`` gates its
    ratio against ``test_perf_study_unguarded`` to bound the no-fault
    overhead of the guards (<3%).
    """
    kept = benchmark.pedantic(_study_transitions, args=(0,), rounds=3, iterations=1)
    assert kept > 0


def test_perf_study_unguarded(benchmark):
    """Reference without degradation guards (``robustness=None``).

    Identical work to ``test_perf_study_serial`` minus the per-unit
    guard wrappers; the pair exists purely so the ratio gate can price
    the guards' happy-path cost.
    """
    kept = benchmark.pedantic(
        _study_transitions, args=(0, False), rounds=3, iterations=1
    )
    assert kept == _study_transitions(0)


def test_perf_study_workers4(benchmark):
    """Per-trip stages fanned over 4 workers (pool startup included).

    The speedup over ``test_perf_study_serial`` only materialises on a
    multi-core runner; the bench records both timings rather than
    asserting a ratio, and ``tools/bench_compare.py`` gates each against
    its own committed baseline.
    """
    kept = benchmark.pedantic(_study_transitions, args=(4,), rounds=3, iterations=1)
    assert kept == _study_transitions(0)


def test_perf_spatial_edge_queries(benchmark, bench_city):
    rng = random.Random(2)
    queries = [
        (rng.uniform(-1000, 1000), rng.uniform(-1000, 1000)) for __ in range(500)
    ]

    def run():
        return sum(len(bench_city.graph.edges_near(q, 60.0)) for q in queries)

    hits = benchmark(run)
    assert hits > 500
