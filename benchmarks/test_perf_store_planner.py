"""Engineering bench: index-aware query planning vs full scans."""

import random

from repro.store import Column, HashIndex, Query, SortedIndex, Table, between, eq


def build_table(n=20_000, seed=1, indexed=False):
    rng = random.Random(seed)
    t = Table("points", [Column("trip", int), Column("t", float)])
    if indexed:
        HashIndex(t, "trip")
        SortedIndex(t, "t")
    for __ in range(n):
        t.insert({"trip": rng.randint(0, 499), "t": rng.uniform(0, 1e6)})
    return t


def test_perf_full_scan_queries(benchmark):
    t = build_table()

    def run():
        total = 0
        for trip in range(0, 100, 5):
            total += Query(t).where(eq("trip", trip)).count()
        return total

    total = benchmark(run)
    assert total > 0


def test_perf_indexed_queries(benchmark, save_artifact):
    t = build_table(indexed=True)

    def run():
        total = 0
        for trip in range(0, 100, 5):
            total += Query(t).where(eq("trip", trip)).count()
        total += Query(t).where(between("t", 0.0, 1e4)).count()
        return total

    total = benchmark(run)
    plan = Query(t).where(eq("trip", 1)).plan()
    save_artifact("perf_store_planner.txt",
                  f"plan: {plan}\nrows matched per round: {total}")
    assert "HashIndex" in plan
    assert total > 0
