"""Ablation: analysis grid cell size (paper Sec. V).

The paper chose 200 m cells "to have enough measure points on the
individual cells, as well as to be meaningful to capture effects of
multiple map features".  This bench sweeps 100/200/400 m and reports the
trade-off: smaller cells -> more cells with fewer points each (more
shrinkage), larger cells -> geography blurred.
"""

from repro.experiments import format_table
from repro.features import GridAccumulator, GridSpec
from repro.stats import RandomInterceptModel


def _fit_for_cell_size(bench_study, cell_size):
    grid = GridAccumulator(GridSpec(cell_size))
    speeds, cells = [], []
    for __, route in bench_study.kept():
        for m in route.matched:
            key = grid.add_point(m.snapped_xy, m.point.speed_kmh)
            speeds.append(m.point.speed_kmh)
            cells.append(key)
    model = RandomInterceptModel().fit(speeds, cells)
    mean_n = grid.point_count / len(grid)
    return len(grid), mean_n, model.sigma2_u, model.sigma2


def test_ablation_grid_size(benchmark, bench_study, save_artifact):
    sizes = (100.0, 200.0, 400.0)

    def run():
        return {s: _fit_for_cell_size(bench_study, s) for s in sizes}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [int(s), results[s][0], round(results[s][1], 1),
         round(results[s][2], 1), round(results[s][3], 1)]
        for s in sizes
    ]
    text = format_table(
        ["Cell (m)", "Cells", "Points/cell", "sigma_u^2", "sigma^2"], rows
    )
    save_artifact("ablation_gridsize.txt", text)

    # Smaller cells -> more cells, fewer points per cell.
    assert results[100.0][0] > results[200.0][0] > results[400.0][0]
    assert results[100.0][1] < results[200.0][1] < results[400.0][1]
    # Geography explains variance at every scale.
    for s in sizes:
        assert results[s][2] > 0.0
