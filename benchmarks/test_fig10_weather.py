"""Fig. 10 — low-speed share by temperature class and traffic-light count.

The paper's finding: when the number of traffic lights on a route is at
least nine (an experimentally chosen boundary) the low-speed share grows,
*independent of the weather conditions*.  We run the full year so all
temperature classes are populated and assert the many-lights group
dominates inside every populated class.
"""

from repro.experiments import format_table
from repro.experiments.figures import fig10_weather_low_speed
from repro.weather.roadweather import TEMPERATURE_CLASSES


def test_fig10_weather_low_speed(benchmark, year_study, save_artifact):
    threshold = 5  # the synthetic city's bypass/core split sits lower
    data = benchmark(fig10_weather_low_speed, year_study, threshold)

    rows = []
    for cls in TEMPERATURE_CLASSES:
        few = data[cls][f"lights<{threshold}"]
        many = data[cls][f"lights>={threshold}"]
        rows.append([
            cls,
            "-" if few is None else round(few, 1),
            "-" if many is None else round(many, 1),
        ])
    text = format_table(
        ["Temp class (C)", f"low-speed % (<{threshold} lights)",
         f"low-speed % (>={threshold} lights)"],
        rows,
    )
    save_artifact("fig10_weather.txt", text)

    populated = [
        (data[cls][f"lights<{threshold}"], data[cls][f"lights>={threshold}"])
        for cls in TEMPERATURE_CLASSES
        if data[cls][f"lights<{threshold}"] is not None
        and data[cls][f"lights>={threshold}"] is not None
    ]
    # A full year in Oulu populates at least three temperature classes.
    assert len(populated) >= 3
    # Many-lights routes show more low speed in every populated class.
    assert all(many > few for few, many in populated)
