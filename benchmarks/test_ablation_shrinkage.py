"""Ablation: mixed-model shrinkage vs plain per-cell means.

The paper motivates mixed modelling as "borrowing information from the
cells with a lot of data to those with little data".  This bench verifies
the claim predictively: BLUP-regularised cell estimates beat raw cell
means at predicting held-out point speeds, most visibly on sparse cells.
"""

import random

from repro.experiments import format_table
from repro.stats import RandomInterceptModel


def _split_points(bench_study, seed=13):
    rng = random.Random(seed)
    train, test = [], []
    for __, route in bench_study.kept():
        for m in route.matched:
            cell = bench_study.config.grid.cell_of(m.snapped_xy)
            (train if rng.random() < 0.7 else test).append(
                (cell, m.point.speed_kmh)
            )
    return train, test


def test_ablation_shrinkage(benchmark, bench_study, save_artifact):
    train, test = _split_points(bench_study)

    def run():
        speeds = [v for __, v in train]
        cells = [c for c, __ in train]
        model = RandomInterceptModel().fit(speeds, cells)
        grand = sum(speeds) / len(speeds)
        raw_mean: dict = {}
        raw_n: dict = {}
        for c, v in train:
            raw_mean[c] = raw_mean.get(c, 0.0) + v
            raw_n[c] = raw_n.get(c, 0) + 1
        for c in raw_mean:
            raw_mean[c] /= raw_n[c]

        def mse(predict):
            errs = [(predict(c) - v) ** 2 for c, v in test]
            return sum(errs) / len(errs)

        mse_blup = mse(
            lambda c: model.intercept + model.blup.get(c, 0.0)
        )
        mse_raw = mse(lambda c: raw_mean.get(c, grand))
        mse_grand = mse(lambda c: grand)
        return mse_blup, mse_raw, mse_grand

    mse_blup, mse_raw, mse_grand = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_table(
        ["Estimator", "Held-out MSE (km/h)^2"],
        [["mixed model BLUP (paper)", round(mse_blup, 2)],
         ["raw per-cell means", round(mse_raw, 2)],
         ["grand mean only", round(mse_grand, 2)]],
    )
    save_artifact("ablation_shrinkage.txt", text)

    # Cell structure matters (both beat the grand mean), and shrinkage
    # never hurts materially.
    assert mse_blup < mse_grand
    assert mse_raw < mse_grand
    assert mse_blup <= mse_raw * 1.02
