"""Extension: the covariate mixed model (paper model (2)).

The paper fits only the intercept-only model (3); model (2) with map
features as fixed effects is described but not evaluated.  This bench
completes it and checks the signs: traffic lights and bus stops reduce
expected point speed, and geography still matters after controlling for
the counted features (sigma_u^2 stays positive but drops).
"""

from repro.experiments import format_table
from repro.experiments.extensions import covariate_mixed_model


def test_ext_covariate_mixed_model(benchmark, bench_study, save_artifact):
    model = benchmark.pedantic(covariate_mixed_model, args=(bench_study,),
                               rounds=1, iterations=1)

    rows = [[name, round(model.fixed_effect(name), 3)]
            for name in model.fixed_names]
    rows.append(["sigma^2 (residual)", round(model.sigma2, 1)])
    rows.append(["sigma_u^2 (cells, model 2)", round(model.sigma2_u, 1)])
    base = bench_study.mixed
    rows.append(["sigma_u^2 (cells, model 3)", round(base.sigma2_u, 1)])
    save_artifact("ext_mixed_covariates.txt",
                  format_table(["Term", "Estimate"], rows))

    # Lights slow traffic; the association survives the cell intercepts.
    assert model.fixed_effect("traffic_lights") < 0.0
    # Geography still explains variance beyond the counted features...
    assert model.sigma2_u > 0.0
    # ...but less than in the intercept-only model, because the features
    # absorb part of the between-cell differences.
    assert model.sigma2_u < base.sigma2_u * 1.25
