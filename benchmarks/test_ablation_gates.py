"""Ablation: thick-geometry width and crossing-angle window.

The paper thickens the OD roads "to catch the routes significantly
deviating from the original roads" and accepts crossings only within an
angle window.  This bench sweeps both knobs and shows the trade-off:
thin gates miss transitions, wide windows admit parallel passes.
"""

from repro.experiments import format_table
from repro.od import Gate, TransitionExtractor


def _extract(bench_study, half_width, min_angle):
    city = bench_study.city

    def to_xy(p):
        return city.projector.to_xy(p.lat, p.lon)

    gates = [
        Gate(name=name, road=road, half_width_m=half_width,
             min_angle_deg=min_angle)
        for name, road in city.gate_roads.items()
    ]
    extractor = TransitionExtractor(gates, city.central_area)
    result = extractor.extract(bench_study.clean.segments, to_xy)
    return (
        sum(r.filtered_cleaned for r in result.funnel),
        sum(r.transitions_total for r in result.funnel),
    )


def test_ablation_gate_geometry(benchmark, bench_study, save_artifact):
    sweeps = [(15.0, 45.0), (60.0, 45.0), (150.0, 45.0), (60.0, 5.0), (60.0, 80.0)]

    def run():
        return {params: _extract(bench_study, *params) for params in sweeps}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [hw, ang, *results[(hw, ang)]] for hw, ang in sweeps
    ]
    text = format_table(
        ["Half width (m)", "Min angle (deg)", "Segments crossing", "Transitions"],
        rows,
    )
    save_artifact("ablation_gates.txt", text)

    baseline = results[(60.0, 45.0)]
    thin = results[(15.0, 45.0)]
    wide = results[(150.0, 45.0)]
    loose_angle = results[(60.0, 5.0)]
    strict_angle = results[(60.0, 80.0)]
    # Wider gates catch at least as many transitions; thin gates miss some.
    assert thin[1] <= baseline[1] <= wide[1]
    # Loosening the angle window admits more crossings (parallel passes).
    assert loose_angle[0] >= baseline[0]
    # A strict 80-degree window can only reduce the catch.
    assert strict_angle[0] <= baseline[0]
