"""Extension: trajectory anomaly detection over the study transitions.

Flags spatial detours (routes unlike any frequent variant) and temporal
outliers (durations far beyond the direction median) — the fraud/detour
screening classically built on cleaned taxi OD data.
"""

from repro.analysis import anomaly_rate, detect_anomalies
from repro.experiments import format_table


def test_ext_anomaly_detection(benchmark, bench_study, save_artifact):
    flags = benchmark.pedantic(detect_anomalies, args=(bench_study.kept(),),
                               rounds=1, iterations=1)

    flagged = [f for f in flags if f.is_anomalous]
    rows = [[f.segment_id, f.car_id, f.direction, round(f.route_overlap, 2),
             round(f.duration_ratio, 2),
             "spatial" if f.spatial_anomaly else "temporal"]
            for f in flagged[:10]]
    header = (f"scored {len(flags)} transitions, "
              f"anomaly rate {anomaly_rate(flags):.1%}")
    save_artifact("ext_anomaly.txt", header + "\n" + format_table(
        ["Segment", "Car", "Direction", "Overlap", "Duration ratio", "Kind"],
        rows,
    ))

    assert flags, "bench study must have enough transitions to score"
    # The simulated fleet is honest: route diversity is real but most
    # trips resemble a frequent variant at normal pace.
    assert anomaly_rate(flags) < 0.6
    for f in flags:
        assert 0.0 <= f.route_overlap <= 1.0
