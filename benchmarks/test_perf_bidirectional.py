"""Engineering bench: bidirectional vs plain Dijkstra on the city graph."""

import random

from repro.roadnet.routing import bidirectional_dijkstra, shortest_path


def _pairs(city, n=50, seed=6):
    rng = random.Random(seed)
    nodes = [node.node_id for node in city.graph.nodes()]
    return [(rng.choice(nodes), rng.choice(nodes)) for __ in range(n)]


def test_perf_bidirectional_dijkstra(benchmark, bench_city):
    pairs = _pairs(bench_city)

    def run():
        return sum(
            1 for s, t in pairs
            if bidirectional_dijkstra(bench_city.graph, s, t).found
        )

    found = benchmark(run)
    assert found >= len(pairs) * 0.9


def test_bidirectional_costs_match_plain(bench_city, benchmark):
    pairs = _pairs(bench_city, n=25, seed=8)

    def run():
        worst = 0.0
        for s, t in pairs:
            a = shortest_path(bench_city.graph, s, t)
            b = bidirectional_dijkstra(bench_city.graph, s, t)
            if a.found:
                worst = max(worst, abs(a.cost - b.cost))
        return worst

    assert benchmark(run) < 1e-6
