"""Tests for repro.features.attributes and routestats on the study result."""

import pytest

from repro.features import fetch_route_attributes
from repro.features.routestats import transition_route_stats


class TestRouteAttributes:
    def test_attributes_on_kept_transitions(self, study_result):
        city = study_result.city
        for transition, route in study_result.kept()[:10]:
            attrs = fetch_route_attributes(route, city.graph, city.map_db)
            assert attrs.n_traffic_lights >= 0
            assert attrs.n_junctions >= 1           # downtown routes pass junctions
            assert len(attrs.element_ids) >= 2

    def test_core_route_sees_lights(self, study_result):
        # At least one T-S/S-T transition must pass traffic lights.
        city = study_result.city
        core_lights = []
        for transition, route in study_result.kept():
            if transition.direction in ("T-S", "S-T"):
                attrs = fetch_route_attributes(route, city.graph, city.map_db)
                core_lights.append(attrs.n_traffic_lights)
        assert core_lights, "no core transitions in study"
        assert max(core_lights) >= 3

    def test_objects_not_double_counted(self, study_result):
        # The same light near a junction shared by two edges counts once:
        # counts can never exceed the city total.
        city = study_result.city
        for __, route in study_result.kept()[:10]:
            attrs = fetch_route_attributes(route, city.graph, city.map_db)
            assert attrs.n_traffic_lights <= city.spec.n_traffic_lights
            assert attrs.n_pedestrian_crossings <= city.spec.n_pedestrian_crossings


class TestRouteStats:
    def test_stats_fields_sane(self, study_result):
        for stats in study_result.route_stats:
            assert stats.direction in ("T-S", "S-T", "T-L", "L-T")
            assert stats.route_time_h > 0.0
            assert stats.route_distance_km > 1.0
            assert 0.0 <= stats.low_speed_pct <= 100.0
            assert 0.0 <= stats.normal_speed_pct <= 100.0
            assert stats.fuel_ml >= 0.0
            assert stats.season in ("winter", "spring", "summer", "autumn")

    def test_distance_consistent_with_route_length(self, study_result):
        city = study_result.city
        for (transition, route), stats in zip(
            study_result.kept(), study_result.route_stats
        ):
            assert stats.route_distance_km == pytest.approx(
                route.length_m(city.graph) / 1000.0, rel=1e-9
            )

    def test_speed_shares_disjoint_thresholds(self, study_result):
        # A point cannot be both below 10 km/h and at a >=30 km/h limit;
        # shares may overlap only if some limit were below 10, which the
        # city never uses.
        for stats in study_result.route_stats:
            assert stats.low_speed_pct + stats.normal_speed_pct <= 100.0 + 1e-9

    def test_requires_two_points(self, study_result):
        from repro.matching.types import MatchedRoute

        transition, route = study_result.kept()[0]
        empty = MatchedRoute(segment_id=1, car_id=1, matched=route.matched[:1])
        city = study_result.city
        with pytest.raises(ValueError):
            transition_route_stats(transition, empty, city.graph, city.map_db)


class TestDirectionalBusStops:
    def test_directional_at_most_total(self, study_result):
        from repro.features import directional_bus_stops, fetch_route_attributes

        city = study_result.city
        for __, route in study_result.kept()[:10]:
            directional = directional_bus_stops(route, city.graph, city.map_db)
            total = fetch_route_attributes(route, city.graph, city.map_db).n_bus_stops
            assert 0 <= directional <= total

    def test_opposite_directions_see_different_stops(self, study_result):
        """The whole point of the serves_heading attribute: a route and
        its reverse are served by different kerbs."""
        from collections import defaultdict

        from repro.features import directional_bus_stops

        city = study_result.city
        by_dir = defaultdict(list)
        for t, route in study_result.kept():
            by_dir[t.direction].append(
                directional_bus_stops(route, city.graph, city.map_db)
            )
        forward = by_dir.get("T-S", []) + by_dir.get("T-L", [])
        backward = by_dir.get("S-T", []) + by_dir.get("L-T", [])
        if forward and backward:
            mean_f = sum(forward) / len(forward)
            mean_b = sum(backward) / len(backward)
            assert mean_f != mean_b  # alternating kerbs, asymmetric routes

    def test_stops_without_attribute_counted(self, city):
        """Maps without direction info degrade to plain counting."""
        from repro.features import directional_bus_stops
        from repro.matching.types import MatchedPoint, MatchedRoute
        from repro.roadnet.digiroad import MapDatabase
        from repro.roadnet.elements import PointObject, PointObjectKind
        from repro.traces.model import RoutePoint

        db = MapDatabase()
        for e in city.map_db.elements():
            db.add_element(e)
        edge = city.graph.edges()[0]
        mid = edge.geometry.interpolate(edge.length / 2.0)
        db.add_point_object(PointObject(1, PointObjectKind.BUS_STOP, mid))
        route = MatchedRoute(segment_id=1, car_id=1, matched=[
            MatchedPoint(point=RoutePoint(point_id=1, trip_id=1, lat=0, lon=0,
                                          time_s=0.0),
                         edge_id=edge.edge_id, arc_m=0.0,
                         snapped_xy=(0.0, 0.0), match_distance_m=0.0),
        ])
        route.edge_sequence = [(edge.edge_id, edge.u)]
        assert directional_bus_stops(route, city.graph, db) == 1
