"""Tests for repro.cleaning.interpolation."""

import pytest

from repro.cleaning.interpolation import (
    INTERPOLATED_ID_BASE,
    InterpolationConfig,
    interpolate_gaps,
    is_interpolated,
    strip_interpolated,
)
from repro.geo.distance import destination_point
from repro.traces.model import RoutePoint


def pt(i, lat, lon, t, speed=30.0, fuel=0.0):
    return RoutePoint(point_id=i, trip_id=1, lat=lat, lon=lon, time_s=t,
                      speed_kmh=speed, fuel_ml=fuel)


def moving_pair(gap_s, distance_m=1000.0):
    lat2, lon2 = destination_point(65.0, 25.0, 0.0, distance_m)
    return [pt(1, 65.0, 25.0, 0.0, fuel=0.0),
            pt(2, lat2, lon2, gap_s, fuel=100.0)]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            InterpolationConfig(target_spacing_s=0.0)
        with pytest.raises(ValueError):
            InterpolationConfig(max_gap_s=10.0, target_spacing_s=30.0)


class TestInterpolateGaps:
    def test_fills_long_moving_gap(self):
        points, added = interpolate_gaps(moving_pair(120.0))
        assert added == 4                     # 120 s / 30 s spacing
        assert len(points) == 6
        mids = points[1:-1]
        assert all(is_interpolated(p) for p in mids)

    def test_interpolated_values_linear(self):
        points, __ = interpolate_gaps(moving_pair(120.0))
        times = [p.time_s for p in points]
        assert times == sorted(times)
        # Fuel interpolates linearly between 0 and 100.
        mid = points[len(points) // 2]
        assert 0.0 < mid.fuel_ml < 100.0
        lats = [p.lat for p in points]
        assert lats == sorted(lats)           # straight northward fill

    def test_short_gap_untouched(self):
        points, added = interpolate_gaps(moving_pair(45.0))
        assert added == 0
        assert len(points) == 2

    def test_stop_gap_not_fabricated(self):
        # Long gap but no movement: a genuine stop, leave it alone.
        stationary = [pt(1, 65.0, 25.0, 0.0), pt(2, 65.0, 25.0, 500.0)]
        points, added = interpolate_gaps(stationary)
        assert added == 0

    def test_very_long_gap_not_filled(self):
        points, added = interpolate_gaps(moving_pair(1200.0))
        assert added == 0

    def test_single_point(self):
        points, added = interpolate_gaps([pt(1, 65.0, 25.0, 0.0)])
        assert added == 0
        assert len(points) == 1

    def test_ids_flagged(self):
        points, __ = interpolate_gaps(moving_pair(120.0))
        synthetic = [p for p in points if is_interpolated(p)]
        assert all(p.point_id >= INTERPOLATED_ID_BASE for p in synthetic)


class TestStripInterpolated:
    def test_roundtrip(self):
        original = moving_pair(120.0)
        filled, added = interpolate_gaps(original)
        assert added > 0
        stripped = strip_interpolated(filled)
        assert stripped == original


class TestWithDropout:
    def test_restores_dropped_coverage(self, city):
        """Dropout thins a trace; interpolation restores temporal density."""
        from repro.traces import FleetSpec, TaxiFleetSimulator
        from repro.traces.noise import NoiseSpec

        spec = FleetSpec(
            n_days=1, seed=55,
            noise=NoiseSpec(gps_sigma_m=0.0, reorder_prob=0.0,
                            glitch_prob=0.0, duplicate_prob=0.0,
                            dropout_prob=0.35),
        )
        fleet, __ = TaxiFleetSimulator(city, spec).simulate()
        trip = max(fleet.trips, key=len)
        filled, added = interpolate_gaps(trip.points)
        assert added > 0
        gaps_before = [
            b.time_s - a.time_s for a, b in zip(trip.points, trip.points[1:])
        ]
        gaps_after = [
            b.time_s - a.time_s for a, b in zip(filled, filled[1:])
        ]
        assert max(gaps_after) <= max(gaps_before)
