"""The parallel execution layer: determinism, caching, worker safety.

The headline contract — a study run with any worker count produces the
same artefacts as a serial run — is asserted end to end on the synthetic
city, alongside the pieces that make it true: the route cache never
changes an answer, chunk execution is isolated from ambient observability
state, and a forked worker resets what it inherited.
"""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.experiments import OuluStudy, StudyConfig
from repro.parallel import ExecutorConfig, TripExecutor, WorkerPayload
from repro.parallel import worker as worker_mod
from repro.parallel.worker import init_worker, run_chunk
from repro.roadnet import RouteCache, cached_shortest_path
from repro.roadnet.routing import PathResult, shortest_path
from repro.traces import FleetSpec


# -- configuration ----------------------------------------------------------


class TestExecutorConfig:
    def test_defaults_are_serial(self):
        config = ExecutorConfig()
        assert config.workers == 0
        assert not TripExecutor(WorkerPayload(), config).parallel

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            ExecutorConfig(workers=-1)

    def test_rejects_non_positive_chunk_size(self):
        with pytest.raises(ValueError):
            ExecutorConfig(workers=2, chunk_size=0)

    def test_serial_executor_refuses_map_chunked(self):
        with TripExecutor(WorkerPayload()) as executor:
            with pytest.raises(RuntimeError):
                executor.map_chunked("clean", [1, 2, 3])


# -- worker-process safety --------------------------------------------------


class TestWorkerSafety:
    def test_run_chunk_before_init_fails_loudly(self, monkeypatch):
        monkeypatch.setattr(worker_mod, "_context", None)
        with pytest.raises(RuntimeError):
            run_chunk("clean", [])

    def test_reset_worker_state_clears_inherited_bindings(self):
        inherited = obs.MetricsRegistry()
        obs.set_registry(inherited)
        frame = obs.span("parent-stage")
        frame.__enter__()
        try:
            assert obs.get_registry() is inherited
            assert obs.current_span() is not None
            obs.reset_worker_state()
            # The ambient registry fell back to the global one and the
            # span stack is empty: worker spans become roots again.
            assert obs.get_registry() is not inherited
            assert obs.current_span() is None
            # Closing the stale parent frame must not raise or corrupt
            # state — exactly what happens right after a fork.
            frame.__exit__(None, None, None)
            assert obs.current_span() is None
        finally:
            obs.clear_registry()
            obs.reset_span_stack()

    def test_run_chunk_cleans_trips(self, fleet):
        init_worker(WorkerPayload())
        results, chunk_registry = run_chunk("clean", fleet.trips[:3])
        assert len(results) == 3
        assert all(r.segments for r in results)
        assert isinstance(chunk_registry, obs.MetricsRegistry)

    def test_run_chunk_records_into_chunk_local_registry(self):
        ambient = obs.MetricsRegistry()
        with obs.use_registry(ambient):
            init_worker(WorkerPayload())

            def ping(items):
                obs.get_registry().counter("test.ping").inc(len(items))
                return list(items)

            worker_mod._context.ping = ping
            results, chunk_registry = run_chunk("ping", [1, 2])
            # ...and init_worker dropped the inherited binding (the
            # ambient registry was bound when the "fork" happened).
            assert obs.get_registry() is not ambient
        assert results == [1, 2]
        # The handler's metrics landed in the chunk-local registry, not
        # in the caller's ambient one.
        assert chunk_registry.counter("test.ping").value == 2
        assert ambient.counter("test.ping").value == 0


# -- route cache ------------------------------------------------------------


class TestRouteCache:
    def test_lru_evicts_oldest(self):
        cache = RouteCache(max_entries=2)
        hit = PathResult(nodes=(1, 2), edges=(7,), cost=5.0)
        cache.put(1, 2, "length", hit)
        cache.put(2, 3, "length", hit)
        cache.put(3, 4, "length", hit)  # evicts (1, 2)
        assert len(cache) == 2
        assert cache.get(1, 2, "length") is None
        assert cache.get(2, 3, "length") is not None

    def test_get_refreshes_recency(self):
        cache = RouteCache(max_entries=2)
        hit = PathResult(nodes=(1, 2), edges=(7,), cost=5.0)
        cache.put(1, 2, "length", hit)
        cache.put(2, 3, "length", hit)
        cache.get(1, 2, "length")  # (1, 2) becomes most recent
        cache.put(3, 4, "length", hit)  # so (2, 3) is evicted instead
        assert cache.get(1, 2, "length") is not None
        assert cache.get(2, 3, "length") is None

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            RouteCache(max_entries=0)

    def test_unroutable_results_survive_disk_round_trip(self, tmp_path):
        path = tmp_path / "routes.json"
        cache = RouteCache(max_entries=10)
        cache.put(1, 2, "length", PathResult(nodes=(1, 9, 2), edges=(4, 5), cost=12.5))
        cache.put(3, 4, "length", PathResult(nodes=(), edges=(), cost=math.inf))
        assert cache.save(path) == 2
        warmed = RouteCache(max_entries=10, path=path)
        assert len(warmed) == 2
        assert warmed.get(1, 2, "length") == PathResult(nodes=(1, 9, 2), edges=(4, 5), cost=12.5)
        unroutable = warmed.get(3, 4, "length")
        assert unroutable is not None and not unroutable.found
        assert math.isinf(unroutable.cost)

    def test_cached_shortest_path_never_changes_the_answer(self, city):
        nodes = [n.node_id for n in city.graph.nodes()[:6]]
        cache = RouteCache(max_entries=100)
        pairs = [(a, b) for a in nodes for b in nodes if a != b]
        for source, target in pairs:
            plain = shortest_path(city.graph, source, target)
            cold = cached_shortest_path(city.graph, source, target, cache=cache)
            warm = cached_shortest_path(city.graph, source, target, cache=cache)
            assert cold == plain
            assert warm == plain

    def test_hit_and_miss_counters(self, city):
        registry = obs.MetricsRegistry()
        source, target = (n.node_id for n in city.graph.nodes()[:2])
        with obs.use_registry(registry):
            cache = RouteCache(max_entries=10)
            cached_shortest_path(city.graph, source, target, cache=cache)
            cached_shortest_path(city.graph, source, target, cache=cache)
        assert registry.counter("routing.route_cache_misses").value == 1
        assert registry.counter("routing.route_cache_hits").value == 1

    def test_eviction_counter_and_entries_gauge(self):
        registry = obs.MetricsRegistry()
        hit = PathResult(nodes=(1, 2), edges=(7,), cost=5.0)
        with obs.use_registry(registry):
            cache = RouteCache(max_entries=2)
            for target in (2, 3, 4, 5):
                cache.put(1, target, "length", hit)
        assert registry.counter("routing.route_cache_evictions").value == 2
        assert registry.gauge("routing.route_cache_entries").value == 2.0


# -- serial vs parallel equivalence -----------------------------------------


def _study(workers: int):
    config = StudyConfig(
        fleet=FleetSpec(n_days=2, seed=7),
        executor=ExecutorConfig(workers=workers),
    )
    return OuluStudy(config).run()


def _comparable_counters(result) -> dict:
    """Counters that must be scheduling-independent.

    ``parallel.*`` only exists on parallel runs; ``routing.*`` varies with
    cache locality (per-worker caches answer different subsets of the
    Dijkstra queries).  Everything else — the paper's funnel — must match.
    """
    return {
        name: value
        for name, value in result.metrics["counters"].items()
        if not name.startswith(("parallel.", "routing."))
    }


class TestSerialParallelEquivalence:
    def test_two_workers_reproduce_serial_artefacts(self):
        serial = _study(0)
        parallel = _study(2)

        # Cleaning: identical segments, ids and report counts.
        assert [s.segment_id for s in serial.clean.segments] == [
            s.segment_id for s in parallel.clean.segments
        ]
        assert serial.clean.report.segments_out == parallel.clean.report.segments_out

        # OD extraction and post-filter: identical survivors in order.
        assert serial.kept_transitions == parallel.kept_transitions
        assert serial.funnel == parallel.funnel

        # Matching: identical edge sequences for every matched transition.
        assert sorted(serial.matched) == sorted(parallel.matched)
        for index, route in serial.matched.items():
            assert route.edge_sequence == parallel.matched[index].edge_sequence

        # Downstream artefacts and the non-timing metrics.
        assert serial.route_stats == parallel.route_stats
        assert serial.cell_features == parallel.cell_features
        assert _comparable_counters(serial) == _comparable_counters(parallel)
        assert parallel.metrics["counters"]["parallel.match_items"] == len(
            serial.extraction.transitions
        )

    def test_ch_engine_reproduces_dijkstra_artefacts(self, tmp_path):
        # The CH engine answers gap-fill queries with optimal costs, so a
        # parallel run routing through a shared hierarchy artifact must
        # reproduce the serial flat-Dijkstra study byte for byte.
        serial = _study(0)
        config = StudyConfig(
            fleet=FleetSpec(n_days=2, seed=7),
            executor=ExecutorConfig(
                workers=2,
                routing_engine="ch",
                ch_artifact_path=str(tmp_path / "oulu_ch.npz"),
            ),
        )
        ch_parallel = OuluStudy(config).run()
        assert (tmp_path / "oulu_ch.npz").exists()
        assert ch_parallel.kept_transitions == serial.kept_transitions
        assert ch_parallel.funnel == serial.funnel
        assert ch_parallel.route_stats == serial.route_stats
        assert _comparable_counters(ch_parallel) == _comparable_counters(serial)

    def test_chunk_size_does_not_change_results(self):
        config = StudyConfig(
            fleet=FleetSpec(n_days=2, seed=7),
            executor=ExecutorConfig(workers=2, chunk_size=1),
        )
        tiny_chunks = OuluStudy(config).run()
        serial = _study(0)
        assert tiny_chunks.kept_transitions == serial.kept_transitions
        assert tiny_chunks.funnel == serial.funnel
        assert _comparable_counters(tiny_chunks) == _comparable_counters(serial)
