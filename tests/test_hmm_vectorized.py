"""Vectorized Viterbi must be bitwise-identical to the scalar decoder.

The vectorized path replaces the per-candidate capped Dijkstras with one
many-to-many batch (``RouteBatch.resolve_costs``) and the pure-Python
forward pass with a NumPy one.  Exactness is the contract: same matched
points (edge, arc, score), same edge sequences, same gap counts — under
the flat engine and a prepared contraction hierarchy, on random graphs
with one-way edges and disconnected components, and through whole study
runs serial and parallel with the flag on and off.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import OuluStudy, StudyConfig
from repro.parallel import ExecutorConfig
from repro.matching.hmm import HmmConfig, HmmMatcher
from repro.obs.report import render_report
from repro.roadnet import prepare_ch
from repro.roadnet.routing import RouteCache
from repro.traces import FleetSpec
from repro.traces.model import RoutePoint
from tests.test_batch_routing import study_fingerprint
from tests.test_parallel_executor import _comparable_counters
from tests.test_roadnet_ch import build_random_city


def _to_xy(p: RoutePoint) -> tuple[float, float]:
    """Test points carry plane coordinates directly in (lat, lon)."""
    return (p.lat, p.lon)


def make_trip(graph, seed: int, n_points: int = 8,
              jitter_m: float = 6.0) -> list[RoutePoint]:
    """A noisy walk along graph edges (deterministic per seed)."""
    rng = random.Random(seed)
    edges = sorted(graph.edges(), key=lambda e: e.edge_id)
    points = []
    edge = rng.choice(edges)
    for i in range(n_points):
        # Mostly follow adjacent edges; sometimes teleport (forces gaps
        # and occasionally unreachable transitions on split graphs).
        if rng.random() < 0.2:
            edge = rng.choice(edges)
        else:
            near = [e for node in (edge.u, edge.v)
                    for e in graph.out_edges(node, respect_oneway=False)]
            edge = rng.choice(sorted(near, key=lambda e: e.edge_id) or [edge])
        arc = rng.uniform(0.0, edge.length)
        x, y = edge.geometry.interpolate(arc)
        points.append(RoutePoint(
            point_id=i, trip_id=seed, time_s=float(i),
            lat=x + rng.gauss(0.0, jitter_m),
            lon=y + rng.gauss(0.0, jitter_m),
        ))
    return points


def route_key(route):
    if route is None:
        return None
    return (
        tuple(route.edge_sequence),
        route.gaps_filled,
        tuple(
            (m.edge_id, m.arc_m, m.score, m.match_distance_m, m.snapped_xy)
            for m in route.matched
        ),
    )


def decode_both(graph, trips, engine=None):
    """(scalar keys, vectorized keys) with fresh caches for each pass."""
    keys = []
    for flag in (False, True):
        matcher = HmmMatcher(
            graph, route_cache=RouteCache(), routing_engine=engine,
            vectorized_viterbi=flag,
        )
        keys.append([route_key(matcher.match(t, _to_xy)) for t in trips])
    return keys[0], keys[1]


class TestBitwiseEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        oneway=st.sampled_from([0.0, 0.4]),
        components=st.sampled_from([1, 2]),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_graphs_flat_engine(self, seed, oneway, components):
        graph = build_random_city(
            seed, oneway_fraction=oneway, components=components
        )
        trips = [make_trip(graph, seed * 7 + k) for k in range(3)]
        scalar, vectorized = decode_both(graph, trips)
        assert scalar == vectorized

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        oneway=st.sampled_from([0.0, 0.4]),
    )
    @settings(max_examples=8, deadline=None)
    def test_random_graphs_ch_engine(self, seed, oneway):
        graph = build_random_city(seed, oneway_fraction=oneway)
        engine = prepare_ch(graph, weight="length")
        trips = [make_trip(graph, seed * 11 + k) for k in range(2)]
        scalar, vectorized = decode_both(graph, trips, engine=engine)
        assert scalar == vectorized

    def test_disconnected_layers(self):
        """Transitions across components are unreachable in both paths."""
        graph = build_random_city(3, components=2)
        trips = [make_trip(graph, 90 + k, n_points=10) for k in range(4)]
        scalar, vectorized = decode_both(graph, trips)
        assert scalar == vectorized

    def test_single_point_trip(self):
        graph = build_random_city(5)
        trips = [make_trip(graph, 17, n_points=1)]
        scalar, vectorized = decode_both(graph, trips)
        assert scalar == vectorized
        assert scalar[0] is not None

    def test_all_empty_layers_return_none(self):
        """Fixes far off the network find no candidates in either path."""
        graph = build_random_city(5)
        far = [
            RoutePoint(point_id=i, trip_id=0, time_s=float(i),
                       lat=1e6 + 100.0 * i, lon=1e6)
            for i in range(4)
        ]
        scalar, vectorized = decode_both(graph, [far])
        assert scalar == vectorized == [None]

    def test_tight_network_factor_masks_transitions(self):
        """A small cap exercises the ``through > cap`` mask everywhere."""
        graph = build_random_city(9)
        config = HmmConfig(max_network_factor=1.05)
        trips = [make_trip(graph, 23 + k) for k in range(3)]
        keys = []
        for flag in (False, True):
            matcher = HmmMatcher(
                graph, config=config, route_cache=RouteCache(),
                vectorized_viterbi=flag,
            )
            keys.append([route_key(matcher.match(t, _to_xy)) for t in trips])
        assert keys[0] == keys[1]


class TestStudyByteIdentity:
    def test_hmm_study_flag_on_off_serial_parallel(self, tmp_path):
        """`repro study --matcher hmm` artefacts must not depend on the
        decoder implementation or the scheduling."""
        artifact = str(tmp_path / "oulu_ch.npz")

        def run(flag: bool, workers: int):
            config = StudyConfig(
                fleet=FleetSpec(n_days=2, seed=7),
                matcher="hmm",
                executor=ExecutorConfig(
                    workers=workers,
                    routing_engine="ch",
                    ch_artifact_path=artifact,
                    vectorized_viterbi=flag,
                ),
            )
            return OuluStudy(config).run()

        on = run(True, 0)
        off = run(False, 0)
        par_on = run(True, 2)
        par_off = run(False, 2)

        assert study_fingerprint(on) == study_fingerprint(off)
        assert study_fingerprint(on) == study_fingerprint(par_on)
        assert study_fingerprint(on) == study_fingerprint(par_off)
        # matching.* counters (hmm_layers / hmm_transition_pairs /
        # hmm_dijkstra_avoided included) are comparable: deterministic
        # per trip, independent of flag and scheduling.
        assert _comparable_counters(on) == _comparable_counters(off)
        assert _comparable_counters(on) == _comparable_counters(par_on)


class TestReportRendering:
    def test_hmm_batching_block(self):
        metrics = {"counters": {
            "matching.hmm_layers": 120,
            "matching.hmm_transition_pairs": 950,
            "matching.hmm_dijkstra_avoided": 431,
        }}
        out = render_report([], metrics)
        assert "HMM batching:" in out
        assert "120" in out
        assert "950" in out
        assert "431" in out

    def test_block_absent_without_hmm_counters(self):
        out = render_report([], {"counters": {"matching.calls": 3}})
        assert "HMM batching:" not in out
