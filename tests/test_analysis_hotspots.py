"""Tests for repro.analysis.hotspots."""

import math
import random

import pytest

from repro.analysis.hotspots import (
    DwellEvent,
    dbscan,
    detect_hotspots,
    extract_dwells,
)
from repro.traces.model import RoutePoint, Trip, FleetData


class TestDbscan:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            dbscan([(0.0, 0.0)], eps=0.0, min_pts=3)
        with pytest.raises(ValueError):
            dbscan([(0.0, 0.0)], eps=1.0, min_pts=0)

    def test_two_blobs_and_noise(self):
        rng = random.Random(1)
        blob_a = [(rng.gauss(0, 5), rng.gauss(0, 5)) for __ in range(30)]
        blob_b = [(rng.gauss(500, 5), rng.gauss(500, 5)) for __ in range(30)]
        noise = [(rng.uniform(-1000, 1000), rng.uniform(1500, 3000)) for __ in range(5)]
        points = blob_a + blob_b + noise
        labels = dbscan(points, eps=30.0, min_pts=4)
        a_labels = {labels[i] for i in range(30)}
        b_labels = {labels[i] for i in range(30, 60)}
        assert len(a_labels) == 1 and -1 not in a_labels
        assert len(b_labels) == 1 and -1 not in b_labels
        assert a_labels != b_labels
        assert all(labels[i] == -1 for i in range(60, 65))

    def test_all_noise_when_sparse(self):
        points = [(i * 1000.0, 0.0) for i in range(10)]
        assert set(dbscan(points, eps=50.0, min_pts=3)) == {-1}

    def test_single_dense_cluster(self):
        points = [(float(i % 5), float(i // 5)) for i in range(25)]
        labels = dbscan(points, eps=2.0, min_pts=3)
        assert set(labels) == {0}

    def test_empty(self):
        assert dbscan([], eps=1.0, min_pts=2) == []

    def test_labels_against_reference_counts(self):
        # Three separated 10-point clusters: exactly three labels.
        points = []
        for cx in (0.0, 300.0, 600.0):
            points.extend((cx + dx, 0.0) for dx in range(10))
        labels = dbscan(points, eps=15.0, min_pts=3)
        assert len({lab for lab in labels if lab >= 0}) == 3
        assert -1 not in labels


def make_trip(points_xy_t, car_id=1, trip_id=1):
    # lat=y/111111, lon=x/(111111*cos) approximated by identity projector below.
    points = [
        RoutePoint(point_id=i + 1, trip_id=trip_id, lat=y, lon=x, time_s=t)
        for i, (x, y, t) in enumerate(points_xy_t)
    ]
    return Trip(trip_id=trip_id, car_id=car_id, points=points)


def identity_to_xy(p):
    return (p.lon, p.lat)


class TestExtractDwells:
    def test_detects_long_stop(self):
        trip = make_trip([
            (0.0, 0.0, 0.0), (100.0, 0.0, 20.0),
            (100.0, 0.0, 30.0), (105.0, 0.0, 400.0),   # ~370 s near-stationary
            (300.0, 0.0, 430.0),
        ])
        dwells = extract_dwells(FleetData(trips=[trip]), identity_to_xy)
        assert len(dwells) == 1
        assert dwells[0].duration_s >= 300.0
        assert dwells[0].position == (100.0, 0.0)

    def test_moving_trip_has_no_dwells(self):
        trip = make_trip([(x * 100.0, 0.0, x * 20.0) for x in range(10)])
        assert extract_dwells(FleetData(trips=[trip]), identity_to_xy) == []

    def test_short_stop_ignored(self):
        trip = make_trip([
            (0.0, 0.0, 0.0), (100.0, 0.0, 20.0),
            (100.0, 0.0, 80.0),   # only 60 s
            (300.0, 0.0, 100.0),
        ])
        assert extract_dwells(FleetData(trips=[trip]), identity_to_xy) == []


class TestDetectHotspots:
    def test_empty(self):
        assert detect_hotspots([]) == []

    def test_clusters_dwells(self):
        rng = random.Random(3)
        dwells = []
        for i in range(20):
            dwells.append(DwellEvent(
                car_id=i % 3 + 1, trip_id=i, start_s=0.0, duration_s=300.0,
                position=(rng.gauss(0, 20), rng.gauss(0, 20)),
            ))
        for i in range(4):
            dwells.append(DwellEvent(
                car_id=1, trip_id=100 + i, start_s=0.0, duration_s=300.0,
                position=(5000.0 + i * 400.0, 5000.0),
            ))
        hotspots = detect_hotspots(dwells, eps=100.0, min_pts=4)
        assert len(hotspots) == 1
        top = hotspots[0]
        assert top.n_events == 20
        assert top.n_cars == 3
        assert math.hypot(*top.centroid) < 30.0

    def test_hotspot_found_in_simulation(self, fleet, city):
        projector = city.projector
        dwells = extract_dwells(fleet, lambda p: projector.to_xy(p.lat, p.lon))
        assert len(dwells) > 50
        hotspots = detect_hotspots(dwells, eps=180.0, min_pts=6)
        assert hotspots
        # The busiest hotspot involves several taxis and sits inside the
        # central area (dwells are customer stops around downtown).
        top = hotspots[0]
        assert top.n_cars >= 3
        assert city.central_area.contains(top.centroid)
