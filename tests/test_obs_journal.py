"""Run journal: durability, crash recovery, and span-tree reconstruction.

Covers the write/read round-trip of :class:`~repro.obs.FileJournal`, the
crash-tolerance contract of :func:`~repro.obs.read_journal` (a truncated
*final* line is an interrupted write and is dropped; corruption earlier
in the file is damage and raises), and the reconstruction helpers the
``repro obs`` CLI is built on (span forest, scheduling-independent
structural signature, lineage queries).
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.obs import (
    EVENT_KINDS,
    BufferJournal,
    FileJournal,
    Journal,
    RunContext,
    get_journal,
    lineage_records,
    read_journal,
    reconstruct_spans,
    structural_signature,
    use_journal,
)
from repro.obs.context import new_span_id


class TestFileJournal:
    def test_round_trip_with_header_and_footer(self, tmp_path):
        ctx = RunContext.create()
        journal = FileJournal(tmp_path / "events.jsonl", ctx, extra_meta={"command": "test"})
        journal.emit("note", detail="hello")
        journal.close("ok")

        events = read_journal(journal.path)
        assert [e["kind"] for e in events] == ["run_start", "note", "run_end"]
        header, note, footer = events
        assert header["run_id"] == ctx.run_id
        assert header["journal_schema"] == 1
        assert header["command"] == "test"
        assert note["detail"] == "hello"
        assert footer["status"] == "ok"
        assert footer["wall_seconds"] >= 0

    def test_sequence_numbers_strictly_increase(self, tmp_path):
        journal = FileJournal(tmp_path / "j.jsonl", RunContext.create())
        for __ in range(5):
            journal.emit("note")
        journal.close()
        seqs = [e["i"] for e in read_journal(journal.path)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_header_is_flushed_before_close(self, tmp_path):
        # A run that never closes (crash) must still leave an
        # identifiable journal: the header write is flushed eagerly.
        journal = FileJournal(tmp_path / "j.jsonl", RunContext.create())
        journal.emit("note", n=1)  # may sit in the buffer — that's fine
        on_disk = read_journal(journal.path)
        assert on_disk and on_disk[0]["kind"] == "run_start"
        journal.close()

    def test_non_serialisable_fields_fall_back_to_repr(self, tmp_path):
        journal = FileJournal(tmp_path / "j.jsonl", RunContext.create())
        journal.emit("note", weird=object())
        journal.close()
        note = read_journal(journal.path)[1]
        assert isinstance(note["weird"], str)

    def test_emit_after_close_is_a_safe_noop(self, tmp_path):
        journal = FileJournal(tmp_path / "j.jsonl", RunContext.create())
        journal.close()
        journal.emit("note")  # must not raise
        journal.close()  # idempotent
        assert [e["kind"] for e in read_journal(journal.path)] == ["run_start", "run_end"]

    def test_context_manager_records_error_status(self, tmp_path):
        with pytest.raises(RuntimeError):
            with FileJournal(tmp_path / "j.jsonl", RunContext.create()) as journal:
                raise RuntimeError("boom")
        assert read_journal(journal.path)[-1]["status"] == "error"


class TestCrashRecovery:
    def _journal_lines(self, tmp_path) -> list[str]:
        journal = FileJournal(tmp_path / "j.jsonl", RunContext.create())
        for n in range(3):
            journal.emit("note", n=n)
        journal.close()
        return journal.path.read_text().splitlines()

    def test_truncated_final_line_is_dropped(self, tmp_path):
        lines = self._journal_lines(tmp_path)
        cut = tmp_path / "cut.jsonl"
        cut.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        events = read_journal(cut)
        assert [e["kind"] for e in events] == ["run_start", "note", "note", "note"]

    def test_mid_file_corruption_raises(self, tmp_path):
        lines = self._journal_lines(tmp_path)
        lines[2] = lines[2][:10]  # damage a non-final line
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt journal line 3"):
            read_journal(bad)

    def test_blank_lines_are_skipped(self, tmp_path):
        lines = self._journal_lines(tmp_path)
        spaced = tmp_path / "spaced.jsonl"
        spaced.write_text("\n\n".join(lines) + "\n")
        assert len(read_journal(spaced)) == len(lines)


class TestAmbientJournal:
    def test_default_is_disabled_noop(self):
        journal = get_journal()
        assert not journal.enabled
        journal.emit("note")  # no-op, no raise

    def test_use_journal_scopes_and_restores(self):
        buffer = BufferJournal()
        with use_journal(buffer):
            assert get_journal() is buffer
            get_journal().emit("note", x=1)
        assert not get_journal().enabled
        assert len(buffer.buffer) == 1
        assert buffer.buffer[0]["kind"] == "note"
        assert buffer.buffer[0]["x"] == 1

    def test_null_journal_base_class_is_disabled(self):
        assert Journal().enabled is False


class TestSpanIds:
    def test_unique_within_process(self):
        ids = {new_span_id() for __ in range(100)}
        assert len(ids) == 100

    def test_forked_children_get_distinct_prefixes(self):
        # Fork-started pool workers inherit the parent's id generator
        # state; without the at-fork reseed every worker would mint the
        # same ids and reconstruction would silently merge their spans.
        fork = multiprocessing.get_context("fork")
        with fork.Pool(2) as pool:
            child_ids = dict(pool.map(_pid_and_span_id, range(8)))
        parent_prefix = new_span_id()[:10]
        child_prefixes = {span_id[:10] for span_id in child_ids.values()}
        assert parent_prefix not in child_prefixes
        # Distinct processes mint distinct prefixes.
        assert len(child_prefixes) == len(child_ids)


def _pid_and_span_id(_: int) -> tuple[int, str]:
    import os

    return os.getpid(), new_span_id()


def _span_events() -> list[dict]:
    """A hand-built journal stream: study > (clean > 2 details, chunked match)."""
    return [
        {"kind": "run_start", "i": 0, "ts": 1.0, "run_id": "r", "journal_schema": 1},
        {"kind": "span_open", "i": 1, "ts": 1.0, "name": "study", "span_id": "s1"},
        {"kind": "span_open", "i": 2, "ts": 1.0, "name": "clean", "span_id": "s2",
         "parent_id": "s1"},
        # Detail spans are self-contained closes: no span_open.
        {"kind": "span_close", "i": 3, "ts": 1.1, "name": "clean_trip", "span_id": "d1",
         "parent_id": "s2", "span_kind": "detail", "seconds": 0.1, "trip_id": 4},
        {"kind": "span_close", "i": 4, "ts": 1.2, "name": "clean_trip", "span_id": "d2",
         "parent_id": "s2", "span_kind": "detail", "seconds": 0.2, "trip_id": 5},
        {"kind": "span_close", "i": 5, "ts": 1.3, "name": "clean", "span_id": "s2",
         "seconds": 0.3},
        {"kind": "span_open", "i": 6, "ts": 1.3, "name": "match_chunk", "span_id": "c1",
         "parent_id": "s1", "span_kind": "chunk"},
        {"kind": "span_close", "i": 7, "ts": 1.4, "name": "match_one", "span_id": "d3",
         "parent_id": "c1", "span_kind": "detail", "seconds": 0.1},
        {"kind": "span_close", "i": 8, "ts": 1.4, "name": "match_chunk", "span_id": "c1",
         "seconds": 0.1},
        {"kind": "span_close", "i": 9, "ts": 1.5, "name": "study", "span_id": "s1",
         "seconds": 0.5},
        {"kind": "run_end", "i": 10, "ts": 1.5, "status": "ok", "wall_seconds": 0.5},
    ]


class TestReconstruction:
    def test_forest_shape_and_timings(self):
        roots = reconstruct_spans(_span_events())
        assert [r.name for r in roots] == ["study"]
        study = roots[0]
        assert [c.name for c in study.children] == ["clean", "match_chunk"]
        clean = study.children[0]
        assert [c.name for c in clean.children] == ["clean_trip", "clean_trip"]
        assert clean.children[0].span_kind == "detail"
        assert clean.seconds == 0.3
        assert clean.children[1].seconds == 0.2

    def test_signature_collapses_chunk_spans(self):
        signature = structural_signature(reconstruct_spans(_span_events()))
        assert signature == (
            ("study", (
                ("clean", (("clean_trip", ()), ("clean_trip", ()))),
                ("match_one", ()),  # chunk spliced out, child promoted
            )),
        )

    def test_never_closed_span_survives_with_none_seconds(self):
        events = [e for e in _span_events() if not (
            e["kind"] == "span_close" and e.get("span_id") == "s2"
        )]
        roots = reconstruct_spans(events)
        clean = roots[0].children[0]
        assert clean.name == "clean" and clean.seconds is None

    def test_to_dict_round_trips_through_json(self):
        doc = [r.to_dict() for r in reconstruct_spans(_span_events())]
        assert json.loads(json.dumps(doc)) == doc


class TestLineage:
    EVENTS = [
        {"kind": "lineage", "unit": "trip", "trip_id": 4, "kept": True},
        {"kind": "lineage", "unit": "transition", "transition_index": 4,
         "segment_id": 9, "matched": True},
        {"kind": "note"},
    ]

    def test_all_records(self):
        assert len(lineage_records(self.EVENTS)) == 2

    def test_filter_by_unit(self):
        assert lineage_records(self.EVENTS, unit="trip") == [self.EVENTS[0]]

    def test_id_matches_any_identity_field(self):
        # 4 matches both the trip and the transition-index record.
        assert len(lineage_records(self.EVENTS, unit_id=4)) == 2
        assert lineage_records(self.EVENTS, unit_id=9) == [self.EVENTS[1]]
        assert lineage_records(self.EVENTS, unit_id=99) == []


def test_event_kinds_cover_everything_the_pipeline_emits():
    assert {"run_start", "run_end", "span_open", "span_close", "lineage",
            "quarantine", "retry", "fault_injected", "worker_restart",
            "cache"} <= EVENT_KINDS
