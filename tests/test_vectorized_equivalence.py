"""Scalar vs vectorized pipeline equivalence — the fast path's contract.

Every ``vectorized=True`` code path must produce exactly the scalar
reference results: same segment splits and rule firings, same ordering
choice and repaired sequence, same gate-crossing events, same scored
candidates in the same order, and — end to end — the same study
artefacts.  These tests are what lets the batch kernels default on.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning.ordering import repair_ordering
from repro.cleaning.segmentation import segment_trip
from repro.experiments import OuluStudy, StudyConfig
from repro.matching import IncrementalMatcher
from repro.matching.candidates import (
    CandidateConfig,
    candidates_for_point,
    candidates_for_points,
)
from repro.od.gates import find_crossings
from repro.od.transitions import TransitionExtractor
from repro.parallel import ExecutorConfig, study_gates
from repro.traces import FleetSpec
from repro.traces.model import RoutePoint, Trip


# -- random-trip strategy ----------------------------------------------------

point_st = st.builds(
    RoutePoint,
    point_id=st.integers(min_value=0, max_value=40),
    trip_id=st.just(1),
    lat=st.floats(min_value=64.9, max_value=65.4),
    lon=st.floats(min_value=25.2, max_value=25.9),
    time_s=st.floats(min_value=0.0, max_value=5_000.0),
    speed_kmh=st.floats(min_value=0.0, max_value=120.0),
    fuel_ml=st.floats(min_value=0.0, max_value=10_000.0),
)
trip_st = st.builds(
    lambda pts: Trip(trip_id=1, car_id=2, points=pts),
    st.lists(point_st, max_size=40),
)


class TestSegmentationEquivalence:
    @given(trip=trip_st)
    @settings(max_examples=150, deadline=None)
    def test_same_segments_and_rule_hits(self, trip):
        scalar_segments, scalar_report = segment_trip(trip)
        vec_segments, vec_report = segment_trip(trip, vectorized=True)
        assert scalar_report.rule_hits == vec_report.rule_hits
        assert scalar_report.segments_created == vec_report.segments_created
        assert [(s.segment_id, s.trip_id, s.car_id, s.index) for s in scalar_segments] \
            == [(s.segment_id, s.trip_id, s.car_id, s.index) for s in vec_segments]
        assert [s.points for s in scalar_segments] == [s.points for s in vec_segments]

    @given(trip=trip_st)
    @settings(max_examples=50, deadline=None)
    def test_seeded_distance_cache_matches_scalar_walk(self, trip):
        scalar_segments, __ = segment_trip(trip)
        vec_segments, __ = segment_trip(trip, vectorized=True)
        for s, v in zip(scalar_segments, vec_segments):
            # The vectorized path seeds the memo from its gap arrays; the
            # scalar property walks the points.  Same hops, summed in a
            # different association — equal to float accumulation noise.
            assert abs(s.distance_m - v.distance_m) <= 1e-6 * max(1.0, s.distance_m)


class TestOrderingEquivalence:
    @given(trip=trip_st)
    @settings(max_examples=150, deadline=None)
    def test_same_choice_and_repaired_sequence(self, trip):
        scalar_trip, scalar_report = repair_ordering(trip)
        vec_trip, vec_report = repair_ordering(trip, vectorized=True)
        assert scalar_trip.points == vec_trip.points
        assert scalar_report.chosen == vec_report.chosen
        assert scalar_report.was_consistent == vec_report.was_consistent
        assert abs(scalar_report.distance_by_id_m - vec_report.distance_by_id_m) \
            <= 1e-6 * max(1.0, scalar_report.distance_by_id_m)


class TestGateCrossingEquivalence:
    def test_same_events_on_random_walks(self, city):
        gates = study_gates(city)
        x0, y0, x1, y1 = city.graph.bounds()
        rng = random.Random(99)
        for __ in range(40):
            n = rng.randint(0, 60)
            x, y = rng.uniform(x0, x1), rng.uniform(y0, y1)
            xys, times = [], []
            t = 0.0
            for i in range(n):
                x += rng.gauss(0, 150)
                y += rng.gauss(0, 150)
                t += rng.uniform(1, 30)
                xys.append((x, y))
                times.append(t)
            scalar = find_crossings(xys, times, gates)
            vectorized = find_crossings(xys, times, gates, vectorized=True)
            assert scalar == vectorized

    def test_empty_inputs(self, city):
        gates = study_gates(city)
        assert find_crossings([], [], gates, vectorized=True) == []
        assert find_crossings([(0.0, 0.0)], [0.0], gates, vectorized=True) == []


class TestCandidateEquivalence:
    def test_batch_candidates_bitwise_match_scalar(self, city):
        graph = city.graph
        x0, y0, x1, y1 = graph.bounds()
        rng = random.Random(4)
        config = CandidateConfig()
        xys, movements = [], []
        for __ in range(400):
            xys.append((rng.uniform(x0 - 100, x1 + 100), rng.uniform(y0 - 100, y1 + 100)))
            r = rng.random()
            if r < 0.1:
                movements.append(None)
            elif r < 0.2:
                movements.append((0.0, 0.0))
            else:
                movements.append((rng.gauss(0, 10), rng.gauss(0, 10)))
        batch = candidates_for_points(graph, xys, movements, config)
        assert len(batch) == len(xys)
        for xy, movement, batch_cands in zip(xys, movements, batch):
            scalar_cands = candidates_for_point(graph, xy, movement, config)
            assert [
                (c.edge.edge_id, c.arc_m, c.snapped_xy, c.distance_m, c.score)
                for c in scalar_cands
            ] == [
                (c.edge.edge_id, c.arc_m, c.snapped_xy, c.distance_m, c.score)
                for c in batch_cands
            ]

    def test_ranking_tie_break_is_total_order(self, city):
        # Candidate order must be (-score, edge_id) — deterministic even
        # if two edges tie on score.
        graph = city.graph
        x0, y0, x1, y1 = graph.bounds()
        rng = random.Random(11)
        for __ in range(200):
            xy = (rng.uniform(x0, x1), rng.uniform(y0, y1))
            cands = candidates_for_point(graph, xy, None)
            keys = [(-c.score, c.edge.edge_id) for c in cands]
            assert keys == sorted(keys)

    def test_empty_inputs(self, city):
        assert candidates_for_points(city.graph, [], []) == []


class TestExtractionEquivalence:
    def test_funnel_and_events_match_on_cleaned_segments(self, city, clean_result, to_xy):
        gates = study_gates(city)
        segments = clean_result.segments[:150]
        scalar = TransitionExtractor(
            gates, city.central_area, vectorized=False
        ).extract(segments, to_xy)
        vectorized = TransitionExtractor(
            gates, city.central_area, vectorized=True
        ).extract(segments, to_xy)
        assert scalar.funnel == vectorized.funnel
        assert len(scalar.transitions) == len(vectorized.transitions)
        for s, v in zip(scalar.transitions, vectorized.transitions):
            assert (s.origin, s.destination) == (v.origin, v.destination)
            assert s.origin_event == v.origin_event
            assert s.destination_event == v.destination_event


class TestMatcherEquivalence:
    def test_incremental_matcher_same_routes(self, city, clean_result, to_xy):
        segments = [s for s in clean_result.segments if len(s.points) >= 8][:20]
        scalar_matcher = IncrementalMatcher(city.graph, vectorized=False)
        vec_matcher = IncrementalMatcher(city.graph, vectorized=True)
        assert segments, "fixture produced no matchable segments"
        for seg in segments:
            scalar_route = scalar_matcher.match(seg.points, to_xy, seg.segment_id, seg.car_id)
            vec_route = vec_matcher.match(seg.points, to_xy, seg.segment_id, seg.car_id)
            if scalar_route is None:
                assert vec_route is None
                continue
            assert scalar_route.edge_sequence == vec_route.edge_sequence
            assert [m.edge_id for m in scalar_route.matched] == [
                m.edge_id for m in vec_route.matched
            ]


class TestStudyEquivalence:
    def test_vectorized_study_reproduces_scalar_artefacts(self):
        def run(vectorized: bool):
            config = StudyConfig(
                fleet=FleetSpec(n_days=2, seed=7),
                executor=ExecutorConfig(vectorized=vectorized),
            )
            return OuluStudy(config).run()

        scalar = run(False)
        vectorized = run(True)
        assert [s.segment_id for s in scalar.clean.segments] == [
            s.segment_id for s in vectorized.clean.segments
        ]
        assert scalar.clean.report.segmentation.rule_hits \
            == vectorized.clean.report.segmentation.rule_hits
        assert scalar.funnel == vectorized.funnel
        assert scalar.kept_transitions == vectorized.kept_transitions
        assert sorted(scalar.matched) == sorted(vectorized.matched)
        for index, route in scalar.matched.items():
            assert route.edge_sequence == vectorized.matched[index].edge_sequence
        assert scalar.route_stats == vectorized.route_stats
        assert scalar.cell_features == vectorized.cell_features
