"""Shared fixtures.

Expensive artefacts (city, simulated fleet, full study) are session-scoped
so the suite builds them once; tests must treat them as read-only.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.cleaning import CleaningPipeline
from repro.experiments import OuluStudy, StudyConfig
from repro.roadnet import build_synthetic_oulu
from repro.traces import FleetSpec, TaxiFleetSimulator

#: The chaos suite's fixed seeds.  CI's ``chaos`` job runs the fault
#: tests once per seed via ``REPRO_CHAOS_SEED``; locally the first seed
#: applies.  Nothing in the suite reads the wall clock or the PID —
#: every fault decision flows from this value (see
#: ``tools/lint_nondeterminism.py``).
CHAOS_SEEDS = (101, 202, 303)


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    """Explicit, deterministic seed for the fault-injection tests."""
    return int(os.environ.get("REPRO_CHAOS_SEED", str(CHAOS_SEEDS[0])))


@pytest.fixture(scope="session")
def chaos_out(chaos_seed) -> Path:
    """Stable artefact dir for chaos runs (CI uploads it on failure)."""
    out = Path(__file__).parent / "out" / "chaos" / f"seed_{chaos_seed}"
    out.mkdir(parents=True, exist_ok=True)
    return out


@pytest.fixture(scope="session")
def city():
    """The default synthetic city (deterministic)."""
    return build_synthetic_oulu()


@pytest.fixture(scope="session")
def fleet_and_runs(city):
    """A 12-day simulated fleet with ground-truth runs."""
    simulator = TaxiFleetSimulator(city, FleetSpec(n_days=12, seed=1234))
    return simulator.simulate()


@pytest.fixture(scope="session")
def fleet(fleet_and_runs):
    return fleet_and_runs[0]


@pytest.fixture(scope="session")
def runs(fleet_and_runs):
    return fleet_and_runs[1]


@pytest.fixture(scope="session")
def clean_result(fleet):
    """The cleaned and segmented fleet."""
    return CleaningPipeline().run(fleet)


@pytest.fixture(scope="session")
def study_result():
    """A complete end-to-end study at moderate scale."""
    config = StudyConfig(fleet=FleetSpec(n_days=30, seed=7))
    return OuluStudy(config).run()


@pytest.fixture()
def to_xy(city):
    projector = city.projector

    def convert(p):
        return projector.to_xy(p.lat, p.lon)

    return convert


@pytest.fixture(scope="session")
def stream_case(tmp_path_factory):
    """Replay CSV + batch-study baseline for the streaming suites.

    The batch side is the stream's ground truth: the same CSV is read
    back through ``read_points_csv`` and injected into ``OuluStudy.run``,
    and the resulting fingerprint (reader quarantine prepended, matching
    the stream ledger's category order) is what every replay must equal.
    """
    from repro.faults import Quarantine
    from repro.stream import study_fingerprint
    from repro.traces.io import read_points_csv, write_points_csv

    config = StudyConfig(fleet=FleetSpec(n_days=4, seed=11))
    stream_city = build_synthetic_oulu(config.city)
    stream_fleet, __ = TaxiFleetSimulator(stream_city, config.fleet).simulate()
    path = tmp_path_factory.mktemp("stream") / "points.csv"
    write_points_csv(stream_fleet, path)
    quarantine = Quarantine()
    batch = OuluStudy(config).run(
        fleet=read_points_csv(path, quarantine=quarantine)
    )
    return config, path, study_fingerprint(batch, quarantine.errors)
