"""Shared fixtures.

Expensive artefacts (city, simulated fleet, full study) are session-scoped
so the suite builds them once; tests must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.cleaning import CleaningPipeline
from repro.experiments import OuluStudy, StudyConfig
from repro.roadnet import build_synthetic_oulu
from repro.traces import FleetSpec, TaxiFleetSimulator


@pytest.fixture(scope="session")
def city():
    """The default synthetic city (deterministic)."""
    return build_synthetic_oulu()


@pytest.fixture(scope="session")
def fleet_and_runs(city):
    """A 12-day simulated fleet with ground-truth runs."""
    simulator = TaxiFleetSimulator(city, FleetSpec(n_days=12, seed=1234))
    return simulator.simulate()


@pytest.fixture(scope="session")
def fleet(fleet_and_runs):
    return fleet_and_runs[0]


@pytest.fixture(scope="session")
def runs(fleet_and_runs):
    return fleet_and_runs[1]


@pytest.fixture(scope="session")
def clean_result(fleet):
    """The cleaned and segmented fleet."""
    return CleaningPipeline().run(fleet)


@pytest.fixture(scope="session")
def study_result():
    """A complete end-to-end study at moderate scale."""
    config = StudyConfig(fleet=FleetSpec(n_days=30, seed=7))
    return OuluStudy(config).run()


@pytest.fixture()
def to_xy(city):
    projector = city.projector

    def convert(p):
        return projector.to_xy(p.lat, p.lon)

    return convert
