"""Tests for repro.analysis.trafficstate."""

import pytest

from repro.analysis.trafficstate import TrafficStateEstimator


class TestValidation:
    def test_bin_hours_must_divide_24(self, city):
        with pytest.raises(ValueError):
            TrafficStateEstimator(city.graph, bin_hours=5)
        with pytest.raises(ValueError):
            TrafficStateEstimator(city.graph, bin_hours=0)


class TestEstimation:
    @pytest.fixture()
    def estimator(self, study_result):
        est = TrafficStateEstimator(study_result.city.graph, bin_hours=24)
        for __, route in study_result.kept():
            est.add_route(route)
        return est

    def test_observations_counted(self, estimator, study_result):
        total = sum(len(r.matched) for __, r in study_result.kept())
        assert sum(s.n_observations for s in estimator.states(1)) == total

    def test_unobserved_edge_is_none(self, estimator, study_result):
        observed = {s.edge_id for s in estimator.states(1)}
        all_edges = {e.edge_id for e in study_result.city.graph.edges()}
        unobserved = all_edges - observed
        assert unobserved, "transitions cannot cover every edge"
        assert estimator.edge_state(next(iter(unobserved))) is None

    def test_coverage_fraction(self, estimator):
        cov = estimator.coverage()
        assert 0.05 < cov < 1.0

    def test_mean_speeds_plausible(self, estimator):
        for state in estimator.states(min_observations=5):
            assert 0.0 < state.mean_speed_kmh < 90.0
            assert state.free_flow_kmh > 0.0

    def test_congestion_ratio_below_one_on_average(self, estimator):
        """Probes drive at/below the limit on average (lights, hotspot)."""
        states = estimator.states(min_observations=5)
        assert states
        mean_ratio = sum(s.congestion_ratio for s in states) / len(states)
        assert mean_ratio < 1.05

    def test_congested_edges_sorted(self, estimator):
        congested = estimator.congested_edges(threshold=0.9, min_observations=3)
        ratios = [s.congestion_ratio for s in congested]
        assert ratios == sorted(ratios)
        assert all(r < 0.9 for r in ratios)

    def test_lit_edges_more_congested_than_unlit(self, study_result, estimator):
        """Edges with traffic lights show lower congestion ratios."""
        from repro.roadnet.elements import PointObjectKind

        city = study_result.city
        lights = city.map_db.point_objects(PointObjectKind.TRAFFIC_LIGHT)
        lit_edges = set()
        for obj in lights:
            for edge in city.graph.edges_near(obj.position, 25.0):
                lit_edges.add(edge.edge_id)
        lit, unlit = [], []
        for state in estimator.states(min_observations=5):
            (lit if state.edge_id in lit_edges else unlit).append(
                state.congestion_ratio
            )
        if lit and unlit:
            assert sum(lit) / len(lit) < sum(unlit) / len(unlit)


class TestTimeBins:
    def test_binning(self, study_result):
        est = TrafficStateEstimator(study_result.city.graph, bin_hours=6)
        for __, route in study_result.kept():
            est.add_route(route)
        bins = {s.hour_bin for s in est.states(1)}
        assert bins <= {0, 1, 2, 3}
        assert bins  # taxis drive during the day: some bin is populated
