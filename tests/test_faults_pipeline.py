"""Chaos tests at the cleaning-pipeline level.

Property under test (ISSUE acceptance): under a seeded fault plan the
surviving trips' artefacts are **bitwise identical** to a fault-free run
over that same surviving subset, and quarantine accounting matches the
injections exactly.
"""

from __future__ import annotations

import pytest

from repro.cleaning import CleaningPipeline
from repro.faults import (
    FaultPlan,
    InjectedFault,
    Quarantine,
    RobustnessConfig,
    inject_faults,
)
from repro.obs import MetricsRegistry, use_registry
from repro.traces.model import FleetData

#: Retry config with no real sleeping — chaos tests never wait on clocks.
FAST_RETRY = RobustnessConfig(retries=2, backoff_base_s=0.0)


def test_clean_faults_survivors_bitwise_identical(fleet, chaos_seed):
    plan = FaultPlan(seed=chaos_seed, clean_error_rate=0.1)
    doomed = {t.trip_id for t in fleet.trips if plan.picks("clean", t.trip_id)}
    assert doomed, "seeded plan must hit at least one trip"
    assert len(doomed) < len(fleet.trips), "some trips must survive"

    quarantine = Quarantine()
    pipeline = CleaningPipeline(robustness=FAST_RETRY)
    with inject_faults(plan):
        degraded = pipeline.run(fleet, quarantine=quarantine)

    # Accounting: exactly the picked trips were quarantined, each with
    # the injection tag, and the report mirrors the quarantine.
    assert {e.trip_id for e in quarantine.errors} == doomed
    assert all(e.fault_tag == "injected:clean" for e in quarantine.errors)
    assert all(e.stage == "clean" for e in quarantine.errors)
    assert degraded.report.errors == quarantine.errors
    assert degraded.report.trips_quarantined == len(doomed)

    # Bitwise identity: a fault-free run over the surviving subset.
    survivors = FleetData(
        trips=[t for t in fleet.trips if t.trip_id not in doomed]
    )
    reference = CleaningPipeline().run(survivors)
    assert degraded.segments == reference.segments
    assert degraded.report.segments_out == reference.report.segments_out
    assert degraded.report.points_out == reference.report.points_out


def test_transient_clean_faults_recover_via_retry(fleet, chaos_seed):
    plan = FaultPlan(
        seed=chaos_seed, clean_error_rate=0.3, transient_rate=1.0
    )
    picked = sum(1 for t in fleet.trips if plan.picks("clean", t.trip_id))
    assert picked > 0

    quarantine = Quarantine()
    registry = MetricsRegistry()
    with use_registry(registry), inject_faults(plan):
        degraded = CleaningPipeline(robustness=FAST_RETRY).run(
            fleet, quarantine=quarantine
        )
    reference = CleaningPipeline().run(fleet)

    # Every fault was transient: retries absorb all of them, nothing is
    # quarantined, and the output is the fault-free artefact exactly.
    assert len(quarantine) == 0
    assert degraded.segments == reference.segments
    assert registry.counter("faults.injected.clean").value == picked
    assert registry.counter("faults.retries").value == picked
    assert registry.counter("faults.retry_success").value == picked


def test_without_robustness_faults_fail_fast(fleet, chaos_seed):
    plan = FaultPlan(seed=chaos_seed, clean_error_rate=1.0)
    with inject_faults(plan):
        with pytest.raises(InjectedFault):
            CleaningPipeline().run(fleet)


def test_fault_free_robust_run_equals_legacy(fleet):
    robust = CleaningPipeline(robustness=RobustnessConfig()).run(fleet)
    legacy = CleaningPipeline().run(fleet)
    assert robust.segments == legacy.segments
    assert robust.report.errors == []
