"""Tests for repro.matching.gapfill on a controlled grid graph."""

import pytest

from repro.geo.geometry import LineString
from repro.matching.gapfill import connect_matches
from repro.matching.types import MatchedPoint, MatchedRoute
from repro.roadnet.graph import ElementSpan, RoadEdge, RoadGraph, RoadNode
from repro.traces.model import RoutePoint


def build_line_graph(n=5, spacing=100.0):
    """A simple chain: nodes 1..n, edges i connecting i and i+1."""
    g = RoadGraph()
    for i in range(1, n + 1):
        g.add_node(RoadNode(i, ((i - 1) * spacing, 0.0)))
    for i in range(1, n):
        geom = LineString([((i - 1) * spacing, 0.0), (i * spacing, 0.0)])
        g.add_edge(RoadEdge(i, i, i + 1, geom,
                            (ElementSpan(i, 0.0, geom.length, False, 40.0),)))
    return g


def mp(point_id, edge_id, arc, t=None):
    p = RoutePoint(point_id=point_id, trip_id=1, lat=0.0, lon=0.0,
                   time_s=float(t if t is not None else point_id))
    return MatchedPoint(point=p, edge_id=edge_id, arc_m=arc,
                        snapped_xy=(0.0, 0.0), match_distance_m=0.0)


class TestConnectMatches:
    def test_empty(self):
        g = build_line_graph()
        route = MatchedRoute(segment_id=1, car_id=1, matched=[])
        connect_matches(g, route)
        assert route.edge_sequence == []

    def test_single_edge_forward(self):
        g = build_line_graph()
        route = MatchedRoute(segment_id=1, car_id=1,
                             matched=[mp(1, 2, 10.0), mp(2, 2, 90.0)])
        connect_matches(g, route)
        assert route.edge_sequence == [(2, 2)]

    def test_single_edge_backward(self):
        g = build_line_graph()
        route = MatchedRoute(segment_id=1, car_id=1,
                             matched=[mp(1, 2, 90.0), mp(2, 2, 10.0)])
        connect_matches(g, route)
        assert route.edge_sequence == [(2, 3)]

    def test_adjacent_edges(self):
        g = build_line_graph()
        route = MatchedRoute(segment_id=1, car_id=1,
                             matched=[mp(1, 1, 50.0), mp(2, 2, 50.0)])
        connect_matches(g, route)
        assert route.edge_sequence == [(1, 1), (2, 2)]
        assert route.gaps_filled == 0

    def test_gap_filled_with_dijkstra(self):
        g = build_line_graph()
        route = MatchedRoute(segment_id=1, car_id=1,
                             matched=[mp(1, 1, 50.0), mp(2, 4, 50.0)])
        connect_matches(g, route)
        assert route.edge_ids == [1, 2, 3, 4]
        assert route.gaps_filled == 1

    def test_directions_consistent_along_chain(self):
        g = build_line_graph()
        route = MatchedRoute(segment_id=1, car_id=1,
                             matched=[mp(1, 1, 50.0), mp(2, 4, 50.0)])
        connect_matches(g, route)
        # Every traversal starts at the node the previous one ended on.
        prev_end = None
        for edge_id, from_node in route.edge_sequence:
            edge = g.edge(edge_id)
            if prev_end is not None:
                assert from_node == prev_end
            prev_end = edge.other(from_node)

    def test_reverse_drive_gap(self):
        g = build_line_graph()
        route = MatchedRoute(segment_id=1, car_id=1,
                             matched=[mp(1, 4, 50.0), mp(2, 1, 50.0)])
        connect_matches(g, route)
        assert route.edge_ids == [4, 3, 2, 1]
        assert route.edge_sequence[0] == (4, 5)

    def test_oneway_respected_in_gap(self):
        g = RoadGraph()
        # Triangle where direct edge 1<-2 is one-way (cannot go 1->2).
        for i, pos in enumerate([(0, 0), (100, 0), (50, 80)], start=1):
            g.add_node(RoadNode(i, tuple(map(float, pos))))
        geom12 = LineString([(0, 0), (100, 0)])
        g.add_edge(RoadEdge(1, 1, 2, geom12,
                            (ElementSpan(1, 0.0, geom12.length, False, 40.0),),
                            forward_allowed=False, backward_allowed=True))
        geom13 = LineString([(0, 0), (50, 80)])
        g.add_edge(RoadEdge(2, 1, 3, geom13,
                            (ElementSpan(2, 0.0, geom13.length, False, 40.0),)))
        geom32 = LineString([(50, 80), (100, 0)])
        g.add_edge(RoadEdge(3, 3, 2, geom32,
                            (ElementSpan(3, 0.0, geom32.length, False, 40.0),)))
        # Matched on edge 2 heading up, then on edge 3: no gap needed; but
        # matched first on edge 2 then edge 1 must honour edge 1's one-way.
        route = MatchedRoute(segment_id=1, car_id=1,
                             matched=[mp(1, 2, 10.0), mp(2, 1, 50.0)])
        connect_matches(g, route)
        # Edge 1 may only be traversed from node 2.
        traversal = dict(route.edge_sequence)
        assert traversal[1] == 2

    def test_unroutable_gap_does_not_crash(self):
        g = build_line_graph()
        g.add_node(RoadNode(99, (10_000.0, 10_000.0)))
        g.add_node(RoadNode(100, (10_100.0, 10_000.0)))
        geom = LineString([(10_000.0, 10_000.0), (10_100.0, 10_000.0)])
        g.add_edge(RoadEdge(99, 99, 100, geom,
                            (ElementSpan(99, 0.0, geom.length, False, 40.0),)))
        route = MatchedRoute(segment_id=1, car_id=1,
                             matched=[mp(1, 1, 50.0), mp(2, 99, 50.0)])
        connect_matches(g, route, max_cost_m=500.0)
        assert route.edge_ids[0] == 1
        assert 99 in route.edge_ids


class TestMatchedRouteProperties:
    def test_length_trims_partial_ends(self):
        g = build_line_graph()
        route = MatchedRoute(segment_id=1, car_id=1,
                             matched=[mp(1, 1, 50.0), mp(2, 4, 50.0)])
        connect_matches(g, route)
        # Full edges 2 and 3 plus half of edge 1 and half of edge 4.
        assert route.length_m(g) == pytest.approx(300.0)

    def test_element_ids_ordered(self):
        g = build_line_graph()
        route = MatchedRoute(segment_id=1, car_id=1,
                             matched=[mp(1, 1, 50.0), mp(2, 3, 50.0)])
        connect_matches(g, route)
        assert route.element_ids(g) == [1, 2, 3]

    def test_interior_nodes(self):
        g = build_line_graph()
        route = MatchedRoute(segment_id=1, car_id=1,
                             matched=[mp(1, 1, 50.0), mp(2, 4, 50.0)])
        connect_matches(g, route)
        assert route.interior_nodes() == [2, 3, 4]
