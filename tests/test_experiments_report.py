"""Tests for repro.experiments.report."""

from repro.experiments.report import study_report


class TestStudyReport:
    def test_contains_every_section(self, study_result):
        text = study_report(study_result)
        for heading in (
            "# Taxi-trace study report",
            "## Data preparation",
            "Segmentation rules (Table 2)",
            "Map-matching funnel (Table 3)",
            "Route statistics per direction (Table 4)",
            "Lights/bus stops vs cell speed (Table 5)",
            "Mixed model (Figs. 7-9)",
            "Low-speed share by temperature class (Fig. 10)",
            "Pick-up/drop-off hotspots",
            "OD flows",
            "Route variants per direction",
            "Driving coach",
        ):
            assert heading in text, f"missing section: {heading}"

    def test_fleet_facts_accurate(self, study_result):
        text = study_report(study_result)
        assert f"{len(study_result.fleet)} raw trips" in text
        assert f"{study_result.fleet.point_count} route points" in text

    def test_markdown_code_fences_balanced(self, study_result):
        text = study_report(study_result)
        assert text.count("```") % 2 == 0

    def test_deterministic(self, study_result):
        assert study_report(study_result) == study_report(study_result)


class TestDiurnalFactor:
    def test_rush_hour_slower_than_night(self):
        from datetime import datetime, timezone

        from repro.traces.simulator import diurnal_speed_factor

        def at(hour):
            t = datetime(2013, 3, 5, hour, 30, tzinfo=timezone.utc).timestamp()
            return diurnal_speed_factor(t)

        assert at(8) < at(12) < at(23)
        assert at(16) < 1.0
        assert at(3) > 1.0

    def test_traffic_state_sees_diurnal_effect(self, city):
        """Hour-binned edge speeds reflect the rush-hour factor."""
        from repro.analysis.trafficstate import TrafficStateEstimator
        from repro.cleaning import CleaningPipeline
        from repro.matching import IncrementalMatcher
        from repro.traces import FleetSpec, TaxiFleetSimulator

        fleet, __ = TaxiFleetSimulator(city, FleetSpec(n_days=6, seed=61)).simulate()
        segments = CleaningPipeline().run(fleet).segments
        matcher = IncrementalMatcher(city.graph)
        estimator = TrafficStateEstimator(city.graph, bin_hours=6)
        for seg in segments[:150]:
            route = matcher.match(
                seg.points, lambda p: city.projector.to_xy(p.lat, p.lon),
                seg.segment_id, seg.car_id,
            )
            if route is not None:
                estimator.add_route(route)
        # Several time bins are populated (shifts span the day).
        bins = {s.hour_bin for s in estimator.states(1)}
        assert len(bins) >= 2
