"""Tests for repro.matching.evaluate."""


from repro.matching import HmmMatcher, IncrementalMatcher, evaluate_matcher
from repro.matching.evaluate import edge_jaccard, truth_for_segment
from repro.matching.types import MatchedRoute


class TestEvaluateMatcher:
    def test_incremental_evaluation(self, city, fleet_and_runs, clean_result):
        __, runs = fleet_and_runs
        projector = city.projector
        evaluation = evaluate_matcher(
            IncrementalMatcher(city.graph),
            clean_result.segments[:40],
            runs,
            city.graph,
            lambda p: projector.to_xy(p.lat, p.lon),
        )
        assert evaluation.n_segments == 40
        assert evaluation.match_rate > 0.9
        assert evaluation.n_evaluated > 20
        assert evaluation.mean_jaccard > 0.7
        assert evaluation.mean_length_error < 0.5
        assert 0.5 < evaluation.mean_match_distance_m < 10.0

    def test_incremental_beats_or_ties_hmm_speedwise_scores(self, city,
                                                            fleet_and_runs,
                                                            clean_result):
        __, runs = fleet_and_runs
        projector = city.projector
        to_xy = lambda p: projector.to_xy(p.lat, p.lon)
        segments = clean_result.segments[:15]
        inc = evaluate_matcher(IncrementalMatcher(city.graph), segments, runs,
                               city.graph, to_xy)
        hmm = evaluate_matcher(HmmMatcher(city.graph), segments, runs,
                               city.graph, to_xy)
        assert inc.match_rate == hmm.match_rate == 1.0
        assert abs(inc.mean_jaccard - hmm.mean_jaccard) < 0.35

    def test_empty_segments(self, city, runs):
        evaluation = evaluate_matcher(
            IncrementalMatcher(city.graph), [], runs, city.graph,
            lambda p: (0.0, 0.0),
        )
        assert evaluation.n_segments == 0
        assert evaluation.match_rate == 0.0


class TestHelpers:
    def test_edge_jaccard_empty_route(self, runs):
        route = MatchedRoute(segment_id=1, car_id=1)
        run = runs[0]
        expected = 0.0 if run.edge_ids else 1.0
        assert edge_jaccard(route, run) == expected

    def test_truth_requires_same_car(self, clean_result, runs):
        seg = clean_result.segments[0]
        truth = truth_for_segment(runs, seg)
        if truth is not None:
            assert truth.car_id == seg.car_id
