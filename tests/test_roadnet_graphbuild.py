"""Tests for repro.roadnet.graphbuild — the paper's map preparation."""

import pytest

from repro.geo.geometry import LineString
from repro.roadnet.elements import FlowDirection, TrafficElement
from repro.roadnet.graphbuild import build_road_graph, classify_endpoints


def element(eid, coords, flow=FlowDirection.BOTH, limit=40.0):
    return TrafficElement(
        element_id=eid, geometry=LineString(coords), flow=flow, speed_limit_kmh=limit
    )


def cross_elements():
    """A + junction at (0,0) with four 100 m arms, each arm split in two."""
    arms = [
        [(0, 0), (50, 0), (100, 0)],
        [(0, 0), (-50, 0), (-100, 0)],
        [(0, 0), (0, 50), (0, 100)],
        [(0, 0), (0, -50), (0, -100)],
    ]
    elements = []
    eid = 1
    for arm in arms:
        for a, b in zip(arm, arm[1:]):
            elements.append(element(eid, [a, b]))
            eid += 1
    return elements


class TestClassifyEndpoints:
    def test_junction_and_intermediate_and_deadend(self):
        table = classify_endpoints(cross_elements())
        degrees = {info.degree for info in table.values()}
        centre = next(i for i in table.values() if i.position == (0.0, 0.0))
        assert centre.degree == 4
        assert centre.is_junction
        mid = next(i for i in table.values() if i.position == (50.0, 0.0))
        assert mid.degree == 2
        assert not mid.is_junction
        tip = next(i for i in table.values() if i.position == (100.0, 0.0))
        assert tip.degree == 1
        assert tip.is_junction  # dead ends are graph vertices

    def test_tolerates_tiny_coordinate_jitter(self):
        a = element(1, [(0, 0), (100, 0)])
        b = element(2, [(100.0 + 1e-4, 0), (200, 0)])
        table = classify_endpoints([a, b])
        shared = [i for i in table.values() if i.degree == 2]
        assert len(shared) == 1


class TestBuildRoadGraph:
    def test_cross_becomes_four_edges(self):
        graph, pairs = build_road_graph(cross_elements())
        # One centre junction + four dead ends; four merged edges.
        assert graph.node_count == 5
        assert graph.edge_count == 4
        assert len(pairs) == 4
        # Every edge merged exactly two elements.
        assert all(len(p.element_ids) == 2 for p in pairs)

    def test_every_element_in_exactly_one_edge(self):
        elements = cross_elements()
        graph, pairs = build_road_graph(elements)
        used = [eid for p in pairs for eid in p.element_ids]
        assert sorted(used) == [e.element_id for e in elements]

    def test_duplicate_element_ids_rejected(self):
        e = element(1, [(0, 0), (10, 0)])
        with pytest.raises(ValueError):
            build_road_graph([e, e])

    def test_merged_geometry_length(self):
        graph, __ = build_road_graph(cross_elements())
        for edge in graph.edges():
            assert edge.length == pytest.approx(100.0)

    def test_digitization_reversal_handled(self):
        # Second element digitized against the walk direction.
        a = element(1, [(0, 0), (100, 0)])
        b = element(2, [(200, 0), (100, 0)])       # reversed digitization
        c = element(3, [(0, 100), (0, 0)])         # anchor junction at origin
        d = element(4, [(0, 0), (0, -100)])
        graph, pairs = build_road_graph([a, b, c, d])
        long_edge = next(p for p in pairs if len(p.element_ids) == 2)
        assert set(long_edge.element_ids) == {1, 2}
        edge = next(e for e in graph.edges() if set(e.element_ids) == {1, 2})
        assert edge.length == pytest.approx(200.0)
        # The reversed element's span knows it was flipped.
        spans = {s.element_id: s for s in edge.spans}
        assert spans[2].reversed_ != spans[1].reversed_

    def test_oneway_chain_direction(self):
        # Two forward-only elements forming one chain: edge is one-way.
        a = element(1, [(0, 0), (100, 0)], flow=FlowDirection.FORWARD)
        b = element(2, [(100, 0), (200, 0)], flow=FlowDirection.FORWARD)
        anchor1 = element(3, [(0, 0), (0, 100)])
        anchor2 = element(4, [(0, 0), (0, -100)])
        graph, __ = build_road_graph([a, b, anchor1, anchor2])
        edge = next(e for e in graph.edges() if set(e.element_ids) == {1, 2})
        u_pos = graph.node(edge.u).position
        # Orientation depends on walk direction; exactly one way is allowed.
        assert edge.forward_allowed != edge.backward_allowed
        if u_pos == (0.0, 0.0):
            assert edge.forward_allowed
        else:
            assert edge.backward_allowed

    def test_oneway_with_reversed_digitization(self):
        # Forward-only element digitized backwards within the chain: the
        # merged edge must still allow exactly the legal direction.
        a = element(1, [(0, 0), (100, 0)], flow=FlowDirection.FORWARD)
        b = element(2, [(200, 0), (100, 0)], flow=FlowDirection.BACKWARD)
        anchor1 = element(3, [(0, 0), (0, 100)])
        anchor2 = element(4, [(0, 0), (0, -100)])
        graph, __ = build_road_graph([a, b, anchor1, anchor2])
        edge = next(e for e in graph.edges() if set(e.element_ids) == {1, 2})
        assert edge.forward_allowed != edge.backward_allowed

    def test_isolated_cycle_gets_synthetic_junction(self):
        square = [
            element(1, [(0, 0), (10, 0)]),
            element(2, [(10, 0), (10, 10)]),
            element(3, [(10, 10), (0, 10)]),
            element(4, [(0, 10), (0, 0)]),
        ]
        graph, pairs = build_road_graph(square)
        assert graph.edge_count == 1
        edge = graph.edges()[0]
        assert edge.u == edge.v
        assert len(edge.element_ids) == 4
        assert edge.length == pytest.approx(40.0)

    def test_junction_pair_table_structure(self):
        __, pairs = build_road_graph(cross_elements())
        for pair in pairs:
            assert isinstance(pair.element_ids, tuple)
            assert len(pair.junction1) == 2
            assert len(pair.junction2) == 2

    def test_travel_time_uses_per_element_limits(self):
        a = element(1, [(0, 0), (100, 0)], limit=36.0)   # 10 m/s -> 10 s
        b = element(2, [(100, 0), (200, 0)], limit=72.0)  # 20 m/s -> 5 s
        anchor1 = element(3, [(0, 0), (0, 100)])
        anchor2 = element(4, [(0, 0), (0, -100)])
        graph, __ = build_road_graph([a, b, anchor1, anchor2])
        edge = next(e for e in graph.edges() if set(e.element_ids) == {1, 2})
        assert edge.travel_time_s == pytest.approx(15.0)
