"""Tests for tools/lint_batch_routing.py — the per-pair routing lint."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from lint_batch_routing import (  # noqa: E402
    DIJKSTRA_RE,
    HMM_FILE,
    find_offenders,
    main,
)


class TestFindOffenders:
    def test_flags_unmarked_call(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "def f(graph, pairs, cache):\n"
            "    return [cached_shortest_path(graph, s, t, cache=cache)\n"
            "            for s, t in pairs]\n"
        )
        offenders = find_offenders(tmp_path)
        assert len(offenders) == 1
        assert offenders[0][1] == 2

    def test_marker_suppresses(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "r = cached_shortest_path(g, s, t)  # batch-ok: single query\n"
        )
        assert find_offenders(tmp_path) == []

    def test_ignores_imports_and_references(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "from repro.roadnet.routing import cached_shortest_path\n"
            '"""See :func:`cached_shortest_path`."""\n'
            "# the loop calls cached_shortest_path per pair\n"
        )
        assert find_offenders(tmp_path) == []

    def test_recurses_and_collects_multiple_roots(self, tmp_path):
        a = tmp_path / "a" / "sub"
        b = tmp_path / "b"
        a.mkdir(parents=True)
        b.mkdir()
        (a / "one.py").write_text("cached_shortest_path(g, 1, 2)\n")
        (b / "two.py").write_text("x = cached_shortest_path(g, 3, 4)\n")
        assert len(find_offenders(tmp_path / "a", b)) == 2

    def test_accepts_single_file_root(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("cached_shortest_path(g, 1, 2)\n")
        assert len(find_offenders(bad)) == 1


class TestDijkstraRule:
    def test_flags_unmarked_dijkstra_call(self, tmp_path):
        mod = tmp_path / "hmm.py"
        mod.write_text("dist = dijkstra(graph, source, max_cost=cap)\n")
        assert len(find_offenders(mod, pattern=DIJKSTRA_RE)) == 1

    def test_marker_suppresses(self, tmp_path):
        mod = tmp_path / "hmm.py"
        mod.write_text(
            "dist = dijkstra(g, s)  # batch-ok: scalar reference path\n"
        )
        assert find_offenders(mod, pattern=DIJKSTRA_RE) == []

    def test_multi_target_and_bidirectional_not_flagged(self, tmp_path):
        mod = tmp_path / "hmm.py"
        mod.write_text(
            "labels, settled = multi_target_dijkstra(g, s, targets)\n"
            "cost = bidirectional_dijkstra(g, s, t)\n"
            "from repro.roadnet.routing import dijkstra\n"
        )
        assert find_offenders(mod, pattern=DIJKSTRA_RE) == []

    def test_repo_hmm_module_is_clean(self):
        assert find_offenders(HMM_FILE, pattern=DIJKSTRA_RE) == []


class TestMain:
    def test_repo_batched_packages_are_clean(self, capsys):
        assert main([]) == 0
        assert "OK" in capsys.readouterr().out

    def test_offending_dir_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("cached_shortest_path(g, 1, 2)\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:1" in out
        assert "batch-ok" in out
