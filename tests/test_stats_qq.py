"""Tests for repro.stats.qq against SciPy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.stats.qq import normal_qq, normal_quantile, qq_correlation


class TestNormalQuantile:
    def test_median(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_symmetry(self):
        assert normal_quantile(0.2) == pytest.approx(-normal_quantile(0.8), abs=1e-12)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)

    @given(p=st.floats(min_value=1e-10, max_value=1.0 - 1e-10))
    @settings(max_examples=100, deadline=None)
    def test_matches_scipy(self, p):
        assert normal_quantile(p) == pytest.approx(
            float(scipy_stats.norm.ppf(p)), rel=1e-10, abs=1e-10
        )

    def test_tails(self):
        assert normal_quantile(1e-9) == pytest.approx(
            float(scipy_stats.norm.ppf(1e-9)), rel=1e-9
        )


class TestNormalQq:
    def test_empty(self):
        assert normal_qq([]) == []

    def test_pairs_sorted(self):
        pairs = normal_qq([3.0, 1.0, 2.0])
        assert [v for __, v in pairs] == [1.0, 2.0, 3.0]
        theo = [t for t, __ in pairs]
        assert theo == sorted(theo)
        assert theo[0] == pytest.approx(-theo[-1])

    def test_gaussian_sample_lies_on_line(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 2.0, 500)
        pairs = normal_qq(sample)
        slope, intercept = np.polyfit([t for t, __ in pairs], [v for __, v in pairs], 1)
        assert slope == pytest.approx(2.0, rel=0.1)
        assert intercept == pytest.approx(10.0, abs=0.3)


class TestQqCorrelation:
    def test_gaussian_near_one(self):
        rng = np.random.default_rng(1)
        assert qq_correlation(rng.normal(0, 1, 400)) > 0.995

    def test_heavy_tailed_lower(self):
        rng = np.random.default_rng(2)
        gauss = qq_correlation(rng.normal(0, 1, 400))
        cauchy = qq_correlation(rng.standard_cauchy(400))
        assert cauchy < gauss

    def test_tiny_sample(self):
        assert qq_correlation([1.0, 2.0]) == 1.0
