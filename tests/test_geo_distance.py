"""Tests for repro.geo.distance."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import (
    EARTH_RADIUS_M,
    bearing_deg,
    destination_point,
    equirectangular_m,
    haversine_m,
)

OULU = (65.0121, 25.4651)
HELSINKI = (60.1699, 24.9384)

lat_st = st.floats(min_value=-85.0, max_value=85.0)
lon_st = st.floats(min_value=-180.0, max_value=180.0)


class TestHaversine:
    def test_zero_distance_for_identical_points(self):
        assert haversine_m(*OULU, *OULU) == 0.0

    def test_known_oulu_helsinki_distance(self):
        # Great-circle Oulu-Helsinki is roughly 540 km.
        d = haversine_m(*OULU, *HELSINKI)
        assert 530_000 < d < 550_000

    def test_one_degree_latitude_is_about_111_km(self):
        d = haversine_m(65.0, 25.0, 66.0, 25.0)
        assert abs(d - 111_195) < 300

    def test_symmetry(self):
        d1 = haversine_m(*OULU, *HELSINKI)
        d2 = haversine_m(*HELSINKI, *OULU)
        assert d1 == pytest.approx(d2)

    def test_antipodal_is_half_circumference(self):
        d = haversine_m(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-9)

    @given(lat=lat_st, lon=lon_st)
    @settings(max_examples=50, deadline=None)
    def test_non_negative(self, lat, lon):
        assert haversine_m(lat, lon, 65.0, 25.0) >= 0.0


class TestEquirectangular:
    def test_matches_haversine_at_city_scale(self):
        lat2, lon2 = 65.03, 25.50
        exact = haversine_m(*OULU, lat2, lon2)
        approx = equirectangular_m(*OULU, lat2, lon2)
        assert approx == pytest.approx(exact, rel=1e-3)

    def test_zero_for_identical(self):
        assert equirectangular_m(*OULU, *OULU) == 0.0

    @given(
        dlat=st.floats(min_value=-0.05, max_value=0.05),
        dlon=st.floats(min_value=-0.05, max_value=0.05),
    )
    @settings(max_examples=50, deadline=None)
    def test_relative_error_small_within_10km(self, dlat, dlon):
        lat2 = OULU[0] + dlat
        lon2 = OULU[1] + dlon
        exact = haversine_m(*OULU, lat2, lon2)
        approx = equirectangular_m(*OULU, lat2, lon2)
        assert abs(approx - exact) <= max(1.0, exact * 0.002)


class TestBearing:
    def test_due_north(self):
        assert bearing_deg(65.0, 25.0, 66.0, 25.0) == pytest.approx(0.0, abs=1e-9)

    def test_due_south(self):
        assert bearing_deg(66.0, 25.0, 65.0, 25.0) == pytest.approx(180.0, abs=1e-9)

    def test_due_east_at_equator(self):
        assert bearing_deg(0.0, 0.0, 0.0, 1.0) == pytest.approx(90.0, abs=1e-9)

    def test_range(self):
        b = bearing_deg(*OULU, *HELSINKI)
        assert 0.0 <= b < 360.0


class TestDestinationPoint:
    def test_north_increases_latitude(self):
        lat, lon = destination_point(65.0, 25.0, 0.0, 1000.0)
        assert lat > 65.0
        assert lon == pytest.approx(25.0, abs=1e-9)

    def test_roundtrip_distance(self):
        lat, lon = destination_point(*OULU, 47.0, 5000.0)
        assert haversine_m(*OULU, lat, lon) == pytest.approx(5000.0, rel=1e-9)

    @given(
        bearing=st.floats(min_value=0.0, max_value=360.0),
        dist=st.floats(min_value=1.0, max_value=50_000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_distance_preserved(self, bearing, dist):
        lat, lon = destination_point(*OULU, bearing, dist)
        assert haversine_m(*OULU, lat, lon) == pytest.approx(dist, rel=1e-6)

    def test_longitude_normalised(self):
        __, lon = destination_point(0.0, 179.9, 90.0, 50_000.0)
        assert -180.0 <= lon <= 180.0
