"""Tests for repro.analysis.ecodriving."""

import pytest

from repro.analysis.ecodriving import (
    DrivingCoach,
    eco_route_comparison,
    estimate_route_fuel,
)


class TestRouteFuel:
    def test_estimate_over_known_route(self, city):
        n1 = city.graph.nearest_node((0.0, 2000.0))
        n2 = city.graph.nearest_node((600.0, -1800.0))
        from repro.roadnet.routing import shortest_path

        path = shortest_path(city.graph, n1.node_id, n2.node_id, weight="time")
        est = estimate_route_fuel(city.graph, city.map_db, path.edges, "test")
        assert est.distance_m > 2000.0
        assert est.expected_time_s > 100.0
        assert est.expected_fuel_ml > 100.0
        assert 50.0 < est.fuel_per_km < 300.0

    def test_lights_add_fuel(self, city):
        """A route through the lit core burns more per km than the bypass."""
        from repro.roadnet.routing import shortest_path

        n1 = city.graph.nearest_node((0.0, 1000.0))
        n2 = city.graph.nearest_node((0.0, -1000.0))     # straight through core
        core = shortest_path(city.graph, n1.node_id, n2.node_id, weight="length")
        b1 = city.graph.nearest_node((-1000.0, 1000.0))
        b2 = city.graph.nearest_node((-1000.0, -1000.0))  # along the unlit edge
        edge_route = shortest_path(city.graph, b1.node_id, b2.node_id, weight="length")
        core_est = estimate_route_fuel(city.graph, city.map_db, core.edges, "core")
        edge_est = estimate_route_fuel(city.graph, city.map_db, edge_route.edges, "edge")
        assert core_est.expected_stops > edge_est.expected_stops
        assert core_est.fuel_per_km > edge_est.fuel_per_km


class TestEcoRouting:
    def test_alternatives_distinct_and_sorted(self, city):
        n1 = city.graph.nearest_node((0.0, 2000.0))
        n2 = city.graph.nearest_node((600.0, -1800.0))
        estimates = eco_route_comparison(
            city.graph, city.map_db, n1.node_id, n2.node_id, k=3
        )
        assert 2 <= len(estimates) <= 3
        routes = {e.edge_ids for e in estimates}
        assert len(routes) == len(estimates)
        fuels = [e.expected_fuel_ml for e in estimates]
        assert fuels == sorted(fuels)

    def test_unreachable_returns_empty(self, city):
        # Use two distinct dead-end tips at opposite corners; they are
        # connected, so instead test a node vs itself -> no route edges.
        node = city.graph.nodes()[0].node_id
        estimates = eco_route_comparison(city.graph, city.map_db, node, node, k=2)
        assert estimates == []


class TestDrivingCoach:
    def test_requires_data(self):
        with pytest.raises(ValueError):
            DrivingCoach([])

    def test_fleet_reports(self, study_result):
        coach = DrivingCoach(study_result.route_stats)
        reports = coach.fleet_reports()
        assert len(reports) >= 2
        fuels = [r.fuel_per_km_ml for r in reports]
        assert fuels == sorted(fuels)
        for r in reports:
            assert 0.0 <= r.fuel_percentile < 100.0
            assert 0.0 <= r.low_speed_percentile < 100.0
            assert r.n_transitions >= 1
            assert 30.0 < r.fuel_per_km_ml < 400.0

    def test_unknown_car_rejected(self, study_result):
        coach = DrivingCoach(study_result.route_stats)
        with pytest.raises(KeyError):
            coach.report(999)

    def test_best_driver_has_zero_percentile(self, study_result):
        coach = DrivingCoach(study_result.route_stats)
        best = coach.fleet_reports()[0]
        assert best.fuel_percentile == 0.0
