"""Tests for repro.cleaning.segmentation — the Table 2 rules."""

import pytest

from repro.cleaning.segmentation import (
    SegmentationConfig,
    TripSegment,
    segment_trip,
)
from repro.geo.distance import destination_point
from repro.traces.model import RoutePoint, Trip


class TrackBuilder:
    """Builds trips from (move_metres, elapsed_seconds) legs."""

    def __init__(self):
        self.lat, self.lon = 65.0, 25.0
        self.t = 0.0
        self.i = 1
        self.points = [RoutePoint(point_id=1, trip_id=1, lat=self.lat,
                                  lon=self.lon, time_s=0.0, speed_kmh=30.0)]

    def leg(self, move_m, dt_s, speed=30.0):
        self.lat, self.lon = destination_point(self.lat, self.lon, 0.0, move_m)
        self.t += dt_s
        self.i += 1
        self.points.append(RoutePoint(point_id=self.i, trip_id=1, lat=self.lat,
                                      lon=self.lon, time_s=self.t, speed_kmh=speed))
        return self

    def drive(self, n=6, move_m=150.0, dt_s=20.0):
        for __ in range(n):
            self.leg(move_m, dt_s)
        return self

    def trip(self):
        return Trip(trip_id=1, car_id=1, points=self.points)


class TestRules:
    def test_rule1_stationary_gap_splits(self):
        trip = TrackBuilder().drive().leg(5.0, 400.0).drive().trip()
        segments, report = segment_trip(trip)
        assert len(segments) == 2
        assert report.rule_hits[1] == 1

    def test_rule2_slow_crawl_gap_splits(self):
        # 500 m in 8 minutes: not rule 1 (moved), rule 2 fires.
        trip = TrackBuilder().drive().leg(500.0, 480.0).drive().trip()
        segments, report = segment_trip(trip)
        assert len(segments) == 2
        assert report.rule_hits[2] == 1
        assert report.rule_hits[1] == 0

    def test_rule3_near_zero_speed(self):
        # 0.2 m in 150 s: 0.0013 m/s, below the 0.002 m/s floor, and past
        # the two-minute minimum window (but short of rule 1's 3 minutes).
        trip = TrackBuilder().drive().leg(0.2, 150.0).drive().trip()
        segments, report = segment_trip(trip)
        assert len(segments) == 2
        assert report.rule_hits[3] == 1

    def test_traffic_light_wait_does_not_split(self):
        # Two fixes at the same spot 60 s apart: an ordinary red light.
        trip = TrackBuilder().drive().leg(0.0, 60.0).drive().trip()
        segments, report = segment_trip(trip)
        assert len(segments) == 1
        assert all(v == 0 for v in report.rule_hits.values())

    def test_no_split_on_continuous_driving(self):
        trip = TrackBuilder().drive(n=20).trip()
        segments, report = segment_trip(trip)
        assert len(segments) == 1
        assert all(v == 0 for v in report.rule_hits.values())

    def test_rule5_resplits_long_segments(self):
        # A >40 km drive with 100 s pauses: invisible to the 3-minute
        # rule 1, split by the 1.5-minute second round.
        builder = TrackBuilder()
        for __ in range(5):
            builder.drive(n=30, move_m=300.0, dt_s=25.0)  # 9 km bursts
            builder.leg(10.0, 100.0)                      # 100 s pause
        segments, report = segment_trip(builder.trip())
        assert report.rule_hits[5] >= 1
        assert len(segments) >= 2

    def test_segment_ids_sequential(self):
        trip = TrackBuilder().drive().leg(5.0, 400.0).drive().trip()
        segments, __ = segment_trip(trip, first_segment_id=10)
        assert [s.segment_id for s in segments] == [10, 11]
        assert [s.index for s in segments] == [0, 1]

    def test_boundary_point_starts_next_segment(self):
        trip = TrackBuilder().drive(n=4).leg(5.0, 400.0).drive(n=4).trip()
        segments, __ = segment_trip(trip)
        first, second = segments
        assert first.points[-1].time_s < second.points[0].time_s
        # The post-gap point opens the second segment.
        assert second.points[0].point_id == first.points[-1].point_id + 1


class TestTripSegment:
    def test_properties(self):
        trip = TrackBuilder().drive(n=5, move_m=200.0, dt_s=30.0).trip()
        seg = TripSegment(segment_id=1, trip_id=1, car_id=2, index=0,
                          points=trip.points)
        assert seg.duration_s == pytest.approx(150.0)
        assert seg.distance_m == pytest.approx(1000.0, rel=1e-3)
        assert len(seg) == 6

    def test_empty_segment(self):
        seg = TripSegment(segment_id=1, trip_id=1, car_id=1, index=0, points=[])
        assert seg.duration_s == 0.0
        assert seg.fuel_ml == 0.0


class TestConfig:
    def test_custom_thresholds(self):
        config = SegmentationConfig(rule1_window_s=60.0)
        trip = TrackBuilder().drive().leg(5.0, 90.0).drive().trip()
        segments, report = segment_trip(trip, config)
        assert report.rule_hits[1] == 1
        assert len(segments) == 2

    def test_report_merge(self):
        trip = TrackBuilder().drive().leg(5.0, 400.0).drive().trip()
        __, r1 = segment_trip(trip)
        __, r2 = segment_trip(trip)
        r1.merge(r2)
        assert r1.rule_hits[1] == 2
        assert r1.trips_processed == 2
