"""Crash safety: kill the service at every checkpoint boundary, resume,
and require byte-identical artefacts to an uninterrupted run.

Two kill mechanisms are exercised:

* **in-process** — ``StreamService.run(stop_after_checkpoints=k)`` ends
  the run right after the k-th checkpoint lands (returns ``None``), for
  *every* k the full run produces;
* **hard kill** — a fault plan with ``kill_chunk={"stream": N}`` makes
  the service ``os._exit(1)`` right after checkpoint N, exactly like an
  OOM kill; a rerun of ``repro serve`` must resume and finish.

Resumption is exactly-once: already-ingested rows are skipped by index,
Welford partials continue bit-identically (checkpoints serialise the
raw per-cell speeds), and the fingerprints — floats rendered as
``float.hex`` — must equal the no-checkpoint baseline.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.stream.checkpoint as checkpoint_module
from repro.stream import (
    CheckpointStore,
    StreamConfig,
    StreamService,
    load_checkpoint,
    stream_fingerprint,
)
from repro.stream.checkpoint import CHECKPOINT_SCHEMA_VERSION, POINTER_NAME

REPO = Path(__file__).resolve().parent.parent

BATCH_SIZE = 64
CHECKPOINT_EVERY = 6


def make_config(config, path, checkpoint_dir, **overrides):
    kwargs = dict(
        study=config, input=str(path), mode="replay",
        batch_size=BATCH_SIZE, checkpoint_every=CHECKPOINT_EVERY,
        checkpoint_dir=str(checkpoint_dir),
    )
    kwargs.update(overrides)
    return StreamConfig(**kwargs)


@pytest.fixture(scope="module")
def full_run(stream_case, tmp_path_factory):
    """One uninterrupted checkpointed run: the resume tests' reference."""
    config, path, baseline = stream_case
    ckdir = tmp_path_factory.mktemp("ck-full")
    result = StreamService(make_config(config, path, ckdir)).run()
    return result, baseline


class TestCheckpointing:
    def test_checkpoints_do_not_perturb_artefacts(self, full_run):
        result, baseline = full_run
        assert result.checkpoints_written >= 3
        got = stream_fingerprint(result)
        for name in baseline:
            assert got[name] == baseline[name], f"artefact {name!r} diverged"

    def test_pointer_names_the_last_checkpoint(
        self, stream_case, tmp_path
    ):
        config, path, __ = stream_case
        result = StreamService(make_config(config, path, tmp_path)).run()
        pointer = json.loads((tmp_path / POINTER_NAME).read_text())
        assert pointer["checkpoint_seq"] == result.checkpoints_written
        payload = load_checkpoint(tmp_path)
        assert payload["checkpoint_seq"] == result.checkpoints_written
        assert payload["checkpoint_schema"] == CHECKPOINT_SCHEMA_VERSION

    def test_identical_state_dedupes_by_content(self, stream_case, tmp_path):
        config, path, __ = stream_case
        store = CheckpointStore(tmp_path)
        payload = {"checkpoint_seq": 1, "rows_ingested": 10, "state": [1, 2]}
        assert store.write(dict(payload)) == store.write(dict(payload))


class TestKillAndResume:
    def test_every_checkpoint_boundary_resumes_identically(
        self, stream_case, full_run, tmp_path
    ):
        config, path, baseline = stream_case
        reference, __ = full_run
        total = reference.checkpoints_written
        failures = []
        for k in range(1, total + 1):
            ckdir = tmp_path / f"boundary-{k}"
            sc = make_config(config, path, ckdir)
            killed = StreamService(sc).run(stop_after_checkpoints=k)
            assert killed is None, "a stopped run must not return a result"
            resumed = StreamService(sc).run()
            assert resumed.metrics["counters"]["stream.resumes"] == 1
            got = stream_fingerprint(resumed)
            failures += [
                (k, name) for name in baseline if got[name] != baseline[name]
            ]
        assert failures == []

    def test_resume_skips_ingested_rows_exactly_once(
        self, stream_case, full_run, tmp_path
    ):
        config, path, __ = stream_case
        reference, __ = full_run
        sc = make_config(config, path, tmp_path)
        assert StreamService(sc).run(stop_after_checkpoints=2) is None
        pointer = json.loads((tmp_path / POINTER_NAME).read_text())
        resumed = StreamService(sc).run()
        skipped = pointer["rows_ingested"]
        assert skipped == 2 * CHECKPOINT_EVERY * BATCH_SIZE
        assert resumed.rows_ingested == reference.rows_ingested
        assert resumed.metrics["counters"]["stream.rows_in"] == \
            reference.rows_ingested - skipped

    def test_no_resume_flag_starts_from_scratch(
        self, stream_case, full_run, tmp_path
    ):
        config, path, baseline = stream_case
        sc = make_config(config, path, tmp_path)
        assert StreamService(sc).run(stop_after_checkpoints=1) is None
        result = StreamService(sc).run(resume=False)
        assert "stream.resumes" not in result.metrics["counters"]
        got = stream_fingerprint(result)
        assert got == baseline


class TestHardKill:
    def test_fault_plan_kill_then_serve_rerun_resumes(
        self, stream_case, tmp_path, chaos_seed
    ):
        """The chaos path: ``kill_chunk={"stream": 2}`` hard-exits the
        process right after checkpoint 2; rerunning the *same* command
        (plan included — the resume guard fingerprints the full config,
        and the kill cannot refire: the sequence continues past 2)
        resumes and must write the artefacts of an uninterrupted serve.
        """
        config, path, __ = stream_case
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(
            {"seed": chaos_seed, "kill_chunk": {"stream": 2}}
        ))
        env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
        ckdir = tmp_path / "ck"
        out = tmp_path / "out"
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--input", str(path), "--out", str(out),
            "--batch-size", str(BATCH_SIZE),
            "--checkpoint-every", str(CHECKPOINT_EVERY),
            "--checkpoint-dir", str(ckdir), "--quiet",
            "--fault-plan", str(plan_path),
        ]
        killed = subprocess.run(
            argv, cwd=REPO, env=env, capture_output=True, text=True,
        )
        assert killed.returncode == 1, killed.stderr
        pointer = json.loads((ckdir / POINTER_NAME).read_text())
        assert pointer["checkpoint_seq"] == 2
        assert not (out / "table3.txt").exists(), \
            "a killed service must not have written artefacts"
        rerun = subprocess.run(
            argv, cwd=REPO, env=env, capture_output=True, text=True
        )
        assert rerun.returncode == 0, rerun.stderr
        clean_out = tmp_path / "clean-out"
        uninterrupted = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--input", str(path), "--out", str(clean_out),
             "--batch-size", str(BATCH_SIZE), "--quiet"],
            cwd=REPO, env=env, capture_output=True, text=True,
        )
        assert uninterrupted.returncode == 0, uninterrupted.stderr
        for name in ("table2.txt", "table3.txt", "table4.txt", "table5.txt",
                      "windows.jsonl", "errors.jsonl"):
            assert (out / name).read_bytes() == \
                (clean_out / name).read_bytes(), f"{name} diverged"


class TestResumeSafety:
    def test_mismatched_config_is_refused(self, stream_case, tmp_path):
        config, path, __ = stream_case
        sc = make_config(config, path, tmp_path)
        assert StreamService(sc).run(stop_after_checkpoints=1) is None
        other = make_config(config, path, tmp_path, window_s=3600.0)
        with pytest.raises(ValueError, match="refusing to resume"):
            StreamService(other).run()

    def test_wrong_schema_version_is_refused(
        self, stream_case, tmp_path, monkeypatch
    ):
        config, path, __ = stream_case
        sc = make_config(config, path, tmp_path)
        assert StreamService(sc).run(stop_after_checkpoints=1) is None
        monkeypatch.setattr(
            checkpoint_module, "CHECKPOINT_SCHEMA_VERSION",
            CHECKPOINT_SCHEMA_VERSION + 1,
        )
        with pytest.raises(ValueError, match="schema"):
            load_checkpoint(tmp_path)

    def test_corrupt_or_missing_pointer_reads_as_fresh(self, tmp_path):
        assert load_checkpoint(tmp_path) is None
        (tmp_path / POINTER_NAME).write_text("not json {")
        assert load_checkpoint(tmp_path) is None
