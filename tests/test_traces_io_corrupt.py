"""Malformed-input corpus: ingest quarantines damage, never raises.

Each file under ``tests/data/corrupt_traces/`` reproduces one class of
raw-feed damage the paper's preprocessing contends with (truncated
lines, NaN coordinates, non-monotonic ids, fully-garbled trips, UTF-8
damage).  The table-driven test asserts that :func:`read_points_csv`
survives every one, keeps the parseable rows, and leaves a precise
:class:`TripError` record per problem.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.faults import FaultPlan, Quarantine, inject_faults
from repro.obs import MetricsRegistry, use_registry
from repro.traces.io import read_points_csv, write_points_csv

CORPUS = Path(__file__).parent / "data" / "corrupt_traces"

#: file -> (expected trips, expected total points, expected error kinds)
CASES = {
    "truncated_line.csv": ([10], 2, {"truncated_row"}),
    "nan_coords.csv": ([20], 2, {"non_finite"}),
    "non_monotonic.csv": ([30], 3, {"non_monotonic_ids"}),
    "empty_trip.csv": ([40], 1, {"parse_error", "truncated_row", "empty_trip"}),
    "utf8_garbage.csv": ([60], 2, {"parse_error"}),
}


@pytest.mark.parametrize("filename", sorted(CASES))
def test_corrupt_corpus_quarantines_instead_of_raising(filename):
    expected_trips, expected_points, expected_kinds = CASES[filename]
    quarantine = Quarantine()
    registry = MetricsRegistry()
    with use_registry(registry):
        fleet = read_points_csv(CORPUS / filename, quarantine=quarantine)
    assert [t.trip_id for t in fleet.trips] == expected_trips
    assert fleet.point_count == expected_points
    kinds = {e.kind for e in quarantine.errors}
    assert kinds == expected_kinds
    # Every record is precise: stage, message, and a row or trip anchor.
    for error in quarantine.errors:
        assert error.stage == "io"
        assert error.message
        assert error.row is not None or error.trip_id is not None


def test_corrupt_corpus_counts_quarantined_rows():
    registry = MetricsRegistry()
    with use_registry(registry):
        read_points_csv(CORPUS / "truncated_line.csv")
    assert registry.counter("io.rows_quarantined").value == 1


def test_corrupt_rows_attribute_trip_ids():
    quarantine = Quarantine()
    read_points_csv(CORPUS / "empty_trip.csv", quarantine=quarantine)
    empties = [e for e in quarantine.errors if e.kind == "empty_trip"]
    assert [e.trip_id for e in empties] == [50]


def test_without_explicit_quarantine_still_returns_survivors():
    fleet = read_points_csv(CORPUS / "nan_coords.csv")
    assert [t.trip_id for t in fleet.trips] == [20]
    assert [p.point_id for p in fleet.trips[0].points] == [1, 4]


# -- injected ingest faults --------------------------------------------------


def test_injected_row_corruption_is_deterministic(tmp_path, fleet, chaos_seed):
    path = tmp_path / "points.csv"
    write_points_csv(fleet, path)
    plan = FaultPlan(seed=chaos_seed, corrupt_row_rate=0.05)
    quarantine = Quarantine()
    with inject_faults(plan):
        damaged = read_points_csv(path, quarantine=quarantine)
    clean = read_points_csv(path)
    expected = sum(
        1 for index in range(clean.point_count) if plan.picks("io", index)
    )
    assert expected > 0
    corrupted = [e for e in quarantine.errors if e.fault_tag == "injected:io"]
    assert len(corrupted) == expected
    assert damaged.point_count == clean.point_count - expected
    # Replay: the same plan quarantines the same rows.
    replay = Quarantine()
    with inject_faults(plan):
        read_points_csv(path, quarantine=replay)
    assert [e.row for e in replay.errors] == [e.row for e in quarantine.errors]


def test_injected_truncation_stops_reading(tmp_path, fleet):
    path = tmp_path / "points.csv"
    write_points_csv(fleet, path)
    plan = FaultPlan(truncate_after_rows=25)
    quarantine = Quarantine()
    with inject_faults(plan):
        truncated = read_points_csv(path, quarantine=quarantine)
    assert truncated.point_count == 25
    kinds = [e.kind for e in quarantine.errors]
    assert "truncated_file" in kinds
