"""Tests for repro.matching.candidates."""

import pytest

from repro.geo.geometry import LineString
from repro.matching.candidates import CandidateConfig, candidates_for_point
from repro.roadnet.graph import ElementSpan, RoadEdge, RoadGraph, RoadNode


def build_parallel_roads():
    """Two parallel EW roads 60 m apart; the northern one is one-way east."""
    g = RoadGraph()
    g.add_node(RoadNode(1, (0.0, 0.0)))
    g.add_node(RoadNode(2, (200.0, 0.0)))
    g.add_node(RoadNode(3, (0.0, 60.0)))
    g.add_node(RoadNode(4, (200.0, 60.0)))
    south = LineString([(0, 0), (200, 0)])
    g.add_edge(RoadEdge(1, 1, 2, south,
                        (ElementSpan(1, 0.0, south.length, False, 40.0),)))
    north = LineString([(0, 60), (200, 60)])
    g.add_edge(RoadEdge(2, 3, 4, north,
                        (ElementSpan(2, 0.0, north.length, False, 40.0),),
                        forward_allowed=True, backward_allowed=False))
    return g


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CandidateConfig(radius_m=0.0)
        with pytest.raises(ValueError):
            CandidateConfig(max_candidates=0)


class TestCandidates:
    def setup_method(self):
        self.g = build_parallel_roads()

    def test_nearest_edge_scores_best(self):
        cands = candidates_for_point(self.g, (100.0, 10.0), (1.0, 0.0))
        assert cands[0].edge.edge_id == 1
        assert cands[0].distance_m == pytest.approx(10.0)

    def test_radius_limits_candidates(self):
        config = CandidateConfig(radius_m=20.0)
        cands = candidates_for_point(self.g, (100.0, 10.0), None, config)
        assert [c.edge.edge_id for c in cands] == [1]

    def test_max_candidates_cap(self):
        config = CandidateConfig(radius_m=100.0, max_candidates=1)
        cands = candidates_for_point(self.g, (100.0, 30.0), (1.0, 0.0), config)
        assert len(cands) == 1

    def test_empty_when_nothing_near(self):
        assert candidates_for_point(self.g, (100.0, 5000.0), None) == []

    def test_orientation_breaks_tie(self):
        # Midway between roads; movement east: both roads eastbound-legal,
        # orientation equal -> distances equal -> both present.
        cands = candidates_for_point(self.g, (100.0, 30.0), (1.0, 0.0))
        assert {c.edge.edge_id for c in cands} == {1, 2}

    def test_oneway_violation_penalised(self):
        # Moving WEST midway between roads: the one-way (east only) north
        # road must score below the two-way south road.
        cands = candidates_for_point(self.g, (100.0, 30.0), (-1.0, 0.0))
        assert cands[0].edge.edge_id == 1
        scores = {c.edge.edge_id: c.score for c in cands}
        assert scores[1] > scores[2]

    def test_stationary_point_uses_distance_only(self):
        cands = candidates_for_point(self.g, (100.0, 10.0), None)
        assert cands[0].edge.edge_id == 1

    def test_snapped_point_on_edge(self):
        cands = candidates_for_point(self.g, (100.0, 10.0), (1.0, 0.0))
        best = cands[0]
        assert best.snapped_xy == pytest.approx((100.0, 0.0))
        assert best.arc_m == pytest.approx(100.0)

    def test_scores_sorted_descending(self):
        cands = candidates_for_point(self.g, (100.0, 30.0), (1.0, 0.0),
                                     CandidateConfig(radius_m=100.0))
        scores = [c.score for c in cands]
        assert scores == sorted(scores, reverse=True)
