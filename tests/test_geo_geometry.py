"""Tests for repro.geo.geometry."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.geometry import (
    LineString,
    angle_between_deg,
    crossing_angle_deg,
    point_segment_distance,
    project_point_to_segment,
    segment_intersection,
)

coord = st.floats(min_value=-1e4, max_value=1e4)


class TestSegmentOps:
    def test_project_inside(self):
        p, t = project_point_to_segment((5.0, 3.0), (0.0, 0.0), (10.0, 0.0))
        assert p == pytest.approx((5.0, 0.0))
        assert t == pytest.approx(0.5)

    def test_project_clamps_before_start(self):
        p, t = project_point_to_segment((-5.0, 3.0), (0.0, 0.0), (10.0, 0.0))
        assert p == (0.0, 0.0)
        assert t == 0.0

    def test_project_clamps_after_end(self):
        p, t = project_point_to_segment((15.0, 3.0), (0.0, 0.0), (10.0, 0.0))
        assert p == (10.0, 0.0)
        assert t == 1.0

    def test_degenerate_segment(self):
        p, t = project_point_to_segment((1.0, 1.0), (2.0, 2.0), (2.0, 2.0))
        assert p == (2.0, 2.0)
        assert t == 0.0

    def test_point_segment_distance(self):
        assert point_segment_distance((5.0, 3.0), (0.0, 0.0), (10.0, 0.0)) == pytest.approx(3.0)

    def test_intersection_crossing(self):
        hit = segment_intersection((0, 0), (10, 10), (0, 10), (10, 0))
        assert hit == pytest.approx((5.0, 5.0))

    def test_intersection_none_parallel(self):
        assert segment_intersection((0, 0), (10, 0), (0, 1), (10, 1)) is None

    def test_intersection_none_disjoint(self):
        assert segment_intersection((0, 0), (1, 1), (5, 5), (6, 4)) is None

    def test_intersection_at_shared_endpoint(self):
        hit = segment_intersection((0, 0), (5, 0), (5, 0), (5, 5))
        assert hit == pytest.approx((5.0, 0.0))

    def test_collinear_overlap_returns_none(self):
        assert segment_intersection((0, 0), (10, 0), (5, 0), (15, 0)) is None


class TestAngles:
    def test_perpendicular(self):
        assert angle_between_deg((1, 0), (0, 1)) == pytest.approx(90.0)

    def test_opposite(self):
        assert angle_between_deg((1, 0), (-1, 0)) == pytest.approx(180.0)

    def test_crossing_angle_folds_to_90(self):
        assert crossing_angle_deg((1, 0), (-1, 0)) == pytest.approx(0.0)
        assert crossing_angle_deg((1, 0), (-1, 1)) == pytest.approx(45.0)

    def test_zero_vector(self):
        assert angle_between_deg((0, 0), (1, 0)) == 0.0


class TestLineString:
    def setup_method(self):
        self.ls = LineString([(0, 0), (100, 0), (100, 100)])

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            LineString([(0, 0)])

    def test_length(self):
        assert self.ls.length == pytest.approx(200.0)

    def test_interpolate_midpoints(self):
        assert self.ls.interpolate(50.0) == pytest.approx((50.0, 0.0))
        assert self.ls.interpolate(150.0) == pytest.approx((100.0, 50.0))

    def test_interpolate_clamps(self):
        assert self.ls.interpolate(-10.0) == pytest.approx((0.0, 0.0))
        assert self.ls.interpolate(500.0) == pytest.approx((100.0, 100.0))

    def test_heading(self):
        assert self.ls.heading_at(50.0) == pytest.approx((1.0, 0.0))
        assert self.ls.heading_at(150.0) == pytest.approx((0.0, 1.0))

    def test_project_on_first_leg(self):
        snapped, arc, dist = self.ls.project((50.0, 10.0))
        assert snapped == pytest.approx((50.0, 0.0))
        assert arc == pytest.approx(50.0)
        assert dist == pytest.approx(10.0)

    def test_project_on_second_leg(self):
        snapped, arc, dist = self.ls.project((90.0, 50.0))
        assert snapped == pytest.approx((100.0, 50.0))
        assert arc == pytest.approx(150.0)
        assert dist == pytest.approx(10.0)

    def test_reversed(self):
        rev = self.ls.reversed()
        assert rev.start() == self.ls.end()
        assert rev.length == pytest.approx(self.ls.length)

    def test_crossings(self):
        hits = self.ls.crossings((50.0, -10.0), (50.0, 10.0))
        assert len(hits) == 1
        point, arc = hits[0]
        assert point == pytest.approx((50.0, 0.0))
        assert arc == pytest.approx(50.0)

    def test_no_crossing(self):
        assert self.ls.crossings((0.0, 50.0), (50.0, 50.0)) == []

    def test_substring(self):
        sub = self.ls.substring(50.0, 150.0)
        assert sub.length == pytest.approx(100.0)
        assert sub.start() == pytest.approx((50.0, 0.0))
        assert sub.end() == pytest.approx((100.0, 50.0))

    def test_substring_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            self.ls.substring(150.0, 50.0)

    def test_resample_spacing(self):
        res = self.ls.resample(10.0)
        assert res.length == pytest.approx(self.ls.length, rel=1e-6)
        assert len(res) == 21

    def test_concat_drops_duplicate_joint(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(10, 0), (20, 0)])
        joined = LineString.concat([a, b])
        assert len(joined) == 3
        assert joined.length == pytest.approx(20.0)

    def test_iteration_yields_tuples(self):
        points = list(self.ls)
        assert points[0] == (0.0, 0.0)
        assert len(points) == 3

    @given(arc=st.floats(min_value=0.0, max_value=200.0))
    @settings(max_examples=50, deadline=None)
    def test_interpolated_point_is_on_line(self, arc):
        p = self.ls.interpolate(arc)
        __, __, dist = self.ls.project(p)
        assert dist < 1e-9

    @given(x=coord, y=coord)
    @settings(max_examples=50, deadline=None)
    def test_project_distance_is_minimum_over_vertices(self, x, y):
        __, __, dist = self.ls.project((x, y))
        vertex_dist = min(
            math.hypot(x - vx, y - vy) for vx, vy in self.ls
        )
        assert dist <= vertex_dist + 1e-9


class TestSimplify:
    def test_straight_line_collapses(self):
        dense = LineString([(x, 0.0) for x in range(0, 101, 10)])
        simple = dense.simplify(0.5)
        assert len(simple) == 2
        assert simple.length == pytest.approx(dense.length)

    def test_corner_preserved(self):
        ls = LineString([(0, 0), (50, 0.1), (100, 0), (100, 100)])
        simple = ls.simplify(1.0)
        assert (100.0, 0.0) in [tuple(c) for c in simple.coords]

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            LineString([(0, 0), (1, 1)]).simplify(0.0)

    def test_all_points_within_tolerance(self):
        import random

        rng = random.Random(4)
        pts = [(float(x * 10), rng.uniform(-3.0, 3.0)) for x in range(40)]
        original = LineString(pts)
        simple = original.simplify(5.0)
        assert len(simple) <= len(original)
        for p in pts:
            assert simple.distance_to(p) <= 5.0 + 1e-9

    def test_endpoints_kept(self):
        ls = LineString([(0, 0), (5, 5), (10, 0)])
        simple = ls.simplify(100.0)
        assert simple.start() == ls.start()
        assert simple.end() == ls.end()
