"""Tests for repro.cleaning.filters."""

import pytest

from repro.cleaning.filters import (
    FilterConfig,
    drop_duplicates,
    filter_segments,
    remove_position_outliers,
    within_bounds,
)
from repro.cleaning.segmentation import TripSegment
from repro.geo.distance import destination_point
from repro.traces.model import RoutePoint


def pt(i, lat=65.0, lon=25.0, t=0.0):
    return RoutePoint(point_id=i, trip_id=1, lat=lat, lon=lon, time_s=t)


def walking_points(n, step_m=100.0, dt=10.0):
    """A straight track with plausible speeds (10 m/s)."""
    points = []
    lat, lon = 65.0, 25.0
    for i in range(n):
        points.append(pt(i, lat, lon, i * dt))
        lat, lon = destination_point(lat, lon, 0.0, step_m)
    return points


class TestFilterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FilterConfig(max_implied_speed_mps=0.0)
        with pytest.raises(ValueError):
            FilterConfig(min_segment_points=1)


class TestDropDuplicates:
    def test_exact_duplicate_removed(self):
        config = FilterConfig()
        points = [pt(1, t=0.0), pt(2, t=0.1), pt(3, t=100.0)]
        out = drop_duplicates(points, config)
        assert [p.point_id for p in out] == [1, 3]

    def test_same_place_different_time_kept(self):
        config = FilterConfig()
        points = [pt(1, t=0.0), pt(2, t=60.0)]
        assert len(drop_duplicates(points, config)) == 2

    def test_empty(self):
        assert drop_duplicates([], FilterConfig()) == []


class TestPositionOutliers:
    def test_glitch_in_middle_removed(self):
        config = FilterConfig()
        points = walking_points(6)
        glitch_lat, glitch_lon = destination_point(points[3].lat, points[3].lon, 90.0, 2000.0)
        points[3] = RoutePoint(point_id=3, trip_id=1, lat=glitch_lat,
                               lon=glitch_lon, time_s=points[3].time_s)
        out = remove_position_outliers(points, config)
        assert len(out) == 5
        assert all(p.point_id != 3 for p in out)

    def test_glitched_first_point_removed(self):
        config = FilterConfig()
        points = walking_points(6)
        glitch_lat, glitch_lon = destination_point(points[0].lat, points[0].lon, 90.0, 3000.0)
        points[0] = RoutePoint(point_id=0, trip_id=1, lat=glitch_lat,
                               lon=glitch_lon, time_s=points[0].time_s)
        out = remove_position_outliers(points, config)
        assert out[0].point_id == 1

    def test_clean_track_untouched(self):
        points = walking_points(8)
        assert remove_position_outliers(points, FilterConfig()) == points

    def test_short_input_passthrough(self):
        points = walking_points(2)
        assert remove_position_outliers(points, FilterConfig()) == points


class TestWithinBounds:
    def test_no_bounds_passthrough(self):
        points = walking_points(3)
        assert within_bounds(points, FilterConfig()) == points

    def test_bounds_filter(self):
        config = FilterConfig(bounds=(64.99, 24.99, 65.01, 25.01))
        points = [pt(1), pt(2, lat=66.0)]
        out = within_bounds(points, config)
        assert [p.point_id for p in out] == [1]


class TestSegmentFilters:
    def make_segment(self, n_points, spread_m=100.0):
        points = walking_points(n_points, step_m=spread_m)
        return TripSegment(segment_id=1, trip_id=1, car_id=1, index=0, points=points)

    def test_short_segment_dropped(self):
        config = FilterConfig()
        kept, short, long_ = filter_segments([self.make_segment(3)], config)
        assert kept == []
        assert short == 1
        assert long_ == 0

    def test_long_segment_dropped(self):
        config = FilterConfig()
        seg = self.make_segment(20, spread_m=2000.0)  # 38 km
        kept, short, long_ = filter_segments([seg], config)
        assert kept == []
        assert long_ == 1

    def test_normal_segment_kept(self):
        config = FilterConfig()
        kept, short, long_ = filter_segments([self.make_segment(10)], config)
        assert len(kept) == 1
        assert (short, long_) == (0, 0)

    def test_boundary_five_points_kept(self):
        config = FilterConfig()
        kept, short, __ = filter_segments([self.make_segment(5)], config)
        assert len(kept) == 1
