"""The sharded artefact store: round-trip, invalidation, byte-identity.

The store's contract has three legs —

* **round-trip**: what a stage computed is what a later run decodes,
  served zero-copy from memory-mapped columns;
* **invalidation**: a config flip dirties exactly the dependent stages,
  a code-version bump dirties everything, corruption recomputes rather
  than crashes;
* **byte-identity**: warm, cold, parallel and store-less runs all
  produce the same artefacts, down to every float.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.study import OuluStudy, StudyConfig
from repro.faults import FaultPlan, RobustnessConfig
from repro.store import (
    EXCLUDED_FIELDS,
    STAGE_FIELDS,
    ShardStore,
    StoreConfig,
    StoreError,
    canonical,
    chain_key,
    code_version,
    config_key,
    shard_input_hash,
)
from repro.store.cachekey import STAGES
from repro.parallel import ExecutorConfig
from repro.traces import FleetSpec


def small_config(store_dir=None, **overrides) -> StudyConfig:
    base = dict(
        fleet=FleetSpec(n_taxis=5, n_days=4, seed=42),
        store=StoreConfig(dir=str(store_dir)) if store_dir is not None else None,
    )
    base.update(overrides)
    return StudyConfig(**base)


def store_counters(result) -> dict:
    return {
        k: v for k, v in result.metrics["counters"].items()
        if k.startswith("store.")
    }


def artefact_fingerprint(result) -> tuple:
    """Every float of every externally visible artefact."""
    stats = tuple(
        (s.direction, s.car_id, s.season, s.route_time_h, s.route_distance_km,
         s.low_speed_pct, s.normal_speed_pct, s.fuel_ml, s.n_traffic_lights,
         s.n_junctions, s.n_pedestrian_crossings, s.n_bus_stops)
        for s in result.route_stats
    )
    routes = tuple(
        (i, r.segment_id, r.car_id, tuple(r.edge_sequence), r.gaps_filled,
         tuple((m.edge_id, m.arc_m, m.snapped_xy, m.match_distance_m, m.score,
                m.point.point_id, m.point.trip_id, m.point.lat, m.point.lon,
                m.point.time_s, m.point.speed_kmh, m.point.fuel_ml)
               for m in r.matched))
        for i, r in sorted(result.matched.items())
    )
    funnel = tuple(
        (f.car_id, f.total_segments, f.filtered_cleaned, f.transitions_total,
         f.within_centre, f.post_filtered)
        for f in result.funnel
    )
    segments = tuple(
        (s.segment_id, s.trip_id, s.car_id, s.index, len(s.points))
        for s in result.clean.segments
    )
    errors = tuple(
        (e.stage, e.kind, e.trip_id, e.segment_id, e.transition_index)
        for e in result.errors
    )
    return (
        stats, routes, funnel, segments, tuple(result.kept_transitions),
        errors, json.dumps(result.cell_features, sort_keys=True, default=str),
    )


# -- ShardStore round-trip ---------------------------------------------------


class TestShardStore:
    def test_put_get_roundtrip_mmap(self, tmp_path):
        store = ShardStore(tmp_path / "s")
        columns = {
            "a": np.arange(5, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 5),
        }
        store.put("ab" * 20, "clean", "d0", {"n": 5}, columns)
        art = store.get("ab" * 20, "clean", "d0")
        assert art is not None
        assert art.meta == {"n": 5}
        assert isinstance(art.columns["a"], np.memmap)
        np.testing.assert_array_equal(art.columns["a"], columns["a"])
        np.testing.assert_array_equal(art.columns["b"], columns["b"])

    def test_miss_returns_none(self, tmp_path):
        store = ShardStore(tmp_path / "s")
        assert store.get("cd" * 20, "clean", "d0") is None

    def test_put_is_idempotent(self, tmp_path):
        store = ShardStore(tmp_path / "s")
        key = "ef" * 20
        store.put(key, "clean", "d0", {"v": 1}, {"a": np.zeros(1)})
        store.put(key, "clean", "d0", {"v": 2}, {"a": np.ones(1)})
        assert store.get(key).meta == {"v": 1}  # first write wins

    def test_truncated_column_recovers_as_miss(self, tmp_path):
        store = ShardStore(tmp_path / "s")
        key = "12" * 20
        store.put(key, "clean", "d0", {}, {"a": np.arange(100)})
        column = store._dir_for(key) / "c_a.npy"
        column.write_bytes(column.read_bytes()[:8])  # truncate mid-header
        assert store.get(key, "clean", "d0") is None
        assert not store._dir_for(key).exists()  # damaged artefact dropped

    def test_mangled_meta_recovers_as_miss(self, tmp_path):
        store = ShardStore(tmp_path / "s")
        key = "34" * 20
        store.put(key, "clean", "d0", {}, {"a": np.arange(3)})
        (store._dir_for(key) / "meta.json").write_text("{not json")
        assert store.get(key) is None

    def test_version_mismatch_rejected(self, tmp_path):
        root = tmp_path / "s"
        ShardStore(root)
        (root / "STORE_VERSION").write_text("99\n")
        with pytest.raises(StoreError):
            ShardStore(root)

    def test_ls_and_gc(self, tmp_path):
        store = ShardStore(tmp_path / "s")
        store.put("aa" * 20, "clean", "d0", {}, {"a": np.arange(10)})
        store.put("bb" * 20, "match", "d1", {}, {"a": np.arange(10)})
        records = store.ls()
        assert [(r["shard"], r["stage"]) for r in records] == [
            ("d0", "clean"), ("d1", "match"),
        ]
        assert all(r["bytes"] > 0 for r in records)
        # Age-based eviction drops everything older than the window.
        evicted = store.gc(max_age_s=0.0, now=records[0]["last_used"] + 60)
        assert len(evicted) == 2
        assert store.ls() == []

    def test_gc_max_bytes_evicts_lru_first(self, tmp_path):
        import os

        store = ShardStore(tmp_path / "s")
        store.put("aa" * 20, "clean", "d0", {}, {"a": np.arange(100)})
        store.put("bb" * 20, "clean", "d1", {}, {"a": np.arange(100)})
        # Pin distinct last-used times (filesystem mtime granularity can
        # otherwise collapse put+get into one instant): d1 is older.
        os.utime(store._dir_for("aa" * 20) / "used", (2_000, 2_000))
        os.utime(store._dir_for("bb" * 20) / "used", (1_000, 1_000))
        evicted = store.gc(max_bytes=store.ls()[0]["bytes"] + 10)
        assert [r["shard"] for r in evicted] == ["d1"]
        assert store.get("aa" * 20) is not None


# -- cache keys --------------------------------------------------------------


class TestCacheKeys:
    def test_canonical_is_deterministic(self):
        config = small_config()
        assert canonical(config) == canonical(small_config())
        assert config_key(config, "clean") == config_key(small_config(), "clean")

    def test_canonical_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonical(object())

    def test_stage_key_changes_only_downstream(self):
        base = small_config()
        flipped = small_config(matcher="hmm")
        for stage in ("clean", "extract"):
            assert config_key(base, stage) == config_key(flipped, stage)
        assert config_key(base, "match") != config_key(flipped, "match")

    def test_every_config_field_is_covered(self):
        import dataclasses

        keyed = {name for fields in STAGE_FIELDS.values() for name in fields}
        for field in dataclasses.fields(StudyConfig):
            assert field.name in keyed or field.name in EXCLUDED_FIELDS, (
                f"StudyConfig.{field.name} must be keyed or excluded "
                "(see tools/lint_cache_keys.py)"
            )

    def test_code_version_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "test-v1")
        assert code_version() == "test-v1"
        monkeypatch.delenv("REPRO_CODE_VERSION")
        assert len(code_version()) == 40  # blake2b-20 hex

    def test_shard_input_hash_tracks_content(self, fleet):
        trips = fleet.trips[:3]
        assert shard_input_hash(trips) == shard_input_hash(list(trips))
        assert shard_input_hash(trips) != shard_input_hash(trips[:2])

    def test_chain_key_orders_parts(self):
        assert chain_key("a", "b") != chain_key("b", "a")


# -- end-to-end invalidation and byte-identity -------------------------------


@pytest.fixture(scope="module")
def warm_pair(tmp_path_factory):
    """A cold run populating a store and a warm rerun against it."""
    store_dir = tmp_path_factory.mktemp("store")
    cold = OuluStudy(small_config(store_dir)).run()
    warm = OuluStudy(small_config(store_dir)).run()
    return store_dir, cold, warm


class TestDeltaRecomputation:
    def test_warm_run_recomputes_nothing(self, warm_pair):
        __, cold, warm = warm_pair
        sc = store_counters(warm)
        assert sc.get("store.misses", 0) == 0
        assert sc.get("store.recomputed", 0) == 0
        assert sc["store.hits"] == store_counters(cold)["store.misses"]
        assert sc["store.hits"] == len(STAGES) * sc["store.hits.clean"]

    def test_warm_equals_cold_equals_off(self, warm_pair):
        __, cold, warm = warm_pair
        off = OuluStudy(small_config()).run()
        assert artefact_fingerprint(cold) == artefact_fingerprint(warm)
        assert artefact_fingerprint(cold) == artefact_fingerprint(off)

    def test_grid_identical(self, warm_pair):
        __, cold, warm = warm_pair
        assert repr(sorted(cold.grid.cells())) == repr(sorted(warm.grid.cells()))

    def test_config_flip_dirties_only_dependents(self, warm_pair):
        store_dir, cold, __ = warm_pair
        flipped = OuluStudy(small_config(store_dir, matcher="hmm")).run()
        sc = store_counters(flipped)
        shards = store_counters(cold)["store.misses.clean"]
        assert sc["store.hits.clean"] == shards
        assert sc["store.hits.extract"] == shards
        assert sc.get("store.misses.clean", 0) == 0
        assert sc.get("store.misses.extract", 0) == 0
        assert sc["store.misses.match"] == shards
        assert sc["store.misses.features"] == shards

    def test_code_version_bump_is_full_miss(self, warm_pair, monkeypatch):
        store_dir, cold, __ = warm_pair
        monkeypatch.setenv("REPRO_CODE_VERSION", "bumped")
        bumped = OuluStudy(small_config(store_dir)).run()
        sc = store_counters(bumped)
        assert sc.get("store.hits", 0) == 0
        assert sc["store.misses"] == store_counters(cold)["store.misses"]
        assert artefact_fingerprint(bumped) == artefact_fingerprint(cold)

    def test_corrupt_artefact_recomputes_not_crashes(self, tmp_path):
        store_dir = tmp_path / "store"
        cold = OuluStudy(small_config(store_dir)).run()
        # Truncate every stored column file — worst-case store damage.
        for column in store_dir.glob("objects/*/*/c_*.npy"):
            column.write_bytes(column.read_bytes()[:10])
        recovered = OuluStudy(small_config(store_dir)).run()
        sc = store_counters(recovered)
        assert sc["store.corrupt"] > 0
        assert sc.get("store.hits", 0) == 0
        assert artefact_fingerprint(recovered) == artefact_fingerprint(cold)

    def test_warm_hit_with_workers_is_byte_identical(self, warm_pair):
        store_dir, cold, __ = warm_pair
        parallel = OuluStudy(small_config(
            store_dir, executor=ExecutorConfig(workers=2, chunk_size=4),
        )).run()
        sc = store_counters(parallel)
        assert sc.get("store.misses", 0) == 0
        assert artefact_fingerprint(parallel) == artefact_fingerprint(cold)

    def test_cold_parallel_populates_identically(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = OuluStudy(small_config(serial_dir)).run()
        parallel = OuluStudy(small_config(
            parallel_dir, executor=ExecutorConfig(workers=2, chunk_size=4),
        )).run()
        assert artefact_fingerprint(serial) == artefact_fingerprint(parallel)
        # Content addressing: both stores hold exactly the same keys.
        serial_keys = sorted(r["key"] for r in ShardStore(serial_dir).ls())
        parallel_keys = sorted(r["key"] for r in ShardStore(parallel_dir).ls())
        assert serial_keys == parallel_keys

    def test_faulty_run_replays_quarantine_from_cache(self, tmp_path, chaos_seed):
        """Cached TripErrors fold into errors.jsonl identically warm."""
        store_dir = tmp_path / "store"
        plan = FaultPlan(seed=chaos_seed, clean_error_rate=0.15)
        tolerant = RobustnessConfig(max_error_rate=0.5)
        cold = OuluStudy(small_config(
            store_dir, faults=plan, robustness=tolerant,
        )).run()
        warm = OuluStudy(small_config(
            store_dir, faults=plan, robustness=tolerant,
        )).run()
        assert cold.errors, "chaos plan injected no faults — rate too low?"
        assert store_counters(warm).get("store.misses", 0) == 0
        assert artefact_fingerprint(cold) == artefact_fingerprint(warm)
        # The fault plan is key material: dropping it must miss clean.
        clean_run = OuluStudy(small_config(store_dir)).run()
        assert store_counters(clean_run)["store.misses.clean"] > 0
        assert not clean_run.errors
