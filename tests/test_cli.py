"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_writes_points_and_trips(self, tmp_path, capsys):
        points = tmp_path / "p.csv"
        trips = tmp_path / "t.jsonl"
        code = main([
            "simulate", "--days", "1", "--seed", "3",
            "--points", str(points), "--trips", str(trips),
        ])
        assert code == 0
        assert points.exists() and points.stat().st_size > 1000
        assert trips.exists()
        out = capsys.readouterr().out
        assert "route points" in out


class TestClean:
    def test_reports_stages(self, tmp_path, capsys):
        points = tmp_path / "p.csv"
        assert main(["simulate", "--days", "1", "--seed", "3",
                     "--points", str(points)]) == 0
        capsys.readouterr()
        assert main(["clean", str(points)]) == 0
        out = capsys.readouterr().out
        assert "segments out" in out
        assert "rule firings" in out

    def test_empty_csv_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.csv"
        empty.write_text(
            "car_id,point_id,trip_id,lat,lon,time_s,speed_kmh,fuel_ml\n"
        )
        assert main(["clean", str(empty)]) == 1


class TestStudy:
    def test_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "study"
        code = main([
            "study", "--days", "8", "--seed", "9", "--out", str(out), "--svg",
        ])
        assert code == 0
        names = {p.name for p in out.iterdir()}
        assert {"table2.txt", "table3.txt", "table4.txt", "table5.txt",
                "fig5.txt", "fig10.txt"} <= names
        # SVG artefacts for the map figures.
        assert "fig9.svg" in names
        assert (out / "table3.txt").read_text().startswith("Car")

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestStudyGeojson:
    def test_geojson_exports(self, tmp_path):
        import json

        out = tmp_path / "study"
        assert main(["study", "--days", "8", "--seed", "9",
                     "--out", str(out), "--geojson"]) == 0
        for name in ("roads", "gates", "routes", "cells"):
            path = out / f"{name}.geojson"
            assert path.exists()
            fc = json.loads(path.read_text())
            assert fc["type"] == "FeatureCollection"
