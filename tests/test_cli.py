"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_writes_points_and_trips(self, tmp_path, capsys):
        points = tmp_path / "p.csv"
        trips = tmp_path / "t.jsonl"
        code = main([
            "simulate", "--days", "1", "--seed", "3",
            "--points", str(points), "--trips", str(trips),
        ])
        assert code == 0
        assert points.exists() and points.stat().st_size > 1000
        assert trips.exists()
        out = capsys.readouterr().out
        assert "route points" in out


class TestClean:
    def test_reports_stages(self, tmp_path, capsys):
        points = tmp_path / "p.csv"
        assert main(["simulate", "--days", "1", "--seed", "3",
                     "--points", str(points)]) == 0
        capsys.readouterr()
        assert main(["clean", str(points)]) == 0
        out = capsys.readouterr().out
        assert "segments out" in out
        assert "rule firings" in out
        # Full accounting: bounds filter, points out, and a time column.
        assert "out-of-bounds removed" in out
        assert "points out" in out
        assert "Seconds" in out

    def test_metrics_out_writes_json(self, tmp_path, capsys):
        import json

        points = tmp_path / "p.csv"
        metrics = tmp_path / "clean_metrics.json"
        assert main(["simulate", "--days", "1", "--seed", "3",
                     "--points", str(points)]) == 0
        assert main(["clean", str(points), "--metrics-out", str(metrics)]) == 0
        doc = json.loads(metrics.read_text())
        assert doc["counters"]["clean.trips_in"] > 0
        assert "clean.out_of_bounds_removed" in doc["counters"]
        assert [s["name"] for s in doc["spans"]] == ["clean"]

    def test_empty_csv_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.csv"
        empty.write_text(
            "car_id,point_id,trip_id,lat,lon,time_s,speed_kmh,fuel_ml\n"
        )
        assert main(["clean", str(empty)]) == 1


class TestStudy:
    def test_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "study"
        code = main([
            "study", "--days", "8", "--seed", "9", "--out", str(out), "--svg",
        ])
        assert code == 0
        names = {p.name for p in out.iterdir()}
        assert {"table2.txt", "table3.txt", "table4.txt", "table5.txt",
                "fig5.txt", "fig10.txt"} <= names
        # SVG artefacts for the map figures.
        assert "fig9.svg" in names
        assert (out / "table3.txt").read_text().startswith("Car")

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_metrics_out_and_log_level(self, tmp_path, capsys):
        import json
        import logging

        out = tmp_path / "study"
        metrics = tmp_path / "m.json"
        code = main([
            "study", "--days", "4", "--seed", "9", "--out", str(out),
            "--metrics-out", str(metrics), "--log-level", "INFO",
        ])
        # Leave global logging unconfigured for subsequent tests.
        root = logging.getLogger("repro")
        root.handlers = []
        root.setLevel(logging.NOTSET)
        root.propagate = True
        assert code == 0
        # Always written next to the tables, and to --metrics-out.
        assert (out / "metrics.json").exists()
        doc = json.loads(metrics.read_text())
        assert doc == json.loads((out / "metrics.json").read_text())
        counters = doc["counters"]
        assert counters["clean.trips_in"] > 0
        assert counters["od.segments_total"] > 0
        assert "od.within_centre" in counters
        latency = doc["histograms"]["matching.match_seconds"]
        assert latency["count"] > 0 and "p99" in latency
        (root_span,) = doc["spans"]
        assert root_span["name"] == "study"
        assert {c["name"] for c in root_span["children"]} >= {
            "simulate", "clean", "extract", "match",
        }
        # Per-stage log lines went to stderr.
        err = capsys.readouterr().err
        assert "cleaning stage complete" in err


class TestStudyGeojson:
    def test_geojson_exports(self, tmp_path):
        import json

        out = tmp_path / "study"
        assert main(["study", "--days", "8", "--seed", "9",
                     "--out", str(out), "--geojson"]) == 0
        for name in ("roads", "gates", "routes", "cells"):
            path = out / f"{name}.geojson"
            assert path.exists()
            fc = json.loads(path.read_text())
            assert fc["type"] == "FeatureCollection"
