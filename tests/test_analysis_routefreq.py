"""Tests for repro.analysis.routefreq."""

import pytest

from repro.analysis.routefreq import (
    build_direction_profiles,
    overlap_fraction,
    route_signature,
)
from repro.matching.types import MatchedPoint, MatchedRoute
from repro.traces.model import RoutePoint


def make_route(edge_ids, t0=0.0, t1=300.0):
    points = [
        MatchedPoint(
            point=RoutePoint(point_id=1, trip_id=1, lat=0, lon=0, time_s=t0),
            edge_id=edge_ids[0], arc_m=0.0, snapped_xy=(0.0, 0.0),
            match_distance_m=0.0,
        ),
        MatchedPoint(
            point=RoutePoint(point_id=2, trip_id=1, lat=0, lon=0, time_s=t1),
            edge_id=edge_ids[-1], arc_m=0.0, snapped_xy=(0.0, 0.0),
            match_distance_m=0.0,
        ),
    ]
    route = MatchedRoute(segment_id=1, car_id=1, matched=points)
    route.edge_sequence = [(e, 0) for e in edge_ids]
    return route


class FakeTransition:
    def __init__(self, direction):
        self.direction = direction


class TestRouteSignature:
    def test_dedupes_immediate_repeats(self):
        route = make_route([1, 1, 2, 3, 3, 3, 2])
        assert route_signature(route) == (1, 2, 3, 2)

    def test_empty_route(self):
        route = MatchedRoute(segment_id=1, car_id=1)
        assert route_signature(route) == ()


class TestOverlap:
    def test_identical(self):
        assert overlap_fraction((1, 2, 3), (1, 2, 3)) == 1.0

    def test_disjoint(self):
        assert overlap_fraction((1, 2), (3, 4)) == 0.0

    def test_partial(self):
        assert overlap_fraction((1, 2, 3), (2, 3, 4)) == pytest.approx(0.5)

    def test_both_empty(self):
        assert overlap_fraction((), ()) == 1.0


class TestProfiles:
    def build(self):
        pairs = [
            (FakeTransition("T-S"), make_route([1, 2, 3], 0.0, 400.0)),
            (FakeTransition("T-S"), make_route([1, 2, 3], 0.0, 380.0)),
            (FakeTransition("T-S"), make_route([1, 5, 3], 0.0, 300.0)),
            (FakeTransition("L-T"), make_route([7, 8], 0.0, 250.0)),
        ]
        return build_direction_profiles(pairs)

    def test_grouping(self):
        profiles = self.build()
        assert set(profiles) == {"T-S", "L-T"}
        assert profiles["T-S"].n_trips == 3
        assert profiles["T-S"].n_variants == 2

    def test_shares_sum_to_one(self):
        profile = self.build()["T-S"]
        assert sum(v.share for v in profile.variants) == pytest.approx(1.0)

    def test_most_frequent(self):
        profile = self.build()["T-S"]
        assert profile.most_frequent().signature == (1, 2, 3)
        assert profile.most_frequent().count == 2

    def test_fastest_recommendation(self):
        profile = self.build()["T-S"]
        assert profile.fastest().signature == (1, 5, 3)
        assert profile.fastest().mean_time_s == pytest.approx(300.0)

    def test_diversity_bounds(self):
        profiles = self.build()
        assert profiles["L-T"].diversity == pytest.approx(1.0)
        assert 1.0 < profiles["T-S"].diversity <= 2.0

    def test_on_study_output(self, study_result):
        profiles = build_direction_profiles(study_result.kept())
        assert profiles
        for profile in profiles.values():
            assert profile.n_trips >= 1
            assert profile.diversity >= 1.0
            assert sum(v.count for v in profile.variants) == profile.n_trips

    def test_drivers_freely_select_routes(self, study_result):
        """At least one direction shows route diversity (the paper's
        premise that taxi drivers choose routes freely)."""
        profiles = build_direction_profiles(study_result.kept())
        assert any(p.n_variants > 1 for p in profiles.values())
