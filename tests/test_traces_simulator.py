"""Tests for repro.traces.simulator (using the session fleet fixture)."""

import pytest

from repro.traces import FleetSpec, TaxiFleetSimulator
from repro.traces.simulator import REGION_TRANSITIONS, Region


class TestFleetSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetSpec(n_taxis=0)
        with pytest.raises(ValueError):
            FleetSpec(step_m=0.0)

    def test_region_transition_probabilities_sum_to_one(self):
        for region, choices in REGION_TRANSITIONS.items():
            assert sum(p for __, p in choices) == pytest.approx(1.0, abs=1e-9)


class TestSimulatedFleet:
    def test_all_cars_present(self, fleet):
        assert fleet.car_ids() == [1, 2, 3, 4, 5, 6, 7]

    def test_trips_have_points(self, fleet):
        assert all(len(t) >= 2 for t in fleet.trips)

    def test_trip_ids_unique(self, fleet):
        ids = [t.trip_id for t in fleet.trips]
        assert len(ids) == len(set(ids))

    def test_points_carry_trip_id(self, fleet):
        for trip in fleet.trips[:20]:
            assert all(p.trip_id == trip.trip_id for p in trip.points)

    def test_speeds_non_negative(self, fleet):
        assert all(p.speed_kmh >= 0.0 for t in fleet.trips for p in t.points)

    def test_coordinates_near_oulu(self, fleet):
        for trip in fleet.trips:
            for p in trip.points:
                assert 64.9 < p.lat < 65.1
                assert 25.2 < p.lon < 25.8

    def test_fuel_monotonic_in_true_order(self, city):
        # Without reordering noise the cumulative fuel never decreases.
        from repro.traces.noise import NoiseSpec

        spec = FleetSpec(n_days=2, seed=3, noise=NoiseSpec(
            gps_sigma_m=0.0, reorder_prob=0.0, glitch_prob=0.0, duplicate_prob=0.0))
        fleet, __ = TaxiFleetSimulator(city, spec).simulate()
        for trip in fleet.trips:
            fuels = [p.fuel_ml for p in trip.points]
            assert fuels == sorted(fuels)

    def test_times_monotonic_without_noise(self, city):
        from repro.traces.noise import NoiseSpec

        spec = FleetSpec(n_days=2, seed=3, noise=NoiseSpec(
            gps_sigma_m=0.0, reorder_prob=0.0, glitch_prob=0.0, duplicate_prob=0.0))
        fleet, __ = TaxiFleetSimulator(city, spec).simulate()
        for trip in fleet.trips:
            times = [p.time_s for p in trip.points]
            assert times == sorted(times)

    def test_event_sampling_has_no_fixed_rate(self, fleet):
        # Gaps between consecutive points vary a lot (event-based emission).
        gaps = []
        for trip in fleet.trips[:20]:
            times = sorted(p.time_s for p in trip.points)
            gaps.extend(b - a for a, b in zip(times, times[1:]))
        distinct = {round(g, 1) for g in gaps}
        assert len(distinct) > 20

    def test_deterministic(self, city):
        spec = FleetSpec(n_days=2, seed=99)
        f1, r1 = TaxiFleetSimulator(city, spec).simulate()
        f2, r2 = TaxiFleetSimulator(city, spec).simulate()
        assert len(f1) == len(f2)
        assert [len(t) for t in f1.trips] == [len(t) for t in f2.trips]
        assert [r.gates_crossed for r in r1] == [r.gates_crossed for r in r2]


class TestGroundTruthRuns:
    def test_runs_reference_trips(self, fleet, runs):
        trip_ids = {t.trip_id for t in fleet.trips}
        assert all(r.trip_id in trip_ids for r in runs)

    def test_run_times_ordered(self, runs):
        assert all(r.end_time_s > r.start_time_s for r in runs)

    def test_edges_non_empty(self, runs):
        assert all(len(r.edge_ids) >= 1 for r in runs)

    def test_path_lengths_positive(self, runs):
        assert all(r.path_length_m > 0 for r in runs)

    def test_gate_names_valid(self, runs):
        for r in runs:
            assert all(g in ("T", "S", "L") for g in r.gates_crossed)

    def test_studied_pairs_occur(self, runs):
        pairs = {r.gates_crossed for r in runs if len(r.gates_crossed) == 2}
        studied = {("T", "S"), ("S", "T"), ("T", "L"), ("L", "T")}
        assert pairs & studied, "no studied OD pair in 12 simulated days"

    def test_north_to_south_crosses_t_first(self, runs):
        for r in runs:
            if r.origin_region is Region.NORTH and r.dest_region is Region.SOUTH_S:
                if len(r.gates_crossed) == 2:
                    assert r.gates_crossed[0] == "T"

    def test_core_runs_mostly_gate_free(self, runs):
        core = [r for r in runs
                if r.origin_region is Region.CORE and r.dest_region is Region.CORE]
        gate_free = sum(1 for r in core if not r.gates_crossed)
        assert gate_free / max(1, len(core)) > 0.9
