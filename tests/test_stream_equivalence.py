"""Differential harness: streaming replay == batch study, byte for byte.

The stream folds with the *same stage functions* the batch study calls,
in the same per-trip order, so every artefact — cleaning report, Table 3
funnel, Table 4 route stats, the Welford grid down to its raw ``_m2``
partials, cell features, the mixed model and the quarantine ledger —
must be **bit-identical** at any micro-batch size.  Fingerprints render
floats as ``float.hex`` so "close" can never pass for "equal".

Hypothesis drives the micro-batch size; the pinned examples are the
ISSUE's contract points (1, 7, 64, whole-file).  One case streams under
a seeded chaos plan (same injections on both sides), one runs with the
live matcher enabled (observational: artefacts must not move), and one
follows a growing CSV in ``tail`` mode while a writer appends.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.experiments import OuluStudy
from repro.faults import FaultPlan, Quarantine, inject_faults
from repro.stream import (
    StreamConfig,
    StreamService,
    stream_fingerprint,
    study_fingerprint,
)
from repro.traces.io import read_points_csv

REPO = Path(__file__).resolve().parent.parent

#: Whole-file micro-batch: larger than any test CSV.
WHOLE_FILE = 1_000_000_000


def run_stream(config, path, **overrides):
    kwargs = dict(study=config, input=str(path), mode="replay", batch_size=64)
    kwargs.update(overrides)
    return StreamService(StreamConfig(**kwargs)).run()


def assert_same_artefacts(got: dict, want: dict) -> None:
    # Component-first so a failure names the diverging artefact.
    for name in want:
        assert got[name] == want[name], f"artefact {name!r} diverged"
    assert got == want


class TestReplayEquivalence:
    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(batch_size=st.integers(min_value=1, max_value=WHOLE_FILE))
    @example(batch_size=1)
    @example(batch_size=7)
    @example(batch_size=64)
    @example(batch_size=WHOLE_FILE)
    def test_any_micro_batch_size_matches_batch_study(
        self, stream_case, batch_size
    ):
        config, path, baseline = stream_case
        result = run_stream(config, path, batch_size=batch_size)
        assert_same_artefacts(stream_fingerprint(result), baseline)

    def test_live_matching_is_observational(self, stream_case):
        config, path, baseline = stream_case
        result = run_stream(config, path, batch_size=32, live_match=True)
        assert_same_artefacts(stream_fingerprint(result), baseline)
        assert result.metrics["counters"]["stream.live_points"] > 0

    def test_stream_counters_account_every_row(self, stream_case):
        config, path, baseline = stream_case
        result = run_stream(config, path, batch_size=64)
        counters = result.metrics["counters"]
        assert counters["stream.rows_in"] == result.rows_ingested
        assert counters["stream.trips_folded"] == result.trips_seen
        assert counters["od.within_centre"] == result.transitions_total
        assert result.kept_count == sum(
            row.post_filtered for row in result.funnel
        )

    def test_windows_partition_the_fold(self, stream_case):
        config, path, __ = stream_case
        result = run_stream(config, path, batch_size=64, window_s=21_600.0)
        assert result.windows, "a multi-day fleet must close windows"
        assert [w["window"] for w in result.windows] == sorted(
            w["window"] for w in result.windows
        )
        assert sum(w["trips"] for w in result.windows) == result.trips_seen
        assert sum(w["kept"] for w in result.windows) == result.kept_count


class TestChaosEquivalence:
    def test_same_fault_plan_same_artefacts(self, stream_case, chaos_seed):
        """Injected io/clean/match faults hit identical units on both
        sides: fault keys are row indices, trip ids and transition
        indices, all of which the stream preserves."""
        config, path, __ = stream_case
        plan = FaultPlan(
            seed=chaos_seed,
            corrupt_row_rate=0.005,
            clean_error_rate=0.02,
            match_error_rate=0.02,
        )
        faulty = type(config)(
            fleet=config.fleet, faults=plan, robustness=config.robustness
        )
        quarantine = Quarantine()
        with inject_faults(plan):  # the stream's reader sees the plan too
            injected = read_points_csv(path, quarantine=quarantine)
        batch = OuluStudy(faulty).run(fleet=injected)
        baseline = study_fingerprint(batch, quarantine.errors)
        result = run_stream(faulty, path, batch_size=17)
        assert_same_artefacts(stream_fingerprint(result), baseline)
        assert any(e.fault_tag for e in result.errors), \
            "the seeded plan must inject at least one fault"


class TestTailMode:
    def test_tailed_growing_csv_matches_batch(self, stream_case, tmp_path):
        config, path, baseline = stream_case
        target = tmp_path / "growing.csv"
        lines = Path(path).read_text().splitlines(keepends=True)
        target.write_text("".join(lines[:1]))  # header only

        def writer():
            with target.open("a") as f:
                for start in range(1, len(lines), 499):
                    f.write("".join(lines[start:start + 499]))
                    f.flush()
                    time.sleep(0.01)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            result = run_stream(
                config, target, mode="tail", batch_size=64, idle_timeout_s=2.0
            )
        finally:
            thread.join()
        assert_same_artefacts(stream_fingerprint(result), baseline)


class TestServeCli:
    def test_serve_writes_study_identical_tables(self, stream_case, tmp_path):
        """``repro serve`` on a replayed CSV must emit the same table
        artefacts and error ledger as ``repro study --input`` on it."""
        config, path, __ = stream_case
        env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
        batch_out = tmp_path / "batch"
        serve_out = tmp_path / "serve"
        for argv in (
            ["study", "--input", str(path), "--out", str(batch_out)],
            ["serve", "--input", str(path), "--out", str(serve_out),
             "--batch-size", "64"],
        ):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", *argv, "--quiet"],
                cwd=REPO, env=env, capture_output=True, text=True,
            )
            assert proc.returncode == 0, proc.stderr
        for name in ("table2.txt", "table3.txt", "table4.txt", "table5.txt",
                      "errors.jsonl"):
            assert (serve_out / name).read_bytes() == \
                (batch_out / name).read_bytes(), f"{name} diverged"
        assert (serve_out / "windows.jsonl").exists()
        assert (serve_out / "metrics.json").exists()
