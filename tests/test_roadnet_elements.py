"""Tests for repro.roadnet.elements and repro.roadnet.digiroad."""

import pytest

from repro.geo.geometry import LineString
from repro.roadnet.digiroad import MapDatabase
from repro.roadnet.elements import (
    FlowDirection,
    PointObject,
    PointObjectKind,
    SegmentedAttribute,
    TrafficElement,
)


def element(eid=1, coords=((0, 0), (100, 0)), **kwargs):
    return TrafficElement(element_id=eid, geometry=LineString(coords), **kwargs)


class TestTrafficElement:
    def test_length(self):
        assert element().length_m == pytest.approx(100.0)

    def test_endpoints(self):
        e = element()
        assert e.start() == (0.0, 0.0)
        assert e.end() == (100.0, 0.0)

    def test_positive_speed_limit_required(self):
        with pytest.raises(ValueError):
            element(speed_limit_kmh=0.0)

    def test_flow_reversal(self):
        assert FlowDirection.FORWARD.reversed() is FlowDirection.BACKWARD
        assert FlowDirection.BACKWARD.reversed() is FlowDirection.FORWARD
        assert FlowDirection.BOTH.reversed() is FlowDirection.BOTH


class TestSegmentedAttribute:
    def test_range_validation(self):
        with pytest.raises(ValueError):
            SegmentedAttribute(1, "speed_limit", 50.0, 50.0, 30)

    def test_covers(self):
        attr = SegmentedAttribute(1, "speed_limit", 10.0, 20.0, 30)
        assert attr.covers(15.0)
        assert attr.covers(10.0)
        assert not attr.covers(25.0)


class TestPointObject:
    def test_attribute_lookup(self):
        obj = PointObject(
            1, PointObjectKind.BUS_STOP, (0.0, 0.0),
            attributes=(("route", "20A"),),
        )
        assert obj.attribute("route") == "20A"
        assert obj.attribute("missing", "dflt") == "dflt"


class TestMapDatabase:
    def setup_method(self):
        self.db = MapDatabase()
        self.db.add_element(element(1, ((0, 0), (100, 0)), speed_limit_kmh=40.0))
        self.db.add_element(element(2, ((100, 0), (200, 0)), speed_limit_kmh=50.0))

    def test_element_lookup(self):
        assert self.db.element(1).speed_limit_kmh == 40.0
        assert self.db.element_count() == 2

    def test_duplicate_element_rejected(self):
        with pytest.raises(Exception):
            self.db.add_element(element(1))

    def test_elements_near(self):
        found = self.db.elements_near((50.0, 5.0), 10.0)
        assert [e.element_id for e in found] == [1]

    def test_nearest_element(self):
        e = self.db.nearest_element((150.0, 30.0))
        assert e.element_id == 2

    def test_nearest_element_respects_radius(self):
        assert self.db.nearest_element((50.0, 900.0), max_radius=100.0) is None

    def test_point_objects_by_kind(self):
        self.db.add_point_object(
            PointObject(1, PointObjectKind.TRAFFIC_LIGHT, (50.0, 0.0), element_id=1)
        )
        self.db.add_point_object(
            PointObject(2, PointObjectKind.BUS_STOP, (150.0, 0.0), element_id=2)
        )
        assert self.db.count_objects(PointObjectKind.TRAFFIC_LIGHT) == 1
        assert len(self.db.point_objects()) == 2
        assert len(self.db.point_objects(PointObjectKind.BUS_STOP)) == 1

    def test_objects_near_with_kind(self):
        self.db.add_point_object(
            PointObject(1, PointObjectKind.TRAFFIC_LIGHT, (50.0, 0.0))
        )
        self.db.add_point_object(
            PointObject(2, PointObjectKind.BUS_STOP, (52.0, 0.0))
        )
        lights = self.db.objects_near((50.0, 0.0), 10.0, PointObjectKind.TRAFFIC_LIGHT)
        assert [o.object_id for o in lights] == [1]

    def test_objects_on_element(self):
        self.db.add_point_object(
            PointObject(1, PointObjectKind.TRAFFIC_LIGHT, (50.0, 0.0), element_id=1)
        )
        assert len(self.db.objects_on_element(1)) == 1
        assert self.db.objects_on_element(2) == []

    def test_speed_limit_default(self):
        assert self.db.speed_limit_at(1, 50.0) == 40.0

    def test_segmented_restriction_overrides(self):
        self.db.add_segmented_attribute(
            SegmentedAttribute(1, "speed_limit", 20.0, 80.0, 30.0)
        )
        assert self.db.speed_limit_at(1, 50.0) == 30.0
        assert self.db.speed_limit_at(1, 10.0) == 40.0

    def test_most_restrictive_wins(self):
        self.db.add_segmented_attribute(
            SegmentedAttribute(1, "speed_limit", 0.0, 100.0, 30.0)
        )
        self.db.add_segmented_attribute(
            SegmentedAttribute(1, "speed_limit", 40.0, 60.0, 20.0)
        )
        assert self.db.speed_limit_at(1, 50.0) == 20.0

    def test_segmented_attribute_requires_known_element(self):
        with pytest.raises(KeyError):
            self.db.add_segmented_attribute(
                SegmentedAttribute(99, "speed_limit", 0.0, 10.0, 30.0)
            )

    def test_attribute_at(self):
        self.db.add_segmented_attribute(
            SegmentedAttribute(1, "road_address", 0.0, 100.0, "Kirkkokatu 1-20")
        )
        assert self.db.attribute_at(1, "road_address", 5.0) == "Kirkkokatu 1-20"
        assert self.db.attribute_at(1, "road_address", 150.0) is None

    def test_feature_census(self):
        self.db.add_point_object(
            PointObject(1, PointObjectKind.TRAFFIC_LIGHT, (50.0, 0.0))
        )
        census = self.db.feature_census()
        assert census["traffic_light"] == 1
        assert census["bus_stop"] == 0
