"""Tests for repro.experiments.svgmap."""

import pytest

from repro.experiments.svgmap import (
    SvgCanvas,
    diverging_colour,
    render_cells_svg,
    render_fig3_svg,
    render_fig6_svg,
    render_fig9_svg,
    speed_colour,
)


class TestCanvas:
    def test_transform_corners(self):
        c = SvgCanvas(-100.0, -100.0, 100.0, 100.0, width=400)
        assert c.to_px(-100.0, 100.0) == (0.0, 0.0)      # top-left
        assert c.to_px(100.0, -100.0) == (400.0, 400.0)  # bottom-right
        assert c.height == 400

    def test_y_axis_flipped(self):
        c = SvgCanvas(0.0, 0.0, 100.0, 100.0)
        __, py_north = c.to_px(50.0, 90.0)
        __, py_south = c.to_px(50.0, 10.0)
        assert py_north < py_south


class TestColours:
    def test_speed_ramp_endpoints(self):
        assert speed_colour(0.0) == "rgb(220,40,40)"
        assert speed_colour(60.0) == "rgb(40,220,40)"

    def test_speed_clamped(self):
        assert speed_colour(-5.0) == speed_colour(0.0)
        assert speed_colour(500.0) == speed_colour(60.0)

    def test_diverging_sign(self):
        assert diverging_colour(0.0) == "rgb(255,255,255)"
        assert diverging_colour(-15.0) == "rgb(0,0,255)"
        assert diverging_colour(15.0) == "rgb(255,0,0)"


class TestRendering:
    def test_fig3_svg_valid(self, study_result):
        cars = sorted({t.segment.car_id for t, __ in study_result.kept()})
        svg = render_fig3_svg(study_result, cars[0])
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "<circle" in svg
        assert "gate T" in svg

    def test_fig6_svg_valid(self, study_result):
        directions = {t.direction for t, __ in study_result.kept()}
        svg = render_fig6_svg(study_result, sorted(directions)[0])
        assert "<rect" in svg
        assert "Fig. 6" in svg

    def test_fig9_svg_valid(self, study_result):
        svg = render_fig9_svg(study_result)
        assert svg.count("<rect") >= len(study_result.mixed.groups)
        assert "Fig. 9" in svg

    def test_fig9_requires_mixed_model(self, study_result):
        import copy

        hollow = copy.copy(study_result)
        hollow.mixed = None
        with pytest.raises(ValueError):
            render_fig9_svg(hollow)

    def test_cells_svg_tooltips(self, study_result):
        svg = render_cells_svg(study_result, {(0, 0): 12.3}, "test")
        assert "<title>(0, 0): 12.3</title>" in svg
