"""Tests for repro.geo.vector — batch kernels vs their scalar references."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import (
    EARTH_RADIUS_M,
    bearing_deg,
    destination_point,
    equirectangular_m,
    haversine_m,
)
from repro.geo.geometry import project_point_to_segment
from repro.geo.vector import (
    bearing_deg_vec,
    equirectangular_m_vec,
    gap_metrics,
    haversine_m_vec,
    project_onto_segments,
)

lat_st = st.floats(min_value=-85.0, max_value=85.0)
lon_st = st.floats(min_value=-180.0, max_value=180.0)
xy_st = st.floats(min_value=-1e5, max_value=1e5)


class TestHaversineVec:
    @given(lat1=lat_st, lon1=lon_st, lat2=lat_st, lon2=lon_st)
    @settings(max_examples=300, deadline=None)
    def test_agrees_with_scalar_to_1e9_relative(self, lat1, lon1, lat2, lon2):
        scalar = haversine_m(lat1, lon1, lat2, lon2)
        batch = float(haversine_m_vec(lat1, lon1, lat2, lon2))
        assert batch == pytest.approx(scalar, rel=1e-9, abs=1e-6)

    def test_batch_over_column(self):
        lats = np.array([65.0, 65.01, 65.02])
        lons = np.array([25.4, 25.41, 25.42])
        batch = haversine_m_vec(lats[:-1], lons[:-1], lats[1:], lons[1:])
        for i in range(2):
            scalar = haversine_m(lats[i], lons[i], lats[i + 1], lons[i + 1])
            assert float(batch[i]) == pytest.approx(scalar, rel=1e-12)

    def test_antipodal_clamp_no_nan(self):
        # The haversine term can round a hair above 1 near antipodes; both
        # implementations clamp so arcsin stays defined.
        d = float(haversine_m_vec(0.0, 0.0, 0.0, 180.0))
        assert not math.isnan(d)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-9)

    @given(lat=lat_st, lon=lon_st)
    @settings(max_examples=100, deadline=None)
    def test_near_antipode_never_nan(self, lat, lon):
        anti_lat = -lat
        anti_lon = lon + 180.0 if lon <= 0.0 else lon - 180.0
        d = float(haversine_m_vec(lat, lon, anti_lat, anti_lon))
        assert not math.isnan(d)
        assert d <= math.pi * EARTH_RADIUS_M * (1.0 + 1e-12)

    def test_zero_distance(self):
        assert float(haversine_m_vec(65.0, 25.4, 65.0, 25.4)) == 0.0


class TestEquirectangularVec:
    @given(lat1=lat_st, lon1=lon_st, lat2=lat_st, lon2=lon_st)
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar(self, lat1, lon1, lat2, lon2):
        scalar = equirectangular_m(lat1, lon1, lat2, lon2)
        batch = float(equirectangular_m_vec(lat1, lon1, lat2, lon2))
        # Same formula and op order; np.cos may differ from libm by 1 ulp.
        assert batch == pytest.approx(scalar, rel=1e-12, abs=1e-9)


class TestBearingVec:
    @given(lat1=lat_st, lon1=lon_st, lat2=lat_st, lon2=lon_st)
    @settings(max_examples=200, deadline=None)
    def test_agrees_with_scalar(self, lat1, lon1, lat2, lon2):
        scalar = bearing_deg(lat1, lon1, lat2, lon2)
        batch = float(bearing_deg_vec(lat1, lon1, lat2, lon2))
        # Compare as angles: 0 and 360 are the same bearing.
        delta = abs(batch - scalar)
        assert min(delta, 360.0 - delta) < 1e-9

    def test_cardinal_directions(self):
        assert float(bearing_deg_vec(65.0, 25.0, 66.0, 25.0)) == pytest.approx(0.0, abs=1e-9)
        assert float(bearing_deg_vec(65.0, 25.0, 64.0, 25.0)) == pytest.approx(180.0, abs=1e-9)


class TestDestinationPointNormalization:
    """Longitude normalisation near the antimeridian (satellite coverage)."""

    @given(
        lat=st.floats(min_value=-60.0, max_value=60.0),
        bearing=st.floats(min_value=0.0, max_value=360.0),
        dist=st.floats(min_value=0.0, max_value=2_000_000.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_longitude_always_in_range_near_antimeridian(self, lat, bearing, dist):
        for lon in (179.999, -179.999, 180.0, -180.0):
            __, out_lon = destination_point(lat, lon, bearing, dist)
            assert -180.0 <= out_lon < 180.0

    def test_eastward_across_antimeridian_wraps_negative(self):
        __, lon = destination_point(0.0, 179.9, 90.0, 50_000.0)
        assert -180.0 < lon < -179.5

    def test_westward_across_antimeridian_wraps_positive(self):
        __, lon = destination_point(0.0, -179.9, 270.0, 50_000.0)
        assert 179.5 < lon < 180.0

    def test_round_trip_distance_consistency_across_antimeridian(self):
        start = (10.0, 179.95)
        dest = destination_point(*start, 90.0, 30_000.0)
        assert haversine_m(*start, *dest) == pytest.approx(30_000.0, rel=1e-6)


class TestGapMetrics:
    def test_empty_and_single_point(self):
        for n in (0, 1):
            dist, dt = gap_metrics(np.zeros(n), np.zeros(n), np.zeros(n))
            assert dist.shape == (0,) and dt.shape == (0,)

    def test_matches_scalar_pairs(self):
        lat = np.array([65.0, 65.001, 65.003, 65.0031])
        lon = np.array([25.4, 25.402, 25.401, 25.405])
        t = np.array([0.0, 10.0, 40.0, 41.5])
        dist, dt = gap_metrics(lat, lon, t)
        assert dist.shape == (3,) and dt.shape == (3,)
        for i in range(3):
            assert float(dist[i]) == pytest.approx(
                haversine_m(lat[i], lon[i], lat[i + 1], lon[i + 1]), rel=1e-12
            )
            assert float(dt[i]) == t[i + 1] - t[i]


class TestProjectOntoSegments:
    @given(px=xy_st, py=xy_st, ax=xy_st, ay=xy_st, bx=xy_st, by=xy_st)
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_projection(self, px, py, ax, ay, bx, by):
        cx, cy, t = project_onto_segments(px, py, ax, ay, bx, by)
        (sx, sy), st_ = project_point_to_segment((px, py), (ax, ay), (bx, by))
        assert float(t) == pytest.approx(st_, abs=1e-12)
        assert float(cx) == pytest.approx(sx, abs=1e-6)
        assert float(cy) == pytest.approx(sy, abs=1e-6)

    def test_degenerate_segment_projects_to_start(self):
        cx, cy, t = project_onto_segments(
            np.array([5.0]), np.array([5.0]),
            np.array([1.0]), np.array([2.0]),
            np.array([1.0]), np.array([2.0]),
        )
        assert (cx.item(), cy.item(), t.item()) == (1.0, 2.0, 0.0)

    def test_t_clamped_to_unit_interval(self):
        cx, cy, t = project_onto_segments(
            np.array([-10.0, 10.0]), np.array([0.0, 0.0]),
            np.array([0.0, 0.0]), np.array([0.0, 0.0]),
            np.array([1.0, 1.0]), np.array([0.0, 0.0]),
        )
        assert list(t) == [0.0, 1.0]
        assert list(cx) == [0.0, 1.0]
