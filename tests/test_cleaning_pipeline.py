"""Tests for repro.cleaning.pipeline on simulated data."""


from repro.cleaning import CleaningPipeline
from repro.cleaning.filters import FilterConfig


class TestPipelineOnSimulatedFleet:
    def test_produces_segments(self, clean_result):
        assert clean_result.report.segments_out > 0
        assert len(clean_result.segments) == clean_result.report.segments_out

    def test_segment_count_close_to_true_runs(self, clean_result, runs):
        # Segmentation should recover most customer runs (within 20 %).
        ratio = len(clean_result.segments) / len(runs)
        assert 0.8 < ratio < 1.2

    def test_detects_injected_reordering(self, clean_result):
        assert clean_result.report.reordered_trips > 0
        assert clean_result.report.reordering_saved_m > 0.0

    def test_removes_injected_duplicates_and_glitches(self, clean_result):
        assert clean_result.report.duplicates_removed > 0
        assert clean_result.report.outliers_removed > 0

    def test_segments_meet_filters(self, clean_result):
        config = FilterConfig()
        for seg in clean_result.segments:
            assert len(seg.points) >= config.min_segment_points
            assert seg.distance_m <= config.max_segment_length_m

    def test_segment_times_monotonic(self, clean_result):
        for seg in clean_result.segments:
            times = [p.time_s for p in seg.points]
            assert times == sorted(times)

    def test_segments_for_car(self, clean_result):
        per_car = clean_result.segments_for_car(1)
        assert per_car
        assert all(s.car_id == 1 for s in per_car)

    def test_rule1_dominates_for_taxi_dwells(self, clean_result):
        hits = clean_result.report.segmentation.rule_hits
        assert hits[1] > hits[2] + hits[3] + hits[4]

    def test_points_accounting(self, clean_result):
        r = clean_result.report
        assert r.points_out <= r.points_in
        assert r.points_out == sum(len(s.points) for s in clean_result.segments)

    def test_repair_disabled(self, fleet):
        result = CleaningPipeline(repair=False).run(fleet)
        assert result.report.reordered_trips == 0
        # Without repair, zigzag hops may push some implied speeds over the
        # outlier threshold; segments still come out.
        assert result.report.segments_out > 0

    def test_mean_segment_shape_plausible(self, clean_result):
        # Paper Table 4 scale: a couple of km, a few minutes.
        import statistics

        dists = [s.distance_m for s in clean_result.segments]
        assert 1_000 < statistics.mean(dists) < 6_000
        durations = [s.duration_s for s in clean_result.segments]
        assert 120 < statistics.mean(durations) < 1_200
