"""Tests for repro.analysis.anomaly."""

import pytest

from repro.analysis.anomaly import (
    AnomalyConfig,
    anomaly_rate,
    detect_anomalies,
)
from repro.matching.types import MatchedPoint, MatchedRoute
from repro.traces.model import RoutePoint


def make_route(edge_ids, duration_s, segment_id=1, car_id=1):
    points = [
        MatchedPoint(
            point=RoutePoint(point_id=1, trip_id=1, lat=0, lon=0, time_s=0.0),
            edge_id=edge_ids[0], arc_m=0.0, snapped_xy=(0.0, 0.0),
            match_distance_m=0.0,
        ),
        MatchedPoint(
            point=RoutePoint(point_id=2, trip_id=1, lat=0, lon=0,
                             time_s=duration_s),
            edge_id=edge_ids[-1], arc_m=0.0, snapped_xy=(0.0, 0.0),
            match_distance_m=0.0,
        ),
    ]
    route = MatchedRoute(segment_id=segment_id, car_id=car_id, matched=points)
    route.edge_sequence = [(e, 0) for e in edge_ids]
    return route


class FakeTransition:
    def __init__(self, direction):
        self.direction = direction


def fleet_pairs():
    """Nine normal trips plus one detour and one slow trip."""
    pairs = []
    for i in range(9):
        pairs.append((FakeTransition("T-S"),
                      make_route([1, 2, 3, 4], 400.0 + i, segment_id=i)))
    # Spatial anomaly: a completely different route.
    pairs.append((FakeTransition("T-S"),
                  make_route([10, 11, 12, 13], 420.0, segment_id=90)))
    # Temporal anomaly: the normal route, three times slower.
    pairs.append((FakeTransition("T-S"),
                  make_route([1, 2, 3, 4], 1300.0, segment_id=91)))
    return pairs


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AnomalyConfig(min_overlap=2.0)
        with pytest.raises(ValueError):
            AnomalyConfig(max_duration_ratio=0.9)


class TestDetection:
    def test_detour_flagged_spatially(self):
        flags = detect_anomalies(fleet_pairs())
        by_id = {f.segment_id: f for f in flags}
        assert by_id[90].spatial_anomaly
        assert not by_id[90].temporal_anomaly

    def test_slow_trip_flagged_temporally(self):
        flags = detect_anomalies(fleet_pairs())
        by_id = {f.segment_id: f for f in flags}
        assert by_id[91].temporal_anomaly
        assert not by_id[91].spatial_anomaly

    def test_normal_trips_clean(self):
        flags = detect_anomalies(fleet_pairs())
        normal = [f for f in flags if f.segment_id < 9]
        assert all(not f.is_anomalous for f in normal)

    def test_anomaly_rate(self):
        flags = detect_anomalies(fleet_pairs())
        assert anomaly_rate(flags) == pytest.approx(2 / 11)
        assert anomaly_rate([]) == 0.0

    def test_small_directions_skipped(self):
        pairs = fleet_pairs()[:3]
        assert detect_anomalies(pairs) == []

    def test_overlap_reported(self):
        flags = detect_anomalies(fleet_pairs())
        by_id = {f.segment_id: f for f in flags}
        assert by_id[0].route_overlap == pytest.approx(1.0)
        assert by_id[90].route_overlap == pytest.approx(0.0)


class TestOnStudyData:
    def test_low_anomaly_rate_on_honest_fleet(self, study_result):
        """The simulator's drivers are honest: few trips flag."""
        flags = detect_anomalies(study_result.kept())
        if not flags:
            pytest.skip("study fixture has too few transitions per direction")
        assert anomaly_rate(flags) < 0.5
        for f in flags:
            assert 0.0 <= f.route_overlap <= 1.0
            assert f.duration_ratio > 0.0
