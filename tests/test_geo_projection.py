"""Tests for repro.geo.projection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import haversine_m
from repro.geo.projection import LocalProjector, TransverseMercator

OULU = (65.0121, 25.4651)


class TestLocalProjector:
    def setup_method(self):
        self.proj = LocalProjector(*OULU)

    def test_reference_maps_to_origin(self):
        assert self.proj.to_xy(*OULU) == pytest.approx((0.0, 0.0), abs=1e-9)

    def test_north_is_positive_y(self):
        __, y = self.proj.to_xy(OULU[0] + 0.01, OULU[1])
        assert y > 0

    def test_east_is_positive_x(self):
        x, __ = self.proj.to_xy(OULU[0], OULU[1] + 0.01)
        assert x > 0

    def test_roundtrip(self):
        lat, lon = self.proj.to_latlon(*self.proj.to_xy(65.02, 25.47))
        assert lat == pytest.approx(65.02, abs=1e-12)
        assert lon == pytest.approx(25.47, abs=1e-12)

    def test_planar_distance_matches_geodesic(self):
        p1 = self.proj.to_xy(65.02, 25.48)
        p2 = self.proj.to_xy(65.00, 25.45)
        planar = ((p1[0] - p2[0]) ** 2 + (p1[1] - p2[1]) ** 2) ** 0.5
        geo = haversine_m(65.02, 25.48, 65.00, 25.45)
        assert planar == pytest.approx(geo, rel=2e-3)

    @given(
        dlat=st.floats(min_value=-0.1, max_value=0.1),
        dlon=st.floats(min_value=-0.2, max_value=0.2),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, dlat, dlon):
        lat = OULU[0] + dlat
        lon = OULU[1] + dlon
        back = self.proj.to_latlon(*self.proj.to_xy(lat, lon))
        assert back[0] == pytest.approx(lat, abs=1e-10)
        assert back[1] == pytest.approx(lon, abs=1e-10)


class TestTransverseMercator:
    def setup_method(self):
        self.tm = TransverseMercator.tm35fin()

    def test_central_meridian_false_easting(self):
        e, __ = self.tm.to_xy(65.0, 27.0)
        assert e == pytest.approx(500_000.0, abs=1e-6)

    def test_known_helsinki_coordinates(self):
        # ETRS-TM35FIN for Helsinki city centre (zone values are ~385.6 km
        # east, ~6672 km north; sanity bounds, not survey-grade reference).
        e, n = self.tm.to_xy(60.1699, 24.9384)
        assert e == pytest.approx(385_600, abs=500)
        assert n == pytest.approx(6_672_100, abs=500)

    def test_roundtrip(self):
        e, n = self.tm.to_xy(*OULU)
        lat, lon = self.tm.to_latlon(e, n)
        assert lat == pytest.approx(OULU[0], abs=1e-9)
        assert lon == pytest.approx(OULU[1], abs=1e-9)

    def test_scale_factor_on_central_meridian(self):
        # One degree of latitude along the central meridian should measure
        # k0 * meridian arc; check against the haversine at small scale.
        e1, n1 = self.tm.to_xy(65.0, 27.0)
        e2, n2 = self.tm.to_xy(65.01, 27.0)
        projected = n2 - n1
        geodesic = haversine_m(65.0, 27.0, 65.01, 27.0)
        assert projected == pytest.approx(geodesic * 0.9996, rel=3e-3)

    @given(
        lat=st.floats(min_value=59.0, max_value=70.0),
        lon=st.floats(min_value=20.0, max_value=31.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_over_finland(self, lat, lon):
        e, n = self.tm.to_xy(lat, lon)
        back_lat, back_lon = self.tm.to_latlon(e, n)
        assert back_lat == pytest.approx(lat, abs=1e-8)
        assert back_lon == pytest.approx(lon, abs=1e-8)

    def test_agrees_with_local_projector_nearby(self):
        local = LocalProjector(*OULU)
        # Displacements measured in both projections should agree closely.
        e0, n0 = self.tm.to_xy(*OULU)
        e1, n1 = self.tm.to_xy(65.0221, 25.4851)
        x1, y1 = local.to_xy(65.0221, 25.4851)
        d_tm = ((e1 - e0) ** 2 + (n1 - n0) ** 2) ** 0.5
        d_local = (x1**2 + y1**2) ** 0.5
        assert d_tm == pytest.approx(d_local, rel=5e-3)
