"""Tests for structured logging configuration."""

import io
import json
import logging

from repro.obs import configure, get_logger
from repro.obs.log import ROOT_LOGGER


def teardown_function(function):
    # Leave the process in the "unconfigured" default state between tests.
    root = logging.getLogger(ROOT_LOGGER)
    root.handlers = []
    root.setLevel(logging.NOTSET)
    root.propagate = True


class TestGetLogger:
    def test_prefixes_repro(self):
        assert get_logger("matching").name == "repro.matching"

    def test_keeps_existing_prefix(self):
        assert get_logger("repro.od.gates").name == "repro.od.gates"
        assert get_logger("repro").name == "repro"


class TestConfigure:
    def test_human_mode_includes_extras(self):
        buf = io.StringIO()
        configure(level="INFO", stream=buf)
        get_logger("test").info("stage complete", extra={"stage": "clean", "n": 3})
        line = buf.getvalue().strip()
        assert "repro.test" in line
        assert "stage complete" in line
        assert "stage=clean" in line and "n=3" in line

    def test_json_mode_emits_parseable_lines(self):
        buf = io.StringIO()
        configure(level="DEBUG", json_mode=True, stream=buf)
        get_logger("test").debug("evt", extra={"count": 2, "weird": object()})
        doc = json.loads(buf.getvalue())
        assert doc["event"] == "evt"
        assert doc["logger"] == "repro.test"
        assert doc["level"] == "DEBUG"
        assert doc["count"] == 2
        assert isinstance(doc["weird"], str)  # repr fallback for non-JSON values
        assert isinstance(doc["ts"], float)

    def test_level_filters(self):
        buf = io.StringIO()
        configure(level="WARNING", stream=buf)
        get_logger("test").info("hidden")
        get_logger("test").warning("shown")
        assert "hidden" not in buf.getvalue()
        assert "shown" in buf.getvalue()

    def test_reconfigure_replaces_handler(self):
        a, b = io.StringIO(), io.StringIO()
        configure(level="INFO", stream=a)
        configure(level="INFO", stream=b)
        root = logging.getLogger(ROOT_LOGGER)
        assert len(root.handlers) == 1
        get_logger("test").info("once")
        assert a.getvalue() == ""
        assert b.getvalue().count("once") == 1
