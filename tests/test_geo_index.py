"""Tests for repro.geo.index."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.index import GridIndex


class TestGridIndexBasics:
    def test_cell_size_validation(self):
        with pytest.raises(ValueError):
            GridIndex(0.0)

    def test_insert_and_len(self):
        idx = GridIndex(100.0)
        idx.insert_point("a", (10.0, 10.0))
        idx.insert_point("b", (500.0, 500.0))
        assert len(idx) == 2
        assert "a" in idx

    def test_malformed_box_rejected(self):
        idx = GridIndex(100.0)
        with pytest.raises(ValueError):
            idx.insert("x", 10.0, 10.0, 5.0, 20.0)

    def test_reinsert_replaces(self):
        idx = GridIndex(100.0)
        idx.insert_point("a", (10.0, 10.0))
        idx.insert_point("a", (900.0, 900.0))
        assert len(idx) == 1
        assert idx.query_radius((10.0, 10.0), 50.0) == []
        assert idx.query_radius((900.0, 900.0), 50.0) == ["a"]

    def test_remove(self):
        idx = GridIndex(100.0)
        idx.insert_point("a", (10.0, 10.0))
        idx.remove("a")
        assert len(idx) == 0
        with pytest.raises(KeyError):
            idx.remove("a")

    def test_query_box_intersecting(self):
        idx = GridIndex(100.0)
        idx.insert("seg", 0.0, 0.0, 50.0, 50.0)
        assert idx.query_box(40.0, 40.0, 60.0, 60.0) == ["seg"]
        assert idx.query_box(51.0, 51.0, 60.0, 60.0) == []

    def test_spanning_item_found_from_any_cell(self):
        idx = GridIndex(100.0)
        idx.insert("long", 0.0, 0.0, 950.0, 10.0)
        assert idx.query_radius((900.0, 0.0), 20.0) == ["long"]
        assert idx.query_radius((450.0, 0.0), 20.0) == ["long"]

    def test_negative_radius_rejected(self):
        idx = GridIndex(100.0)
        with pytest.raises(ValueError):
            idx.query_radius((0.0, 0.0), -1.0)

    def test_churn_preserves_query_results_and_insertion_order(self):
        # Exercise the O(1) dict-bucket removal path: heavy interleaved
        # insert/remove churn in one shared cell, then confirm survivors
        # are exactly right and query order still follows insertion order.
        rng = random.Random(42)
        idx = GridIndex(100.0)
        alive: list[int] = []
        for step in range(2000):
            if alive and rng.random() < 0.5:
                victim = alive.pop(rng.randrange(len(alive)))
                idx.remove(victim)
            else:
                idx.insert_point(step, (rng.uniform(0.0, 90.0), rng.uniform(0.0, 90.0)))
                alive.append(step)
        assert len(idx) == len(alive)
        assert idx.query_box(0.0, 0.0, 90.0, 90.0) == alive

    def test_remove_spanning_item_clears_every_cell(self):
        idx = GridIndex(100.0)
        idx.insert("long", 0.0, 0.0, 950.0, 10.0)
        idx.remove("long")
        assert idx._cells == {}


class TestNearest:
    def test_empty_returns_none(self):
        assert GridIndex(100.0).nearest((0.0, 0.0)) is None

    def test_nearest_point(self):
        idx = GridIndex(100.0)
        idx.insert_point("near", (10.0, 0.0))
        idx.insert_point("far", (500.0, 0.0))
        assert idx.nearest((0.0, 0.0)) == "near"

    def test_nearest_respects_max_radius(self):
        idx = GridIndex(100.0)
        idx.insert_point("a", (500.0, 0.0))
        assert idx.nearest((0.0, 0.0), max_radius=100.0) is None
        assert idx.nearest((0.0, 0.0), max_radius=600.0) == "a"

    def test_nearest_across_empty_rings(self):
        idx = GridIndex(10.0)
        idx.insert_point("a", (1000.0, 1000.0))
        assert idx.nearest((0.0, 0.0)) == "a"


class TestAgainstBruteForce:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_radius_query_matches_brute_force(self, seed):
        rng = random.Random(seed)
        idx = GridIndex(50.0)
        points = {}
        for i in range(60):
            p = (rng.uniform(-500, 500), rng.uniform(-500, 500))
            points[i] = p
            idx.insert_point(i, p)
        centre = (rng.uniform(-500, 500), rng.uniform(-500, 500))
        radius = rng.uniform(10, 300)
        got = set(idx.query_radius(centre, radius))
        true_hits = {
            i for i, p in points.items()
            if math.hypot(p[0] - centre[0], p[1] - centre[1]) <= radius
        }
        # Grid query is box-level: it may return extras but never miss.
        assert true_hits <= got
        # And extras are bounded by the box circumscribing the disc.
        for i in got:
            p = points[i]
            assert abs(p[0] - centre[0]) <= radius + 1e-9
            assert abs(p[1] - centre[1]) <= radius + 1e-9

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_nearest_matches_brute_force_for_points(self, seed):
        rng = random.Random(seed)
        idx = GridIndex(80.0)
        points = {}
        for i in range(40):
            p = (rng.uniform(-400, 400), rng.uniform(-400, 400))
            points[i] = p
            idx.insert_point(i, p)
        q = (rng.uniform(-400, 400), rng.uniform(-400, 400))
        got = idx.nearest(q)
        best = min(points, key=lambda i: math.hypot(points[i][0] - q[0], points[i][1] - q[1]))
        best_d = math.hypot(points[best][0] - q[0], points[best][1] - q[1])
        got_d = math.hypot(points[got][0] - q[0], points[got][1] - q[1])
        # The grid nearest uses box distance; for points it is exact up to
        # ties within one cell ring.
        assert got_d <= best_d + idx.cell_size
