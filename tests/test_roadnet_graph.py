"""Tests for repro.roadnet.graph."""

import pytest

from repro.geo.geometry import LineString
from repro.roadnet.graph import ElementSpan, RoadEdge, RoadGraph, RoadNode


def simple_edge(edge_id=1, u=1, v=2, coords=((0, 0), (100, 0)),
                forward=True, backward=True, limit=40.0):
    geom = LineString(coords)
    return RoadEdge(
        edge_id=edge_id, u=u, v=v, geometry=geom,
        spans=(ElementSpan(100 + edge_id, 0.0, geom.length, False, limit),),
        forward_allowed=forward, backward_allowed=backward,
    )


@pytest.fixture()
def graph():
    g = RoadGraph()
    g.add_node(RoadNode(1, (0.0, 0.0)))
    g.add_node(RoadNode(2, (100.0, 0.0)))
    g.add_node(RoadNode(3, (100.0, 100.0)))
    g.add_edge(simple_edge(1, 1, 2))
    g.add_edge(simple_edge(2, 2, 3, coords=((100, 0), (100, 100))))
    return g


class TestGraphStructure:
    def test_counts(self, graph):
        assert graph.node_count == 3
        assert graph.edge_count == 2

    def test_duplicate_node_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_node(RoadNode(1, (5.0, 5.0)))

    def test_duplicate_edge_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_edge(simple_edge(1, 1, 2))

    def test_edge_with_unknown_node_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_edge(simple_edge(9, 1, 99))

    def test_neighbors(self, graph):
        assert sorted(graph.neighbors(2)) == [1, 3]
        assert graph.neighbors(1) == [2]

    def test_degree(self, graph):
        assert graph.degree(2) == 2
        assert graph.degree(3) == 1

    def test_bounds(self, graph):
        assert graph.bounds() == (0.0, 0.0, 100.0, 100.0)


class TestOneWay:
    def test_oneway_out_edges(self):
        g = RoadGraph()
        g.add_node(RoadNode(1, (0.0, 0.0)))
        g.add_node(RoadNode(2, (100.0, 0.0)))
        g.add_edge(simple_edge(1, 1, 2, forward=True, backward=False))
        assert [e.edge_id for e in g.out_edges(1)] == [1]
        assert g.out_edges(2) == []
        assert [e.edge_id for e in g.out_edges(2, respect_oneway=False)] == [1]

    def test_allows(self):
        e = simple_edge(1, 1, 2, forward=True, backward=False)
        assert e.allows(1)
        assert not e.allows(2)
        with pytest.raises(ValueError):
            e.allows(99)


class TestEdgeGeometry:
    def test_other(self):
        e = simple_edge()
        assert e.other(1) == 2
        assert e.other(2) == 1
        with pytest.raises(ValueError):
            e.other(3)

    def test_geometry_from(self):
        e = simple_edge()
        assert e.geometry_from(1).start() == (0.0, 0.0)
        assert e.geometry_from(2).start() == (100.0, 0.0)

    def test_span_at(self):
        geom = LineString([(0, 0), (200, 0)])
        e = RoadEdge(
            edge_id=1, u=1, v=2, geometry=geom,
            spans=(
                ElementSpan(10, 0.0, 100.0, False, 30.0),
                ElementSpan(11, 100.0, 200.0, True, 50.0),
            ),
        )
        assert e.span_at(50.0).element_id == 10
        assert e.span_at(150.0).element_id == 11
        assert e.span_at(-5.0).element_id == 10
        assert e.span_at(500.0).element_id == 11

    def test_element_arc_mapping(self):
        span = ElementSpan(10, 100.0, 200.0, False, 50.0)
        assert span.element_arc(150.0) == pytest.approx(50.0)
        reversed_span = ElementSpan(10, 100.0, 200.0, True, 50.0)
        assert reversed_span.element_arc(150.0) == pytest.approx(50.0)
        assert reversed_span.element_arc(110.0) == pytest.approx(90.0)

    def test_speed_limit_harmonic_mean(self):
        geom = LineString([(0, 0), (200, 0)])
        e = RoadEdge(
            edge_id=1, u=1, v=2, geometry=geom,
            spans=(
                ElementSpan(10, 0.0, 100.0, False, 30.0),
                ElementSpan(11, 100.0, 200.0, False, 60.0),
            ),
        )
        # Harmonic mean of 30 and 60 over equal lengths = 40.
        assert e.speed_limit_kmh == pytest.approx(40.0)


class TestSpatialQueries:
    def test_edges_near(self, graph):
        hits = graph.edges_near((50.0, 5.0), 10.0)
        assert [e.edge_id for e in hits] == [1]

    def test_nearest_edge(self, graph):
        assert graph.nearest_edge((50.0, 30.0)).edge_id == 1
        assert graph.nearest_edge((102.0, 50.0)).edge_id == 2

    def test_nearest_edge_radius_limit(self, graph):
        assert graph.nearest_edge((50.0, 5000.0), max_radius=100.0) is None

    def test_nearest_node(self, graph):
        assert graph.nearest_node((90.0, 10.0)).node_id == 2
        assert RoadGraph().nearest_node((0.0, 0.0)) is None
