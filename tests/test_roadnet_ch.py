"""Tests for repro.roadnet.ch — the contraction-hierarchy engine.

The load-bearing property: a prepared hierarchy must answer every
shortest-path query with exactly the cost flat Dijkstra computes, and
the unpacked shortcut paths must be real walks through the original
graph (contiguous, direction-legal, weight-consistent).  Everything
else — `.npz` round-trips, engine-selector wiring, observability — is
checked on top of that invariant.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.geo.geometry import LineString
from repro.roadnet.ch import (
    CHEngine,
    build_csr,
    contract_graph,
    load_ch,
    prepare_ch,
    save_ch,
)
from repro.roadnet.ch.engine import CH_FORMAT_VERSION
from repro.roadnet.graph import ElementSpan, RoadEdge, RoadGraph, RoadNode
from repro.roadnet.routing import (
    cached_shortest_path,
    make_routing_engine,
    shortest_path,
)


def build_random_city(
    seed: int,
    n: int = 25,
    extra_edges: int = 30,
    oneway_fraction: float = 0.0,
    components: int = 1,
) -> RoadGraph:
    """A random road graph, optionally with one-way edges or split into
    several mutually unreachable components."""
    rng = random.Random(seed)
    g = RoadGraph()
    positions = {}
    for i in range(1, n + 1):
        positions[i] = (rng.uniform(0, 1000), rng.uniform(0, 1000))
        g.add_node(RoadNode(i, positions[i]))
    edge_id = 1
    seen = set()
    # Partition nodes into components; edges never cross a boundary.
    comp_of = {i: (i - 1) * components // n for i in range(1, n + 1)}

    def add(u: int, v: int) -> None:
        nonlocal edge_id
        if u == v or (u, v) in seen or (v, u) in seen or comp_of[u] != comp_of[v]:
            return
        seen.add((u, v))
        geom = LineString([positions[u], positions[v]])
        oneway = rng.random() < oneway_fraction
        g.add_edge(
            RoadEdge(
                edge_id=edge_id, u=u, v=v, geometry=geom,
                spans=(ElementSpan(edge_id, 0.0, geom.length, False,
                                   rng.choice((30.0, 40.0, 60.0))),),
                forward_allowed=True,
                backward_allowed=not oneway,
            )
        )
        edge_id += 1

    order = list(range(1, n + 1))
    rng.shuffle(order)
    for u, v in zip(order, order[1:]):
        add(u, v)
    for __ in range(extra_edges):
        add(rng.randint(1, n), rng.randint(1, n))
    return g


def assert_same_answer(graph: RoadGraph, engine: CHEngine, source: int,
                       target: int, weight: str = "length") -> None:
    plain = shortest_path(graph, source, target, weight=weight)
    ch = engine.shortest_path(source, target)
    assert ch.found == plain.found, (source, target)
    if not plain.found:
        assert math.isinf(ch.cost)
        return
    assert ch.cost == pytest.approx(plain.cost, rel=1e-9)
    assert_valid_walk(graph, ch, weight)


def assert_valid_walk(graph: RoadGraph, result, weight: str) -> None:
    """The unpacked path is a legal walk whose edge weights sum to cost."""
    assert len(result.nodes) == len(result.edges) + 1
    total = 0.0
    for at, edge_id, nxt in zip(result.nodes, result.edges, result.nodes[1:]):
        edge = graph.edge(edge_id)
        assert {edge.u, edge.v} >= {at, nxt} and edge.other(at) == nxt
        assert edge.allows(at), f"one-way violated on edge {edge_id}"
        total += edge.length if weight == "length" else edge.travel_time_s
    assert total == pytest.approx(result.cost, rel=1e-9)


class TestCHMatchesDijkstra:
    @given(seed=st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_costs_match_on_random_graphs(self, seed):
        g = build_random_city(seed)
        engine = prepare_ch(g)
        rng = random.Random(seed + 1)
        for __ in range(8):
            assert_same_answer(g, engine, rng.randint(1, 25), rng.randint(1, 25))

    @given(
        seed=st.integers(min_value=0, max_value=400),
        oneway=st.sampled_from([0.3, 0.8]),
    )
    @settings(max_examples=20, deadline=None)
    def test_costs_match_with_oneway_edges(self, seed, oneway):
        g = build_random_city(seed, oneway_fraction=oneway)
        engine = prepare_ch(g)
        rng = random.Random(seed + 2)
        for __ in range(8):
            assert_same_answer(g, engine, rng.randint(1, 25), rng.randint(1, 25))

    @given(seed=st.integers(min_value=0, max_value=400))
    @settings(max_examples=15, deadline=None)
    def test_disconnected_pairs_agree_on_no_path(self, seed):
        g = build_random_city(seed, components=2)
        engine = prepare_ch(g)
        rng = random.Random(seed + 3)
        saw_unreachable = False
        for __ in range(10):
            s, t = rng.randint(1, 25), rng.randint(1, 25)
            plain = shortest_path(g, s, t)
            ch = engine.shortest_path(s, t)
            assert ch.found == plain.found
            saw_unreachable = saw_unreachable or not plain.found
            if plain.found:
                assert ch.cost == pytest.approx(plain.cost, rel=1e-9)
        # Two components of 25 nodes: random pairs must hit the gap.
        assert saw_unreachable

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_time_weight_matches(self, seed):
        g = build_random_city(seed, oneway_fraction=0.25)
        engine = prepare_ch(g, weight="time")
        rng = random.Random(seed + 4)
        for __ in range(6):
            s, t = rng.randint(1, 25), rng.randint(1, 25)
            plain = shortest_path(g, s, t, weight="time")
            ch = engine.shortest_path(s, t)
            assert ch.found == plain.found
            if plain.found:
                assert ch.cost == pytest.approx(plain.cost, rel=1e-9)
                assert_valid_walk(g, ch, "time")

    def test_whole_city_sample(self, city):
        engine = prepare_ch(city.graph)
        nodes = [n.node_id for n in city.graph.nodes()]
        rng = random.Random(11)
        for __ in range(60):
            assert_same_answer(
                city.graph, engine, rng.choice(nodes), rng.choice(nodes)
            )

    def test_same_node_and_unknown_node(self, city):
        engine = prepare_ch(city.graph)
        some = city.graph.nodes()[0].node_id
        trivial = engine.shortest_path(some, some)
        assert trivial.found and trivial.cost == 0.0 and trivial.edges == ()
        assert not engine.shortest_path(some, 10**9).found
        assert not engine.shortest_path(10**9, some).found


class TestPreprocessing:
    def test_prepare_is_deterministic(self):
        g = build_random_city(7, oneway_fraction=0.4)
        a, b = prepare_ch(g), prepare_ch(g)
        for name in ("node_ids", "rank", "arc_from", "arc_to", "arc_weight",
                     "arc_edge", "arc_skip1", "arc_skip2"):
            np.testing.assert_array_equal(getattr(a, name), getattr(b, name))

    def test_contraction_adds_shortcuts_only(self):
        g = build_random_city(3)
        csr = build_csr(g)
        result = contract_graph(csr)
        assert result.shortcut_count == int((result.arc_edge < 0).sum())
        # Original arcs are preserved verbatim ahead of the shortcuts.
        n_orig = csr.targets.shape[0]
        np.testing.assert_array_equal(result.arc_edge[:n_orig], csr.edge_ids)
        assert (result.arc_skip1[:n_orig] == -1).all()
        # Every shortcut unpacks into two earlier arcs.
        sc = result.arc_edge < 0
        assert (result.arc_skip1[sc] >= 0).all() and (result.arc_skip2[sc] >= 0).all()

    def test_build_csr_rejects_negative_weight(self):
        g = build_random_city(1, n=5, extra_edges=2)
        with pytest.raises(ValueError):
            build_csr(g, weight_fn=lambda e: -1.0)


class TestArtifactRoundTrip:
    def test_npz_round_trip_is_identical(self, tmp_path):
        g = build_random_city(5, oneway_fraction=0.3)
        engine = prepare_ch(g)
        path = tmp_path / "ch.npz"
        save_ch(engine, path)
        loaded = load_ch(path)
        assert loaded.weight == engine.weight
        assert loaded.respect_oneway == engine.respect_oneway
        for name in ("node_ids", "rank", "arc_from", "arc_to", "arc_weight",
                     "arc_edge", "arc_skip1", "arc_skip2"):
            np.testing.assert_array_equal(getattr(loaded, name), getattr(engine, name))
        rng = random.Random(6)
        for __ in range(20):
            s, t = rng.randint(1, 25), rng.randint(1, 25)
            assert loaded.shortest_path(s, t) == engine.shortest_path(s, t)

    def test_version_mismatch_raises(self, tmp_path):
        g = build_random_city(2, n=8, extra_edges=4)
        path = tmp_path / "ch.npz"
        save_ch(prepare_ch(g), path)
        with np.load(path, allow_pickle=False) as data:
            arrays = dict(data)
        arrays["version"] = np.int64(CH_FORMAT_VERSION + 1)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_ch(path)


class TestEngineSelector:
    def test_selector_resolves_every_engine(self, city):
        assert make_routing_engine(city.graph, None) is None
        assert make_routing_engine(city.graph, "dijkstra") is None
        assert make_routing_engine(city.graph, "astar") == "astar"
        assert make_routing_engine(city.graph, "bidirectional") == "bidirectional"
        assert isinstance(make_routing_engine(city.graph, "ch"), CHEngine)
        with pytest.raises(ValueError):
            make_routing_engine(city.graph, "teleport")

    def test_selector_loads_matching_artifact(self, city, tmp_path):
        path = tmp_path / "city.npz"
        save_ch(prepare_ch(city.graph), path)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            engine = make_routing_engine(city.graph, "ch", ch_artifact=path)
        assert isinstance(engine, CHEngine)
        assert registry.counter("routing.ch_artifact_loads").value == 1
        assert registry.counter("routing.ch_prepare_calls").value == 0

    def test_selector_reprepares_on_weight_mismatch(self, city, tmp_path):
        path = tmp_path / "time.npz"
        save_ch(prepare_ch(city.graph, weight="time"), path)
        engine = make_routing_engine(city.graph, "ch", weight="length",
                                     ch_artifact=path)
        assert engine.weight == "length"

    def test_cached_shortest_path_dispatches_to_ch(self, city):
        engine = prepare_ch(city.graph)
        nodes = [n.node_id for n in city.graph.nodes()[:5]]
        for s in nodes:
            for t in nodes:
                via_engine = cached_shortest_path(city.graph, s, t, engine=engine)
                plain = cached_shortest_path(city.graph, s, t)
                assert via_engine.cost == pytest.approx(plain.cost, rel=1e-9)

    def test_weight_mismatch_query_raises(self, city):
        engine = prepare_ch(city.graph, weight="time")
        s, t = (n.node_id for n in city.graph.nodes()[:2])
        with pytest.raises(ValueError, match="weight"):
            cached_shortest_path(city.graph, s, t, weight="length", engine=engine)


class TestObservability:
    def test_prepare_and_query_metrics(self, tmp_path):
        g = build_random_city(9)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            engine = prepare_ch(g)
            engine.shortest_path(1, 25)
            save_ch(engine, tmp_path / "g.npz")
        assert registry.counter("routing.ch_prepare_calls").value == 1
        assert registry.counter("routing.ch_query_calls").value == 1
        assert registry.counter("routing.ch_artifact_saves").value == 1
        assert registry.gauge("routing.ch_prepare_seconds").value > 0.0
        assert registry.gauge("routing.ch_shortcuts").value >= 0.0
        assert registry.gauge("routing.ch_nodes").value == 25.0
