"""Batched many-to-many routing: the bitwise-identity contract.

The batch layer is pure mechanism — ``route_matrix``/``route_pairs``
must answer exactly what repeated ``shortest_path`` calls would, the
``RouteBatch`` planner and cache batching must never change a result,
and a study run with batching on must produce byte-identical artefacts
to one with batching off, serial or parallel.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.experiments import OuluStudy, StudyConfig
from repro.matching import IncrementalMatcher
from repro.matching.gapfill import connect_matches
from repro.parallel import ExecutorConfig
from repro.roadnet import (
    RouteBatch,
    RouteCache,
    cached_shortest_path,
    load_ch,
    prepare_ch,
    route_matrix,
    route_pairs,
    save_ch,
)
from repro.roadnet.routing import PathResult
from repro.store import StoreConfig
from repro.traces import FleetSpec
from tests.test_parallel_executor import _comparable_counters
from tests.test_roadnet_ch import build_random_city


def study_fingerprint(result) -> tuple:
    """Every externally visible artefact of a study run."""
    cells = tuple(sorted(
        (key, tuple(sorted(counts.items())))
        for key, counts in result.cell_features.items()
    ))
    routes = tuple(
        (i, r.segment_id, r.car_id, tuple(r.edge_sequence), r.gaps_filled)
        for i, r in sorted(result.matched.items())
    )
    return (
        tuple(result.route_stats),
        routes,
        tuple(result.funnel),
        tuple(result.kept_transitions),
        cells,
    )


def sample_endpoints(graph, seed: int, k: int = 5) -> list[int]:
    """A deterministic endpoint sample, plus one id outside the graph."""
    ids = sorted(node.node_id for node in graph.nodes())
    step = max(1, len(ids) // k)
    return ids[::step][:k] + [10**9]


# -- matrix vs point-to-point ------------------------------------------------


class TestMatrixBitwiseIdentity:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        oneway=st.sampled_from([0.0, 0.4]),
        components=st.sampled_from([1, 2]),
    )
    @settings(max_examples=20, deadline=None)
    def test_route_matrix_equals_repeated_shortest_path(
        self, seed, oneway, components
    ):
        graph = build_random_city(
            seed, oneway_fraction=oneway, components=components
        )
        engine = prepare_ch(graph, weight="length")
        endpoints = sample_endpoints(graph, seed)
        matrix = route_matrix(engine, endpoints, endpoints)
        for i, s in enumerate(endpoints):
            for j, t in enumerate(endpoints):
                reference = engine.shortest_path(s, t)
                cost = matrix.costs[i, j]
                if reference.found:
                    assert cost == reference.cost
                else:
                    assert math.isinf(cost)
                assert matrix.path(s, t) == reference

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        oneway=st.sampled_from([0.0, 0.4]),
    )
    @settings(max_examples=20, deadline=None)
    def test_route_pairs_equals_repeated_shortest_path(self, seed, oneway):
        graph = build_random_city(seed, oneway_fraction=oneway)
        engine = prepare_ch(graph, weight="length")
        endpoints = sample_endpoints(graph, seed)
        pairs = [(s, t) for s in endpoints for t in endpoints]
        results = route_pairs(engine, pairs)
        assert len(results) == len(pairs)
        for (s, t), result in zip(pairs, results):
            assert result == engine.shortest_path(s, t)

    def test_unreachable_pairs_use_inf_sentinel(self):
        graph = build_random_city(3, components=2)
        engine = prepare_ch(graph, weight="length")
        ids = sorted(node.node_id for node in graph.nodes())
        matrix = route_matrix(engine, ids, ids)
        unreachable = np.isinf(matrix.costs)
        assert unreachable.any(), "two components must leave unreachable pairs"
        # Every inf agrees with the point-to-point verdict.
        for i, s in enumerate(ids):
            for j, t in enumerate(ids):
                assert unreachable[i, j] == (not engine.shortest_path(s, t).found)


# -- RouteBatch planner ------------------------------------------------------


class TestRouteBatch:
    def test_flat_fallback_matches_engine(self):
        graph = build_random_city(11, oneway_fraction=0.3)
        ids = sorted(node.node_id for node in graph.nodes())
        pairs = [(ids[0], ids[-1]), (ids[1], ids[-2]), (ids[0], ids[-1])]
        for engine in (None, "astar", "bidirectional"):
            batch = RouteBatch(graph, weight="length", engine=engine)
            assert not batch.supports_many
            resolved = batch.resolve(pairs)
            assert len(resolved) == 2  # duplicate collapsed
            for s, t in pairs:
                assert resolved[(s, t)] == cached_shortest_path(
                    graph, s, t, "length", engine=engine
                )

    def test_ch_batch_matches_engine_and_fills_cache(self):
        graph = build_random_city(12)
        engine = prepare_ch(graph, weight="length")
        ids = sorted(node.node_id for node in graph.nodes())
        pairs = [(s, t) for s in ids[:4] for t in ids[-4:]]
        cache = RouteCache(max_entries=100)
        batch = RouteBatch(graph, weight="length", cache=cache, engine=engine)
        assert batch.supports_many
        resolved = batch.resolve(pairs)
        for s, t in pairs:
            assert resolved[(s, t)] == engine.shortest_path(s, t)
        # Second resolve answers fully from cache.
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            again = batch.resolve(pairs)
        assert again == resolved
        assert registry.counter("routing.route_cache_hits").value == len(pairs)
        assert registry.counter("routing.route_cache_misses").value == 0

    def test_weight_mismatch_rejected(self):
        graph = build_random_city(13)
        engine = prepare_ch(graph, weight="length")
        with pytest.raises(ValueError, match="weight"):
            RouteBatch(graph, weight="time", engine=engine)


# -- RouteCache batch operations ---------------------------------------------


class TestRouteCacheBatch:
    def test_get_many_splits_hits_and_misses_in_order(self):
        cache = RouteCache(max_entries=10)
        hit_path = PathResult(nodes=(1, 2), edges=(7,), cost=5.0)
        cache.put(1, 2, "length", hit_path)
        hits, misses = cache.get_many([(3, 4), (1, 2), (5, 6)], "length")
        assert hits == {(1, 2): hit_path}
        assert misses == [(3, 4), (5, 6)]

    def test_get_many_refreshes_lru_position(self):
        cache = RouteCache(max_entries=2)
        a = PathResult(nodes=(1,), edges=(), cost=0.0)
        b = PathResult(nodes=(2,), edges=(), cost=0.0)
        cache.put(1, 1, "length", a)
        cache.put(2, 2, "length", b)
        cache.get_many([(1, 1)], "length")  # (1,1) becomes most recent
        cache.put(3, 3, "length", PathResult(nodes=(3,), edges=(), cost=0.0))
        assert cache.get(1, 1, "length") is not None
        assert cache.get(2, 2, "length") is None  # evicted, not (1,1)

    def test_put_many_bounds_entries_and_sets_gauge(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            cache = RouteCache(max_entries=3)
            results = {
                (i, i + 1): PathResult(nodes=(i,), edges=(), cost=float(i))
                for i in range(5)
            }
            cache.put_many(results, "length")
        assert len(cache) == 3
        assert registry.gauge("routing.route_cache_entries").value == 3
        assert registry.counter("routing.route_cache_evictions").value == 2

    def test_hit_rate_gauge_tracks_lookups(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            cache = RouteCache(max_entries=10)
            cache.put(1, 2, "length", PathResult(nodes=(1, 2), edges=(7,), cost=1.0))
            cache.get(9, 9, "length")  # miss
            assert registry.gauge("routing.route_cache_hit_rate").value == 0.0
            cache.get(1, 2, "length")  # hit
            assert registry.gauge("routing.route_cache_hit_rate").value == 0.5
            cache.get_many([(1, 2), (8, 8)], "length")  # hit + miss
            assert registry.gauge("routing.route_cache_hit_rate").value == 0.5


# -- gap-fill batch on/off identity ------------------------------------------


class TestGapfillBatchIdentity:
    def test_matched_routes_identical_batch_on_and_off(
        self, city, clean_result, to_xy
    ):
        engine = prepare_ch(city.graph, weight="length")
        matchers = {
            flag: IncrementalMatcher(
                city.graph, routing_engine=engine, batch_routing=flag
            )
            for flag in (True, False)
        }
        segments = clean_result.segments[:15]
        compared = 0
        for segment in segments:
            routes = {
                flag: matcher.match(
                    segment.points, to_xy,
                    segment_id=segment.segment_id, car_id=segment.car_id,
                )
                for flag, matcher in matchers.items()
            }
            if routes[True] is None:
                assert routes[False] is None
                continue
            assert routes[True].edge_sequence == routes[False].edge_sequence
            assert routes[True].gaps_filled == routes[False].gaps_filled
            compared += 1
        assert compared > 0

    def test_batched_counter_increments_only_with_capable_engine(self, city):
        graph = build_random_city(21)
        engine = prepare_ch(graph, weight="length")
        ids = sorted(node.node_id for node in graph.nodes())
        registry = obs.MetricsRegistry()

        # A route with no gaps (single edge) never batches.
        from repro.matching.types import MatchedPoint, MatchedRoute
        from repro.traces.model import RoutePoint

        def matched_route():
            edge = next(iter(graph.edges()))
            point = RoutePoint(point_id=1, trip_id=1, lat=0.0, lon=0.0,
                               time_s=0.0, speed_kmh=10.0)
            return MatchedRoute(segment_id=1, car_id=1, matched=[
                MatchedPoint(point=point, edge_id=edge.edge_id, arc_m=0.0,
                             snapped_xy=(0.0, 0.0), match_distance_m=0.0,
                             score=0.0),
            ])

        with obs.use_registry(registry):
            connect_matches(graph, matched_route(), engine=engine)
        assert registry.counter("routing.gapfill_batched").value == 0


# -- artifact format v1 back-compat ------------------------------------------


class TestArtifactBackCompat:
    def test_v1_artifact_loads_and_answers_identically(self, tmp_path):
        graph = build_random_city(31, oneway_fraction=0.3)
        engine = prepare_ch(graph, weight="length")
        v2_path = tmp_path / "v2.npz"
        save_ch(engine, v2_path)

        # Rewrite as a v1 artifact: drop the permutation arrays.
        with np.load(v2_path, allow_pickle=False) as doc:
            v1_fields = {
                name: doc[name]
                for name in doc.files
                if name != "version" and not name.startswith("up_")
            }
        v1_path = tmp_path / "v1.npz"
        np.savez_compressed(v1_path, version=np.int64(1), **v1_fields)

        loaded = load_ch(v1_path)
        # The engine reconstructs the permutation the save omitted...
        np.testing.assert_array_equal(loaded.up_fwd_offsets, engine.up_fwd_offsets)
        np.testing.assert_array_equal(loaded.up_fwd_arcs, engine.up_fwd_arcs)
        # ...and answers identically.
        ids = sorted(node.node_id for node in graph.nodes())
        pairs = [(s, t) for s in ids[:4] for t in ids[-4:]]
        assert route_pairs(loaded, pairs) == route_pairs(engine, pairs)
        for s, t in pairs:
            assert loaded.shortest_path(s, t) == engine.shortest_path(s, t)

    def test_v2_round_trip_preserves_permutation(self, tmp_path):
        graph = build_random_city(32)
        engine = prepare_ch(graph, weight="length")
        path = tmp_path / "ch.npz"
        save_ch(engine, path)
        loaded = load_ch(path)
        np.testing.assert_array_equal(loaded.up_fwd_offsets, engine.up_fwd_offsets)
        np.testing.assert_array_equal(loaded.up_fwd_arcs, engine.up_fwd_arcs)
        np.testing.assert_array_equal(loaded.up_bwd_offsets, engine.up_bwd_offsets)
        np.testing.assert_array_equal(loaded.up_bwd_arcs, engine.up_bwd_arcs)


# -- study byte-identity -----------------------------------------------------


_TIMING_KEYS = {"stage_seconds", "match_seconds", "elapsed_s"}


def _strip_timings(doc):
    """Drop wall-clock fields (how long a stage took, never what it
    computed) so the rest of the bytes can be compared exactly."""
    if isinstance(doc, dict):
        return {
            k: _strip_timings(v)
            for k, v in doc.items()
            if k not in _TIMING_KEYS
        }
    if isinstance(doc, list):
        return [_strip_timings(v) for v in doc]
    return doc


def _hash_tree(root) -> dict:
    """sha256 of every store file; shard metas are canonicalised with
    timing fields removed, and the wall-clock column is skipped."""
    import hashlib
    import json

    out = {}
    for path in sorted(root.rglob("*")):
        if not path.is_file() or path.name == "c_elapsed_s.npy":
            continue
        if path.name == "meta.json":
            payload = json.dumps(
                _strip_timings(json.loads(path.read_text())), sort_keys=True
            ).encode()
        else:
            payload = path.read_bytes()
        out[str(path.relative_to(root))] = hashlib.sha256(payload).hexdigest()
    return out


class TestStudyBatchEquivalence:
    def test_batch_on_off_serial_parallel_byte_identity(self, tmp_path):
        """Batching must never change what a study computes.

        Four runs of the same small study — serial/batched,
        serial/unbatched, parallel/batched — share one CH artifact; the
        serial pair also persists store shards so the on-disk bytes can
        be compared directly.
        """
        artifact = str(tmp_path / "oulu_ch.npz")

        def run(batch: bool, workers: int, store_dir=None):
            config = StudyConfig(
                fleet=FleetSpec(n_days=2, seed=7),
                executor=ExecutorConfig(
                    workers=workers,
                    routing_engine="ch",
                    ch_artifact_path=artifact,
                    batch_routing=batch,
                ),
                store=(
                    StoreConfig(dir=str(store_dir))
                    if store_dir is not None
                    else None
                ),
            )
            return OuluStudy(config).run()

        on = run(True, 0, tmp_path / "store_on")
        off = run(False, 0, tmp_path / "store_off")
        par = run(True, 2)

        assert study_fingerprint(on) == study_fingerprint(off)
        assert study_fingerprint(on) == study_fingerprint(par)
        assert _comparable_counters(on) == _comparable_counters(off)
        assert on.funnel == off.funnel == par.funnel
        assert on.route_stats == off.route_stats == par.route_stats
        # Store shards: literally the same bytes on disk.
        assert _hash_tree(tmp_path / "store_on") == _hash_tree(
            tmp_path / "store_off"
        )
