"""OpenMetrics export, its linter, and the sampling span profiler."""

from __future__ import annotations

import time

from repro.obs import (
    MetricsRegistry,
    SpanProfiler,
    lint_openmetrics,
    metric_name,
    span,
    to_openmetrics,
    use_registry,
    write_textfile,
)
from repro.obs.profile import IDLE


def _snapshot() -> dict:
    registry = MetricsRegistry()
    registry.counter("clean.trips_in").inc(42)
    registry.gauge("routing.route_cache_entries").set(7)
    for v in (0.1, 0.2, 0.3, 0.4):
        registry.histogram("stage.match.seconds").observe(v)
    return registry.snapshot()


class TestMetricName:
    def test_prefixes_and_sanitises(self):
        assert metric_name("clean.trips_in") == "repro_clean_trips_in"
        assert metric_name("faults.injected.match") == "repro_faults_injected_match"

    def test_no_prefix(self):
        assert metric_name("a.b", prefix="") == "a_b"


class TestToOpenmetrics:
    def test_counters_gauges_histograms_render(self):
        text = to_openmetrics(_snapshot())
        assert "# TYPE repro_clean_trips_in counter" in text
        assert "repro_clean_trips_in_total 42" in text
        assert "# TYPE repro_routing_route_cache_entries gauge" in text
        assert "# TYPE repro_stage_match_seconds summary" in text
        assert 'repro_stage_match_seconds{quantile="0.5"}' in text
        assert "repro_stage_match_seconds_count 4" in text
        assert text.endswith("# EOF\n")

    def test_meta_becomes_info_metric_with_escaped_labels(self):
        meta = {"run_id": "abc", "git_sha": "f00", "note": 'say "hi"\nok'}
        text = to_openmetrics({"counters": {}}, meta)
        assert "# TYPE repro_run info" in text
        assert 'run_id="abc"' in text
        assert '\\"hi\\"' in text and "\\n" in text

    def test_meta_key_inside_snapshot_is_used(self):
        text = to_openmetrics({"counters": {}, "meta": {"run_id": "xyz"}})
        assert 'run_id="xyz"' in text

    def test_output_passes_own_lint(self):
        snapshot = _snapshot()
        snapshot["meta"] = {"run_id": "abc", "python": "3.11.7"}
        assert lint_openmetrics(to_openmetrics(snapshot)) == []

    def test_write_textfile_creates_parents(self, tmp_path):
        out = write_textfile(tmp_path / "deep" / "m.prom", _snapshot())
        assert out.exists()
        assert lint_openmetrics(out.read_text()) == []


class TestLint:
    def test_missing_eof(self):
        problems = lint_openmetrics("# TYPE repro_x counter\nrepro_x_total 1")
        assert any("EOF" in p for p in problems)

    def test_sample_without_type(self):
        problems = lint_openmetrics("repro_x_total 1\n# EOF")
        assert any("no TYPE" in p for p in problems)

    def test_counter_sample_must_end_total(self):
        text = "# TYPE repro_x counter\nrepro_x 1\n# EOF"
        assert any("_total" in p for p in lint_openmetrics(text))

    def test_bad_value_and_bad_label(self):
        text = (
            "# TYPE repro_x gauge\n"
            "repro_x not_a_number\n"
            '# TYPE repro_y gauge\n'
            "repro_y{bad-label=\"v\"} 1\n"
            "# EOF"
        )
        problems = lint_openmetrics(text)
        assert any("bad value" in p for p in problems)
        assert any("label" in p for p in problems)

    def test_duplicate_type_declaration(self):
        text = "# TYPE repro_x gauge\n# TYPE repro_x gauge\nrepro_x 1\n# EOF"
        assert any("duplicate" in p for p in lint_openmetrics(text))


class TestSpanProfiler:
    def test_attributes_samples_to_open_span_paths(self):
        profiler = SpanProfiler(interval=0.001)
        with use_registry(MetricsRegistry()), profiler:
            with span("study"):
                with span("clean"):
                    time.sleep(0.05)
        paths = set(profiler.samples)
        assert ("study", "clean") in paths
        assert profiler.total_samples() > 0

    def test_idle_samples_counted_separately(self):
        profiler = SpanProfiler(interval=0.001)
        with profiler:
            time.sleep(0.02)
        assert (IDLE,) in profiler.samples

    def test_collapsed_stack_format(self, tmp_path):
        profiler = SpanProfiler(interval=0.001)
        profiler.samples = {("study", "match"): 12, (IDLE,): 3}
        out = profiler.write(tmp_path / "prof" / "profile.txt")
        lines = out.read_text().splitlines()
        assert "study;match 12" in lines
        assert f"{IDLE} 3" in lines

    def test_observer_uninstalled_after_stop(self):
        from repro.obs import tracing

        profiler = SpanProfiler(interval=0.001)
        profiler.start()
        profiler.stop()
        assert tracing._span_observer is None

    def test_stop_without_start_is_noop(self):
        SpanProfiler().stop()
