"""MetricsRegistry.merge — the contract parallel workers rely on.

Worker processes record into chunk-local registries that the orchestrator
folds back in chunk order; these tests pin the merge semantics (counters
sum, gauges last-write-wins, histograms exact for count/mean/min/max and
deterministic for quantiles) that make parallel runs reproducible.
"""

from __future__ import annotations

from repro.obs import Histogram, MetricsRegistry, SpanRecord


def test_counters_sum():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("clean.trips_in").inc(3)
    b.counter("clean.trips_in").inc(4)
    b.counter("clean.points_in").inc(10)
    a.merge(b)
    assert a.counter("clean.trips_in").value == 7
    assert a.counter("clean.points_in").value == 10
    # The source registry is never mutated.
    assert b.counter("clean.trips_in").value == 4


def test_gauges_last_write_wins():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.gauge("clean.ratio").set(0.25)
    b.gauge("clean.ratio").set(0.75)
    b.gauge("clean.only_in_b").set(1.0)
    a.merge(b)
    assert a.gauge("clean.ratio").value == 0.75
    assert a.gauge("clean.only_in_b").value == 1.0


def test_merge_returns_self_for_chaining():
    a = MetricsRegistry()
    b = MetricsRegistry()
    c = MetricsRegistry()
    b.counter("x").inc()
    c.counter("x").inc()
    assert a.merge(b).merge(c) is a
    assert a.counter("x").value == 2


def test_histogram_exact_stats_after_merge():
    a = MetricsRegistry()
    b = MetricsRegistry()
    for v in (1.0, 2.0, 3.0):
        a.histogram("lat").observe(v)
    for v in (10.0, 20.0):
        b.histogram("lat").observe(v)
    a.merge(b)
    h = a.histogram("lat")
    assert h.count == 5
    assert h.total == 36.0
    assert h.mean == 36.0 / 5
    assert h.min == 1.0
    assert h.max == 20.0


def test_histogram_quantiles_after_merge():
    a = MetricsRegistry()
    b = MetricsRegistry()
    # Two disjoint halves of 0..99; merged quantiles must see the union.
    for v in range(50):
        a.histogram("lat").observe(float(v))
    for v in range(50, 100):
        b.histogram("lat").observe(float(v))
    a.merge(b)
    h = a.histogram("lat")
    assert h.quantile(0.0) == 0.0
    assert h.quantile(0.5) == 50.0
    assert h.quantile(1.0) == 99.0
    summary = h.summary()
    assert summary["p50"] == 50.0
    assert summary["p99"] == 98.0


def test_histogram_merge_thins_reservoir_deterministically():
    def build() -> Histogram:
        target = Histogram("lat", max_samples=8)
        for chunk in range(4):
            part = Histogram("lat", max_samples=8)
            for i in range(6):
                part.observe(float(chunk * 6 + i))
            target.merge(part)
        return target

    first, second = build(), build()
    assert first.count == second.count == 24
    # Reservoir overflowed (24 > 8) yet both merge sequences agree.
    assert first.summary() == second.summary()
    assert len(first._samples) == 8


def test_empty_histogram_merge_is_noop():
    a = MetricsRegistry()
    a.histogram("lat").observe(5.0)
    a.merge(MetricsRegistry())
    h = a.histogram("lat")
    assert h.count == 1 and h.min == 5.0 and h.max == 5.0


def test_spans_append_in_merge_order():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.record_span(SpanRecord(name="first"))
    b.record_span(SpanRecord(name="second"))
    a.merge(b)
    assert [s.name for s in a.spans] == ["first", "second"]


def test_merge_into_disabled_registry_drops_everything():
    a = MetricsRegistry(enabled=False)
    b = MetricsRegistry()
    b.counter("x").inc(5)
    b.record_span(SpanRecord(name="s"))
    a.merge(b)
    assert a.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}, "spans": []}


def _hist(values, max_samples: int = 4096) -> Histogram:
    h = Histogram("lat", max_samples=max_samples)
    for v in values:
        h.observe(v)
    return h


def test_histogram_merge_is_associative():
    """(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) — chunk folds must not depend on
    how the orchestrator groups them, only on their order."""
    chunks = ([1.0, 5.0, 2.0], [9.0, 3.0], [4.0, 8.0, 7.0, 6.0])

    left = _hist(chunks[0])
    left.merge(_hist(chunks[1]))
    left.merge(_hist(chunks[2]))

    tail = _hist(chunks[1])
    tail.merge(_hist(chunks[2]))
    right = _hist(chunks[0])
    right.merge(tail)

    assert left.summary() == right.summary()
    assert left._samples == right._samples  # exact below the reservoir bound


def test_histogram_merge_exact_stats_associative_even_when_thinned():
    # Above the reservoir bound the retained samples are a deterministic
    # subsample (grouping-dependent), but the exact stats stay exact.
    chunks = (
        [float(v) for v in range(10)],
        [float(v) for v in range(10, 25)],
        [float(v) for v in range(25, 30)],
    )
    left = _hist(chunks[0], max_samples=8)
    left.merge(_hist(chunks[1], max_samples=8))
    left.merge(_hist(chunks[2], max_samples=8))

    tail = _hist(chunks[1], max_samples=8)
    tail.merge(_hist(chunks[2], max_samples=8))
    right = _hist(chunks[0], max_samples=8)
    right.merge(tail)

    for h in (left, right):
        assert h.count == 30
        assert h.total == sum(sum(c) for c in chunks)
        assert h.min == 0.0 and h.max == 29.0
        assert len(h._samples) <= 8
