"""Tests for repro.traces.io."""

import pytest

from repro.traces.io import (
    read_points_csv,
    read_trips_jsonl,
    write_points_csv,
    write_trips_jsonl,
)
from repro.traces.model import FleetData, RoutePoint, Trip


@pytest.fixture()
def small_fleet():
    trips = []
    for trip_id in (1, 2):
        points = [
            RoutePoint(point_id=i + trip_id * 100, trip_id=trip_id,
                       lat=65.0 + i * 1e-4, lon=25.4 + i * 1e-4,
                       time_s=1000.0 * trip_id + i, speed_kmh=20.0 + i,
                       fuel_ml=float(i) * 3.3)
            for i in range(5)
        ]
        trips.append(Trip(trip_id=trip_id, car_id=trip_id, points=points))
    return FleetData(trips=trips)


class TestPointsCsv:
    def test_roundtrip_lossless(self, small_fleet, tmp_path):
        path = tmp_path / "points.csv"
        n = write_points_csv(small_fleet, path)
        assert n == 10
        back = read_points_csv(path)
        assert len(back) == 2
        for orig, new in zip(small_fleet.trips, back.trips):
            assert new.car_id == orig.car_id
            for a, b in zip(orig.points, new.points):
                assert a == b

    def test_empty_fleet(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_points_csv(FleetData(), path) == 0
        assert len(read_points_csv(path)) == 0


class TestTripsJsonl:
    def test_roundtrip_summaries(self, small_fleet, tmp_path):
        path = tmp_path / "trips.jsonl"
        n = write_trips_jsonl(small_fleet, path)
        assert n == 2
        records = read_trips_jsonl(path)
        assert len(records) == 2
        assert records[0]["trip_id"] == 1
        assert records[0]["point_count"] == 5
        assert records[0]["total_fuel_ml"] == pytest.approx(4 * 3.3)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trips.jsonl"
        path.write_text('{"trip_id": 1}\n\n{"trip_id": 2}\n')
        assert [r["trip_id"] for r in read_trips_jsonl(path)] == [1, 2]


class TestFleetRoundtrip:
    def test_simulated_fleet_roundtrips(self, fleet, tmp_path):
        path = tmp_path / "sim.csv"
        write_points_csv(fleet, path)
        back = read_points_csv(path)
        assert len(back) == len(fleet)
        assert back.point_count == fleet.point_count
