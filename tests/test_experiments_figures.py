"""Tests for the figure generators (Figs. 3-10)."""


from repro.experiments.figures import (
    fig3_speed_points,
    fig4_direction_speeds,
    fig5_season_speeds,
    fig6_cell_features,
    fig7_qq,
    fig8_intercepts,
    fig9_intercept_map,
    fig10_weather_low_speed,
    seasonal_speed_deltas,
)
from repro.weather.roadweather import TEMPERATURE_CLASSES


def any_car_with_transitions(study_result):
    cars = {t.segment.car_id for t, __ in study_result.kept()}
    assert cars
    return sorted(cars)[0]


class TestFig3:
    def test_speed_points_structure(self, study_result):
        car = any_car_with_transitions(study_result)
        points = fig3_speed_points(study_result, car_id=car)
        assert points
        for x, y, v in points:
            assert -3000.0 < x < 3000.0
            assert -3000.0 < y < 3000.0
            assert 0.0 <= v < 120.0

    def test_unknown_car_is_empty(self, study_result):
        assert fig3_speed_points(study_result, car_id=99) == []


class TestFig4:
    def test_directions_partition_points(self, study_result):
        car = any_car_with_transitions(study_result)
        by_dir = fig4_direction_speeds(study_result, car_id=car)
        assert by_dir
        assert set(by_dir) <= {"T-S", "S-T", "T-L", "L-T"}
        total = sum(len(v) for v in by_dir.values())
        assert total == len(fig3_speed_points(study_result, car_id=car))


class TestFig5:
    def test_seasons_valid(self, study_result):
        car = any_car_with_transitions(study_result)
        by_season = fig5_season_speeds(study_result, car_id=car)
        assert set(by_season) <= {"winter", "spring", "summer", "autumn"}
        assert all(v for v in by_season.values())

    def test_seasonal_deltas_sum_shape(self, study_result):
        deltas = seasonal_speed_deltas(study_result)
        # 30 October days -> only autumn present; delta vs annual mean ~ 0.
        assert deltas
        for season, delta in deltas.items():
            assert abs(delta) < 10.0


class TestFig6:
    def test_cells_for_direction(self, study_result):
        directions = {t.direction for t, __ in study_result.kept()}
        direction = sorted(directions)[0]
        cells = fig6_cell_features(study_result, direction=direction)
        assert cells
        for info in cells.values():
            assert info["n"] >= 1
            assert info["avg_speed"] >= 0.0
            assert "traffic_lights" in info
            assert "junctions" in info

    def test_absent_direction_empty(self, study_result):
        assert fig6_cell_features(study_result, direction="X-Y") == {}


class TestFig7And8:
    def test_qq_pairs(self, study_result):
        pairs = fig7_qq(study_result)
        assert len(pairs) == len(study_result.mixed.groups)
        theo = [t for t, __ in pairs]
        assert theo == sorted(theo)

    def test_intercept_rows_sorted_with_limits(self, study_result):
        rows = fig8_intercepts(study_result)
        values = [r["intercept"] for r in rows]
        assert values == sorted(values)
        for r in rows:
            assert r["lower"] <= r["intercept"] <= r["upper"]
            assert r["n"] >= 1


class TestFig9:
    def test_intercepts_located_on_map(self, study_result):
        cells = fig9_intercept_map(study_result)
        assert len(cells) == len(study_result.mixed.groups)
        for info in cells.values():
            x, y = info["centre"]
            assert -3000.0 < x < 3000.0

    def test_slow_cells_near_centre_or_deadends(self, study_result):
        """The most negative intercepts should sit in the lit core or the
        hotspot, reproducing the paper's Fig. 9 reading."""
        cells = fig9_intercept_map(study_result)
        worst = min(cells.values(), key=lambda c: c["intercept"])
        x, y = worst["centre"]
        assert max(abs(x), abs(y)) < 1500.0


class TestFig10:
    def test_all_classes_reported(self, study_result):
        data = fig10_weather_low_speed(study_result)
        assert set(data) == set(TEMPERATURE_CLASSES)

    def test_many_lights_increase_low_speed(self, study_result):
        data = fig10_weather_low_speed(study_result, lights_threshold=5)
        comparable = [
            (v["lights<5"], v["lights>=5"])
            for v in data.values()
            if v["lights<5"] is not None and v["lights>=5"] is not None
        ]
        assert comparable, "no temperature class with both groups populated"
        assert all(many >= few for few, many in comparable)
