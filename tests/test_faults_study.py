"""End-to-end chaos: the ISSUE's acceptance scenario.

A seeded fault plan that (a) injects match-stage failures and (b) kills
one worker mid-run is applied to a parallel study.  The degraded run
must complete, quarantine exactly the injected units into a
deterministic ``errors.jsonl``, and produce bitwise-identical artefacts
to the fault-free run for every surviving transition.

The plan leaves the cleaning stage untouched, so both runs see the same
segments and transitions — survivor artefacts can then be compared
index-by-index against the fault-free reference.
"""

from __future__ import annotations

import pytest

from repro.experiments import OuluStudy, StudyConfig
from repro.faults import FaultPlan, RobustnessConfig, read_errors_jsonl
from repro.faults.errors import ErrorRateExceeded, Quarantine
from repro.parallel import ExecutorConfig
from repro.traces import FleetSpec

#: Small-but-real study scale: enough transitions to make a ~10% match
#: fault rate meaningful, small enough for the chaos matrix in CI.
FLEET = FleetSpec(n_days=10, seed=7)


@pytest.fixture(scope="module")
def baseline():
    """Fault-free serial reference run."""
    return OuluStudy(StudyConfig(fleet=FLEET)).run()


@pytest.fixture(scope="module")
def chaos_run(chaos_seed, baseline):
    plan = FaultPlan(
        seed=chaos_seed, match_error_rate=0.1, kill_chunk={"match": 0}
    )
    config = StudyConfig(
        fleet=FLEET,
        executor=ExecutorConfig(workers=2, chunk_size=16),
        robustness=RobustnessConfig(retries=2, backoff_base_s=0.0),
        faults=plan,
    )
    n = len(baseline.extraction.transitions)
    doomed = {i for i in range(n) if plan.picks("match", i)}
    assert doomed, "seeded plan must hit at least one transition"
    assert len(doomed) < n, "some transitions must survive"
    return OuluStudy(config).run(), plan, doomed


def test_degraded_study_completes_and_accounts_every_fault(chaos_run, baseline):
    result, plan, doomed = chaos_run
    # Quarantine holds exactly the injected transitions, tagged.
    assert {e.transition_index for e in result.errors} == doomed
    assert all(e.stage == "match" for e in result.errors)
    assert all(e.fault_tag == "injected:match" for e in result.errors)
    assert result.metrics["counters"]["trips.quarantined"] == len(doomed)
    assert result.metrics["counters"]["faults.injected.match"] == len(doomed)
    # The killed worker was replaced exactly once.
    assert result.metrics["counters"]["worker.restarts"] == 1


def test_surviving_artefacts_bitwise_identical(chaos_run, baseline):
    result, plan, doomed = chaos_run
    # Upstream stages untouched by the plan: same segments/transitions.
    assert result.clean.segments == baseline.clean.segments
    assert len(result.extraction.transitions) == len(baseline.extraction.transitions)
    # Survivors match the fault-free run exactly; doomed units are absent.
    assert set(result.matched) == set(baseline.matched) - doomed
    for index, route in result.matched.items():
        assert route == baseline.matched[index]
    assert result.kept_transitions == [
        i for i in baseline.kept_transitions if i not in doomed
    ]


def test_errors_jsonl_round_trips_deterministically(chaos_run, chaos_out):
    result, plan, doomed = chaos_run
    quarantine = Quarantine()
    for error in result.errors:
        quarantine.add(error)
    path = chaos_out / "errors.jsonl"
    assert quarantine.write_jsonl(path) == len(doomed)
    assert read_errors_jsonl(path) == result.errors
    # Errors fold in transition order: deterministic across replays.
    indexes = [e.transition_index for e in result.errors]
    assert indexes == sorted(indexes)


def test_error_rate_threshold_fails_the_run(chaos_seed):
    config = StudyConfig(
        fleet=FLEET,
        robustness=RobustnessConfig(
            max_error_rate=1e-9, retries=0, backoff_base_s=0.0
        ),
        faults=FaultPlan(seed=chaos_seed, match_error_rate=0.2),
    )
    with pytest.raises(ErrorRateExceeded) as info:
        OuluStudy(config).run()
    assert info.value.rate > info.value.max_rate
    assert info.value.errors  # the CLI persists these before exiting
