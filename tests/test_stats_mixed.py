"""Tests for repro.stats.mixed — the REML random-intercept model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.mixed import RandomInterceptModel


def simulate(seed, k=60, sigma_u=4.0, sigma=6.0, mu=20.0, n_range=(3, 50)):
    rng = np.random.default_rng(seed)
    truth = rng.normal(0.0, sigma_u, k)
    y, groups = [], []
    for i in range(k):
        n_i = int(rng.integers(*n_range))
        y.extend(rng.normal(mu + truth[i], sigma, n_i))
        groups.extend([i] * n_i)
    return np.array(y), groups, truth


class TestRemlEstimation:
    def test_recovers_variance_components(self):
        y, groups, __ = simulate(0, k=120)
        result = RandomInterceptModel().fit(y, groups)
        assert result.sigma2 == pytest.approx(36.0, rel=0.25)
        assert result.sigma2_u == pytest.approx(16.0, rel=0.5)

    def test_recovers_grand_mean(self):
        y, groups, __ = simulate(1)
        result = RandomInterceptModel().fit(y, groups)
        assert result.intercept == pytest.approx(20.0, abs=1.5)

    def test_balanced_case_matches_anova_estimator(self):
        # For balanced one-way data REML equals the classical ANOVA
        # moment estimator (when it is positive).
        rng = np.random.default_rng(2)
        k, n = 40, 20
        truth = rng.normal(0.0, 3.0, k)
        y = np.concatenate([rng.normal(10.0 + t, 2.0, n) for t in truth])
        groups = np.repeat(np.arange(k), n).tolist()
        result = RandomInterceptModel().fit(y, groups)
        means = y.reshape(k, n).mean(axis=1)
        msb = n * np.var(means, ddof=1)
        msw = np.mean([np.var(y.reshape(k, n)[i], ddof=1) for i in range(k)])
        anova_sigma_u = (msb - msw) / n
        assert result.sigma2 == pytest.approx(msw, rel=0.05)
        assert result.sigma2_u == pytest.approx(anova_sigma_u, rel=0.1)

    def test_no_group_effect_shrinks_to_zero(self):
        rng = np.random.default_rng(3)
        y = rng.normal(0.0, 1.0, 600)
        groups = (np.arange(600) % 30).tolist()
        result = RandomInterceptModel().fit(y, groups)
        assert result.sigma2_u < 0.05
        assert result.sigma2 == pytest.approx(1.0, rel=0.2)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            RandomInterceptModel().fit([1.0, 2.0], [0])

    def test_minimum_observations(self):
        with pytest.raises(ValueError):
            RandomInterceptModel().fit([1.0], [0])


class TestBlup:
    def test_blups_correlate_with_truth(self):
        y, groups, truth = simulate(4, k=80)
        result = RandomInterceptModel().fit(y, groups)
        blups = np.array([result.blup[i] for i in range(80)])
        assert np.corrcoef(blups, truth)[0, 1] > 0.85

    def test_blups_shrink_toward_zero(self):
        """|BLUP| never exceeds |raw group residual mean| (shrinkage)."""
        y, groups, __ = simulate(5)
        result = RandomInterceptModel().fit(y, groups)
        y_arr = np.asarray(y)
        g_arr = np.asarray(groups)
        for g in result.groups:
            raw = y_arr[g_arr == g].mean() - result.intercept
            assert abs(result.blup[g]) <= abs(raw) + 1e-9

    def test_small_groups_shrink_more(self):
        y, groups, __ = simulate(6, n_range=(2, 60))
        result = RandomInterceptModel().fit(y, groups)
        small = [g for g in result.groups if result.group_sizes[g] <= 4]
        big = [g for g in result.groups if result.group_sizes[g] >= 40]
        if small and big:
            mean_small = np.mean([result.shrinkage(g) for g in small])
            mean_big = np.mean([result.shrinkage(g) for g in big])
            assert mean_small < mean_big

    def test_blup_intervals_contain_point(self):
        y, groups, __ = simulate(7)
        result = RandomInterceptModel().fit(y, groups)
        for g in result.groups:
            lo, hi = result.blup_interval(g)
            assert lo <= result.blup[g] <= hi

    def test_interval_width_shrinks_with_group_size(self):
        y, groups, __ = simulate(8, n_range=(2, 80))
        result = RandomInterceptModel().fit(y, groups)
        sizes = [(result.group_sizes[g], result.blup_se[g]) for g in result.groups]
        small_se = np.mean([se for n, se in sizes if n <= 4])
        big_se = np.mean([se for n, se in sizes if n >= 50])
        assert big_se < small_se

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_blup_sum_weighted_near_zero(self, seed):
        """Residual-weighted BLUPs balance around the GLS mean."""
        y, groups, __ = simulate(seed, k=30)
        result = RandomInterceptModel().fit(y, groups)
        blups = np.array([result.blup[g] for g in result.groups])
        assert abs(np.mean(blups)) < 2.0


class TestCovariates:
    def test_fixed_effect_recovered_alongside_intercepts(self):
        rng = np.random.default_rng(9)
        k = 50
        truth = rng.normal(0.0, 3.0, k)
        y, groups, xs = [], [], []
        for i in range(k):
            n_i = int(rng.integers(5, 30))
            x = rng.normal(0.0, 1.0, n_i)
            y.extend(10.0 + truth[i] + 1.8 * x + rng.normal(0, 1.0, n_i))
            xs.extend(x)
            groups.extend([i] * n_i)
        result = RandomInterceptModel().fit(y, groups, covariates={"x": xs})
        assert result.fixed_effect("x") == pytest.approx(1.8, abs=0.15)
        assert result.sigma2_u == pytest.approx(9.0, rel=0.5)


class TestOnStudyData:
    def test_study_mixed_model_fits(self, study_result):
        mixed = study_result.mixed
        assert mixed is not None
        assert mixed.sigma2 > 0.0
        assert mixed.sigma2_u > 0.0
        # The paper reports cell intercepts roughly in [-15, +20].
        blups = list(mixed.blup.values())
        assert min(blups) < -3.0
        assert max(blups) > 3.0


class TestGeographyLrt:
    def test_real_effect_is_significant(self):
        y, groups, __ = simulate(11, k=60)
        result = RandomInterceptModel().fit(y, groups)
        assert result.lrt_statistic > 10.0
        assert result.lrt_pvalue < 0.001

    def test_null_effect_not_significant(self):
        rng = np.random.default_rng(12)
        y = rng.normal(0.0, 1.0, 300)
        groups = (np.arange(300) % 20).tolist()
        result = RandomInterceptModel().fit(y, groups)
        assert result.lrt_pvalue > 0.01

    def test_pvalue_bounds(self):
        y, groups, __ = simulate(13)
        result = RandomInterceptModel().fit(y, groups)
        assert 0.0 <= result.lrt_pvalue <= 1.0

    def test_study_geography_effect_significant(self, study_result):
        """The paper: 'strong evidence of the effect of geography'."""
        assert study_result.mixed.lrt_pvalue < 1e-6
