"""Tests for repro.roadnet.validate."""


from repro.geo.geometry import LineString
from repro.roadnet import validate_map
from repro.roadnet.digiroad import MapDatabase
from repro.roadnet.elements import (
    FlowDirection,
    PointObject,
    PointObjectKind,
    TrafficElement,
)
from repro.roadnet.graphbuild import build_road_graph


def element(eid, coords, flow=FlowDirection.BOTH, limit=40.0):
    return TrafficElement(element_id=eid, geometry=LineString(coords),
                          flow=flow, speed_limit_kmh=limit)


def build(elements, objects=()):
    db = MapDatabase()
    db.add_elements(elements)
    for obj in objects:
        db.add_point_object(obj)
    graph, __ = build_road_graph(elements)
    return db, graph


class TestCleanMap:
    def test_synthetic_city_validates(self, city):
        report = validate_map(city.map_db, city.graph)
        assert report.ok
        assert report.n_elements == city.map_db.element_count()
        assert report.counts() == {}


class TestDefectDetection:
    def test_degenerate_element(self):
        db, graph = build([
            element(1, [(0, 0), (100, 0)]),
            element(2, [(100, 0), (100.1, 0)]),   # 10 cm sliver
            element(3, [(100.1, 0), (200, 0)]),
            element(4, [(0, 0), (0, 100)]),
        ])
        report = validate_map(db, graph)
        kinds = report.counts()
        assert kinds.get("degenerate_element") == 1
        assert report.by_kind()["degenerate_element"][0].subject == 2

    def test_implausible_speed_limit(self):
        db, graph = build([
            element(1, [(0, 0), (100, 0)], limit=200.0),
            element(2, [(100, 0), (200, 0)]),
            element(3, [(0, 0), (0, 100)]),
        ])
        report = validate_map(db, graph)
        assert report.counts().get("implausible_speed_limit") == 1

    def test_detached_object(self):
        db, graph = build(
            [element(1, [(0, 0), (100, 0)]), element(2, [(0, 0), (0, 100)]),
             element(3, [(100, 0), (200, 0)])],
            objects=[PointObject(1, PointObjectKind.BUS_STOP, (5000.0, 5000.0))],
        )
        report = validate_map(db, graph)
        assert report.counts().get("detached_object") == 1

    def test_dangling_object_reference(self):
        db, graph = build(
            [element(1, [(0, 0), (100, 0)]), element(2, [(0, 0), (0, 100)]),
             element(3, [(100, 0), (200, 0)])],
            objects=[PointObject(1, PointObjectKind.TRAFFIC_LIGHT, (50.0, 0.0),
                                 element_id=999)],
        )
        report = validate_map(db, graph)
        assert report.counts().get("dangling_object_reference") == 1

    def test_disconnected_component(self):
        db, graph = build([
            element(1, [(0, 0), (100, 0)]),
            element(2, [(0, 0), (0, 100)]),
            # An island far away, unconnected to the first cluster.
            element(3, [(10_000, 0), (10_100, 0)]),
            element(4, [(10_000, 0), (10_000, 100)]),
        ])
        report = validate_map(db, graph)
        assert report.counts().get("disconnected_component") == 1

    def test_oneway_trap(self):
        # Three one-way elements all pointing INTO the junction at
        # (100, 0): a vehicle can arrive but never leave.
        db, graph = build([
            element(1, [(0, 0), (100, 0)], flow=FlowDirection.FORWARD),
            element(2, [(200, 0), (100, 0)], flow=FlowDirection.FORWARD),
            element(3, [(100, 100), (100, 0)], flow=FlowDirection.FORWARD),
            element(4, [(0, 0), (0, 100)]),
            element(5, [(200, 0), (200, 100)]),
        ])
        report = validate_map(db, graph)
        assert report.counts().get("oneway_trap", 0) >= 1

    def test_impassable_edge_from_conflicting_oneways(self):
        # Opposed one-way elements merged into one chain: no legal
        # traversal direction survives the merge.
        db, graph = build([
            element(1, [(0, 0), (100, 0)], flow=FlowDirection.FORWARD),
            element(2, [(200, 0), (100, 0)], flow=FlowDirection.FORWARD),
            element(3, [(0, 0), (0, 100)]),
            element(4, [(200, 0), (200, 100)]),
        ])
        report = validate_map(db, graph)
        assert report.counts().get("impassable_edge", 0) >= 1

    def test_multiple_defects_reported_together(self):
        db, graph = build(
            [
                element(1, [(0, 0), (100, 0)], limit=300.0),
                element(2, [(0, 0), (0, 100)]),
                element(3, [(5000, 5000), (5100, 5000)]),
                element(4, [(5000, 5000), (5000, 5100)]),
            ],
            objects=[PointObject(1, PointObjectKind.BUS_STOP, (9999.0, -9999.0))],
        )
        report = validate_map(db, graph)
        assert not report.ok
        assert len(report.counts()) >= 3
