"""Tests for tools/gen_api_doc.py."""

import runpy
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


class TestApiDocGenerator:
    def test_generates_reference(self, tmp_path, monkeypatch, capsys):
        # Run the tool in-place; it writes docs/api.md.
        runpy.run_path(str(REPO / "tools" / "gen_api_doc.py"),
                       run_name="__main__")
        out = capsys.readouterr().out
        assert "wrote" in out
        text = (REPO / "docs" / "api.md").read_text()
        assert "# API reference" in text
        for anchor in ("## `repro.geo`", "## `repro.stats`",
                       "`OuluStudy`", "`RandomInterceptModel`",
                       "`TaxiFleetSimulator`", "`IncrementalMatcher`"):
            assert anchor in text, f"missing {anchor}"

    def test_every_package_documented(self):
        text = (REPO / "docs" / "api.md").read_text()
        for pkg in ("repro.geo", "repro.store", "repro.roadnet",
                    "repro.traces", "repro.cleaning", "repro.matching",
                    "repro.od", "repro.features", "repro.stats",
                    "repro.weather", "repro.analysis", "repro.experiments"):
            assert f"## `{pkg}`" in text
