"""Tests for repro.analysis.odflows and repro.analysis.critical."""

import pytest

from repro.analysis.critical import critical_edges, usage_counts
from repro.analysis.odflows import build_od_matrix, flow_table
from repro.traces.simulator import Region


class TestOdMatrix:
    @pytest.fixture(scope="class")
    def matrix(self, runs):
        return build_od_matrix(runs)

    def test_counts_total(self, matrix, runs):
        assert matrix.n_trips == len(runs)
        assert sum(matrix.counts.values()) == len(runs)

    def test_in_out_flow_conservation(self, matrix):
        total_out = sum(matrix.outflow(r) for r in Region)
        total_in = sum(matrix.inflow(r) for r in Region)
        assert total_out == total_in == matrix.n_trips

    def test_core_dominates(self, matrix):
        """Most trips touch the downtown core (the paper's study area)."""
        assert matrix.core_share() > 0.7
        assert matrix.flow(Region.CORE, Region.CORE) > matrix.flow(
            Region.NORTH, Region.SOUTH_S
        )

    def test_gate_flows_roughly_symmetric(self, matrix):
        """The region Markov chain is near-balanced: N<->core flows are
        within a factor of a few of each other."""
        assert matrix.symmetry(Region.CORE, Region.NORTH) > 0.3

    def test_peak_hour_in_working_day(self, matrix):
        assert 5 <= matrix.peak_hour() <= 23

    def test_flow_table_shape(self, matrix):
        rows = flow_table(matrix)
        assert len(rows) == len(Region)
        assert all(len(r) == len(Region) + 1 for r in rows)

    def test_empty_runs(self):
        matrix = build_od_matrix([])
        assert matrix.n_trips == 0
        assert matrix.core_share() == 0.0
        assert matrix.symmetry(Region.CORE, Region.NORTH) == 1.0


class TestCriticalEdges:
    def test_usage_counts(self, study_result):
        routes = [route for __, route in study_result.kept()]
        counts = usage_counts(routes)
        assert counts
        assert all(v >= 1 for v in counts.values())
        assert sum(counts.values()) == sum(len(r.edge_ids) for r in routes)

    def test_critical_edges_scored(self, study_result):
        routes = [route for __, route in study_result.kept()]
        scored = critical_edges(study_result.city.graph, routes,
                                top_k=5, n_pairs=20)
        assert len(scored) == 5
        usages = [c.usage for c in scored]
        assert usages == sorted(usages, reverse=True)
        for c in scored:
            assert c.detour_factor >= 0.99  # removal never shortens paths

    def test_gate_arterials_heavily_used(self, study_result):
        """Transitions funnel through the gates: the busiest edges sit on
        the arterials near the gates or the core axis."""
        routes = [route for __, route in study_result.kept()]
        counts = usage_counts(routes)
        busiest = max(counts, key=lambda e: counts[e])
        edge = study_result.city.graph.edge(busiest)
        mid = edge.geometry.interpolate(edge.length / 2.0)
        # Busiest edge lies within the study corridor, not out in a suburb.
        assert abs(mid[0]) <= 1500.0
