"""Tests for repro.roadnet.routing, cross-checked against networkx."""

import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.geometry import LineString
from repro.roadnet.graph import ElementSpan, RoadEdge, RoadGraph, RoadNode
from repro.roadnet.routing import (
    astar,
    dijkstra,
    path_travel_time_s,
    shortest_path,
    shortest_path_geometry,
)


def build_random_graph(seed: int, n: int = 25, extra_edges: int = 30):
    """A random connected planar-ish graph plus its networkx twin."""
    rng = random.Random(seed)
    g = RoadGraph()
    nxg = nx.Graph()
    positions = {}
    for i in range(1, n + 1):
        pos = (rng.uniform(0, 1000), rng.uniform(0, 1000))
        positions[i] = pos
        g.add_node(RoadNode(i, pos))
        nxg.add_node(i)
    edge_id = 1

    def add(u, v):
        nonlocal edge_id
        if u == v or nxg.has_edge(u, v):
            return
        geom = LineString([positions[u], positions[v]])
        g.add_edge(
            RoadEdge(
                edge_id=edge_id, u=u, v=v, geometry=geom,
                spans=(ElementSpan(edge_id, 0.0, geom.length, False, 40.0),),
            )
        )
        nxg.add_edge(u, v, weight=geom.length)
        edge_id += 1

    # Spanning chain guarantees connectivity.
    order = list(range(1, n + 1))
    rng.shuffle(order)
    for u, v in zip(order, order[1:]):
        add(u, v)
    for __ in range(extra_edges):
        add(rng.randint(1, n), rng.randint(1, n))
    return g, nxg


class TestAgainstNetworkx:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_dijkstra_costs_match(self, seed):
        g, nxg = build_random_graph(seed)
        rng = random.Random(seed + 1)
        source = rng.randint(1, 25)
        target = rng.randint(1, 25)
        ours = shortest_path(g, source, target, weight="length")
        expected = nx.shortest_path_length(nxg, source, target, weight="weight")
        assert ours.cost == pytest.approx(expected, rel=1e-9)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_astar_matches_dijkstra(self, seed):
        g, __ = build_random_graph(seed)
        rng = random.Random(seed + 2)
        source = rng.randint(1, 25)
        target = rng.randint(1, 25)
        d = shortest_path(g, source, target, weight="length")
        a = astar(g, source, target, weight="length")
        assert a.cost == pytest.approx(d.cost, rel=1e-9)


class TestPathMechanics:
    def setup_method(self):
        self.g = RoadGraph()
        coords = [(0, 0), (100, 0), (200, 0), (200, 100)]
        for i, pos in enumerate(coords, start=1):
            self.g.add_node(RoadNode(i, tuple(map(float, pos))))
        for eid, (u, v) in enumerate([(1, 2), (2, 3), (3, 4)], start=1):
            geom = LineString([self.g.node(u).position, self.g.node(v).position])
            self.g.add_edge(
                RoadEdge(
                    edge_id=eid, u=u, v=v, geometry=geom,
                    spans=(ElementSpan(eid, 0.0, geom.length, False, 36.0),),
                )
            )

    def test_trivial_same_node(self):
        p = shortest_path(self.g, 2, 2)
        assert p.found
        assert p.cost == 0.0
        assert p.edges == ()

    def test_path_nodes_and_edges(self):
        p = shortest_path(self.g, 1, 4)
        assert p.nodes == (1, 2, 3, 4)
        assert p.edges == (1, 2, 3)
        assert p.cost == pytest.approx(300.0)
        assert p.hop_count == 3

    def test_unreachable(self):
        self.g.add_node(RoadNode(99, (999.0, 999.0)))
        p = shortest_path(self.g, 1, 99)
        assert not p.found
        assert p.cost == math.inf

    def test_geometry_concatenation(self):
        p = shortest_path(self.g, 1, 4)
        geom = shortest_path_geometry(self.g, p)
        assert geom.length == pytest.approx(300.0)
        assert geom.start() == (0.0, 0.0)
        assert geom.end() == (200.0, 100.0)

    def test_geometry_of_empty_path(self):
        assert shortest_path_geometry(self.g, shortest_path(self.g, 1, 1)) is None

    def test_time_weight(self):
        p = shortest_path(self.g, 1, 4, weight="time")
        # 36 km/h = 10 m/s over 300 m.
        assert p.cost == pytest.approx(30.0)
        assert path_travel_time_s(self.g, p) == pytest.approx(30.0)

    def test_custom_weight_fn(self):
        # Penalise edge 2 heavily: no alternative, cost reflects it.
        def weight(edge):
            return edge.length * (100.0 if edge.edge_id == 2 else 1.0)

        dist = dijkstra(self.g, 1, 4, weight_fn=weight)
        assert dist[4][0] == pytest.approx(100.0 + 10_000.0 + 100.0)

    def test_max_cost_early_exit(self):
        dist = dijkstra(self.g, 1, target=None, weight="length", max_cost=150.0)
        assert 2 in dist
        assert 4 not in dist


class TestOneWayRouting:
    def test_respects_oneway(self):
        g = RoadGraph()
        for i, pos in enumerate([(0, 0), (100, 0), (50, 80)], start=1):
            g.add_node(RoadNode(i, tuple(map(float, pos))))
        geom12 = LineString([(0, 0), (100, 0)])
        g.add_edge(RoadEdge(1, 1, 2, geom12,
                            (ElementSpan(1, 0.0, geom12.length, False, 40.0),),
                            forward_allowed=True, backward_allowed=False))
        geom23 = LineString([(100, 0), (50, 80)])
        g.add_edge(RoadEdge(2, 2, 3, geom23,
                            (ElementSpan(2, 0.0, geom23.length, False, 40.0),)))
        geom31 = LineString([(50, 80), (0, 0)])
        g.add_edge(RoadEdge(3, 3, 1, geom31,
                            (ElementSpan(3, 0.0, geom31.length, False, 40.0),)))
        forward = shortest_path(g, 1, 2)
        assert forward.edges == (1,)
        backward = shortest_path(g, 2, 1)
        # Must detour around the one-way: 2 -> 3 -> 1.
        assert backward.nodes == (2, 3, 1)
        without = shortest_path(g, 2, 1, respect_oneway=False)
        assert without.edges == (1,)


class TestBidirectionalDijkstra:
    @given(seed=st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_matches_plain_dijkstra(self, seed):
        from repro.roadnet.routing import bidirectional_dijkstra

        g, __ = build_random_graph(seed)
        rng = random.Random(seed + 5)
        source = rng.randint(1, 25)
        target = rng.randint(1, 25)
        plain = shortest_path(g, source, target)
        bidir = bidirectional_dijkstra(g, source, target)
        assert bidir.cost == pytest.approx(plain.cost, rel=1e-9)

    def test_path_is_contiguous(self):
        from repro.roadnet.routing import bidirectional_dijkstra

        g, __ = build_random_graph(7)
        path = bidirectional_dijkstra(g, 1, 20)
        assert path.found
        for node, edge_id in zip(path.nodes[:-1], path.edges):
            edge = g.edge(edge_id)
            assert node in (edge.u, edge.v)
        assert len(path.nodes) == len(path.edges) + 1

    def test_same_node(self):
        from repro.roadnet.routing import bidirectional_dijkstra

        g, __ = build_random_graph(3)
        path = bidirectional_dijkstra(g, 5, 5)
        assert path.cost == 0.0
        assert path.nodes == (5,)

    def test_unreachable(self):
        from repro.roadnet.routing import bidirectional_dijkstra
        from repro.roadnet.graph import RoadNode

        g, __ = build_random_graph(4)
        g.add_node(RoadNode(99, (9e6, 9e6)))
        path = bidirectional_dijkstra(g, 1, 99)
        assert not path.found

    def test_respects_oneway(self, city):
        from repro.roadnet.routing import bidirectional_dijkstra

        g = city.graph
        oneway = next(e for e in g.edges()
                      if e.forward_allowed != e.backward_allowed)
        blocked_from = oneway.v if oneway.forward_allowed else oneway.u
        target = oneway.other(blocked_from)
        path = bidirectional_dijkstra(g, blocked_from, target)
        plain = shortest_path(g, blocked_from, target)
        assert path.cost == pytest.approx(plain.cost, rel=1e-9)
        # The direct one-way edge is illegal in this direction.
        assert path.cost > oneway.length - 1e-9


class TestRouteCacheSpill:
    """A corrupt or partial spill file must never fail a run (regression)."""

    def _cache(self, tmp_path, text: str | bytes):
        from repro.roadnet.routing import RouteCache

        spill = tmp_path / "routes.json"
        if isinstance(text, bytes):
            spill.write_bytes(text)
        else:
            spill.write_text(text)
        return RouteCache(max_entries=16, path=spill), spill

    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all {{{",
            '{"routes": [{"source": 1}]}',            # missing fields
            '{"routes": [{"source": 1, "target": 2, "weight": "length", '
            '"nodes": [1, 2], "edges": [7], "cost": 1',  # truncated save
            '{"routes": "oops"}',                      # wrong shape
            b"\x80\x81 binary garbage",
        ],
        ids=["garbage", "missing-fields", "truncated", "wrong-shape", "binary"],
    )
    def test_corrupt_spill_discarded_with_warning_counter(self, tmp_path, payload):
        from repro.obs import MetricsRegistry, use_registry
        from repro.roadnet.routing import PathResult

        registry = MetricsRegistry()
        with use_registry(registry):
            cache, spill = self._cache(tmp_path, payload)
        assert len(cache) == 0
        assert registry.counter("routing.route_cache_load_errors").value == 1
        # The cache stays fully usable after the discard...
        result = PathResult(nodes=(1, 2), edges=(7,), cost=3.0)
        cache.put(1, 2, "length", result)
        assert cache.get(1, 2, "length") == result
        # ...and the next save/load round-trips cleanly.
        assert cache.save() == 1
        assert cache.load() == 1

    def test_partial_discard_is_wholesale(self, tmp_path):
        """Valid leading rows of a damaged spill are not half-loaded."""
        text = (
            '{"routes": [{"source": 1, "target": 2, "weight": "length", '
            '"nodes": [1, 2], "edges": [7], "cost": 1.0}, {"source": 3}]}'
        )
        cache, __ = self._cache(tmp_path, text)
        assert len(cache) == 0
