"""Tests for repro.store.table."""

import pytest

from repro.store.table import Column, ConstraintError, SchemaError, Table


def make_table(pk=None):
    return Table(
        "trips",
        [Column("trip_id", int), Column("name", str, nullable=True),
         Column("length", float, check=lambda v: v >= 0)],
        pk=pk,
    )


class TestSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", int), Column("a", str)])

    def test_unknown_pk_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", int)], pk="missing")

    def test_auto_pk_column_added(self):
        t = Table("t", [Column("a", int)])
        assert "id" in t.columns

    def test_type_validation(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.insert({"trip_id": "not-an-int", "length": 1.0})

    def test_check_validation(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.insert({"trip_id": 1, "length": -5.0})

    def test_not_nullable_enforced(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.insert({"trip_id": 1, "length": None})

    def test_nullable_column_defaults_to_none(self):
        t = make_table()
        key = t.insert({"trip_id": 1, "length": 2.0})
        assert t.get(key)["name"] is None

    def test_unknown_column_rejected(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.insert({"trip_id": 1, "length": 1.0, "bogus": 3})


class TestCrud:
    def test_auto_increment_pk(self):
        t = make_table()
        k1 = t.insert({"trip_id": 1, "length": 1.0})
        k2 = t.insert({"trip_id": 2, "length": 2.0})
        assert k2 == k1 + 1

    def test_explicit_pk(self):
        t = make_table(pk="trip_id")
        t.insert({"trip_id": 42, "length": 1.0})
        assert t.get(42)["length"] == 1.0

    def test_duplicate_pk_rejected(self):
        t = make_table(pk="trip_id")
        t.insert({"trip_id": 1, "length": 1.0})
        with pytest.raises(ConstraintError):
            t.insert({"trip_id": 1, "length": 2.0})

    def test_explicit_auto_key_advances_counter(self):
        t = make_table()
        t.insert({"id": 10, "trip_id": 1, "length": 1.0})
        k = t.insert({"trip_id": 2, "length": 1.0})
        assert k == 11

    def test_delete(self):
        t = make_table()
        k = t.insert({"trip_id": 1, "length": 1.0})
        row = t.delete(k)
        assert row["trip_id"] == 1
        assert len(t) == 0
        with pytest.raises(KeyError):
            t.delete(k)

    def test_update(self):
        t = make_table()
        k = t.insert({"trip_id": 1, "length": 1.0})
        t.update(k, length=9.0)
        assert t.get(k)["length"] == 9.0

    def test_update_pk_forbidden(self):
        t = make_table()
        k = t.insert({"trip_id": 1, "length": 1.0})
        with pytest.raises(ConstraintError):
            t.update(k, id=99)

    def test_update_validates(self):
        t = make_table()
        k = t.insert({"trip_id": 1, "length": 1.0})
        with pytest.raises(SchemaError):
            t.update(k, length=-1.0)

    def test_get_or_none(self):
        t = make_table()
        assert t.get_or_none(999) is None

    def test_clear(self):
        t = make_table()
        t.insert_many([{"trip_id": i, "length": float(i)} for i in range(5)])
        t.clear()
        assert len(t) == 0

    def test_iteration_snapshot(self):
        t = make_table()
        t.insert_many([{"trip_id": i, "length": float(i)} for i in range(3)])
        rows = list(t)
        assert len(rows) == 3


class TestObservers:
    class Recorder:
        def __init__(self):
            self.events = []

        def on_insert(self, pk, row):
            self.events.append(("ins", pk))

        def on_delete(self, pk, row):
            self.events.append(("del", pk))

    def test_replay_on_attach(self):
        t = make_table()
        k = t.insert({"trip_id": 1, "length": 1.0})
        rec = self.Recorder()
        t.attach_observer(rec)
        assert rec.events == [("ins", k)]

    def test_update_fires_delete_then_insert(self):
        t = make_table()
        k = t.insert({"trip_id": 1, "length": 1.0})
        rec = self.Recorder()
        t.attach_observer(rec)
        t.update(k, length=2.0)
        assert rec.events == [("ins", k), ("del", k), ("ins", k)]

    def test_stats_tracked(self):
        t = make_table()
        k = t.insert({"trip_id": 1, "length": 1.0})
        t.update(k, length=2.0)
        t.delete(k)
        assert t.stats.inserts == 1
        assert t.stats.updates == 1
        assert t.stats.deletes == 1
