"""Tests for repro.analysis.pedestrians."""

import pytest

from repro.analysis.pedestrians import PedestrianModel, fuse_with_intercepts
from repro.features.grid import GridSpec


class TestPedestrianModel:
    @pytest.fixture(scope="class")
    def model(self, city):
        return PedestrianModel(city)

    def test_access_points_exist(self, model):
        assert len(model.access_points) > 20

    def test_hotspot_aps_busier(self, model, city):
        in_hot = [ap for ap in model.access_points if city.in_hotspot(ap.position)]
        out_hot = [ap for ap in model.access_points
                   if not city.in_hotspot(ap.position)]
        assert in_hot and out_hot
        mean_in = sum(a.base_clients for a in in_hot) / len(in_hot)
        mean_out = sum(a.base_clients for a in out_hot) / len(out_hot)
        assert mean_in > mean_out * 1.5

    def test_diurnal_pattern(self, model):
        ap = model.access_points[0]
        night = model.clients_at(ap, 3)
        afternoon = model.clients_at(ap, 14)
        assert afternoon > night

    def test_hour_validation(self, model):
        with pytest.raises(ValueError):
            model.clients_at(model.access_points[0], 24)

    def test_deterministic(self, city):
        a = PedestrianModel(city, seed=1)
        b = PedestrianModel(city, seed=1)
        ap = a.access_points[5]
        assert a.clients_at(ap, 12) == b.clients_at(b.access_points[5], 12)

    def test_cell_counts_concentrated_in_centre(self, model, city):
        spec = GridSpec(200.0)
        counts = model.cell_counts(spec, hour=14)
        assert counts
        centre = counts.get(spec.cell_of((0.0, 0.0)), 0.0)
        edge = counts.get(spec.cell_of((950.0, 950.0)), 0.0)
        assert centre > edge


class TestFusion:
    def test_pedestrians_explain_residual_slowness(self, study_result, city):
        model = PedestrianModel(city)
        counts = model.cell_counts(study_result.config.grid, hour=14)
        fit = fuse_with_intercepts(
            study_result.mixed.blup, counts, study_result.cell_features
        )
        # Crowded cells have lower speed intercepts, beyond what the
        # static map features explain — the paper's area-B finding.
        assert fit.coefficient("pedestrians") < 0.0
        assert fit.n == len(study_result.mixed.groups)

    def test_fusion_controls_present(self, study_result, city):
        model = PedestrianModel(city)
        counts = model.cell_counts(study_result.config.grid)
        fit = fuse_with_intercepts(
            study_result.mixed.blup, counts, study_result.cell_features
        )
        assert set(fit.names) == {
            "(intercept)", "pedestrians", "traffic_lights", "bus_stops",
            "pedestrian_crossings",
        }
