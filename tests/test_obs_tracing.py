"""Tests for stage tracing spans."""

from repro.obs import MetricsRegistry, current_span, span, use_registry
from repro.obs.tracing import SpanRecord


class TestSpanNesting:
    def test_root_span_lands_in_registry(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            with span("root"):
                pass
        assert len(reg.spans) == 1
        assert reg.spans[0].name == "root"
        assert reg.spans[0].duration_s >= 0.0

    def test_children_nest_under_parent(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            with span("outer"):
                with span("inner-a"):
                    with span("leaf"):
                        pass
                with span("inner-b"):
                    pass
        (root,) = reg.spans
        assert [c.name for c in root.children] == ["inner-a", "inner-b"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_current_span_tracks_stack(self):
        assert current_span() is None
        with span("a") as rec:
            assert current_span() is rec
        assert current_span() is None

    def test_spans_feed_stage_histograms(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            for __ in range(3):
                with span("repeated"):
                    pass
        summary = reg.snapshot()["histograms"]["stage.repeated.seconds"]
        assert summary["count"] == 3

    def test_exception_still_closes_span(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            try:
                with span("boom"):
                    raise ValueError("x")
            except ValueError:
                pass
        assert current_span() is None
        assert reg.spans[0].name == "boom"


class TestSpanDecorator:
    def test_decorator_wraps_each_call(self):
        reg = MetricsRegistry()

        @span("unit")
        def work(x):
            return x * 2

        with use_registry(reg):
            assert work(3) == 6
            assert work(4) == 8
        assert [s.name for s in reg.spans] == ["unit", "unit"]
        assert work.__name__ == "work"


class TestSpanRecord:
    def test_to_dict_tree(self):
        root = SpanRecord("a", 1.0, [SpanRecord("b", 0.5)])
        d = root.to_dict()
        assert d["name"] == "a"
        assert d["seconds"] == 1.0
        assert d["children"][0] == {"name": "b", "seconds": 0.5}

    def test_leaf_to_dict_omits_children(self):
        assert "children" not in SpanRecord("leaf").to_dict()

    def test_find(self):
        root = SpanRecord("a", children=[SpanRecord("b", children=[SpanRecord("c")])])
        assert root.find("c").name == "c"
        assert root.find("missing") is None
