"""Tests for repro.weather."""

from datetime import datetime, timezone


from repro.weather import (
    SEASON_SPEED_FACTOR,
    RoadWeatherModel,
    Season,
    season_of,
    season_speed_factor,
    temperature_class,
)
from repro.weather.roadweather import TEMPERATURE_CLASSES


def ts(year, month, day):
    return datetime(year, month, day, 12, 0, tzinfo=timezone.utc).timestamp()


class TestSeasons:
    def test_month_mapping(self):
        assert season_of(ts(2013, 1, 15)) is Season.WINTER
        assert season_of(ts(2012, 12, 15)) is Season.WINTER
        assert season_of(ts(2013, 4, 15)) is Season.SPRING
        assert season_of(ts(2013, 7, 15)) is Season.SUMMER
        assert season_of(ts(2012, 10, 15)) is Season.AUTUMN

    def test_speed_factor_ordering_matches_paper(self):
        # winter < spring < summer < autumn (paper Sec. VI.A deltas).
        assert (
            SEASON_SPEED_FACTOR[Season.WINTER]
            < SEASON_SPEED_FACTOR[Season.SPRING]
            < SEASON_SPEED_FACTOR[Season.SUMMER]
            < SEASON_SPEED_FACTOR[Season.AUTUMN]
        )

    def test_factor_lookup(self):
        assert season_speed_factor(ts(2013, 7, 1)) == SEASON_SPEED_FACTOR[Season.SUMMER]


class TestTemperatureClass:
    def test_banding(self):
        assert temperature_class(-15.0) == "<=-10"
        assert temperature_class(-10.0) == "<=-10"
        assert temperature_class(-5.0) == "-10..0"
        assert temperature_class(0.0) == "-10..0"
        assert temperature_class(5.0) == "0..+10"
        assert temperature_class(15.0) == ">+10"

    def test_classes_ordered(self):
        assert TEMPERATURE_CLASSES == ("<=-10", "-10..0", "0..+10", ">+10")


class TestRoadWeatherModel:
    def setup_method(self):
        self.model = RoadWeatherModel(seed=1)

    def test_deterministic(self):
        t = ts(2013, 2, 1)
        assert self.model.temperature_c(t) == RoadWeatherModel(seed=1).temperature_c(t)

    def test_seed_changes_dailies(self):
        t = ts(2013, 2, 1)
        other = RoadWeatherModel(seed=2)
        assert self.model.temperature_c(t) != other.temperature_c(t)

    def test_winter_colder_than_summer(self):
        jan = [self.model.temperature_c(ts(2013, 1, d)) for d in range(1, 28)]
        jul = [self.model.temperature_c(ts(2013, 7, d)) for d in range(1, 28)]
        assert max(jan) < min(jul)

    def test_oulu_january_is_freezing(self):
        jan = [self.model.temperature_c(ts(2013, 1, d)) for d in range(1, 28)]
        assert sum(jan) / len(jan) < -5.0

    def test_oulu_july_is_mild(self):
        jul = [self.model.temperature_c(ts(2013, 7, d)) for d in range(1, 28)]
        assert 10.0 < sum(jul) / len(jul) < 25.0

    def test_grip_factor_bounds(self):
        for month in range(1, 13):
            g = self.model.grip_factor(ts(2013, month, 10))
            assert 0.9 <= g <= 1.0

    def test_grip_above_freezing_is_one(self):
        assert self.model.grip_factor(ts(2013, 7, 10)) == 1.0

    def test_study_year_covers_all_classes(self):
        classes = {
            self.model.temperature_class(ts(2012, 10, 1) + d * 86_400)
            for d in range(365)
        }
        assert classes == set(TEMPERATURE_CLASSES)
