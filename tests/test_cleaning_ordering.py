"""Tests for repro.cleaning.ordering — the paper's shorter-length rule."""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning.ordering import repair_ordering
from repro.traces.model import RoutePoint, Trip, trip_distance_m
from repro.traces.noise import NoiseSpec, apply_noise


def straight_trip(n=12):
    points = [
        RoutePoint(point_id=i, trip_id=1, lat=65.0 + i * 2e-3, lon=25.0,
                   time_s=float(i * 60), speed_kmh=30.0, fuel_ml=float(i))
        for i in range(1, n + 1)
    ]
    return Trip(trip_id=1, car_id=1, points=points)


def corrupt_ids(trip, swaps, seed=0):
    """Swap ids of adjacent (true-order) pairs, then store in id order."""
    rng = random.Random(seed)
    pts = list(trip.points)
    for __ in range(swaps):
        i = rng.randrange(0, len(pts) - 1)
        a, b = pts[i], pts[i + 1]
        pts[i] = replace(a, point_id=b.point_id)
        pts[i + 1] = replace(b, point_id=a.point_id)
    pts.sort(key=lambda p: p.point_id)
    return trip.with_points(pts)


def corrupt_times(trip, swaps, seed=0):
    rng = random.Random(seed)
    pts = list(trip.points)
    for __ in range(swaps):
        i = rng.randrange(0, len(pts) - 1)
        a, b = pts[i], pts[i + 1]
        pts[i] = replace(a, time_s=b.time_s)
        pts[i + 1] = replace(b, time_s=a.time_s)
    return trip.with_points(pts)


class TestRepairOrdering:
    def test_consistent_trip_unchanged(self):
        trip = straight_trip()
        repaired, report = repair_ordering(trip)
        assert report.was_consistent
        assert report.chosen == "point_id"
        assert [p.lat for p in repaired.points] == [p.lat for p in trip.points]

    def test_corrupted_ids_recovered_via_timestamps(self):
        trip = corrupt_ids(straight_trip(), swaps=3, seed=1)
        repaired, report = repair_ordering(trip)
        assert report.chosen == "time_s"
        assert repaired.total_distance_m == pytest.approx(
            straight_trip().total_distance_m, rel=1e-9
        )

    def test_corrupted_times_recovered_via_ids(self):
        trip = corrupt_times(straight_trip(), swaps=3, seed=2)
        repaired, report = repair_ordering(trip)
        assert report.chosen == "point_id"
        assert repaired.total_distance_m == pytest.approx(
            straight_trip().total_distance_m, rel=1e-9
        )

    def test_report_distances(self):
        trip = corrupt_ids(straight_trip(), swaps=3, seed=3)
        __, report = repair_ordering(trip)
        assert report.distance_by_time_m < report.distance_by_id_m
        assert report.saved_m > 0

    def test_output_monotonic_in_both_keys(self):
        trip = corrupt_ids(straight_trip(), swaps=4, seed=4)
        repaired, __ = repair_ordering(trip)
        ids = [p.point_id for p in repaired.points]
        times = [p.time_s for p in repaired.points]
        assert ids == sorted(ids)
        assert times == sorted(times)

    def test_value_multisets_preserved(self):
        trip = corrupt_ids(straight_trip(), swaps=4, seed=5)
        repaired, __ = repair_ordering(trip)
        assert sorted(p.point_id for p in repaired.points) == sorted(
            p.point_id for p in trip.points
        )
        assert sorted(p.time_s for p in repaired.points) == sorted(
            p.time_s for p in trip.points
        )

    def test_idempotent(self):
        trip = corrupt_ids(straight_trip(), swaps=3, seed=6)
        once, __ = repair_ordering(trip)
        twice, report = repair_ordering(once)
        assert report.was_consistent
        assert [p.lat for p in twice.points] == [p.lat for p in once.points]

    @given(seed=st.integers(min_value=0, max_value=500),
           swaps=st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_repair_never_increases_distance(self, seed, swaps):
        trip = corrupt_ids(straight_trip(), swaps=swaps, seed=seed)
        repaired, __ = repair_ordering(trip)
        assert repaired.total_distance_m <= trip_distance_m(
            sorted(trip.points, key=lambda p: p.point_id)
        ) + 1e-9

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_recovers_simulated_noise(self, seed):
        spec = NoiseSpec(gps_sigma_m=0.0, reorder_prob=1.0, reorder_swaps=3,
                         glitch_prob=0.0, duplicate_prob=0.0)
        noisy = apply_noise(straight_trip(), spec, random.Random(seed))
        repaired, __ = repair_ordering(noisy)
        assert repaired.total_distance_m == pytest.approx(
            straight_trip().total_distance_m, rel=1e-6
        )
