"""Chaos tests for worker-pool death and recovery.

A chunk's worker is hard-killed (``os._exit``) before touching the
chunk; the executor must recycle the pool, resubmit exactly the lost
chunks, and still fold results byte-identical to a serial run — no
duplicated and no lost items.
"""

from __future__ import annotations

from repro.cleaning import CleaningPipeline
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry, use_registry
from repro.parallel import ExecutorConfig, TripExecutor, WorkerPayload


def _artefacts(trip_results):
    """The deterministic fields of clean results (drop wall timings)."""
    return [
        (r.segments, r.reordered, r.duplicates_removed, r.outliers_removed,
         r.out_of_bounds_removed)
        for r in trip_results
    ]


def _executor(plan: FaultPlan | None, workers: int = 2) -> TripExecutor:
    """A cleaning-only pool executor with small chunks (several per worker)."""
    return TripExecutor(
        WorkerPayload(fault_plan=plan),
        ExecutorConfig(workers=workers, chunk_size=8),
    )


def test_worker_kill_recovers_without_lost_or_duplicated_trips(fleet, chaos_seed):
    plan = FaultPlan(seed=chaos_seed, kill_chunk={"clean": 1})
    registry = MetricsRegistry()
    with use_registry(registry), _executor(plan) as executor:
        results = executor.clean_trips(fleet.trips)
    serial = [CleaningPipeline().clean_trip(trip) for trip in fleet.trips]
    assert _artefacts(results) == _artefacts(serial)
    assert registry.counter("worker.restarts").value == 1
    # Every chunk is accounted exactly once despite the resubmission.
    n_chunks = -(-len(fleet.trips) // 8)
    assert registry.counter("parallel.clean_chunks").value == n_chunks
    assert registry.counter("parallel.clean_items").value == len(fleet.trips)


def test_pipeline_run_through_killed_pool_matches_serial(fleet, chaos_seed):
    plan = FaultPlan(seed=chaos_seed, kill_chunk={"clean": 0})
    pipeline = CleaningPipeline()
    with _executor(plan) as executor:
        parallel = pipeline.run(fleet, executor=executor)
    serial = pipeline.run(fleet)
    assert parallel.segments == serial.segments
    assert parallel.report.segments_out == serial.report.segments_out


def test_kill_on_final_chunk(fleet):
    """Killing the last chunk exercises the drain-phase recovery path."""
    n_chunks = -(-len(fleet.trips) // 8)
    plan = FaultPlan(kill_chunk={"clean": n_chunks - 1})
    registry = MetricsRegistry()
    with use_registry(registry), _executor(plan) as executor:
        results = executor.clean_trips(fleet.trips)
    assert len(results) == len(fleet.trips)
    assert registry.counter("worker.restarts").value == 1
