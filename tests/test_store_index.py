"""Tests for repro.store.index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.index import HashIndex, SortedIndex
from repro.store.table import Column, Table


def make_table():
    return Table(
        "points",
        [Column("trip_id", int), Column("t", float, nullable=True)],
    )


class TestHashIndex:
    def test_unknown_column_rejected(self):
        with pytest.raises(KeyError):
            HashIndex(make_table(), "missing")

    def test_lookup(self):
        t = make_table()
        idx = HashIndex(t, "trip_id")
        t.insert({"trip_id": 1, "t": 0.0})
        t.insert({"trip_id": 1, "t": 1.0})
        t.insert({"trip_id": 2, "t": 2.0})
        assert len(idx.lookup(1)) == 2
        assert len(idx.lookup(2)) == 1
        assert idx.lookup(3) == []

    def test_existing_rows_indexed_on_attach(self):
        t = make_table()
        t.insert({"trip_id": 7, "t": 0.0})
        idx = HashIndex(t, "trip_id")
        assert len(idx.lookup(7)) == 1

    def test_delete_maintains_index(self):
        t = make_table()
        idx = HashIndex(t, "trip_id")
        k = t.insert({"trip_id": 1, "t": 0.0})
        t.delete(k)
        assert idx.lookup(1) == []
        assert len(idx) == 0

    def test_update_moves_bucket(self):
        t = make_table()
        idx = HashIndex(t, "trip_id")
        k = t.insert({"trip_id": 1, "t": 0.0})
        t.update(k, trip_id=2)
        assert idx.lookup(1) == []
        assert len(idx.lookup(2)) == 1

    def test_none_values_indexed(self):
        t = make_table()
        idx = HashIndex(t, "t")
        t.insert({"trip_id": 1, "t": None})
        assert len(idx.lookup(None)) == 1

    def test_distinct_values(self):
        t = make_table()
        idx = HashIndex(t, "trip_id")
        t.insert({"trip_id": 1, "t": 0.0})
        t.insert({"trip_id": 5, "t": 0.0})
        assert sorted(idx.distinct_values()) == [1, 5]


class TestSortedIndex:
    def test_range_inclusive(self):
        t = make_table()
        idx = SortedIndex(t, "t")
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            t.insert({"trip_id": 1, "t": v})
        got = [r["t"] for r in idx.range(2.0, 4.0)]
        assert got == [2.0, 3.0, 4.0]

    def test_range_exclusive_bounds(self):
        t = make_table()
        idx = SortedIndex(t, "t")
        for v in (1.0, 2.0, 3.0):
            t.insert({"trip_id": 1, "t": v})
        got = [r["t"] for r in idx.range(1.0, 3.0, include_low=False, include_high=False)]
        assert got == [2.0]

    def test_open_ranges(self):
        t = make_table()
        idx = SortedIndex(t, "t")
        for v in (1.0, 2.0, 3.0):
            t.insert({"trip_id": 1, "t": v})
        assert len(list(idx.range(None, None))) == 3
        assert [r["t"] for r in idx.range(2.0, None)] == [2.0, 3.0]
        assert [r["t"] for r in idx.range(None, 2.0)] == [1.0, 2.0]

    def test_min_max(self):
        t = make_table()
        idx = SortedIndex(t, "t")
        assert idx.min() is None and idx.max() is None
        for v in (3.0, 1.0, 2.0):
            t.insert({"trip_id": 1, "t": v})
        assert idx.min() == 1.0
        assert idx.max() == 3.0

    def test_delete_with_duplicate_keys(self):
        t = make_table()
        idx = SortedIndex(t, "t")
        k1 = t.insert({"trip_id": 1, "t": 2.0})
        k2 = t.insert({"trip_id": 2, "t": 2.0})
        t.delete(k1)
        remaining = list(idx.range(2.0, 2.0))
        assert len(remaining) == 1
        assert remaining[0]["trip_id"] == 2

    def test_none_not_indexed(self):
        t = make_table()
        idx = SortedIndex(t, "t")
        t.insert({"trip_id": 1, "t": None})
        assert len(idx) == 0

    @given(seed=st.integers(min_value=0, max_value=9999))
    @settings(max_examples=20, deadline=None)
    def test_matches_brute_force_after_churn(self, seed):
        rng = random.Random(seed)
        t = make_table()
        idx = SortedIndex(t, "t")
        alive = {}
        for __ in range(80):
            if alive and rng.random() < 0.3:
                k = rng.choice(list(alive))
                t.delete(k)
                del alive[k]
            else:
                v = round(rng.uniform(0, 100), 1)
                k = t.insert({"trip_id": 1, "t": v})
                alive[k] = v
        lo, hi = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
        got = sorted(r["t"] for r in idx.range(lo, hi))
        expected = sorted(v for v in alive.values() if lo <= v <= hi)
        assert got == expected
