"""Tests for repro.stats.ols."""

import numpy as np
import pytest

from repro.stats.ols import fit_ols


class TestFitOls:
    def test_recovers_coefficients(self):
        rng = np.random.default_rng(0)
        x1 = rng.normal(0, 1, 400)
        x2 = rng.normal(0, 1, 400)
        y = 1.5 + 2.0 * x1 - 3.0 * x2 + rng.normal(0, 0.1, 400)
        r = fit_ols(y, {"x1": x1, "x2": x2})
        assert r.coefficient("(intercept)") == pytest.approx(1.5, abs=0.05)
        assert r.coefficient("x1") == pytest.approx(2.0, abs=0.05)
        assert r.coefficient("x2") == pytest.approx(-3.0, abs=0.05)
        assert r.r_squared > 0.99

    def test_no_intercept(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        y = 2.0 * x
        r = fit_ols(y, {"x": x}, intercept=False)
        assert r.names == ("x",)
        assert r.coefficient("x") == pytest.approx(2.0)

    def test_standard_errors_shrink_with_n(self):
        rng = np.random.default_rng(1)

        def se_at(n):
            x = rng.normal(0, 1, n)
            y = 1.0 + x + rng.normal(0, 1, n)
            return fit_ols(y, {"x": x}).std_error("x")

        assert se_at(2000) < se_at(50)

    def test_t_values(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, 300)
        noise = rng.normal(0, 1, 300)
        y = 5.0 * x + noise
        r = fit_ols(y, {"x": x, "noise_col": rng.normal(0, 1, 300)})
        assert abs(r.t_values[r.names.index("x")]) > 10.0
        assert abs(r.t_values[r.names.index("noise_col")]) < 4.0

    def test_misaligned_covariate_rejected(self):
        with pytest.raises(ValueError):
            fit_ols([1.0, 2.0], {"x": [1.0, 2.0, 3.0]})

    def test_underdetermined_rejected(self):
        with pytest.raises(ValueError):
            fit_ols([1.0, 2.0], {"x": [1.0, 2.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_ols([], {})

    def test_perfect_fit_r2_one(self):
        x = np.arange(10.0)
        r = fit_ols(3.0 + 2.0 * x, {"x": x})
        assert r.r_squared == pytest.approx(1.0)
        assert r.sigma2 == pytest.approx(0.0, abs=1e-18)

    def test_speed_vs_lights_association(self, study_result):
        """OLS on the study grid: lights associate with lower cell speed."""
        cells = study_result.grid.cells()
        if len(cells) < 10:
            pytest.skip("too few cells in study fixture")
        y = []
        lights = []
        for key, stats in cells.items():
            y.append(stats.mean)
            lights.append(
                float(study_result.cell_features.get(key, {}).get("traffic_lights", 0))
            )
        r = fit_ols(y, {"lights": lights})
        assert r.coefficient("lights") < 0.0
