"""Tests for repro.od.gates."""

import pytest

from repro.geo.geometry import LineString
from repro.od.gates import CrossingEvent, Gate, find_crossings


@pytest.fixture()
def gate():
    return Gate(name="T", road=LineString([(-150.0, 0.0), (150.0, 0.0)]),
                half_width_m=60.0)


class TestGate:
    def test_perpendicular_crossing(self, gate):
        assert gate.crossed_by((0.0, -200.0), (0.0, 200.0))

    def test_along_road_no_crossing(self, gate):
        assert not gate.crossed_by((-100.0, 10.0), (100.0, 10.0))

    def test_far_away_segment(self, gate):
        assert not gate.crossed_by((5000.0, 5000.0), (5000.0, 5200.0))

    def test_angle_window(self):
        steep_only = Gate(
            name="X", road=LineString([(-150.0, 0.0), (150.0, 0.0)]),
            half_width_m=60.0, min_angle_deg=80.0,
        )
        # 45 degree crossing rejected, 90 degree accepted.
        assert not steep_only.crossed_by((-100.0, -100.0), (100.0, 100.0))
        assert steep_only.crossed_by((0.0, -100.0), (0.0, 100.0))

    def test_distance_to(self, gate):
        assert gate.distance_to((0.0, 100.0)) == pytest.approx(100.0)
        assert gate.distance_to((0.0, 0.0)) == 0.0


class TestFindCrossings:
    def test_single_crossing_event(self, gate):
        xys = [(0.0, -300.0), (0.0, -100.0), (0.0, 100.0), (0.0, 300.0)]
        times = [0.0, 10.0, 20.0, 30.0]
        events = find_crossings(xys, times, [gate])
        assert len(events) == 1
        assert events[0] == CrossingEvent(gate="T", index=1, time_s=10.0)

    def test_slow_passage_counts_once(self, gate):
        # Several consecutive fixes inside the thick region.
        xys = [(0.0, -100.0), (0.0, -30.0), (0.0, 20.0), (0.0, 90.0)]
        times = [0.0, 10.0, 20.0, 30.0]
        events = find_crossings(xys, times, [gate])
        assert len(events) == 1
        assert events[0].index == 0

    def test_double_crossing_detected(self, gate):
        # Out and back through the same gate with a gap between passes.
        xys = [(0.0, -100.0), (0.0, 100.0), (30.0, 400.0), (30.0, 100.0),
               (30.0, -100.0)]
        times = [0.0, 10.0, 20.0, 30.0, 40.0]
        events = find_crossings(xys, times, [gate])
        assert len(events) == 2

    def test_multiple_gates_ordered_by_time(self):
        g1 = Gate(name="A", road=LineString([(-50.0, 0.0), (50.0, 0.0)]),
                  half_width_m=30.0)
        g2 = Gate(name="B", road=LineString([(-50.0, 1000.0), (50.0, 1000.0)]),
                  half_width_m=30.0)
        xys = [(0.0, -100.0), (0.0, 100.0), (0.0, 900.0), (0.0, 1100.0)]
        times = [0.0, 10.0, 20.0, 30.0]
        events = find_crossings(xys, times, [g2, g1])
        assert [e.gate for e in events] == ["A", "B"]

    def test_no_crossings(self, gate):
        xys = [(500.0, 0.0), (500.0, 100.0)]
        events = find_crossings(xys, [0.0, 1.0], [gate])
        assert events == []
