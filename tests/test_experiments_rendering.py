"""Tests for repro.experiments.rendering edge cases."""

from repro.experiments.rendering import format_table, render_series


class TestFormatTable:
    def test_mixed_types(self):
        text = format_table(["a", "b", "c"], [[1, "x", 2.5], [22, "yy", 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "0.125" in text
        # Columns aligned: header separator as wide as the widest cell.
        assert len(lines[0]) == len(lines[1])

    def test_digits_control(self):
        text = format_table(["v"], [[1.23456]], digits=1)
        assert "1.2" in text
        assert "1.23" not in text

    def test_wide_header_wins(self):
        text = format_table(["a_very_long_header"], [[1]])
        assert text.splitlines()[1] == "-" * len("a_very_long_header")


class TestRenderSeries:
    def test_pairs_rendered(self):
        text = render_series("title", [(1.234, 5.678), ("x", "y")])
        assert text.startswith("title")
        assert "1.23" in text
        assert "x" in text and "y" in text

    def test_empty_series(self):
        assert render_series("nothing", []) == "nothing"
