"""Tests for repro.roadnet.synthcity."""

import pytest

from repro.roadnet import CitySpec, build_synthetic_oulu
from repro.roadnet.elements import PointObjectKind


class TestCityStructure:
    def test_feature_census_matches_spec(self, city):
        census = city.feature_census()
        assert census["traffic_light"] == city.spec.n_traffic_lights
        assert census["pedestrian_crossing"] == city.spec.n_pedestrian_crossings
        assert census["bus_stop"] == city.spec.n_bus_stops

    def test_graph_nontrivial(self, city):
        assert city.graph.node_count > 100
        assert city.graph.edge_count > 150

    def test_every_edge_has_elements(self, city):
        for edge in city.graph.edges():
            assert len(edge.spans) >= 1

    def test_multi_element_edges_exist(self, city):
        multi = [p for p in city.junction_pairs if len(p.element_ids) > 1]
        assert len(multi) > 50  # Table 1 structure: edges merge elements

    def test_gates_present(self, city):
        assert set(city.gate_roads) == {"T", "S", "L"}

    def test_gates_cross_their_arterials(self, city):
        # Each gate road must intersect a road edge (its arterial).
        for name, road in city.gate_roads.items():
            mid = road.interpolate(road.length / 2.0)
            assert city.graph.edges_near(mid, 10.0), f"gate {name} floats in space"

    def test_central_area_contains_gates_s_l_and_core(self, city):
        assert city.central_area.contains((0.0, 0.0))
        assert city.central_area.contains((600.0, -1400.0))
        assert city.central_area.contains((-600.0, -1400.0))

    def test_east_outer_outside_central_area(self, city):
        assert not city.central_area.contains((1400.0, 0.0))

    def test_hotspot_near_centre(self, city):
        assert city.in_hotspot((0.0, 100.0))
        assert not city.in_hotspot((900.0, 900.0))

    def test_dead_ends_exist(self, city):
        dead = [n for n in city.graph.nodes() if city.graph.degree(n.node_id) == 1]
        assert len(dead) >= 6

    def test_oneway_edges_exist(self, city):
        oneway = [
            e for e in city.graph.edges()
            if e.forward_allowed != e.backward_allowed
        ]
        assert oneway, "the one-way street pair should survive graph building"

    def test_lights_concentrated_in_core(self, city):
        lights = city.map_db.point_objects(PointObjectKind.TRAFFIC_LIGHT)
        assert all(
            max(abs(o.position[0]), abs(o.position[1])) <= 900.0 for o in lights
        )

    def test_bypass_corridor_unlit(self, city):
        lights = city.map_db.point_objects(PointObjectKind.TRAFFIC_LIGHT)
        assert not any(abs(o.position[0] + 1000.0) < 50.0 for o in lights)


class TestDeterminismAndSpec:
    def test_same_seed_same_city(self):
        a = build_synthetic_oulu()
        b = build_synthetic_oulu()
        assert a.map_db.element_count() == b.map_db.element_count()
        ea = sorted(e.element_id for e in a.map_db.elements())
        eb = sorted(e.element_id for e in b.map_db.elements())
        assert ea == eb
        ga = [(p.junction1, p.element_ids) for p in a.junction_pairs]
        gb = [(p.junction1, p.element_ids) for p in b.junction_pairs]
        assert ga == gb

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CitySpec(grid_half_m=0.0)
        with pytest.raises(ValueError):
            CitySpec(grid_half_m=1000.0, grid_spacing_m=300.0)

    def test_custom_feature_counts(self):
        spec = CitySpec(n_traffic_lights=10, n_bus_stops=5, n_pedestrian_crossings=20)
        city = build_synthetic_oulu(spec)
        census = city.feature_census()
        assert census["traffic_light"] == 10
        assert census["bus_stop"] == 5
        assert census["pedestrian_crossing"] == 20

    def test_elements_respect_max_length(self, city):
        for e in city.map_db.elements():
            assert e.length_m <= city.spec.max_element_length_m + 1e-6

    def test_projector_anchored_at_oulu(self, city):
        lat, lon = city.projector.to_latlon(0.0, 0.0)
        assert lat == pytest.approx(city.spec.ref_lat)
        assert lon == pytest.approx(city.spec.ref_lon)
