"""Tests for repro.od.transitions on constructed trajectories."""

import pytest

from repro.cleaning.segmentation import TripSegment
from repro.geo.geometry import LineString
from repro.geo.polygon import Polygon
from repro.od import Gate, TransitionExtractor, post_filter_transition
from repro.od.transitions import STUDIED_PAIRS, TransitionConfig
from repro.traces.model import RoutePoint


def gates():
    return [
        Gate(name="T", road=LineString([(-150.0, 1000.0), (150.0, 1000.0)]),
             half_width_m=60.0),
        Gate(name="S", road=LineString([(-150.0, -1000.0), (150.0, -1000.0)]),
             half_width_m=60.0),
        Gate(name="L", road=LineString([(850.0, -1000.0), (1150.0, -1000.0)]),
             half_width_m=60.0),
    ]


def central():
    return Polygon.rectangle(-1500.0, -1200.0, 1500.0, 1200.0)


class FakeProjector:
    """Identity projection: test points are already metric."""

    @staticmethod
    def to_xy(p):
        return (p.lon, p.lat)   # lon=x, lat=y for these synthetic points


def segment_from_xy(points_xy, car_id=1, segment_id=1, dt=20.0):
    points = [
        RoutePoint(point_id=i + 1, trip_id=1, lat=y, lon=x, time_s=i * dt,
                   speed_kmh=30.0)
        for i, (x, y) in enumerate(points_xy)
    ]
    return TripSegment(segment_id=segment_id, trip_id=1, car_id=car_id,
                       index=0, points=points)


def north_to_south(x=0.0):
    """A straight drive from above gate T to below gate S."""
    return [(x, y) for y in range(1200, -1300, -100)]


class TestExtraction:
    def setup_method(self):
        self.extractor = TransitionExtractor(gates(), central())
        self.to_xy = FakeProjector.to_xy

    def test_t_to_s_transition_found(self):
        seg = segment_from_xy(north_to_south())
        result = self.extractor.extract([seg], self.to_xy)
        assert len(result.transitions) == 1
        tr = result.transitions[0]
        assert tr.direction == "T-S"
        assert tr.within_centre

    def test_reverse_direction_is_s_t(self):
        seg = segment_from_xy(list(reversed(north_to_south())))
        result = self.extractor.extract([seg], self.to_xy)
        assert result.transitions[0].direction == "S-T"

    def test_no_gate_crossing_no_transition(self):
        seg = segment_from_xy([(500.0, y) for y in range(-500, 600, 100)])
        result = self.extractor.extract([seg], self.to_xy)
        assert result.transitions == []
        assert result.funnel[0].filtered_cleaned == 0

    def test_single_gate_counts_as_filtered_only(self):
        seg = segment_from_xy([(0.0, y) for y in range(1200, 700, -100)])
        result = self.extractor.extract([seg], self.to_xy)
        assert result.funnel[0].filtered_cleaned == 1
        assert result.funnel[0].transitions_total == 0

    def test_s_to_l_not_studied(self):
        # Crosses S then L (both southern gates) — not among the 4 pairs.
        path = [(0.0, -900.0), (0.0, -1100.0), (500.0, -1100.0),
                (1000.0, -1100.0), (1000.0, -900.0)]
        seg = segment_from_xy(path)
        result = self.extractor.extract([seg], self.to_xy)
        assert result.funnel[0].filtered_cleaned == 1
        assert result.funnel[0].transitions_total == 0

    def test_outside_centre_flagged(self):
        # T to S via a detour through x=2000 (outside the central area).
        path = [(0.0, 1200.0), (0.0, 1000.0), (0.0, 800.0), (2000.0, 500.0),
                (2000.0, -500.0), (0.0, -800.0), (0.0, -1000.0), (0.0, -1200.0)]
        seg = segment_from_xy(path)
        result = self.extractor.extract([seg], self.to_xy)
        assert result.funnel[0].transitions_total == 1
        assert result.funnel[0].within_centre == 0
        assert result.transitions == []

    def test_funnel_rows_per_car(self):
        segs = [
            segment_from_xy(north_to_south(), car_id=1, segment_id=1),
            segment_from_xy(north_to_south(), car_id=2, segment_id=2),
            segment_from_xy([(500.0, 0.0), (500.0, 100.0), (500.0, 200.0)],
                            car_id=2, segment_id=3),
        ]
        result = self.extractor.extract(segs, self.to_xy)
        rows = {r.car_id: r for r in result.funnel}
        assert rows[1].total_segments == 1
        assert rows[2].total_segments == 2
        assert rows[2].transitions_total == 1

    def test_transition_points_straddle_crossings(self):
        seg = segment_from_xy(north_to_south())
        result = self.extractor.extract([seg], self.to_xy)
        tr = result.transitions[0]
        pts = tr.points()
        ys = [p.lat for p in pts]
        assert max(ys) >= 1000.0     # includes the fix before gate T
        assert min(ys) <= -1000.0    # includes the fix after gate S

    def test_first_studied_pair_wins(self):
        # T -> S -> L: the T-S pair is reported, not T-L.
        path = north_to_south() + [(x, -1100.0) for x in range(100, 1200, 200)]
        seg = segment_from_xy(path)
        result = self.extractor.extract([seg], self.to_xy)
        assert result.transitions[0].direction == "T-S"


class TestPostFilter:
    def test_close_endpoints_pass(self):
        extractor = TransitionExtractor(gates(), central())
        seg = segment_from_xy(north_to_south())
        tr = extractor.extract([seg], FakeProjector.to_xy).transitions[0]
        ok = post_filter_transition(
            tr, (0.0, 1050.0), (0.0, -1080.0), extractor.gates_by_name)
        assert ok
        assert tr.post_filtered_ok is True

    def test_far_start_fails(self):
        extractor = TransitionExtractor(gates(), central())
        seg = segment_from_xy(north_to_south())
        tr = extractor.extract([seg], FakeProjector.to_xy).transitions[0]
        ok = post_filter_transition(
            tr, (0.0, 1500.0), (0.0, -1010.0), extractor.gates_by_name)
        assert not ok
        assert tr.post_filtered_ok is False

    def test_threshold_configurable(self):
        extractor = TransitionExtractor(gates(), central())
        seg = segment_from_xy(north_to_south())
        tr = extractor.extract([seg], FakeProjector.to_xy).transitions[0]
        tight = TransitionConfig(post_filter_distance_m=10.0)
        assert not post_filter_transition(
            tr, (0.0, 1090.0), (0.0, -1005.0), extractor.gates_by_name, tight)


class TestConfig:
    def test_studied_pairs_constant(self):
        assert ("T", "S") in STUDIED_PAIRS
        assert ("S", "L") not in STUDIED_PAIRS

    def test_validation(self):
        with pytest.raises(ValueError):
            TransitionConfig(post_filter_distance_m=0.0)
