"""Tests for repro.store.persist."""

import pytest

from repro.geo.geometry import LineString
from repro.store import Column, Database, HashIndex, Table
from repro.store.persist import load_database, load_table, save_database, save_table


def make_table():
    t = Table(
        "roads",
        [Column("name", str), Column("pos", tuple, nullable=True),
         Column("geom", LineString, nullable=True), Column("n", int)],
    )
    t.insert({"name": "a", "pos": (1.0, 2.0), "geom": LineString([(0, 0), (10, 0)]),
              "n": 1})
    t.insert({"name": "b", "pos": None, "geom": None, "n": 2})
    return t


class TestTableRoundtrip:
    def test_schema_and_rows_survive(self, tmp_path):
        path = tmp_path / "t.json"
        n = save_table(make_table(), path)
        assert n == 2
        back = load_table(path)
        assert back.name == "roads"
        assert list(back.columns) == ["name", "pos", "geom", "n", "id"]
        rows = sorted(back.rows(), key=lambda r: r["n"])
        assert rows[0]["pos"] == (1.0, 2.0)
        assert isinstance(rows[0]["geom"], LineString)
        assert rows[0]["geom"].length == pytest.approx(10.0)
        assert rows[1]["geom"] is None

    def test_auto_pk_continues_after_restore(self, tmp_path):
        path = tmp_path / "t.json"
        save_table(make_table(), path)
        back = load_table(path)
        new_key = back.insert({"name": "c", "pos": None, "geom": None, "n": 3})
        assert new_key == 3

    def test_explicit_pk_preserved(self, tmp_path):
        t = Table("k", [Column("key", int), Column("v", str)], pk="key")
        t.insert({"key": 42, "v": "x"})
        path = tmp_path / "k.json"
        save_table(t, path)
        back = load_table(path)
        assert back.pk == "key"
        assert back.get(42)["v"] == "x"

    def test_unpersistable_value_rejected(self, tmp_path):
        t = Table("bad", [Column("obj", object)])
        t.insert({"obj": object()})
        with pytest.raises(TypeError):
            save_table(t, tmp_path / "bad.json")

    def test_restored_table_supports_indexes(self, tmp_path):
        path = tmp_path / "t.json"
        save_table(make_table(), path)
        back = load_table(path)
        idx = HashIndex(back, "name")
        assert len(idx.lookup("a")) == 1


class TestDatabaseRoundtrip:
    def test_multi_table_snapshot(self, tmp_path):
        db = Database("snapshot")
        t1 = db.create_table("a", [Column("x", int)])
        t1.insert({"x": 1})
        t1.insert({"x": 2})
        t2 = db.create_table("b", [Column("s", str)], pk="s")
        t2.insert({"s": "hello"})
        path = tmp_path / "db.json"
        total = save_database(db, path)
        assert total == 3
        back = load_database(path)
        assert back.name == "snapshot"
        assert back.table_names() == ["a", "b"]
        assert len(back.table("a")) == 2
        assert back.table("b").get("hello")["s"] == "hello"

    def test_empty_database(self, tmp_path):
        path = tmp_path / "empty.json"
        save_database(Database("none"), path)
        back = load_database(path)
        assert len(back) == 0
