"""Tests for repro.traces.noise."""

import random

import pytest

from repro.traces.model import RoutePoint, Trip
from repro.traces.noise import NoiseSpec, apply_noise, reordering_damage


def clean_trip(n=20):
    points = [
        RoutePoint(point_id=i, trip_id=1, lat=65.0 + i * 1e-3, lon=25.0,
                   time_s=float(i * 30), speed_kmh=30.0, fuel_ml=float(i))
        for i in range(1, n + 1)
    ]
    return Trip(trip_id=1, car_id=1, points=points)


class TestNoiseSpec:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            NoiseSpec(reorder_prob=1.5)
        with pytest.raises(ValueError):
            NoiseSpec(glitch_prob=-0.1)


class TestApplyNoise:
    def test_deterministic_given_rng(self):
        spec = NoiseSpec()
        a = apply_noise(clean_trip(), spec, random.Random(5))
        b = apply_noise(clean_trip(), spec, random.Random(5))
        assert [(p.point_id, p.lat, p.time_s) for p in a.points] == [
            (p.point_id, p.lat, p.time_s) for p in b.points
        ]

    def test_gps_jitter_moves_points_slightly(self):
        spec = NoiseSpec(gps_sigma_m=5.0, reorder_prob=0.0, glitch_prob=0.0,
                         duplicate_prob=0.0)
        noisy = apply_noise(clean_trip(), spec, random.Random(1))
        from repro.geo.distance import haversine_m

        moved = [
            haversine_m(a.lat, a.lon, b.lat, b.lon)
            for a, b in zip(clean_trip().points, noisy.points)
        ]
        assert all(d < 50.0 for d in moved)
        assert any(d > 0.1 for d in moved)

    def test_no_noise_is_identity_ordering(self):
        spec = NoiseSpec(gps_sigma_m=0.0, reorder_prob=0.0, glitch_prob=0.0,
                         duplicate_prob=0.0)
        noisy = apply_noise(clean_trip(), spec, random.Random(2))
        assert reordering_damage(noisy) == 0
        assert [p.point_id for p in noisy.points] == list(range(1, 21))

    def test_reordering_desynchronises_orderings(self):
        spec = NoiseSpec(gps_sigma_m=0.0, reorder_prob=1.0, reorder_swaps=4,
                         glitch_prob=0.0, duplicate_prob=0.0)
        damaged = 0
        for seed in range(20):
            noisy = apply_noise(clean_trip(), spec, random.Random(seed))
            if reordering_damage(noisy) > 0:
                damaged += 1
        assert damaged >= 15  # swaps occasionally cancel; usually they bite

    def test_duplicates_appended(self):
        spec = NoiseSpec(gps_sigma_m=0.0, reorder_prob=0.0, glitch_prob=0.0,
                         duplicate_prob=1.0)
        noisy = apply_noise(clean_trip(5), spec, random.Random(3))
        assert len(noisy.points) == 10

    def test_glitch_moves_point_far(self):
        spec = NoiseSpec(gps_sigma_m=0.0, reorder_prob=0.0, glitch_prob=1.0,
                         glitch_distance_m=500.0, duplicate_prob=0.0)
        noisy = apply_noise(clean_trip(5), spec, random.Random(4))
        from repro.geo.distance import haversine_m

        moved = [
            haversine_m(a.lat, a.lon, b.lat, b.lon)
            for a, b in zip(clean_trip(5).points, noisy.points)
        ]
        assert all(d == pytest.approx(500.0, rel=0.01) for d in moved)

    def test_short_trip_never_reordered(self):
        spec = NoiseSpec(reorder_prob=1.0)
        noisy = apply_noise(clean_trip(3), spec, random.Random(6))
        assert reordering_damage(noisy) == 0


class TestReorderingDamage:
    def test_zero_on_consistent(self):
        assert reordering_damage(clean_trip()) == 0

    def test_counts_disagreements(self):
        trip = clean_trip(4)
        pts = trip.points
        # Swap the timestamps of the middle pair.
        from dataclasses import replace

        pts[1], pts[2] = (
            replace(pts[1], time_s=pts[2].time_s),
            replace(pts[2], time_s=pts[1].time_s),
        )
        assert reordering_damage(trip) > 0
