"""Tests for repro.experiments.fidelity."""


from repro.experiments.fidelity import (
    TransitionFidelity,
    segmentation_fidelity,
    transition_fidelity,
)


class TestSegmentationFidelity:
    def test_high_recall_on_study(self, study_result):
        fidelity = segmentation_fidelity(
            study_result.clean.segments, study_result.runs
        )
        assert fidelity.recall > 0.9
        assert fidelity.n_segments > 0

    def test_boundary_error_below_emission_gap(self, study_result):
        """Boundaries land within one emission interval of the truth."""
        fidelity = segmentation_fidelity(
            study_result.clean.segments, study_result.runs
        )
        assert fidelity.boundary_mae_s < 60.0

    def test_empty_inputs(self):
        fidelity = segmentation_fidelity([], [])
        assert fidelity.recall == 0.0
        assert fidelity.boundary_mae_s == 0.0

    def test_no_segments_zero_recall(self, runs):
        fidelity = segmentation_fidelity([], runs)
        assert fidelity.recall == 0.0
        assert fidelity.n_runs == len(runs)


class TestTransitionFidelity:
    def test_precision_high_on_study(self, study_result):
        """The extractor never invents transitions: every detected one
        corresponds to a real gate-pair run."""
        fidelity = transition_fidelity(study_result)
        assert fidelity.n_detected > 0
        assert fidelity.precision > 0.85

    def test_recall_reflects_deliberate_filters(self, study_result):
        """Recall is capped by the paper's own within-centre filter, so it
        sits below 1 but well above chance."""
        fidelity = transition_fidelity(study_result)
        assert 0.3 < fidelity.recall <= 1.0

    def test_dataclass_edge_cases(self):
        empty = TransitionFidelity(n_true=0, n_detected=0, n_matched=0)
        assert empty.precision == 1.0
        assert empty.recall == 1.0
