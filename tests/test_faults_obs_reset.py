"""Observability state survives repeated forking plus worker crashes.

A forked worker inherits the parent's contextvar registry binding and
any open span frames; :func:`repro.obs.reset_worker_state` must scrub
both — every time a replacement worker is forked, including workers
forked *after* a sibling was hard-killed — and the parent's own ambient
state must come through untouched.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import obs
from repro.obs import MetricsRegistry, get_registry, span, use_registry
from repro.obs.metrics import _global_registry
from repro.obs.tracing import current_span

ROUNDS = 3


def _probe(_index: int) -> tuple[bool, bool, int]:
    """Run inside a worker: is the inherited obs state fully scrubbed?"""
    return (
        get_registry() is _global_registry,   # no orphaned parent binding
        current_span() is None,               # no phantom parent frames
        os.getpid(),  # nondet-ok: proves replacement workers are new forks
    )


def _die() -> None:
    os._exit(86)  # hard kill, as an OOM/SIGKILL would


def _pool() -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=2,
        mp_context=multiprocessing.get_context("fork"),
        initializer=obs.reset_worker_state,
    )


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
def test_reset_worker_state_under_repeated_fork_and_crash():
    parent_registry = MetricsRegistry()
    seen_pids: set[int] = set()
    with use_registry(parent_registry), span("parent"):
        parent_span = current_span()
        assert parent_span is not None
        for _ in range(ROUNDS):
            # Workers fork while the parent holds a bound registry and an
            # open span — the dirtiest possible inherited state.
            pool = _pool()
            try:
                for clean_registry, clean_spans, pid in pool.map(
                    _probe, range(4)
                ):
                    assert clean_registry and clean_spans
                    seen_pids.add(pid)
                with pytest.raises(BrokenProcessPool):
                    pool.submit(_die).result()
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
        # The crashes never corrupted the parent's ambient state.
        assert get_registry() is parent_registry
        assert current_span() is parent_span
    assert current_span() is None
    # Each round forked fresh workers; every one of them came up clean.
    assert len(seen_pids) >= ROUNDS


def test_reset_worker_state_is_idempotent_in_process():
    registry = MetricsRegistry()
    with use_registry(registry):
        obs.reset_worker_state()
        assert get_registry() is _global_registry
        obs.reset_worker_state()
        assert get_registry() is _global_registry
    # Outside the scope the global fallback still applies.
    assert get_registry() is _global_registry
