"""Tests for repro.store.query."""

import pytest

from repro.store.query import (
    Query,
    and_,
    between,
    eq,
    ge,
    gt,
    in_,
    le,
    lt,
    ne,
    not_,
    or_,
    where,
)
from repro.store.table import Column, Table


@pytest.fixture()
def table():
    t = Table(
        "segments",
        [Column("car", int), Column("dist", float, nullable=True), Column("dir", str)],
    )
    t.insert_many(
        [
            {"car": 1, "dist": 2.0, "dir": "T-S"},
            {"car": 1, "dist": 3.5, "dir": "S-T"},
            {"car": 2, "dist": 1.0, "dir": "T-S"},
            {"car": 2, "dist": None, "dir": "T-L"},
            {"car": 3, "dist": 5.0, "dir": "L-T"},
        ]
    )
    return t


class TestPredicates:
    def test_eq(self, table):
        assert len(where(table, eq("car", 1))) == 2

    def test_eq_none_matches_null(self, table):
        assert len(where(table, eq("dist", None))) == 1

    def test_null_never_matches_comparison(self, table):
        assert all(r["dist"] is not None for r in where(table, gt("dist", 0.0)))

    def test_ne(self, table):
        assert len(where(table, ne("car", 1))) == 3

    def test_lt_le_gt_ge(self, table):
        assert len(where(table, lt("dist", 2.0))) == 1
        assert len(where(table, le("dist", 2.0))) == 2
        assert len(where(table, gt("dist", 2.0))) == 2
        assert len(where(table, ge("dist", 2.0))) == 3

    def test_in(self, table):
        assert len(where(table, in_("dir", {"T-S", "S-T"}))) == 3

    def test_between(self, table):
        assert len(where(table, between("dist", 1.0, 3.5))) == 3

    def test_and_or_not(self, table):
        both = where(table, and_(eq("car", 1), eq("dir", "T-S")))
        assert len(both) == 1
        either = where(table, or_(eq("car", 1), eq("car", 3)))
        assert len(either) == 3
        inverted = where(table, not_(eq("car", 1)))
        assert len(inverted) == 3


class TestQuery:
    def test_order_by(self, table):
        rows = Query(table).where(ne("dist", None)).order_by("dist").all()
        dists = [r["dist"] for r in rows if r["dist"] is not None]
        assert dists == sorted(dists)

    def test_order_by_desc(self, table):
        rows = Query(table).where(gt("dist", 0)).order_by("dist", desc=True).all()
        assert rows[0]["dist"] == 5.0

    def test_limit(self, table):
        assert len(Query(table).limit(2).all()) == 2
        with pytest.raises(ValueError):
            Query(table).limit(-1)

    def test_first(self, table):
        row = Query(table).where(eq("car", 3)).first()
        assert row["dir"] == "L-T"
        assert Query(table).where(eq("car", 99)).first() is None

    def test_count(self, table):
        assert Query(table).where(eq("dir", "T-S")).count() == 2

    def test_values(self, table):
        cars = Query(table).order_by("car").values("car")
        assert cars == [1, 1, 2, 2, 3]

    def test_sum_skips_nulls(self, table):
        assert Query(table).sum("dist") == pytest.approx(11.5)

    def test_avg(self, table):
        assert Query(table).avg("dist") == pytest.approx(11.5 / 4)
        assert Query(table).where(eq("car", 99)).avg("dist") is None

    def test_group_by(self, table):
        groups = Query(table).group_by("car")
        assert {k: len(v) for k, v in groups.items()} == {1: 2, 2: 2, 3: 1}

    def test_chained_where_is_conjunction(self, table):
        rows = Query(table).where(eq("car", 2)).where(eq("dir", "T-S")).all()
        assert len(rows) == 1
