"""Tests for the index-aware query planner."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    Column,
    HashIndex,
    Query,
    SortedIndex,
    Table,
    between,
    eq,
    ge,
    gt,
    in_,
    le,
    lt,
    ne,
)


def make_table(n=200, seed=0, index=None):
    rng = random.Random(seed)
    t = Table("points", [Column("trip", int), Column("t", float),
                         Column("tag", str, nullable=True)])
    idx = None
    if index == "hash":
        idx = HashIndex(t, "trip")
    elif index == "sorted":
        idx = SortedIndex(t, "t")
    for i in range(n):
        t.insert({"trip": rng.randint(0, 9), "t": round(rng.uniform(0, 100), 2),
                  "tag": rng.choice(["a", "b", None])})
    return t, idx


class TestPlan:
    def test_full_scan_without_index(self):
        t, __ = make_table(10)
        plan = Query(t).where(eq("trip", 3)).plan()
        assert plan == "full scan of 'points'"

    def test_hash_index_plan(self):
        t, __ = make_table(10, index="hash")
        plan = Query(t).where(eq("trip", 3)).plan()
        assert "HashIndex" in plan
        assert "trip = 3" in plan

    def test_sorted_index_plan(self):
        t, __ = make_table(10, index="sorted")
        plan = Query(t).where(between("t", 10.0, 20.0)).plan()
        assert "SortedIndex" in plan
        assert "BETWEEN" in plan

    def test_hash_index_not_used_for_ranges(self):
        t, __ = make_table(10, index="hash")
        plan = Query(t).where(gt("trip", 3)).plan()
        assert plan == "full scan of 'points'"

    def test_in_uses_hash_index(self):
        t, __ = make_table(10, index="hash")
        plan = Query(t).where(in_("trip", [1, 2])).plan()
        assert "HashIndex" in plan


class TestPlannerCorrectness:
    """The planner must be invisible: indexed answers == scan answers."""

    @given(seed=st.integers(min_value=0, max_value=500),
           key=st.integers(min_value=0, max_value=9))
    @settings(max_examples=25, deadline=None)
    def test_hash_eq_matches_scan(self, seed, key):
        plain, __ = make_table(seed=seed)
        indexed, __ = make_table(seed=seed, index="hash")
        expected = sorted(r["t"] for r in Query(plain).where(eq("trip", key)).all())
        got = sorted(r["t"] for r in Query(indexed).where(eq("trip", key)).all())
        assert got == expected

    @given(seed=st.integers(min_value=0, max_value=500),
           lo=st.floats(min_value=0, max_value=100),
           hi=st.floats(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_sorted_ranges_match_scan(self, seed, lo, hi):
        lo, hi = sorted((lo, hi))
        plain, __ = make_table(seed=seed)
        indexed, __ = make_table(seed=seed, index="sorted")
        for pred in (between("t", lo, hi), lt("t", hi), le("t", hi),
                     gt("t", lo), ge("t", lo)):
            expected = sorted(r["t"] for r in Query(plain).where(pred).all())
            got = sorted(r["t"] for r in Query(indexed).where(pred).all())
            assert got == expected

    def test_residual_predicates_still_applied(self):
        t, __ = make_table(index="hash")
        rows = Query(t).where(eq("trip", 3)).where(eq("tag", "a")).all()
        assert all(r["trip"] == 3 and r["tag"] == "a" for r in rows)

    def test_isnull_via_hash_index(self):
        t = Table("x", [Column("v", int, nullable=True)])
        HashIndex(t, "v")
        t.insert({"v": None})
        t.insert({"v": 1})
        rows = Query(t).where(eq("v", None)).all()
        assert len(rows) == 1

    def test_order_and_limit_after_index(self):
        t, __ = make_table(index="sorted")
        rows = Query(t).where(ge("t", 50.0)).order_by("t", desc=True).limit(5).all()
        assert len(rows) == 5
        values = [r["t"] for r in rows]
        assert values == sorted(values, reverse=True)


class TestPlannerAvoidsScans:
    def test_index_path_does_not_scan_table(self):
        t, __ = make_table(index="hash")
        before = t.stats.scans
        Query(t).where(eq("trip", 3)).all()
        assert t.stats.scans == before

    def test_full_scan_counted(self):
        t, __ = make_table()
        before = t.stats.scans
        Query(t).where(eq("trip", 3)).all()
        assert t.stats.scans == before + 1

    def test_ne_never_uses_index(self):
        t, __ = make_table(index="hash")
        before = t.stats.scans
        rows = Query(t).where(ne("trip", 3)).all()
        assert t.stats.scans == before + 1
        assert all(r["trip"] != 3 for r in rows)

    def test_register_index_validates_column(self):
        t, __ = make_table()
        with pytest.raises(Exception):
            t.register_index("missing", object())

    def test_latest_index_wins(self):
        t = Table("x", [Column("v", int)])
        h = HashIndex(t, "v")
        s = SortedIndex(t, "v")
        assert t.index_for("v") is s
