"""MatcherState: the incremental matcher's serialisable per-trip state.

Three guarantees back the streaming service's checkpoints:

* **feed == match** — pushing points one at a time through
  ``begin``/``feed``/``finish`` yields the same :class:`MatchedRoute`
  as the one-shot ``match`` call (the decision frontier defers every
  choice whose look-ahead window is not final yet);
* **serialisation is total and exact** — ``to_bytes``/``from_bytes``
  round-trips any state at any cut point, and a resumed state finishes
  to the identical route (the candidate cache is deliberately not
  serialised; it is rebuilt lazily);
* **the schema is versioned** — ``STATE_SCHEMA_VERSION`` is pinned and
  ``from_payload`` rejects anything else, so an old checkpoint can
  never be misread silently.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning import CleaningPipeline
from repro.matching import (
    STATE_SCHEMA_VERSION,
    IncrementalMatcher,
    MatcherState,
)
from repro.traces import FleetSpec, TaxiFleetSimulator
from repro.traces.noise import NoiseSpec


@pytest.fixture(scope="module")
def segments(city):
    """A small, lightly noisy batch of cleaned segments."""
    spec = FleetSpec(
        n_days=2, seed=21,
        noise=NoiseSpec(reorder_prob=0.0, glitch_prob=0.0),
    )
    fleet, __ = TaxiFleetSimulator(city, spec).simulate()
    return CleaningPipeline().run(fleet).segments


@pytest.fixture(scope="module")
def matcher(city):
    return IncrementalMatcher(city.graph)


@pytest.fixture(scope="module")
def xy(city):
    projector = city.projector
    return lambda p: projector.to_xy(p.lat, p.lon)


def feed_all(matcher, seg, xy, state=None):
    state = state or matcher.begin(seg.segment_id, seg.car_id)
    for p in seg.points:
        matcher.feed(state, p, xy)
    return state


class TestFeedEqualsMatch:
    def test_incremental_feed_reproduces_one_shot_match(
        self, matcher, segments, xy
    ):
        for seg in segments[:20]:
            want = matcher.match(seg.points, xy, seg.segment_id, seg.car_id)
            state = feed_all(matcher, seg, xy)
            got = matcher.finish(state)
            assert got == want

    def test_frontier_defers_undecidable_points(self, matcher, segments, xy):
        seg = segments[0]
        state = matcher.begin(seg.segment_id, seg.car_id)
        look_ahead = matcher.config.look_ahead
        for i, p in enumerate(seg.points):
            matcher.feed(state, p, xy)
            # Nothing past the frontier may be decided before finish():
            # the movement direction and look-ahead window of a point
            # are only final once its successors have arrived.
            assert state.decided_upto <= max(0, (i + 1) - 1 - look_ahead)
        route = matcher.finish(state)
        assert route is not None
        assert len(route.matched) == len(seg.points)


class TestSerialisation:
    def test_round_trip_between_every_fed_point(self, matcher, segments, xy):
        seg = segments[0]
        want = matcher.match(seg.points, xy, seg.segment_id, seg.car_id)
        state = matcher.begin(seg.segment_id, seg.car_id)
        for p in seg.points:
            matcher.feed(state, p, xy)
            state = MatcherState.from_bytes(state.to_bytes())
        assert matcher.finish(state) == want

    def test_payload_round_trip_is_identity(self, matcher, segments, xy):
        seg = segments[1]
        state = feed_all(matcher, seg, xy)
        clone = MatcherState.from_payload(state.to_payload())
        assert clone == state
        # The candidate cache is derived data: never serialised.
        assert clone.cache == {}

    def test_fresh_state_round_trips(self, matcher):
        state = matcher.begin(segment_id=3, car_id=9)
        clone = MatcherState.from_bytes(state.to_bytes())
        assert clone == state
        assert (clone.segment_id, clone.car_id) == (3, 9)

    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(cut=st.integers(min_value=0, max_value=10_000))
    def test_resume_at_any_cut_point_finishes_identically(
        self, matcher, segments, xy, cut
    ):
        seg = segments[2]
        want = matcher.match(seg.points, xy, seg.segment_id, seg.car_id)
        cut = cut % (len(seg.points) + 1)
        state = matcher.begin(seg.segment_id, seg.car_id)
        for p in seg.points[:cut]:
            matcher.feed(state, p, xy)
        resumed = MatcherState.from_bytes(state.to_bytes())
        for p in seg.points[cut:]:
            matcher.feed(resumed, p, xy)
        assert matcher.finish(resumed) == want


class TestSchemaVersion:
    def test_version_is_pinned(self):
        # Bumping this is a contract change: stream checkpoints embed
        # matcher states, so a bump must come with a migration note.
        assert STATE_SCHEMA_VERSION == 1

    def test_payload_carries_version(self, matcher):
        assert matcher.begin().to_payload()["schema"] == STATE_SCHEMA_VERSION

    def test_wrong_version_is_rejected(self, matcher):
        payload = matcher.begin().to_payload()
        payload["schema"] = STATE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            MatcherState.from_payload(payload)
