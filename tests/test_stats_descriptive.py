"""Tests for repro.stats.descriptive against NumPy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.descriptive import mean, quantile, six_number_summary, variance

values_st = st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60)


class TestMeanVariance:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_variance_matches_numpy(self):
        vals = [3.1, 4.1, 5.9, 2.6, 5.3]
        assert variance(vals) == pytest.approx(np.var(vals, ddof=1))

    def test_variance_short(self):
        assert variance([5.0]) == 0.0
        assert variance([]) == 0.0


class TestQuantile:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_singleton(self):
        assert quantile([7.0], 0.25) == 7.0

    @given(values=values_st, q=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy_type7(self, values, q):
        ours = quantile(values, q)
        ref = float(np.quantile(values, q))  # NumPy default = type 7
        assert ours == pytest.approx(ref, rel=1e-9, abs=1e-9)

    def test_median_of_even_sample(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5


class TestSixNumberSummary:
    def test_known_values(self):
        s = six_number_summary([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.minimum == 1.0
        assert s.q1 == 2.0
        assert s.median == 3.0
        assert s.mean == 3.0
        assert s.q3 == 4.0
        assert s.maximum == 5.0
        assert s.n == 5

    def test_as_row_order(self):
        s = six_number_summary([2.0, 1.0, 3.0])
        assert s.as_row() == (1.0, 1.5, 2.0, 2.0, 2.5, 3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            six_number_summary([])

    @given(values=values_st)
    @settings(max_examples=40, deadline=None)
    def test_ordering_invariant(self, values):
        s = six_number_summary(values)
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
        # The mean is computed by summation; allow one float ulp of slack.
        tol = 1e-9 * max(abs(s.minimum), abs(s.maximum), 1.0)
        assert s.minimum - tol <= s.mean <= s.maximum + tol
