"""Tests for repro.geo.polygon."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.geometry import LineString
from repro.geo.polygon import Polygon, ThickLine, convex_hull, polygon_from_hull


class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_rectangle_contains(self):
        rect = Polygon.rectangle(0, 0, 10, 10)
        assert rect.contains((5, 5))
        assert not rect.contains((15, 5))
        assert not rect.contains((-1, 5))

    def test_rectangle_validation(self):
        with pytest.raises(ValueError):
            Polygon.rectangle(10, 0, 0, 10)

    def test_area(self):
        rect = Polygon.rectangle(0, 0, 10, 20)
        assert rect.area() == pytest.approx(200.0)

    def test_concave_polygon(self):
        # A "U" shape: point inside the notch is outside the polygon.
        u = Polygon([(0, 0), (10, 0), (10, 10), (7, 10), (7, 3), (3, 3), (3, 10), (0, 10)])
        assert u.contains((1.5, 5.0))
        assert not u.contains((5.0, 5.0))
        assert u.contains((5.0, 1.0))

    def test_closed_ring_input_accepted(self):
        p = Polygon([(0, 0), (10, 0), (10, 10), (0, 0)])
        assert len(p) == 3

    def test_bounds(self):
        rect = Polygon.rectangle(-5, -2, 3, 7)
        assert rect.bounds() == (-5, -2, 3, 7)

    @given(
        x=st.floats(min_value=0.5, max_value=9.5),
        y=st.floats(min_value=0.5, max_value=9.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_interior_points_inside_rectangle(self, x, y):
        rect = Polygon.rectangle(0, 0, 10, 10)
        assert rect.contains((x, y))


class TestThickLine:
    def setup_method(self):
        self.gate = ThickLine(LineString([(0, 0), (100, 0)]), half_width=20.0)

    def test_positive_width_required(self):
        with pytest.raises(ValueError):
            ThickLine(LineString([(0, 0), (1, 0)]), half_width=0.0)

    def test_contains_inside_capsule(self):
        assert self.gate.contains((50.0, 10.0))
        assert self.gate.contains((50.0, -19.0))

    def test_not_contains_outside(self):
        assert not self.gate.contains((50.0, 25.0))
        assert not self.gate.contains((150.0, 0.0))

    def test_perpendicular_crossing_detected(self):
        assert self.gate.crossed_by((50.0, -50.0), (50.0, 50.0), 45.0, 90.0)

    def test_parallel_pass_not_a_crossing(self):
        # Moving along the road inside the capsule: angle ~0, rejected.
        assert not self.gate.crossed_by((10.0, 5.0), (90.0, 5.0), 45.0, 90.0)

    def test_shallow_angle_rejected(self):
        # 30 degree crossing with a 45 degree minimum.
        assert not self.gate.crossed_by((0.0, -10.0), (60.0, 24.6), 45.0, 90.0)

    def test_movement_ending_inside_counts(self):
        assert self.gate.crossed_by((50.0, -60.0), (50.0, -5.0), 45.0, 90.0)

    def test_zero_movement_is_no_crossing(self):
        assert not self.gate.crossed_by((50.0, 0.0), (50.0, 0.0), 0.0, 90.0)

    def test_bounds_include_width(self):
        x0, y0, x1, y1 = self.gate.bounds()
        assert (x0, y0, x1, y1) == (-20.0, -20.0, 120.0, 20.0)

    def test_fast_long_hop_through_capsule(self):
        # Both endpoints far outside, the segment pierces the capsule.
        assert self.gate.crossed_by((50.0, -400.0), (50.0, 400.0), 45.0, 90.0)


class TestConvexHull:
    def test_square_hull(self):
        pts = [(0, 0), (10, 0), (10, 10), (0, 10), (5, 5), (2, 3)]
        hull = convex_hull(pts)
        assert sorted(hull) == [(0, 0), (0, 10), (10, 0), (10, 10)]

    def test_collinear_points(self):
        hull = convex_hull([(0, 0), (5, 0), (10, 0)])
        assert len(hull) <= 3

    def test_polygon_from_hull_contains_inputs(self):
        pts = [(0, 0), (10, 0), (10, 10), (0, 10)]
        poly = polygon_from_hull(pts, pad=1.0)
        assert poly.contains((5.0, 5.0))
        # Padding pushes the boundary outward past the original corners.
        assert poly.contains((10.2, 10.2))

    def test_polygon_from_hull_needs_noncollinear(self):
        with pytest.raises(ValueError):
            polygon_from_hull([(0, 0), (1, 0), (2, 0)])
