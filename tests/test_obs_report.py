"""``repro obs`` renderers plus the journal acceptance scenarios.

The unit half exercises :mod:`repro.obs.report` on hand-built events.
The end-to-end half runs one faulted study twice — serial and across a
worker pool, both journaled — and pins the PR's acceptance criteria:

* the two journals reconstruct *structurally identical* span trees
  (chunk spans collapse away);
* every quarantined unit in ``errors.jsonl`` has a matching journal
  lineage record;
* ``repro obs diff`` of the two run directories reports zero artefact
  divergence;
* both journals pass ``tools/validate_journal.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.experiments import OuluStudy, StudyConfig
from repro.faults import FaultPlan, RobustnessConfig
from repro.obs import (
    FileJournal,
    RunContext,
    lineage_records,
    read_journal,
    reconstruct_spans,
    structural_signature,
    use_journal,
)
from repro.obs.report import (
    diff_runs,
    load_run,
    render_report,
    render_tail,
    render_trip,
    run_meta,
    run_status,
)
from repro.parallel import ExecutorConfig
from repro.traces import FleetSpec

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from validate_journal import validate_journal  # noqa: E402


def _events() -> list[dict]:
    return [
        {"kind": "run_start", "i": 0, "ts": 1.0, "run_id": "r1",
         "journal_schema": 1, "git_sha": "abc1234", "command": "study"},
        {"kind": "span_open", "i": 1, "ts": 1.0, "name": "study", "span_id": "s1"},
        {"kind": "lineage", "i": 2, "ts": 1.1, "unit": "trip", "trip_id": 7,
         "kept": False, "quarantined": True},
        {"kind": "span_close", "i": 3, "ts": 1.2, "name": "clean_trip",
         "span_id": "d1", "parent_id": "s1", "span_kind": "detail",
         "seconds": 0.2, "trip_id": 7},
        {"kind": "quarantine", "i": 4, "ts": 1.2, "stage": "clean",
         "error_kind": "SpikeError", "message": "speed spike", "trip_id": 7},
        {"kind": "retry", "i": 5, "ts": 1.3, "stage": "match", "attempt": 1},
        {"kind": "span_close", "i": 6, "ts": 1.5, "name": "study",
         "span_id": "s1", "seconds": 0.5},
        {"kind": "run_end", "i": 7, "ts": 1.5, "status": "ok",
         "wall_seconds": 0.5},
    ]


class TestRenderReport:
    def test_header_funnel_tree_and_accounting(self):
        metrics = {"counters": {
            "clean.trips_in": 100, "clean.segments_out": 80,
            "od.post_filter_kept": 10, "trips.quarantined": 1,
        }}
        text = render_report(_events(), metrics)
        assert "run_id" in text and "r1" in text
        assert "git_sha" in text and "abc1234" in text
        assert "status    ok" in text
        assert "Funnel" in text and "trips ingested" in text
        assert "Stage tree" in text and "study" in text
        assert "Degraded-mode accounting:" in text
        assert "quarantined   1" in text and "retries       1" in text
        assert "Slowest" in text and "clean_trip" in text

    def test_incomplete_run_flagged(self):
        events = _events()[:-1]  # no run_end
        assert "incomplete" in render_report(events)

    def test_run_meta_and_status_helpers(self):
        assert run_meta(_events())["run_id"] == "r1"
        assert run_status(_events())["status"] == "ok"
        assert run_status(_events()[:-1]) is None
        assert run_meta([]) == {}


class TestRenderTail:
    def test_last_n_lines_in_order(self):
        text = render_tail(_events(), n=3)
        lines = text.splitlines()
        assert len(lines) == 3
        assert "retry" in lines[0]
        assert "run_end" in lines[2]

    def test_empty_journal(self):
        assert render_tail([]) == ""


class TestRenderTrip:
    def test_collects_lineage_spans_and_quarantines(self):
        text = render_trip(_events(), 7)
        assert "lineage" in text and "quarantined=True" in text
        assert "span" in text and "clean_trip" in text
        assert "quarantine" in text and "SpikeError" in text

    def test_unknown_unit(self):
        assert "no journal records" in render_trip(_events(), 404)


class TestDiffRuns:
    def _run_dir(self, tmp_path, name, counters, table="t"):
        d = tmp_path / name
        d.mkdir()
        (d / "table3.txt").write_text(table)
        (d / "metrics.json").write_text(json.dumps({"counters": counters}))
        return d

    def test_identical_runs_do_not_diverge(self, tmp_path):
        counters = {"od.post_filter_kept": 5, "parallel.clean_chunks": 3}
        a = self._run_dir(tmp_path, "a", counters)
        b = self._run_dir(tmp_path, "b", {**counters, "parallel.clean_chunks": 9})
        result = diff_runs(a, b)  # scheduling counters are out of scope
        assert not result.divergent
        assert "zero artefact divergence" in result.render()

    def test_artefact_and_counter_divergence(self, tmp_path):
        a = self._run_dir(tmp_path, "a", {"od.post_filter_kept": 5}, table="x")
        b = self._run_dir(tmp_path, "b", {"od.post_filter_kept": 6}, table="y")
        result = diff_runs(a, b)
        assert result.divergent
        text = result.render()
        assert "DIFF table3.txt" in text
        assert "DIFF counter od.post_filter_kept" in text

    def test_missing_artefact_diverges(self, tmp_path):
        a = self._run_dir(tmp_path, "a", {})
        b = tmp_path / "b"
        b.mkdir()
        assert diff_runs(a, b).divergent


# -- end-to-end acceptance ----------------------------------------------------

#: Small-but-faulted: 8 transitions of which the seeded plan dooms 2 —
#: quarantines exist, survivors exist, and the suite stays quick.
_FLEET = FleetSpec(n_days=6, seed=13)
_PLAN = FaultPlan(seed=5, match_error_rate=0.3)


def _journaled_run(out_dir: Path, workers: int):
    ctx = RunContext.create()
    config = StudyConfig(
        fleet=_FLEET,
        executor=ExecutorConfig(workers=workers, chunk_size=8),
        robustness=RobustnessConfig(max_error_rate=0.5, backoff_base_s=0.0),
        faults=_PLAN,
    )
    journal = FileJournal(out_dir / "events.jsonl", ctx)
    try:
        with use_journal(journal):
            result = OuluStudy(config).run(run_context=ctx)
        journal.close("ok")
    except Exception:
        journal.close("error")
        raise
    (out_dir / "metrics.json").write_text(json.dumps(result.metrics, default=repr))
    from repro.faults.errors import Quarantine

    quarantine = Quarantine()
    quarantine.errors.extend(result.errors)
    quarantine.write_jsonl(out_dir / "errors.jsonl")
    return result


@pytest.fixture(scope="module")
def journaled_pair(tmp_path_factory):
    base = tmp_path_factory.mktemp("obs_accept")
    serial_dir = base / "serial"
    workers_dir = base / "workers"
    serial_dir.mkdir()
    workers_dir.mkdir()
    serial = _journaled_run(serial_dir, workers=0)
    parallel = _journaled_run(workers_dir, workers=4)
    return serial_dir, workers_dir, serial, parallel


def test_serial_and_parallel_span_trees_structurally_identical(journaled_pair):
    serial_dir, workers_dir, *_ = journaled_pair
    sig_serial = structural_signature(
        reconstruct_spans(read_journal(serial_dir / "events.jsonl"))
    )
    sig_parallel = structural_signature(
        reconstruct_spans(read_journal(workers_dir / "events.jsonl"))
    )
    assert sig_serial == sig_parallel


def test_every_quarantined_unit_has_a_lineage_record(journaled_pair):
    serial_dir, workers_dir, serial, parallel = journaled_pair
    assert serial.errors, "fault plan must quarantine at least one unit"
    for out_dir, result in ((serial_dir, serial), (workers_dir, parallel)):
        events = read_journal(out_dir / "events.jsonl")
        for error in result.errors:
            records = lineage_records(events, unit_id=error.transition_index)
            assert records, f"no lineage for quarantined unit {error.transition_index}"
            assert any(r.get("quarantined") for r in records)


def test_quarantine_events_mirror_errors_jsonl(journaled_pair):
    serial_dir, __, serial, __unused = journaled_pair
    events = read_journal(serial_dir / "events.jsonl")
    journal_ids = {
        e.get("transition_index") for e in events if e.get("kind") == "quarantine"
    }
    assert journal_ids == {e.transition_index for e in serial.errors}


def test_run_diff_reports_zero_divergence(journaled_pair):
    serial_dir, workers_dir, *_ = journaled_pair
    result = diff_runs(serial_dir, workers_dir)
    assert not result.divergent, result.render()


def test_journals_pass_the_validator(journaled_pair):
    serial_dir, workers_dir, *_ = journaled_pair
    for out_dir in (serial_dir, workers_dir):
        assert validate_journal(out_dir / "events.jsonl") == []


def test_load_run_pairs_journal_with_metrics(journaled_pair):
    serial_dir, *_ = journaled_pair
    events, metrics = load_run(serial_dir / "events.jsonl")
    assert events[0]["kind"] == "run_start"
    assert metrics is not None and "counters" in metrics
    report = render_report(events, metrics)
    assert "Funnel" in report and "Lineage records" in report
