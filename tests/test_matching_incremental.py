"""Tests for the incremental matcher against simulator ground truth."""

import pytest

from repro.cleaning import CleaningPipeline
from repro.matching import IncrementalMatcher
from repro.matching.incremental import IncrementalConfig
from repro.traces import FleetSpec, TaxiFleetSimulator
from repro.traces.noise import NoiseSpec


@pytest.fixture(scope="module")
def noise_free(city):
    """A small noise-free fleet: matching should be near-perfect."""
    spec = FleetSpec(
        n_days=3, seed=21,
        noise=NoiseSpec(gps_sigma_m=0.0, reorder_prob=0.0, glitch_prob=0.0,
                        duplicate_prob=0.0),
    )
    fleet, runs = TaxiFleetSimulator(city, spec).simulate()
    segments = CleaningPipeline().run(fleet).segments
    return fleet, runs, segments


def match_segments(city, segments, matcher):
    projector = city.projector

    def to_xy(p):
        return projector.to_xy(p.lat, p.lon)

    return [
        matcher.match(seg.points, to_xy, seg.segment_id, seg.car_id)
        for seg in segments
    ]


def segment_truth(runs, seg):
    """Ground-truth run of the same car overlapping a segment in time."""
    best, overlap = None, 0.0
    for run in runs:
        if run.car_id != seg.car_id:
            continue
        lo = max(run.start_time_s, seg.start_time_s)
        hi = min(run.end_time_s, seg.end_time_s)
        if hi - lo > overlap:
            overlap = hi - lo
            best = run
    return best


class TestNoiseFreeAccuracy:
    def test_all_segments_match(self, city, noise_free):
        __, __, segments = noise_free
        routes = match_segments(city, segments[:60], IncrementalMatcher(city.graph))
        assert all(r is not None and r.edge_sequence for r in routes)

    def test_match_distance_tiny_without_noise(self, city, noise_free):
        __, __, segments = noise_free
        routes = match_segments(city, segments[:60], IncrementalMatcher(city.graph))
        mean_d = sum(r.mean_match_distance_m for r in routes) / len(routes)
        assert mean_d < 2.0

    def test_edges_agree_with_ground_truth(self, city, noise_free):
        __, runs, segments = noise_free
        matcher = IncrementalMatcher(city.graph)
        jaccards = []
        for seg in segments[:60]:
            run = segment_truth(runs, seg)
            if run is None:
                continue
            route = matcher.match(
                seg.points, lambda p: city.projector.to_xy(p.lat, p.lon),
                seg.segment_id, seg.car_id,
            )
            got = set(route.edge_ids)
            truth = set(run.edge_ids)
            jaccards.append(len(got & truth) / len(got | truth))
        assert sum(jaccards) / len(jaccards) > 0.85

    def test_matched_points_in_time_order(self, city, noise_free):
        __, __, segments = noise_free
        matcher = IncrementalMatcher(city.graph)
        route = match_segments(city, segments[:5], matcher)[0]
        times = [m.point.time_s for m in route.matched]
        assert times == sorted(times)


class TestNoisyAccuracy:
    def test_accuracy_with_gps_noise(self, city, fleet_and_runs, clean_result):
        fleet, runs = fleet_and_runs
        matcher = IncrementalMatcher(city.graph)
        jaccards = []
        for seg in clean_result.segments[:50]:
            run = segment_truth(runs, seg)
            if run is None:
                continue
            route = matcher.match(
                seg.points, lambda p: city.projector.to_xy(p.lat, p.lon),
                seg.segment_id, seg.car_id,
            )
            if route is None or not route.edge_sequence:
                continue
            got = set(route.edge_ids)
            truth = set(run.edge_ids)
            jaccards.append(len(got & truth) / len(got | truth))
        assert len(jaccards) >= 30
        assert sum(jaccards) / len(jaccards) > 0.7

    def test_match_distance_reflects_gps_sigma(self, city, clean_result):
        matcher = IncrementalMatcher(city.graph)
        routes = match_segments(city, clean_result.segments[:40], matcher)
        routes = [r for r in routes if r is not None and r.matched]
        mean_d = sum(r.mean_match_distance_m for r in routes) / len(routes)
        assert 1.0 < mean_d < 10.0  # sigma is 4 m


class TestConfig:
    def test_look_ahead_validation(self):
        with pytest.raises(ValueError):
            IncrementalConfig(look_ahead=-1)

    def test_zero_look_ahead_still_matches(self, city, noise_free):
        __, __, segments = noise_free
        matcher = IncrementalMatcher(city.graph, IncrementalConfig(look_ahead=0))
        routes = match_segments(city, segments[:10], matcher)
        assert all(r is not None for r in routes)

    def test_empty_points_returns_none(self, city):
        matcher = IncrementalMatcher(city.graph)
        assert matcher.match([], lambda p: (0.0, 0.0)) is None

    def test_off_network_returns_none(self, city):
        from repro.traces.model import RoutePoint

        matcher = IncrementalMatcher(city.graph)
        # A point 100 km away from the city.
        far = RoutePoint(point_id=1, trip_id=1, lat=66.0, lon=25.0, time_s=0.0)
        result = matcher.match([far], lambda p: city.projector.to_xy(p.lat, p.lon))
        assert result is None
