"""Tests for repro.experiments.extensions."""

import copy

import pytest

from repro.experiments.extensions import (
    FEATURE_NAMES,
    covariate_mixed_model,
    pedestrian_fusion,
)


class TestCovariateMixedModel:
    def test_feature_effects_signed(self, study_result):
        model = covariate_mixed_model(study_result)
        assert model.fixed_effect("traffic_lights") < 0.0

    def test_all_features_in_model(self, study_result):
        model = covariate_mixed_model(study_result)
        assert set(FEATURE_NAMES) <= set(model.fixed_names)
        assert "(intercept)" in model.fixed_names

    def test_features_absorb_cell_variance(self, study_result):
        model = covariate_mixed_model(study_result)
        assert model.sigma2_u < study_result.mixed.sigma2_u

    def test_observation_count_matches_grid(self, study_result):
        model = covariate_mixed_model(study_result)
        assert model.n == study_result.grid.point_count


class TestPedestrianFusion:
    def test_negative_pedestrian_effect(self, study_result):
        fit = pedestrian_fusion(study_result)
        assert fit.coefficient("pedestrians") < 0.0

    def test_requires_mixed_model(self, study_result):
        hollow = copy.copy(study_result)
        hollow.mixed = None
        with pytest.raises(ValueError):
            pedestrian_fusion(hollow)

    def test_hour_passthrough(self, study_result):
        morning = pedestrian_fusion(study_result, hour=6)
        afternoon = pedestrian_fusion(study_result, hour=14)
        # Different crowd levels, same cells: coefficients differ.
        assert morning.coefficient("pedestrians") != afternoon.coefficient(
            "pedestrians"
        )
