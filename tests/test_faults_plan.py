"""Unit tests for the fault plan, injector and degradation guard."""

from __future__ import annotations

import pickle

import pytest

from repro.faults import (
    FaultPlan,
    InjectedFault,
    InjectedTimeout,
    Quarantine,
    RobustnessConfig,
    TripError,
    guarded_call,
    inject_faults,
    is_transient,
    maybe_inject,
    read_errors_jsonl,
)
from repro.faults.errors import ErrorRateExceeded
from repro.faults import injector
from repro.obs import MetricsRegistry, use_registry


class TestFaultPlan:
    def test_roll_is_deterministic_and_seed_sensitive(self):
        a = FaultPlan(seed=1)
        b = FaultPlan(seed=1)
        c = FaultPlan(seed=2)
        keys = [("clean", i) for i in range(50)]
        assert [a.roll(*k) for k in keys] == [b.roll(*k) for k in keys]
        assert [a.roll(*k) for k in keys] != [c.roll(*k) for k in keys]
        assert all(0.0 <= a.roll(*k) < 1.0 for k in keys)

    def test_picks_fraction_tracks_rate(self):
        plan = FaultPlan(seed=7, clean_error_rate=0.2)
        hits = sum(1 for i in range(2000) if plan.picks("clean", i))
        assert 300 < hits < 500  # ~0.2 of 2000

    def test_zero_rate_never_picks(self):
        plan = FaultPlan(seed=7)
        assert not any(plan.picks("clean", i) for i in range(100))

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(clean_error_rate=1.5)

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=3, corrupt_row_rate=0.1, truncate_after_rows=9,
            clean_error_rate=0.2, match_error_rate=0.3,
            route_error_rate=0.05, transient_rate=0.5,
            kill_chunk={"clean": 1, "match": 0},
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"seed": 1, "explode_rate": 0.5})

    def test_plan_is_picklable(self):
        plan = FaultPlan(seed=5, kill_chunk={"match": 2})
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestInjector:
    def test_no_active_plan_is_a_no_op(self):
        injector.deactivate()
        maybe_inject("clean", 123)  # must not raise

    def test_injects_for_picked_keys_only(self):
        plan = FaultPlan(seed=11, clean_error_rate=0.3)
        picked = next(i for i in range(100) if plan.picks("clean", i))
        spared = next(i for i in range(100) if not plan.picks("clean", i))
        with inject_faults(plan):
            maybe_inject("clean", spared)
            with pytest.raises(InjectedFault):
                maybe_inject("clean", picked)

    def test_routing_faults_are_timeouts_and_guard_scoped(self):
        plan = FaultPlan(seed=11, route_error_rate=1.0)
        with inject_faults(plan):
            # Outside a guard: suppressed (analysis code is not collateral).
            maybe_inject("routing", (1, 2), require_guard=True)
            injector.enter_guard()
            try:
                with pytest.raises(InjectedTimeout):
                    maybe_inject("routing", (1, 2), require_guard=True)
            finally:
                injector.exit_guard()

    def test_transient_fault_clears_on_second_attempt(self):
        plan = FaultPlan(seed=11, match_error_rate=1.0, transient_rate=1.0)
        with inject_faults(plan):
            with pytest.raises(InjectedFault) as info:
                maybe_inject("match", 42)
            assert info.value.transient
            maybe_inject("match", 42)  # second attempt passes

    def test_injection_counters(self):
        plan = FaultPlan(seed=11, clean_error_rate=1.0)
        registry = MetricsRegistry()
        with use_registry(registry), inject_faults(plan):
            with pytest.raises(InjectedFault):
                maybe_inject("clean", 1)
        assert registry.counter("faults.injected").value == 1
        assert registry.counter("faults.injected.clean").value == 1


class TestGuard:
    def test_success_passes_through(self):
        result, error = guarded_call(
            "clean", lambda x: x * 2, 21, robustness=RobustnessConfig()
        )
        assert (result, error) == (42, None)

    def test_nontransient_failure_quarantines_without_retry(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("broken trip")

        result, error = guarded_call(
            "clean", boom, robustness=RobustnessConfig(retries=3), trip_id=9
        )
        assert result is None
        assert error.kind == "ValueError"
        assert error.trip_id == 9
        assert error.fault_tag is None
        assert len(calls) == 1  # deterministic failures are not replayed

    def test_transient_failure_retries_with_backoff(self):
        attempts = []
        delays = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TimeoutError("slow route")
            return "ok"

        registry = MetricsRegistry()
        with use_registry(registry):
            result, error = guarded_call(
                "match", flaky,
                robustness=RobustnessConfig(
                    retries=3, backoff_base_s=0.5, backoff_multiplier=2.0
                ),
                sleep=delays.append,
            )
        assert (result, error) == ("ok", None)
        assert delays == [0.5, 1.0]  # exponential pacing, injectable sleep
        assert registry.counter("faults.retries").value == 2
        assert registry.counter("faults.retry_success").value == 1

    def test_retries_are_bounded(self):
        def always_slow():
            raise TimeoutError("never")

        result, error = guarded_call(
            "match", always_slow,
            robustness=RobustnessConfig(retries=2, backoff_base_s=0.0),
        )
        assert result is None
        assert error.kind == "TimeoutError"

    def test_injected_fault_tag_travels_into_error(self):
        plan = FaultPlan(seed=11, match_error_rate=1.0)
        with inject_faults(plan):
            result, error = guarded_call(
                "match", lambda: maybe_inject("match", 7),
                robustness=RobustnessConfig(retries=0),
                transition_index=7,
            )
        assert error.fault_tag == "injected:match"
        assert error.transition_index == 7

    def test_is_transient(self):
        assert is_transient(TimeoutError())
        assert is_transient(InjectedTimeout("routing", (1, 2)))
        assert is_transient(InjectedFault("clean", 1, transient=True))
        assert not is_transient(InjectedFault("clean", 1))
        assert not is_transient(ValueError())


class TestQuarantine:
    def test_rate_threshold(self):
        quarantine = Quarantine(max_error_rate=0.10)
        for i in range(3):
            quarantine.add(TripError(stage="clean", kind="X", message="", trip_id=i))
        quarantine.check(100)  # 3% — fine
        with pytest.raises(ErrorRateExceeded) as info:
            quarantine.check(10)  # 30% — fails
        assert info.value.errors == quarantine.errors

    def test_advisory_kinds_do_not_count_toward_the_rate(self):
        quarantine = Quarantine(max_error_rate=0.10)
        for i in range(5):
            quarantine.add(TripError(
                stage="io", kind="non_monotonic_ids", message="", trip_id=i,
            ))
        quarantine.check(10)  # 50% advisory records: still passes
        assert quarantine.rate(10) == 0.0
        assert quarantine.dropped() == []
        quarantine.add(TripError(stage="io", kind="parse_error", message="", row=1))
        assert len(quarantine.dropped()) == 1
        with pytest.raises(ErrorRateExceeded):
            quarantine.check(5)  # the dropped row alone is 20%

    def test_no_threshold_never_fails(self):
        quarantine = Quarantine()
        quarantine.add(TripError(stage="io", kind="X", message=""))
        quarantine.check(1)

    def test_jsonl_round_trip(self, tmp_path):
        quarantine = Quarantine()
        quarantine.add(TripError(
            stage="match", kind="InjectedFault", message="boom",
            segment_id=4, transition_index=2, fault_tag="injected:match",
        ))
        quarantine.add(TripError(stage="io", kind="parse_error", message="x", row=7))
        path = tmp_path / "errors.jsonl"
        assert quarantine.write_jsonl(path) == 2
        assert read_errors_jsonl(path) == quarantine.errors

    def test_add_counts_quarantined_units(self):
        registry = MetricsRegistry()
        quarantine = Quarantine()
        with use_registry(registry):
            quarantine.add(TripError(stage="clean", kind="X", message=""))
        assert registry.counter("trips.quarantined").value == 1
