"""Tests for repro.store.spatial and repro.store.database."""


import pytest

from repro.geo.geometry import LineString
from repro.store import Column, Database, SpatialColumn, Table


def make_table():
    return Table(
        "objects",
        [Column("name", str), Column("pos", tuple, nullable=True)],
    )


class TestSpatialColumnPoints:
    def test_unknown_column(self):
        with pytest.raises(KeyError):
            SpatialColumn(make_table(), "missing")

    def test_within_radius_exact(self):
        t = make_table()
        col = SpatialColumn(t, "pos", cell_size=50.0)
        t.insert({"name": "a", "pos": (0.0, 0.0)})
        t.insert({"name": "b", "pos": (30.0, 40.0)})   # 50 m away
        t.insert({"name": "c", "pos": (100.0, 100.0)})
        names = {r["name"] for r in col.within_radius((0.0, 0.0), 50.0)}
        assert names == {"a", "b"}

    def test_null_geometry_unindexed(self):
        t = make_table()
        col = SpatialColumn(t, "pos")
        t.insert({"name": "a", "pos": None})
        assert len(col) == 0

    def test_delete_removes_from_index(self):
        t = make_table()
        col = SpatialColumn(t, "pos")
        k = t.insert({"name": "a", "pos": (0.0, 0.0)})
        t.delete(k)
        assert col.within_radius((0.0, 0.0), 10.0) == []

    def test_nearest(self):
        t = make_table()
        col = SpatialColumn(t, "pos", cell_size=50.0)
        t.insert({"name": "near", "pos": (10.0, 0.0)})
        t.insert({"name": "far", "pos": (400.0, 0.0)})
        assert col.nearest((0.0, 0.0))["name"] == "near"

    def test_nearest_with_max_radius(self):
        t = make_table()
        col = SpatialColumn(t, "pos", cell_size=50.0)
        t.insert({"name": "far", "pos": (400.0, 0.0)})
        assert col.nearest((0.0, 0.0), max_radius=100.0) is None

    def test_in_box(self):
        t = make_table()
        col = SpatialColumn(t, "pos")
        t.insert({"name": "a", "pos": (5.0, 5.0)})
        t.insert({"name": "b", "pos": (50.0, 50.0)})
        names = {r["name"] for r in col.in_box(0.0, 0.0, 10.0, 10.0)}
        assert names == {"a"}


class TestSpatialColumnLines:
    def test_linestring_geometry(self):
        t = Table("roads", [Column("name", str), Column("geom", LineString, nullable=True)])
        col = SpatialColumn(t, "geom", cell_size=50.0)
        t.insert({"name": "road", "geom": LineString([(0.0, 0.0), (200.0, 0.0)])})
        hits = col.within_radius((100.0, 10.0), 15.0)
        assert len(hits) == 1
        assert col.within_radius((100.0, 40.0), 15.0) == []


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database("test")
        t = db.create_table("a", [Column("x", int)])
        assert db.table("a") is t
        assert "a" in db
        assert len(db) == 1

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("a", [Column("x", int)])
        with pytest.raises(ValueError):
            db.create_table("a", [Column("x", int)])

    def test_missing_table(self):
        db = Database()
        with pytest.raises(KeyError):
            db.table("nope")

    def test_drop(self):
        db = Database()
        db.create_table("a", [Column("x", int)])
        db.drop_table("a")
        assert "a" not in db

    def test_iteration(self):
        db = Database()
        db.create_table("a", [Column("x", int)])
        db.create_table("b", [Column("x", int)])
        assert {t.name for t in db} == {"a", "b"}
        assert db.table_names() == ["a", "b"]
