"""Tests for tools/lint_scalar_kernels.py — the scalar-import lint."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from lint_scalar_kernels import CLEANING_DIR, find_offenders, main  # noqa: E402


class TestFindOffenders:
    def test_flags_unmarked_import(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "from repro.geo.distance import haversine_m\n"
        )
        offenders = find_offenders(tmp_path)
        assert len(offenders) == 1
        assert offenders[0][1] == 1

    def test_marker_suppresses(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "from repro.geo.distance import haversine_m  # scalar-ok: reference\n"
        )
        assert find_offenders(tmp_path) == []

    def test_flags_package_reexport_and_module_import(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "from repro.geo import haversine_m\n"
            "import repro.geo.distance\n"
        )
        assert len(find_offenders(tmp_path)) == 2

    def test_ignores_call_sites_and_vec_kernel(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "from repro.geo.vector import haversine_m_vec\n"
            "d = haversine_m(1.0, 2.0, 3.0, 4.0)\n"
        )
        assert find_offenders(tmp_path) == []

    def test_multiline_and_grouped_imports(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "from repro.geo.distance import bearing_deg, haversine_m\n"
        )
        assert len(find_offenders(tmp_path)) == 1


class TestMain:
    def test_repo_cleaning_package_is_clean(self, capsys):
        assert main([]) == 0
        assert "OK" in capsys.readouterr().out

    def test_offending_dir_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "from repro.geo.distance import haversine_m\n"
        )
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:1" in out
        assert "scalar-ok" in out

    def test_cleaning_dir_exists(self):
        # The default target must point at a real package, or the lint
        # would silently pass on an empty glob after a rename.
        assert CLEANING_DIR.is_dir()
        assert (CLEANING_DIR / "segmentation.py").exists()
