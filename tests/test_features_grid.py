"""Tests for repro.features.grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.grid import (
    CellStats,
    GridAccumulator,
    GridSpec,
    cell_feature_counts,
    stratify_cells_by_features,
)


class TestGridSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            GridSpec(cell_size_m=0.0)

    def test_cell_of(self):
        spec = GridSpec(200.0)
        assert spec.cell_of((50.0, 50.0)) == (0, 0)
        assert spec.cell_of((250.0, -50.0)) == (1, -1)
        assert spec.cell_of((-0.1, 0.0)) == (-1, 0)

    def test_cell_centre_roundtrip(self):
        spec = GridSpec(200.0)
        centre = spec.cell_centre((3, -2))
        assert spec.cell_of(centre) == (3, -2)


class TestCellStats:
    def test_welford_matches_numpy(self):
        values = [3.0, 7.5, 1.2, 9.9, 4.4, 5.5]
        stats = CellStats()
        for v in values:
            stats.add(v)
        assert stats.n == 6
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values, ddof=1))

    def test_variance_of_singleton_is_zero(self):
        stats = CellStats()
        stats.add(5.0)
        assert stats.variance == 0.0

    @given(values=st.lists(st.floats(min_value=0.0, max_value=100.0),
                           min_size=2, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_welford_property(self, values):
        stats = CellStats()
        for v in values:
            stats.add(v)
        assert stats.mean == pytest.approx(np.mean(values), abs=1e-9)
        assert stats.variance == pytest.approx(np.var(values, ddof=1), abs=1e-7)


class TestGridAccumulator:
    def test_points_pool_per_cell(self):
        grid = GridAccumulator(GridSpec(100.0))
        grid.add_point((10.0, 10.0), 30.0)
        grid.add_point((20.0, 20.0), 40.0)
        grid.add_point((150.0, 10.0), 50.0)
        assert len(grid) == 2
        assert grid.point_count == 3
        assert grid.cell_means()[(0, 0)] == pytest.approx(35.0)

    def test_speeds_raw_access(self):
        grid = GridAccumulator(GridSpec(100.0))
        key = grid.add_point((10.0, 10.0), 30.0)
        grid.add_point((11.0, 11.0), 32.0)
        assert grid.speeds(key) == [30.0, 32.0]
        assert grid.speeds((9, 9)) == []


class TestCellFeatureCounts:
    def test_counts_on_city(self, city):
        spec = GridSpec(200.0)
        counts = cell_feature_counts(spec, city.map_db, city.graph)
        total_lights = sum(c["traffic_lights"] for c in counts.values())
        assert total_lights == city.spec.n_traffic_lights
        total_junctions = sum(c["junctions"] for c in counts.values())
        assert total_junctions == sum(
            1 for n in city.graph.nodes() if city.graph.degree(n.node_id) >= 3
        )

    def test_cell_restriction(self, city):
        spec = GridSpec(200.0)
        wanted = [(0, 0), (50, 50)]
        counts = cell_feature_counts(spec, city.map_db, city.graph, wanted)
        assert set(counts) == set(wanted)
        assert counts[(50, 50)]["traffic_lights"] == 0

    def test_centre_cell_has_features(self, city):
        spec = GridSpec(200.0)
        counts = cell_feature_counts(spec, city.map_db, city.graph)
        centre = counts.get((0, 0), {})
        assert centre.get("traffic_lights", 0) >= 1
        assert centre.get("pedestrian_crossings", 0) >= 1


class TestStratification:
    def test_table5_grouping(self):
        cells = {}
        features = {}
        for i, (lights, buses, speed) in enumerate(
            [(0, 0, 40.0), (0, 2, 35.0), (3, 1, 20.0), (2, 0, 22.0)]
        ):
            key = (i, 0)
            stats = CellStats()
            stats.add(speed)
            cells[key] = stats
            features[key] = {"traffic_lights": lights, "bus_stops": buses}
        groups = stratify_cells_by_features(cells, features)
        assert sorted(groups["lights=0"]) == [35.0, 40.0]
        assert groups["lights=0,bus=0"] == [40.0]
        assert groups["lights>0,bus>0"] == [20.0]
        assert sorted(groups["lights>0"]) == [20.0, 22.0]

    def test_missing_features_treated_as_zero(self):
        stats = CellStats()
        stats.add(10.0)
        groups = stratify_cells_by_features({(0, 0): stats}, {})
        assert groups["lights=0"] == [10.0]
