"""Tests for repro.experiments.geojson."""

import json

import pytest

from repro.analysis import detect_hotspots, extract_dwells
from repro.experiments.geojson import (
    hotspots_geojson,
    matched_route_geojson,
    road_network_geojson,
    study_geojson,
    trip_geojson,
)
from repro.matching.types import MatchedRoute


def assert_valid_collection(obj):
    assert obj["type"] == "FeatureCollection"
    for f in obj["features"]:
        assert f["type"] == "Feature"
        assert "geometry" in f and "properties" in f


class TestRoadNetwork:
    def test_collection_structure(self, city):
        fc = road_network_geojson(city.graph, city.projector)
        assert_valid_collection(fc)
        assert len(fc["features"]) == city.graph.edge_count

    def test_coordinates_are_wgs84(self, city):
        fc = road_network_geojson(city.graph, city.projector)
        lon, lat = fc["features"][0]["geometry"]["coordinates"][0]
        assert 25.0 < lon < 26.0
        assert 64.9 < lat < 65.1

    def test_serialisable(self, city):
        fc = road_network_geojson(city.graph, city.projector)
        text = json.dumps(fc)
        assert json.loads(text) == fc


class TestTripsAndRoutes:
    def test_trip_feature(self, fleet):
        f = trip_geojson(fleet.trips[0])
        assert f["geometry"]["type"] == "LineString"
        assert f["properties"]["point_count"] == len(fleet.trips[0])

    def test_matched_route_feature(self, study_result):
        __, route = study_result.kept()[0]
        f = matched_route_geojson(route, study_result.city.graph,
                                  study_result.city.projector)
        assert f["geometry"]["type"] == "LineString"
        assert f["properties"]["length_m"] > 1000.0
        assert len(f["geometry"]["coordinates"]) >= 2

    def test_simplification_reduces_vertices(self, study_result):
        __, route = study_result.kept()[0]
        graph = study_result.city.graph
        projector = study_result.city.projector
        dense = matched_route_geojson(route, graph, projector, simplify_m=None)
        coarse = matched_route_geojson(route, graph, projector, simplify_m=50.0)
        assert len(coarse["geometry"]["coordinates"]) <= len(
            dense["geometry"]["coordinates"]
        )

    def test_empty_route_rejected(self, study_result):
        empty = MatchedRoute(segment_id=1, car_id=1)
        with pytest.raises(ValueError):
            matched_route_geojson(empty, study_result.city.graph,
                                  study_result.city.projector)


class TestHotspotsAndStudy:
    def test_hotspots_collection(self, fleet, city):
        dwells = extract_dwells(
            fleet, lambda p: city.projector.to_xy(p.lat, p.lon)
        )
        hotspots = detect_hotspots(dwells, eps=180.0, min_pts=6)
        fc = hotspots_geojson(hotspots, city.projector)
        assert_valid_collection(fc)
        assert len(fc["features"]) == len(hotspots)
        assert fc["features"][0]["properties"]["rank"] == 1

    def test_study_bundle(self, study_result):
        bundle = study_geojson(study_result, max_routes=5)
        assert set(bundle) == {"roads", "gates", "routes", "cells"}
        for fc in bundle.values():
            assert_valid_collection(fc)
        assert len(bundle["gates"]["features"]) == 3
        assert len(bundle["routes"]["features"]) <= 5
        assert len(bundle["cells"]["features"]) == len(study_result.mixed.groups)
        # Cells are polygons with closed rings.
        ring = bundle["cells"]["features"][0]["geometry"]["coordinates"][0]
        assert ring[0] == ring[-1]
