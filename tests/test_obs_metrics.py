"""Tests for the metrics registry (counters, gauges, histograms)."""

import json

import pytest

from repro.obs import MetricsRegistry, get_registry, use_registry
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_summary_math(self):
        h = Histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0
        assert s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.5)
        assert s["p50"] == pytest.approx(50.0, abs=1.0)
        assert s["p90"] == pytest.approx(90.0, abs=1.0)
        assert s["p99"] == pytest.approx(99.0, abs=1.0)

    def test_empty_summary(self):
        assert Histogram("e").summary() == {"count": 0}

    def test_reservoir_caps_samples_but_not_exact_stats(self):
        h = Histogram("r", max_samples=64)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000
        assert h.min == 0.0 and h.max == 999.0
        assert len(h._samples) == 64
        # Quantiles come from the reservoir: still within the value range.
        assert 0.0 <= h.quantile(0.5) <= 999.0

    def test_single_observation_quantiles(self):
        h = Histogram("one")
        h.observe(7.0)
        s = h.summary()
        assert s["p50"] == s["p99"] == 7.0


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")

    def test_snapshot_and_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(3)
        reg.gauge("ratio").set(0.5)
        reg.histogram("lat").observe(1.0)
        doc = json.loads(reg.to_json())
        assert doc["counters"] == {"jobs": 3}
        assert doc["gauges"] == {"ratio": 0.5}
        assert doc["histograms"]["lat"]["count"] == 1
        assert doc["spans"] == []
        assert doc == reg.snapshot()

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot()["counters"] == {}

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a").inc(10)
        reg.gauge("g").set(1)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}


class TestAmbientRegistry:
    def test_use_registry_scopes_and_restores(self):
        outer = get_registry()
        mine = MetricsRegistry()
        with use_registry(mine):
            assert get_registry() is mine
            get_registry().counter("seen").inc()
        assert get_registry() is outer
        assert mine.snapshot()["counters"] == {"seen": 1}

    def test_nested_scopes(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        with use_registry(a):
            with use_registry(b):
                get_registry().counter("x").inc()
            assert get_registry() is a
        assert b.counter("x").value == 1
        assert a.snapshot()["counters"] == {}


class TestPipelineIntegration:
    def test_cleaning_pipeline_records_counters(self):
        from repro.cleaning import CleaningPipeline
        from repro.traces import FleetSpec, TaxiFleetSimulator
        from repro.roadnet import build_synthetic_oulu

        city = build_synthetic_oulu()
        fleet, __ = TaxiFleetSimulator(city, FleetSpec(n_days=1, seed=5)).simulate()
        reg = MetricsRegistry()
        with use_registry(reg):
            result = CleaningPipeline().run(fleet)
        counters = reg.snapshot()["counters"]
        assert counters["clean.trips_in"] == result.report.trips_in
        assert counters["clean.segments_out"] == result.report.segments_out
        assert set(result.report.stage_seconds) == {
            "ordering", "duplicates", "outliers", "bounds",
            "segmentation", "segment_filter",
        }
        # A stage span tree was recorded too.
        assert any(s.name == "clean" for s in reg.spans)

    def test_study_attaches_metrics_snapshot(self):
        from repro.experiments import OuluStudy, StudyConfig
        from repro.traces import FleetSpec

        result = OuluStudy(
            StudyConfig(fleet=FleetSpec(n_days=2, seed=11))
        ).run()
        m = result.metrics
        assert m["counters"]["od.segments_total"] > 0
        assert m["counters"]["routing.dijkstra_calls"] > 0
        assert m["histograms"]["matching.match_seconds"]["count"] > 0
        (root,) = m["spans"]
        assert root["name"] == "study"
        child_names = {c["name"] for c in root["children"]}
        assert {"simulate", "clean", "extract", "match"} <= child_names
