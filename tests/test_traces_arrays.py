"""Tests for repro.traces.arrays — the struct-of-arrays trace view."""

import numpy as np
import pytest

from repro.geo.projection import LocalProjector
from repro.traces.arrays import TraceArrays
from repro.traces.model import RoutePoint, Trip, trip_distance_m


def _trip(n: int = 6) -> Trip:
    points = [
        RoutePoint(
            point_id=i + 1,
            trip_id=9,
            lat=65.0 + 0.001 * i,
            lon=25.4 + 0.002 * i,
            time_s=10.0 * i,
            speed_kmh=30.0 + i,
            fuel_ml=100.0 * i,
        )
        for i in range(n)
    ]
    return Trip(trip_id=9, car_id=3, points=points)


class TestRoundTrip:
    def test_to_points_is_exact_inverse(self):
        trip = _trip()
        arrays = TraceArrays.from_trip(trip)
        assert arrays.to_points(trip.trip_id) == trip.points

    def test_len_and_dtypes(self):
        arrays = TraceArrays.from_trip(_trip(4))
        assert len(arrays) == 4
        assert arrays.point_id.dtype == np.int64
        for col in (arrays.lat, arrays.lon, arrays.time_s, arrays.speed_kmh, arrays.fuel_ml):
            assert col.dtype == np.float64

    def test_empty_trip(self):
        arrays = TraceArrays.from_points([])
        assert len(arrays) == 0
        assert arrays.to_points(1) == []


class TestProjection:
    def test_xy_columns_match_scalar_projector_bitwise(self):
        trip = _trip()
        projector = LocalProjector(65.0, 25.4)
        arrays = TraceArrays.from_trip(trip, projector=projector)
        for i, p in enumerate(trip.points):
            x, y = projector.to_xy(p.lat, p.lon)
            assert float(arrays.x[i]) == x
            assert float(arrays.y[i]) == y

    def test_no_projector_leaves_xy_none(self):
        arrays = TraceArrays.from_trip(_trip())
        assert arrays.x is None and arrays.y is None


class TestGaps:
    def test_gap_arrays_shapes(self):
        arrays = TraceArrays.from_trip(_trip(5))
        dist, dt = arrays.gaps()
        assert dist.shape == (4,) and dt.shape == (4,)

    def test_gaps_cached_single_instance(self):
        arrays = TraceArrays.from_trip(_trip())
        assert arrays.gaps()[0] is arrays.gaps()[0]

    def test_total_distance_matches_scalar_walk(self):
        trip = _trip(8)
        arrays = TraceArrays.from_trip(trip)
        assert arrays.total_distance_m() == pytest.approx(
            trip_distance_m(trip.points), rel=1e-12
        )

    def test_distance_under_identity_order(self):
        arrays = TraceArrays.from_trip(_trip(6))
        order = np.arange(6)
        assert arrays.distance_under(order) == pytest.approx(
            arrays.total_distance_m(), rel=1e-12
        )

    def test_distance_under_reversal_is_symmetric(self):
        arrays = TraceArrays.from_trip(_trip(6))
        fwd = arrays.distance_under(np.arange(6))
        rev = arrays.distance_under(np.arange(5, -1, -1))
        assert fwd == pytest.approx(rev, rel=1e-12)

    def test_distance_under_short_column_is_zero(self):
        arrays = TraceArrays.from_trip(_trip(1))
        assert arrays.distance_under(np.array([0])) == 0.0
