"""Tests for the end-to-end study orchestration."""

import pytest

from repro.experiments import OuluStudy, StudyConfig
from repro.od.transitions import STUDIED_PAIRS


class TestStudyConfig:
    def test_matcher_validation(self):
        with pytest.raises(ValueError):
            StudyConfig(matcher="magic")


class TestStudyArtefacts:
    def test_all_stages_present(self, study_result):
        assert study_result.fleet.point_count > 1000
        assert study_result.clean.segments
        assert study_result.extraction.transitions
        assert study_result.kept_transitions
        assert study_result.route_stats
        assert len(study_result.grid) > 10
        assert study_result.mixed is not None

    def test_funnel_monotone_per_car(self, study_result):
        for row in study_result.funnel:
            assert (
                row.total_segments
                >= row.filtered_cleaned
                >= row.transitions_total
                >= row.within_centre
                >= row.post_filtered
                >= 0
            )

    def test_funnel_covers_all_cars(self, study_result):
        assert [r.car_id for r in study_result.funnel] == [1, 2, 3, 4, 5, 6, 7]

    def test_funnel_proportions_paper_shape(self, study_result):
        """Aggregate funnel ratios sit in the paper's Table 3 bands."""
        total = sum(r.total_segments for r in study_result.funnel)
        filtered = sum(r.filtered_cleaned for r in study_result.funnel)
        transitions = sum(r.transitions_total for r in study_result.funnel)
        centre = sum(r.within_centre for r in study_result.funnel)
        post = sum(r.post_filtered for r in study_result.funnel)
        assert 0.15 < filtered / total < 0.55          # paper ~0.25-0.40
        assert 0.02 < transitions / filtered < 0.35    # paper ~0.07-0.26
        assert centre / transitions > 0.6              # paper ~0.73-0.96
        assert 0.4 < post / max(centre, 1) <= 1.0      # paper ~0.59-0.92

    def test_transitions_are_studied_pairs(self, study_result):
        for t in study_result.transitions():
            assert (t.origin, t.destination) in STUDIED_PAIRS

    def test_kept_transitions_passed_post_filter(self, study_result):
        for i in study_result.kept_transitions:
            assert study_result.extraction.transitions[i].post_filtered_ok

    def test_route_stats_align_with_kept(self, study_result):
        assert len(study_result.route_stats) == len(study_result.kept_transitions)

    def test_stats_by_direction_partition(self, study_result):
        by_dir = study_result.stats_by_direction()
        assert sum(len(v) for v in by_dir.values()) == len(study_result.route_stats)

    def test_grid_points_come_from_kept_routes(self, study_result):
        expected = sum(len(r.matched) for __, r in study_result.kept())
        assert study_result.grid.point_count == expected

    def test_mixed_model_groups_are_grid_cells(self, study_result):
        cells = set(study_result.grid.cells())
        assert set(study_result.mixed.groups) <= cells


class TestPaperShapeTargets:
    """The headline orderings of the paper's evaluation."""

    def test_low_speed_core_above_bypass(self, study_result):
        by_dir = {
            d: [s.low_speed_pct for s in stats]
            for d, stats in study_result.stats_by_direction().items()
        }
        core = by_dir.get("T-S", []) + by_dir.get("S-T", [])
        bypass = by_dir.get("T-L", []) + by_dir.get("L-T", [])
        assert core and bypass
        assert sum(core) / len(core) > sum(bypass) / len(bypass)

    def test_normal_speed_ordering_reversed(self, study_result):
        by_dir = {
            d: [s.normal_speed_pct for s in stats]
            for d, stats in study_result.stats_by_direction().items()
        }
        core = by_dir.get("T-S", []) + by_dir.get("S-T", [])
        bypass = by_dir.get("T-L", []) + by_dir.get("L-T", [])
        assert sum(bypass) / len(bypass) > 0.6 * (sum(core) / len(core))

    def test_route_time_core_longer(self, study_result):
        by_dir = {
            d: [s.route_time_h for s in stats]
            for d, stats in study_result.stats_by_direction().items()
        }
        core = by_dir.get("T-S", []) + by_dir.get("S-T", [])
        bypass = by_dir.get("T-L", []) + by_dir.get("L-T", [])
        assert sum(core) / len(core) > sum(bypass) / len(bypass)

    def test_blup_range_paper_scale(self, study_result):
        blups = list(study_result.mixed.blup.values())
        # Paper: coefficients vary between ca. -15 and +20 km/h.
        assert -40.0 < min(blups) < -2.0
        assert 2.0 < max(blups) < 40.0


class TestHmmStudyVariant:
    def test_hmm_matcher_study_runs(self):
        from repro.traces import FleetSpec

        config = StudyConfig(fleet=FleetSpec(n_days=4, seed=5), matcher="hmm")
        result = OuluStudy(config).run()
        assert result.clean.segments
        # HMM should match at least most transitions it is given.
        assert len(result.matched) >= 0.5 * max(1, len(result.extraction.transitions))
