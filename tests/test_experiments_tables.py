"""Tests for the table generators (Tables 1-5)."""



from repro.experiments.rendering import (
    format_table,
    render_funnel,
    render_table4,
    render_table5,
)
from repro.experiments.tables import (
    TABLE2_RULES,
    table1_junction_pairs,
    table2_rule_hits,
    table3_funnel,
    table4_route_summaries,
    table5_cell_speed_strata,
)


class TestTable1:
    def test_rows_shape(self, study_result):
        rows = table1_junction_pairs(study_result.city, limit=10)
        assert len(rows) == 10
        for row in rows:
            assert row["junction1"].startswith("POINT(")
            assert row["junction2"].startswith("POINT(")
            assert isinstance(row["elements"], list)
            assert row["elements"]

    def test_coordinates_are_epsg4326_near_oulu(self, study_result):
        rows = table1_junction_pairs(study_result.city, limit=5)
        for row in rows:
            lon = float(row["junction1"].split("(")[1].split(",")[0])
            assert 25.0 < lon < 26.0

    def test_multi_element_rows_exist(self, study_result):
        rows = table1_junction_pairs(study_result.city)
        assert any(len(r["elements"]) >= 2 for r in rows)


class TestTable2:
    def test_all_five_rules_listed(self, study_result):
        rows = table2_rule_hits(study_result.clean)
        assert [r["rule"] for r in rows] == [1, 2, 3, 4, 5]
        assert all(r["description"] == TABLE2_RULES[r["rule"]] for r in rows)

    def test_rule1_fires_on_taxi_data(self, study_result):
        rows = {r["rule"]: r["hits"] for r in table2_rule_hits(study_result.clean)}
        assert rows[1] > 0


class TestTable3:
    def test_rows_match_funnel(self, study_result):
        rows = table3_funnel(study_result)
        assert len(rows) == 7
        for row, funnel in zip(rows, study_result.funnel):
            assert row["car"] == funnel.car_id
            assert row["post_filtered"] == funnel.post_filtered

    def test_render(self, study_result):
        text = render_funnel(study_result)
        assert "Trip segments (total)" in text
        assert len(text.splitlines()) == 9  # header + rule + 7 cars


class TestTable4:
    def test_metrics_present(self, study_result):
        summaries = table4_route_summaries(study_result)
        assert set(summaries) == {
            "route_time_h", "route_distance_km", "low_speed_pct",
            "normal_speed_pct", "n_traffic_lights", "n_junctions",
            "n_pedestrian_crossings", "fuel_ml",
        }

    def test_six_numbers_ordered(self, study_result):
        summaries = table4_route_summaries(study_result)
        for metric in summaries.values():
            for s in metric.values():
                assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum

    def test_low_speed_shape(self, study_result):
        low = table4_route_summaries(study_result)["low_speed_pct"]
        core = [low[d].mean for d in ("T-S", "S-T") if d in low]
        bypass = [low[d].mean for d in ("T-L", "L-T") if d in low]
        assert core and bypass
        assert max(bypass) < max(core) + 25.0  # bypass never dominates

    def test_render(self, study_result):
        text = render_table4(table4_route_summaries(study_result))
        assert "Low speed %" in text
        assert "Fuel cons. (ml)" in text


class TestTable5:
    def test_strata_present(self, study_result):
        strata = table5_cell_speed_strata(study_result)
        assert set(strata) == {
            "lights=0", "lights=0,bus=0", "lights>0,bus>0", "lights>0"
        }

    def test_lights_lower_mean_speed(self, study_result):
        strata = table5_cell_speed_strata(study_result)
        assert strata["lights>0"]["mean"] < strata["lights=0"]["mean"]

    def test_lights_lower_variance(self, study_result):
        strata = table5_cell_speed_strata(study_result)
        assert strata["lights>0"]["var"] < strata["lights=0"]["var"]

    def test_cell_counts_positive(self, study_result):
        strata = table5_cell_speed_strata(study_result)
        assert strata["lights=0"]["n_cells"] > 0
        assert strata["lights>0"]["n_cells"] > 0

    def test_render_handles_nan(self, study_result):
        text = render_table5(table5_cell_speed_strata(study_result))
        assert "mean" in text


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.34567], [10, 3.2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.346" in lines[2]

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text
