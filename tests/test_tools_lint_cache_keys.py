"""The cache-key coverage lint: no StudyConfig field escapes the keys."""

from __future__ import annotations

import dataclasses
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from lint_cache_keys import escaped_fields, lint  # noqa: E402


def test_repo_is_clean():
    assert lint() == []


def test_cli_exit_zero():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "lint_cache_keys.py")],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout


def test_uncovered_field_is_flagged():
    @dataclasses.dataclass
    class RogueConfig:
        matcher: str = "incremental"      # keyed via STAGE_FIELDS
        fleet: object = None              # excluded via EXCLUDED_FIELDS
        brand_new_knob: int = 3           # covered by nothing

    problems = lint(RogueConfig, source="")
    assert any("brand_new_knob" in p for p in problems)
    assert not any("matcher" in p for p in problems)


def test_cachekey_ok_escape_hatch():
    @dataclasses.dataclass
    class EscapedConfig:
        matcher: str = "incremental"
        fleet: object = None
        display_name: str = ""

    source = "    display_name: str = ''  # cachekey-ok\n"
    assert escaped_fields(source) == {"display_name"}
    assert not any("display_name" in p for p in lint(EscapedConfig, source))


def test_stale_entries_are_flagged():
    @dataclasses.dataclass
    class TinyConfig:
        matcher: str = "incremental"

    # Every other STAGE_FIELDS / EXCLUDED_FIELDS name is stale for this
    # config — the lint must name each one.
    problems = lint(TinyConfig, source="")
    assert any("stale" in p and "'fleet'" in p for p in problems)
    assert any("stale" in p and "'robustness'" in p for p in problems)
