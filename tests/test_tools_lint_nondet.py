"""Tests for tools/lint_nondeterminism.py — the chaos-flake lint."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from lint_nondeterminism import DEFAULT_TARGETS, find_offenders, main  # noqa: E402


class TestFindOffenders:
    def test_flags_wall_clock_and_rng(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "now = time.time()\n"
            "jitter = random.random()\n"
            "n = random.randint(0, 9)\n"
        )
        offenders = find_offenders([tmp_path])
        assert [line_no for __, line_no, __ in offenders] == [1, 2, 3]

    def test_flags_pid_uuid_and_datetime(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "pid = os.getpid()\n"
            "tag = uuid.uuid4()\n"
            "ts = datetime.now()\n"
            "raw = os.urandom(8)\n"
        )
        assert len(find_offenders([tmp_path])) == 4

    def test_marker_suppresses(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "pid = os.getpid()  # nondet-ok: asserting workers are new forks\n"
        )
        assert find_offenders([tmp_path]) == []

    def test_sleep_and_seeded_rng_are_allowed(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "time.sleep(delay)\n"           # pacing, never a decision
            "rng = random.Random(seed)\n"   # explicit seed: replayable
            "x = rng.random()\n"            # method on a seeded instance
        )
        # random.Random( matches random.\w+ by design — an explicit seed
        # still needs to *come from the plan*, so it stays flagged...
        offenders = find_offenders([tmp_path])
        assert [line for __, __, line in offenders] == ["rng = random.Random(seed)"]

    def test_file_target(self, tmp_path):
        bad = tmp_path / "one.py"
        bad.write_text("t = time.monotonic()\n")
        (tmp_path / "other.py").write_text("t = time.time()\n")
        assert len(find_offenders([bad])) == 1


class TestMain:
    def test_fault_layer_and_chaos_suite_are_clean(self, capsys):
        assert main([]) == 0
        assert "ok" in capsys.readouterr().out

    def test_offending_dir_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("now = time.time()\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:1" in out
        assert "nondet-ok" in out

    def test_default_targets_exist(self):
        # The defaults must point at real paths, or the lint would
        # silently pass on an empty glob after a rename.
        assert DEFAULT_TARGETS[0].is_dir()
        assert any(p.name.startswith("test_faults_") for p in DEFAULT_TARGETS)
        assert DEFAULT_TARGETS[-1].name == "conftest.py"
