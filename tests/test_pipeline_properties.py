"""Property-based invariants across pipeline stages.

These tests generate randomised inputs with hypothesis and assert the
structural guarantees the rest of the system builds on: cleaning never
invents route points, segmentation partitions trips, ordering repair is
idempotent, and gap filling always yields a node-contiguous traversal.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning import CleaningPipeline
from repro.cleaning.ordering import repair_ordering
from repro.cleaning.segmentation import segment_trip
from repro.geo.distance import destination_point
from repro.traces.model import FleetData, RoutePoint, Trip
from repro.traces.noise import NoiseSpec, apply_noise


def random_trip(rng: random.Random, n_points: int, with_dwells: bool) -> Trip:
    """A plausible random trip: bounded speeds, optional mid-trip dwells."""
    lat, lon = 65.0, 25.0
    t = 0.0
    points = []
    for i in range(n_points):
        points.append(RoutePoint(point_id=i + 1, trip_id=1, lat=lat, lon=lon,
                                 time_s=t, speed_kmh=rng.uniform(0, 50)))
        step = rng.uniform(30.0, 250.0)
        bearing = rng.uniform(0.0, 360.0)
        lat, lon = destination_point(lat, lon, bearing, step)
        t += rng.uniform(5.0, 45.0)
        if with_dwells and rng.random() < 0.1:
            t += rng.uniform(200.0, 900.0)
    return Trip(trip_id=1, car_id=1, points=points)


class TestCleaningInvariants:
    @given(seed=st.integers(min_value=0, max_value=2000),
           n=st.integers(min_value=6, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_pipeline_never_invents_points(self, seed, n):
        rng = random.Random(seed)
        trip = random_trip(rng, n, with_dwells=True)
        noisy = apply_noise(trip, NoiseSpec(), rng)
        result = CleaningPipeline().run(FleetData(trips=[noisy]))
        input_positions = {(round(p.lat, 9), round(p.lon, 9))
                           for p in noisy.points}
        for seg in result.segments:
            for p in seg.points:
                assert (round(p.lat, 9), round(p.lon, 9)) in input_positions

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=25, deadline=None)
    def test_segments_time_ordered_and_disjoint(self, seed):
        rng = random.Random(seed)
        trip = random_trip(rng, 30, with_dwells=True)
        segments, __ = segment_trip(trip)
        for seg in segments:
            times = [p.time_s for p in seg.points]
            assert times == sorted(times)
        for a, b in zip(segments, segments[1:]):
            assert a.end_time_s <= b.start_time_s

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=25, deadline=None)
    def test_segmentation_partitions_points(self, seed):
        """Every input point lands in at most one segment (boundary points
        between stop gaps may be dropped from short fragments)."""
        rng = random.Random(seed)
        trip = random_trip(rng, 25, with_dwells=True)
        segments, __ = segment_trip(trip)
        seen_ids: set[int] = set()
        for seg in segments:
            for p in seg.points:
                assert p.point_id not in seen_ids
                seen_ids.add(p.point_id)
        assert seen_ids <= {p.point_id for p in trip.points}

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=25, deadline=None)
    def test_ordering_repair_idempotent_and_monotone(self, seed):
        rng = random.Random(seed)
        trip = random_trip(rng, 15, with_dwells=False)
        noisy = apply_noise(
            trip, NoiseSpec(reorder_prob=1.0, gps_sigma_m=0.0,
                            glitch_prob=0.0, duplicate_prob=0.0), rng)
        once, __ = repair_ordering(noisy)
        twice, report = repair_ordering(once)
        assert report.was_consistent
        ids = [p.point_id for p in once.points]
        times = [p.time_s for p in once.points]
        assert ids == sorted(ids)
        assert times == sorted(times)
        assert [p.lat for p in twice.points] == [p.lat for p in once.points]

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=20, deadline=None)
    def test_pipeline_deterministic(self, seed):
        rng = random.Random(seed)
        trip = random_trip(rng, 20, with_dwells=True)
        noisy = apply_noise(trip, NoiseSpec(), random.Random(seed))
        r1 = CleaningPipeline().run(FleetData(trips=[noisy]))
        r2 = CleaningPipeline().run(FleetData(trips=[noisy]))
        assert len(r1.segments) == len(r2.segments)
        assert r1.report.duplicates_removed == r2.report.duplicates_removed


class TestGapfillInvariant:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_traversal_contiguous_for_random_edge_pairs(self, seed, city):
        """Any two matched edges yield a node-contiguous traversal chain."""
        from repro.matching.gapfill import connect_matches
        from repro.matching.types import MatchedPoint, MatchedRoute

        rng = random.Random(seed)
        edges = city.graph.edges()
        e1, e2 = rng.choice(edges), rng.choice(edges)
        matched = [
            MatchedPoint(
                point=RoutePoint(point_id=1, trip_id=1, lat=0, lon=0, time_s=0.0),
                edge_id=e1.edge_id, arc_m=e1.length / 2.0,
                snapped_xy=(0.0, 0.0), match_distance_m=0.0),
            MatchedPoint(
                point=RoutePoint(point_id=2, trip_id=1, lat=0, lon=0, time_s=60.0),
                edge_id=e2.edge_id, arc_m=e2.length / 2.0,
                snapped_xy=(0.0, 0.0), match_distance_m=0.0),
        ]
        route = MatchedRoute(segment_id=1, car_id=1, matched=matched)
        connect_matches(city.graph, route, max_cost_m=10_000.0)
        assert route.edge_sequence
        prev_end = None
        breaks = 0
        for edge_id, from_node in route.edge_sequence:
            edge = city.graph.edge(edge_id)
            assert from_node in (edge.u, edge.v)
            if prev_end is not None and from_node != prev_end:
                breaks += 1
            prev_end = edge.other(from_node)
        # Only unroutable gaps may break the chain; within the connected
        # city with a 10 km budget there must be none.
        assert breaks == 0
