"""Tests for the HMM (Viterbi) matcher."""

import pytest

from repro.cleaning import CleaningPipeline
from repro.matching import HmmMatcher, IncrementalMatcher
from repro.matching.hmm import HmmConfig
from repro.traces import FleetSpec, TaxiFleetSimulator
from repro.traces.noise import NoiseSpec


@pytest.fixture(scope="module")
def small_segments(city):
    spec = FleetSpec(
        n_days=2, seed=31,
        noise=NoiseSpec(gps_sigma_m=4.0, reorder_prob=0.0, glitch_prob=0.0,
                        duplicate_prob=0.0),
    )
    fleet, runs = TaxiFleetSimulator(city, spec).simulate()
    segments = CleaningPipeline().run(fleet).segments
    return segments, runs


class TestHmmConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HmmConfig(sigma_m=0.0)
        with pytest.raises(ValueError):
            HmmConfig(beta_m=-1.0)
        with pytest.raises(ValueError):
            HmmConfig(max_network_factor=0.0)
        with pytest.raises(ValueError):
            HmmConfig(max_network_factor=-2.0)


class TestHmmMatching:
    def test_matches_all_segments(self, city, small_segments):
        segments, __ = small_segments
        matcher = HmmMatcher(city.graph)
        for seg in segments[:25]:
            route = matcher.match(
                seg.points, lambda p: city.projector.to_xy(p.lat, p.lon),
                seg.segment_id, seg.car_id,
            )
            assert route is not None
            assert route.edge_sequence

    def test_match_distance_small(self, city, small_segments):
        segments, __ = small_segments
        matcher = HmmMatcher(city.graph)
        dists = []
        for seg in segments[:25]:
            route = matcher.match(
                seg.points, lambda p: city.projector.to_xy(p.lat, p.lon))
            dists.append(route.mean_match_distance_m)
        assert sum(dists) / len(dists) < 8.0

    def test_comparable_to_incremental(self, city, small_segments):
        """Both matchers should agree on most of the route."""
        segments, __ = small_segments
        hmm = HmmMatcher(city.graph)
        inc = IncrementalMatcher(city.graph)
        agreements = []
        for seg in segments[:20]:
            to_xy = lambda p: city.projector.to_xy(p.lat, p.lon)
            r1 = hmm.match(seg.points, to_xy)
            r2 = inc.match(seg.points, to_xy)
            e1, e2 = set(r1.edge_ids), set(r2.edge_ids)
            agreements.append(len(e1 & e2) / len(e1 | e2))
        assert sum(agreements) / len(agreements) > 0.75

    def test_empty_returns_none(self, city):
        assert HmmMatcher(city.graph).match([], lambda p: (0.0, 0.0)) is None

    def test_viterbi_prefers_coherent_path(self, city, small_segments):
        """The decoded path's edges must be mostly network-adjacent."""
        segments, __ = small_segments
        matcher = HmmMatcher(city.graph)
        seg = max(segments[:25], key=lambda s: len(s.points))
        route = matcher.match(
            seg.points, lambda p: city.projector.to_xy(p.lat, p.lon))
        # Consecutive traversals share a node (gap filling guarantees it
        # unless the gap was unroutable, which must be rare here).
        breaks = 0
        for (e1, n1), (e2, n2) in zip(route.edge_sequence, route.edge_sequence[1:]):
            edge1 = city.graph.edge(e1)
            if n2 not in (edge1.u, edge1.v):
                breaks += 1
        assert breaks <= 1
