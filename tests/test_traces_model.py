"""Tests for repro.traces.model."""

import pytest

from repro.geo.distance import haversine_m
from repro.traces.model import FleetData, RoutePoint, Trip, reorder_points, trip_distance_m


def pt(i, lat, lon, t, speed=30.0, fuel=0.0):
    return RoutePoint(point_id=i, trip_id=1, lat=lat, lon=lon, time_s=t,
                      speed_kmh=speed, fuel_ml=fuel)


class TestRoutePoint:
    def test_position(self):
        p = pt(1, 65.0, 25.0, 0.0)
        assert p.position() == (65.0, 25.0)


class TestTrip:
    def make_trip(self):
        return Trip(trip_id=1, car_id=2, points=[
            pt(1, 65.000, 25.000, 0.0, fuel=0.0),
            pt(2, 65.001, 25.000, 30.0, fuel=50.0),
            pt(3, 65.002, 25.000, 60.0, fuel=100.0),
        ])

    def test_times(self):
        trip = self.make_trip()
        assert trip.start_time_s == 0.0
        assert trip.end_time_s == 60.0
        assert trip.total_time_s == 60.0

    def test_distance(self):
        trip = self.make_trip()
        expected = haversine_m(65.000, 25.0, 65.001, 25.0) * 2
        assert trip.total_distance_m == pytest.approx(expected, rel=1e-6)

    def test_fuel(self):
        assert self.make_trip().total_fuel_ml == pytest.approx(100.0)

    def test_len(self):
        assert len(self.make_trip()) == 3

    def test_empty_trip(self):
        trip = Trip(trip_id=1, car_id=1)
        assert trip.total_time_s == 0.0
        assert trip.total_distance_m == 0.0
        assert trip.total_fuel_ml == 0.0

    def test_summary(self):
        s = self.make_trip().summary()
        assert s.trip_id == 1
        assert s.car_id == 2
        assert s.point_count == 3
        assert s.start_point == (65.000, 25.000)
        assert s.end_point == (65.002, 25.000)
        assert s.total_distance_m == pytest.approx(self.make_trip().total_distance_m)

    def test_with_points_copies(self):
        trip = self.make_trip()
        shorter = trip.with_points(trip.points[:2])
        assert len(shorter) == 2
        assert len(trip) == 3
        assert shorter.trip_id == trip.trip_id


class TestReorderPoints:
    def test_by_id_and_time(self):
        points = [
            pt(2, 65.0, 25.0, 10.0),
            pt(1, 65.0, 25.0, 20.0),
        ]
        by_id = reorder_points(points, "point_id")
        assert [p.point_id for p in by_id] == [1, 2]
        by_time = reorder_points(points, "time_s")
        assert [p.time_s for p in by_time] == [10.0, 20.0]

    def test_invalid_key(self):
        with pytest.raises(ValueError):
            reorder_points([], "speed_kmh")


class TestFleetData:
    def test_grouping(self):
        fleet = FleetData(trips=[
            Trip(trip_id=1, car_id=1, points=[pt(1, 65.0, 25.0, 0.0)]),
            Trip(trip_id=2, car_id=2),
            Trip(trip_id=3, car_id=1),
        ])
        assert len(fleet) == 3
        assert fleet.car_ids() == [1, 2]
        assert len(fleet.trips_for_car(1)) == 2
        assert fleet.point_count == 1


class TestTripDistance:
    def test_empty_and_single(self):
        assert trip_distance_m([]) == 0.0
        assert trip_distance_m([pt(1, 65.0, 25.0, 0.0)]) == 0.0

    def test_zigzag_longer_than_straight(self):
        straight = [
            pt(1, 65.000, 25.0, 0.0),
            pt(2, 65.001, 25.0, 1.0),
            pt(3, 65.002, 25.0, 2.0),
        ]
        zigzag = [straight[0], straight[2], straight[1]]
        assert trip_distance_m(zigzag) > trip_distance_m(straight)
