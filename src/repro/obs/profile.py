"""Opt-in sampling profiler attributing wall time to open spans.

``repro study --profile prof.folded`` answers "where did the wall time
go?" without instrumenting anything new: a daemon thread wakes every
``interval`` seconds and charges one sample to the path of spans
currently open on each pipeline thread (fed by the
:func:`repro.obs.tracing.set_span_observer` hook, which sees stage *and*
detail spans).  Output is the collapsed-stack ("folded") format
flamegraph tooling eats directly::

    study;clean;clean_trip 412
    study;match;match_one 187
    (idle) 3

Costs when off: zero — the observer is only installed between
:meth:`SpanProfiler.start` and :meth:`SpanProfiler.stop`.  Costs when
on: one dict update per span open/close plus the sampler thread.
Samples are wall-clock attribution of the *orchestrator process* only;
worker CPU shows up as time inside the orchestrator's chunk-waiting
spans, which is the operationally honest view (that is what the run
spent its wall time on).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

#: Path element charged when no span is open anywhere.
IDLE = "(idle)"


class SpanProfiler:
    """Span-path sampling profiler; also a context manager.

    ``interval`` is the sampling period in seconds (default 5 ms — fine
    enough for stage attribution, coarse enough to stay under the ≤3%
    overhead gate).  Thread-safe: spans may open/close on any thread.
    """

    def __init__(self, interval: float = 0.005) -> None:
        self.interval = interval
        self.samples: dict[tuple[str, ...], int] = {}
        self._paths: dict[int, list[str]] = {}
        self._lock = threading.Lock()
        self._sampler: threading.Thread | None = None
        self._stop = threading.Event()

    # -- span observer protocol (called by repro.obs.tracing) ---------------

    def span_opened(self, name: str) -> None:
        ident = threading.get_ident()
        with self._lock:
            self._paths.setdefault(ident, []).append(name)

    def span_closed(self, name: str) -> None:
        ident = threading.get_ident()
        with self._lock:
            path = self._paths.get(ident)
            if not path:
                return
            # Close the innermost matching frame; tolerate desync the same
            # way the span stack does (drop anything opened above it).
            for index in range(len(path) - 1, -1, -1):
                if path[index] == name:
                    del path[index:]
                    break
            if not path:
                del self._paths[ident]

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SpanProfiler":
        from repro.obs.tracing import set_span_observer

        if self._sampler is not None:
            return self
        self._stop.clear()
        set_span_observer(self)
        self._sampler = threading.Thread(
            target=self._run, name="repro-span-profiler", daemon=True
        )
        self._sampler.start()
        return self

    def stop(self) -> "SpanProfiler":
        from repro.obs.tracing import set_span_observer

        if self._sampler is None:
            return self
        self._stop.set()
        self._sampler.join(timeout=5.0)
        self._sampler = None
        set_span_observer(None)
        return self

    def __enter__(self) -> "SpanProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            with self._lock:
                if self._paths:
                    for path in self._paths.values():
                        key = tuple(path)
                        self.samples[key] = self.samples.get(key, 0) + 1
                else:
                    self.samples[(IDLE,)] = self.samples.get((IDLE,), 0) + 1

    # -- output --------------------------------------------------------------

    def collapsed(self) -> str:
        """The samples in collapsed-stack format (``a;b;c <count>``)."""
        lines = [
            f"{';'.join(path)} {count}"
            for path, count in sorted(self.samples.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str | Path) -> Path:
        """Dump :meth:`collapsed` to ``path`` (created parents)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.collapsed())
        return path

    def total_samples(self) -> int:
        return sum(self.samples.values())
