"""Observability: structured logging, metrics, tracing and the run journal.

The pipeline's audit spine.  Every preparation stage of the paper filters
data; this package makes those effects observable without a debugger:

* :mod:`repro.obs.log` — one :func:`configure` call turns on structured
  (optionally JSON) logging for every ``repro.*`` logger;
* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry` of
  counters/gauges/histograms with a JSON snapshot;
* :mod:`repro.obs.tracing` — :class:`span` context manager/decorator
  building a nested stage-timing tree that feeds the registry;
* :mod:`repro.obs.context` — run/trace identity (``run_id``, span ids)
  and the :class:`TraceCarrier` that ships it across process boundaries;
* :mod:`repro.obs.journal` — durable append-only ``events.jsonl`` run
  journal (span events, lineage, quarantines, retries, restarts);
* :mod:`repro.obs.export` — OpenMetrics textfile exporter;
* :mod:`repro.obs.profile` — opt-in sampling profiler attributing wall
  time to open spans (collapsed-stack output);
* :mod:`repro.obs.report` — renderers behind the ``repro obs`` CLI.

Typical orchestration::

    from repro import obs

    obs.configure(level="INFO")
    registry = obs.MetricsRegistry()
    run = obs.RunContext.create()
    with obs.use_registry(registry), obs.use_run_context(run), \\
            obs.use_journal(obs.FileJournal("events.jsonl", run)) as journal, \\
            obs.span("my-pipeline"):
        ...                       # instrumented stages record into both
    journal.close()
    print(registry.to_json())     # counters + histograms + stage tree
"""

from repro.obs.export import (
    lint_openmetrics,
    metric_name,
    to_openmetrics,
    write_textfile,
)
from repro.obs.profile import SpanProfiler
from repro.obs.context import (
    SCHEMA_VERSION,
    RunContext,
    TraceCarrier,
    current_parent_span_id,
    current_run,
    git_sha,
    new_run_id,
    new_span_id,
    reset_context,
    run_metadata,
    set_run_context,
    use_parent_span,
    use_run_context,
)
from repro.obs.journal import (
    EVENT_KINDS,
    JOURNAL_SCHEMA_VERSION,
    BufferJournal,
    FileJournal,
    Journal,
    clear_journal,
    get_journal,
    lineage_records,
    read_journal,
    reconstruct_spans,
    set_journal,
    structural_signature,
    use_journal,
)
from repro.obs.log import configure, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    clear_registry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.tracing import (
    SpanRecord,
    current_span,
    reset_span_stack,
    set_span_observer,
    span,
)

__all__ = [
    "EVENT_KINDS",
    "JOURNAL_SCHEMA_VERSION",
    "SCHEMA_VERSION",
    "BufferJournal",
    "Counter",
    "FileJournal",
    "Gauge",
    "Histogram",
    "Journal",
    "MetricsRegistry",
    "RunContext",
    "SpanProfiler",
    "SpanRecord",
    "TraceCarrier",
    "clear_journal",
    "clear_registry",
    "configure",
    "current_parent_span_id",
    "current_run",
    "current_span",
    "get_journal",
    "get_logger",
    "get_registry",
    "git_sha",
    "lineage_records",
    "lint_openmetrics",
    "metric_name",
    "new_run_id",
    "new_span_id",
    "read_journal",
    "reconstruct_spans",
    "reset_context",
    "reset_span_stack",
    "reset_worker_state",
    "run_metadata",
    "set_journal",
    "set_registry",
    "set_run_context",
    "set_span_observer",
    "span",
    "structural_signature",
    "to_openmetrics",
    "use_journal",
    "use_parent_span",
    "use_registry",
    "use_run_context",
    "write_textfile",
]


def reset_worker_state() -> None:
    """Make observability safe inside a freshly forked/spawned worker.

    Drops the contextvar registry/journal/run-context bindings and any
    open span frames the worker may have inherited from its parent
    process, so worker metrics are neither written into an orphaned copy
    of the parent's registry nor attached below phantom parent spans,
    and worker journal events cannot leak into a parent's file handle.
    Idempotent; call it first thing in every process-pool initialiser.
    (The parent re-propagates identity explicitly via
    :class:`TraceCarrier`.)
    """
    clear_registry()
    reset_span_stack()
    clear_journal()
    reset_context()
