"""Observability: structured logging, metrics and stage tracing.

The pipeline's audit spine.  Every preparation stage of the paper filters
data; this package makes those effects observable without a debugger:

* :mod:`repro.obs.log` — one :func:`configure` call turns on structured
  (optionally JSON) logging for every ``repro.*`` logger;
* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry` of
  counters/gauges/histograms with a JSON snapshot;
* :mod:`repro.obs.tracing` — :class:`span` context manager/decorator
  building a nested stage-timing tree that feeds the registry.

Typical orchestration::

    from repro import obs

    obs.configure(level="INFO")
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry), obs.span("my-pipeline"):
        ...                       # instrumented stages record into registry
    print(registry.to_json())     # counters + histograms + stage tree
"""

from repro.obs.log import configure, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    clear_registry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.tracing import SpanRecord, current_span, reset_span_stack, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "clear_registry",
    "configure",
    "current_span",
    "get_logger",
    "get_registry",
    "reset_span_stack",
    "reset_worker_state",
    "set_registry",
    "span",
    "use_registry",
]


def reset_worker_state() -> None:
    """Make observability safe inside a freshly forked/spawned worker.

    Drops the contextvar registry binding and any open span frames the
    worker may have inherited from its parent process, so worker metrics
    are neither written into an orphaned copy of the parent's registry
    nor attached below phantom parent spans.  Idempotent; call it first
    thing in every process-pool initialiser.
    """
    clear_registry()
    reset_span_stack()
