"""OpenMetrics textfile export of a :class:`MetricsRegistry` snapshot.

Renders a registry (or a ``metrics.json`` snapshot document) into the
OpenMetrics text exposition format consumed by the Prometheus node
exporter's textfile collector — a batch pipeline cannot be scraped, so
it drops a textfile per run instead::

    repro study --out out/ --prom-out out/metrics.prom

Mapping:

* counters  → ``# TYPE <name> counter`` with a ``<name>_total`` sample;
* gauges    → ``# TYPE <name> gauge``;
* histogram summaries → ``# TYPE <name> summary`` with ``quantile``
  labels (p50/p90/p99) plus ``_count``/``_sum`` samples;
* run metadata → one ``repro_run info`` metric whose labels carry
  ``run_id``/``git_sha``/``python`` (values constant ``1``).

Metric names are derived by prefixing ``repro_`` and replacing every
non-``[a-zA-Z0-9_]`` character with ``_`` (``clean.trips_in`` →
``repro_clean_trips_in``).  :func:`lint_openmetrics` is a strict
self-check of the produced text (used by the CI ``obs-smoke`` job and
the test-suite) — it validates TYPE ordering, sample/TYPE consistency,
label syntax, float parseability and the mandatory ``# EOF`` trailer.
"""

from __future__ import annotations

import math
import re
from pathlib import Path

#: Everything outside this set is folded to ``_`` in metric names.
_NAME_SANITISE = re.compile(r"[^a-zA-Z0-9_]")

#: A valid OpenMetrics metric name (after sanitising ours always is).
_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One sample line: name, optional {labels}, value (validated by lint).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)

_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitise a registry instrument name into an OpenMetrics one."""
    cleaned = _NAME_SANITISE.sub("_", name).strip("_")
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_openmetrics(snapshot: dict, meta: dict | None = None) -> str:
    """Render a registry snapshot document as OpenMetrics text.

    ``snapshot`` is what :meth:`MetricsRegistry.snapshot` returns (or a
    parsed ``metrics.json``; a ``meta`` key inside it is used when the
    ``meta`` argument is not given).  The result ends with the
    ``# EOF`` terminator the format requires.
    """
    lines: list[str] = []
    meta = meta if meta is not None else snapshot.get("meta")
    if meta:
        labels = ",".join(
            f'{key}="{_escape_label(str(value))}"'
            for key, value in sorted(meta.items())
            if value is not None and not isinstance(value, (dict, list))
        )
        lines.append("# TYPE repro_run info")
        lines.append("# HELP repro_run Run identity and environment metadata.")
        lines.append(f"repro_run_info{{{labels}}} 1")
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        metric = metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        for q_key, q_label in (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99")):
            if q_key in summary:
                lines.append(
                    f'{metric}{{quantile="{q_label}"}} '
                    f"{_format_value(summary[q_key])}"
                )
        lines.append(f"{metric}_count {summary.get('count', 0)}")
        total = summary.get("mean", 0.0) * summary.get("count", 0)
        lines.append(f"{metric}_sum {_format_value(total)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_textfile(path: str | Path, snapshot: dict, meta: dict | None = None) -> Path:
    """Write :func:`to_openmetrics` output to ``path`` (created parents)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_openmetrics(snapshot, meta))
    return path


def lint_openmetrics(text: str) -> list[str]:
    """Validate OpenMetrics text; returns a list of problems (empty = ok).

    Checks the invariants the textfile collector cares about: exactly one
    trailing ``# EOF``; every sample preceded by a ``# TYPE`` for its
    metric family; counter samples named ``*_total``; parseable values;
    well-formed label pairs; no duplicate TYPE declarations.
    """
    problems: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("missing '# EOF' terminator as the final line")
    types: dict[str, str] = {}
    for lineno, line in enumerate(lines, start=1):
        if not line:
            problems.append(f"line {lineno}: blank line")
            continue
        if line == "# EOF":
            if lineno != len(lines):
                problems.append(f"line {lineno}: '# EOF' before end of file")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "summary", "histogram", "info", "unknown",
            ):
                problems.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            name = parts[2]
            if not _NAME_RE.match(name):
                problems.append(f"line {lineno}: bad metric name {name!r}")
            if name in types:
                problems.append(f"line {lineno}: duplicate TYPE for {name}")
            types[name] = parts[3]
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            problems.append(f"line {lineno}: unknown comment form: {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        sample = match.group("name")
        family = next(
            (
                name
                for name in (
                    sample,
                    sample.removesuffix("_total"),
                    sample.removesuffix("_count"),
                    sample.removesuffix("_sum"),
                    sample.removesuffix("_info"),
                )
                if name in types
            ),
            None,
        )
        if family is None:
            problems.append(f"line {lineno}: sample {sample!r} has no TYPE")
            continue
        if types[family] == "counter" and not sample.endswith("_total"):
            problems.append(
                f"line {lineno}: counter sample {sample!r} must end '_total'"
            )
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(f"line {lineno}: bad value {value!r}")
        labels = match.group("labels")
        if labels:
            for pair in _split_labels(labels):
                if not _LABEL_RE.match(pair):
                    problems.append(f"line {lineno}: bad label pair {pair!r}")
    return problems


def _split_labels(labels: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    out: list[str] = []
    depth_quote = False
    current = []
    escaped = False
    for ch in labels:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            depth_quote = not depth_quote
            current.append(ch)
            continue
        if ch == "," and not depth_quote:
            out.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        out.append("".join(current))
    return out
