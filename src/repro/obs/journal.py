"""The durable run journal — an append-only JSONL event log per run.

``metrics.json`` answers *how many*; the journal answers *which unit,
why, where, and how slow*.  Every ``repro study``/``clean``/``report``
writes an ``events.jsonl`` next to its artefacts: one JSON object per
line, schema-versioned, containing

* a ``run_start`` header (run id, git SHA, Python version, config hints)
  and a ``run_end`` footer (status, wall time);
* ``span_open``/``span_close`` pairs for every stage/detail/chunk span,
  carrying ``trace_id``/``span_id``/``parent_id`` so the stage tree is
  reconstructable from the flat stream even across worker processes;
* ``lineage`` records — per-trip/per-transition provenance (which
  Table 2 rule fired, which gates were crossed, match latency, route
  source, quarantine reason);
* operational events: ``quarantine``, ``retry``, ``fault_injected``,
  ``worker_restart``.

Instrumented code resolves the ambient journal via :func:`get_journal`
(a contextvar, like the metrics registry); without an orchestrator-bound
journal, emission is a no-op attribute check.  Worker processes buffer
events (:class:`BufferJournal`) into their chunk-local registry; the
executor replays them into the orchestrator's file in chunk order, so
the journal layout is deterministic for any worker count.

Reading is crash-tolerant: a truncated final line (the writing process
died mid-record) is dropped rather than failing the read, mirroring the
robust CSV ingest.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator

from repro.obs.context import RunContext, run_metadata

#: Journal line schema version (stamped into the ``run_start`` header).
JOURNAL_SCHEMA_VERSION = 1

#: Compact encoder for the hot emit path.  A ``default=`` hook would
#: force :mod:`json` off its C fast path for *every* event, so the
#: ``repr`` fallback is applied only when an event actually contains a
#: non-serialisable value.
_ENCODE_FAST = json.JSONEncoder(separators=(",", ":")).encode


def _encode_event(event: dict) -> str:
    try:
        return _ENCODE_FAST(event)
    except (TypeError, ValueError):
        return json.dumps(event, separators=(",", ":"), default=repr)

#: Event kinds a conforming journal may contain (``tools/validate_journal.py``
#: rejects anything else).
EVENT_KINDS = frozenset({
    "run_start",
    "run_end",
    "span_open",
    "span_close",
    "lineage",
    "quarantine",
    "retry",
    "fault_injected",
    "worker_restart",
    "cache",
    "store",
    "note",
    # Streaming service (repro.stream): micro-batch progress, trip
    # lifecycle, checkpoint/resume and dead-letter provenance.
    "stream.batch",
    "stream.trip_open",
    "stream.trip_close",
    "stream.window_close",
    "stream.checkpoint",
    "stream.resume",
    "stream.dead_letter",
})


class Journal:
    """No-op base journal; also the disabled default."""

    #: Emission guard: call sites skip building event payloads when False.
    enabled: bool = False

    def emit(self, kind: str, **fields) -> None:  # noqa: ARG002 - no-op base
        pass

    def close(self, status: str = "ok") -> None:  # noqa: ARG002 - no-op base
        pass


#: Shared disabled journal (the ambient default).
NULL_JOURNAL = Journal()


class FileJournal(Journal):
    """Append-only JSONL journal for one run.

    Writes the ``run_start`` header immediately (flushed) so a crashed
    run still leaves an identifiable journal.  Events are block-buffered
    — one flush per buffer, not per line, keeping the overhead gate in
    ``tools/bench_compare.py`` honest — so a hard crash can lose the
    buffered tail; the flush boundary cuts at worst mid-line, which
    :func:`read_journal` tolerates (truncated final line).  Events are
    stamped with a wall-clock ``ts`` and a monotonically increasing
    ``i`` sequence number.
    """

    enabled = True

    def __init__(
        self,
        path: str | Path,
        run: RunContext | None = None,
        extra_meta: dict | None = None,
    ) -> None:
        self.path = Path(path)
        self.run = run
        self._seq = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream: IO[str] | None = self.path.open("w")
        self._t0 = time.time()
        header = {"journal_schema": JOURNAL_SCHEMA_VERSION, **run_metadata(run)}
        if extra_meta:
            header.update(extra_meta)
        self.emit("run_start", **header)
        self._stream.flush()

    def emit(self, kind: str, **fields) -> None:
        stream = self._stream
        if stream is None:
            return
        event = {"kind": kind, "i": self._seq, "ts": round(time.time(), 6)}
        if self.run is not None:
            event["run_id"] = self.run.run_id
        event.update(fields)
        self._seq += 1
        try:
            stream.write(_encode_event(event) + "\n")
        except ValueError:
            # Closed-stream writes must never take the pipeline down.
            self._stream = None

    def close(self, status: str = "ok") -> None:
        if self._stream is None:
            return
        self.emit("run_end", status=status, wall_seconds=round(time.time() - self._t0, 6))
        self._stream.close()
        self._stream = None

    def __enter__(self) -> "FileJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(status="ok" if exc_type is None else "error")


class BufferJournal(Journal):
    """In-memory journal used inside pool workers.

    Events accumulate into ``buffer`` (typically the chunk registry's
    ``events`` list) and travel back to the orchestrator with the chunk
    results, which replays them into its own journal in chunk order.
    """

    enabled = True

    def __init__(self, buffer: list | None = None) -> None:
        self.buffer: list[dict] = buffer if buffer is not None else []

    def emit(self, kind: str, **fields) -> None:
        self.buffer.append({"kind": kind, "ts": round(time.time(), 6), **fields})


_active_journal: ContextVar[Journal | None] = ContextVar("repro_obs_journal", default=None)


def get_journal() -> Journal:
    """The ambient journal instrumented code emits into."""
    journal = _active_journal.get()
    return journal if journal is not None else NULL_JOURNAL


def set_journal(journal: Journal | None) -> None:
    """Bind ``journal`` as ambient for the current context (no scope)."""
    _active_journal.set(journal)


def clear_journal() -> None:
    """Drop any ambient binding (worker initialiser hook)."""
    _active_journal.set(None)


@contextmanager
def use_journal(journal: Journal) -> Iterator[Journal]:
    """Scope ``journal`` as ambient; restores the previous one on exit."""
    token = _active_journal.set(journal)
    try:
        yield journal
    finally:
        _active_journal.reset(token)


# -- reading -----------------------------------------------------------------


def read_journal(path: str | Path) -> list[dict]:
    """Load a journal back into event dicts, tolerating a write crash.

    A truncated or corrupt *final* line — the writer died mid-record —
    is silently dropped.  Corruption earlier in the file raises
    ``ValueError`` (that is damage, not an interrupted write).
    """
    lines = Path(path).read_text().splitlines()
    events: list[dict] = []
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            if index == len(lines) - 1:
                break  # interrupted final write: keep the valid prefix
            raise ValueError(
                f"{path}: corrupt journal line {index + 1} (not the final line)"
            ) from None
        if isinstance(event, dict):
            events.append(event)
    return events


# -- span-tree reconstruction ------------------------------------------------


@dataclass
class SpanNode:
    """One reconstructed span of a journal's trace."""

    name: str
    span_id: str
    parent_id: str | None = None
    span_kind: str = "stage"
    seconds: float | None = None  # None: span never closed (crash)
    children: list["SpanNode"] = field(default_factory=list)

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "seconds": self.seconds, "kind": self.span_kind}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


def reconstruct_spans(events: list[dict]) -> list[SpanNode]:
    """Rebuild the span forest of a journal from its flat event stream.

    Children keep journal order (deterministic: chunk-ordered replay).
    Detail spans appear as a single self-contained ``span_close`` (no
    open event) and become leaf nodes in place.  Spans whose parent
    never appears become roots — that happens only when a journal is
    truncated below the parent's ``span_open``.
    """
    nodes: dict[str, SpanNode] = {}
    order: list[SpanNode] = []
    for event in events:
        kind = event.get("kind")
        if kind == "span_open":
            node = SpanNode(
                name=str(event.get("name", "?")),
                span_id=str(event.get("span_id", "")),
                parent_id=event.get("parent_id"),
                span_kind=str(event.get("span_kind", "stage")),
            )
            if node.span_id:
                nodes[node.span_id] = node
            order.append(node)
        elif kind == "span_close":
            node = nodes.get(str(event.get("span_id", "")))
            if node is not None:
                node.seconds = event.get("seconds")
            else:
                # Self-contained close (a detail span): node in place.
                node = SpanNode(
                    name=str(event.get("name", "?")),
                    span_id=str(event.get("span_id", "")),
                    parent_id=event.get("parent_id"),
                    span_kind=str(event.get("span_kind", "detail")),
                    seconds=event.get("seconds"),
                )
                if node.span_id:
                    nodes[node.span_id] = node
                order.append(node)
    roots: list[SpanNode] = []
    for node in order:
        parent = nodes.get(node.parent_id) if node.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


def structural_signature(
    roots: list[SpanNode], collapse_kinds: tuple[str, ...] = ("chunk",)
) -> tuple:
    """Scheduling-independent shape of a span forest.

    Returns nested ``(name, (children...))`` tuples with ids and timings
    stripped.  Spans whose kind is in ``collapse_kinds`` (the executor's
    synthetic per-chunk spans) are spliced out, their children promoted
    in place — which is exactly the serial tree, since chunk replay is
    input-ordered.  Equality of two signatures is the acceptance check
    that a 4-worker run traced the same work as a serial one.
    """

    def signature(node: SpanNode) -> tuple:
        return (node.name, expand(node.children))

    def expand(children: list[SpanNode]) -> tuple:
        out: list[tuple] = []
        for child in children:
            if child.span_kind in collapse_kinds:
                out.extend(expand(child.children))
            else:
                out.append(signature(child))
        return tuple(out)

    return expand(roots)


def lineage_records(
    events: list[dict],
    unit: str | None = None,
    unit_id: int | None = None,
) -> list[dict]:
    """The journal's ``lineage`` events, optionally filtered.

    ``unit`` is ``"trip"`` or ``"transition"``; ``unit_id`` matches the
    record's ``trip_id``/``segment_id``/``transition_index`` — any hit
    keeps the record, so a bare id query works without knowing which
    stage produced the record.
    """
    out: list[dict] = []
    for event in events:
        if event.get("kind") != "lineage":
            continue
        if unit is not None and event.get("unit") != unit:
            continue
        if unit_id is not None and unit_id not in (
            event.get("trip_id"),
            event.get("segment_id"),
            event.get("transition_index"),
        ):
            continue
        out.append(event)
    return out
