"""Process-local metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is a named bag of instruments the pipeline
stages write into while they run; :meth:`MetricsRegistry.snapshot` /
:meth:`MetricsRegistry.to_json` turn the run into one machine-readable
document (this is what ``repro study --metrics-out`` writes).

Instrumented code never holds a registry — it calls :func:`get_registry`
at use time, which resolves the ambient registry (a :class:`contextvars`
binding, so concurrent studies in different contexts do not mix).
Orchestrators isolate a run with::

    registry = MetricsRegistry()
    with use_registry(registry):
        ...run the pipeline...
    print(registry.to_json())

A registry created with ``enabled=False`` hands out no-op instruments,
reducing instrumentation to a dictionary lookup.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins value (sizes, per-stage seconds, ratios)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming distribution: count/mean/min/max exactly, quantiles from
    a bounded reservoir (deterministic replacement, no RNG)."""

    __slots__ = ("name", "max_samples", "count", "total", "min", "max", "_samples")

    def __init__(self, name: str, max_samples: int = 4096) -> None:
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            # Deterministic Knuth-hash slot: long-run uniform coverage
            # without random state (keeps study runs reproducible).
            self._samples[(self.count * 2654435761) % self.max_samples] = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (exact count/mean/min/max; reservoir
        thinned deterministically when the union exceeds ``max_samples``)."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        combined = self._samples + other._samples
        if len(combined) > self.max_samples:
            # Evenly strided subsample: depends only on the merge order,
            # so merging worker registries in chunk order is reproducible.
            step = len(combined) / self.max_samples
            combined = [combined[int(i * step)] for i in range(self.max_samples)]
        self._samples = combined

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class _NullCounter(Counter):
    def inc(self, amount: int = 1) -> None:  # noqa: ARG002 - intentional no-op
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Named counters/gauges/histograms plus completed stage-span trees."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.spans: list = []  # completed root SpanRecords, in finish order
        # Journal events buffered by a worker process (see
        # repro.obs.journal.BufferJournal).  Deliberately NOT part of
        # snapshot() or merge(): the executor replays them into the
        # orchestrator's journal in chunk order and then drops them —
        # folding them into merged counters/spans would double-count.
        self.events: list[dict] = []

    # -- instrument access (get-or-create) ---------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, max_samples)
        return instrument

    def record_span(self, record) -> None:
        """Called by :mod:`repro.obs.tracing` when a root span finishes."""
        if self.enabled:
            self.spans.append(record)

    # -- merging ------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's instruments into this one.

        Used to combine worker-local registries into the orchestrator's:
        counters sum, gauges keep the merged (last-written) value,
        histograms merge exactly for count/mean/min/max and
        deterministically for quantiles, and the other registry's root
        spans are appended.  Merging the same sequence of registries in
        the same order always yields the same snapshot, so chunked
        parallel runs stay reproducible.  Returns ``self`` for chaining.
        """
        for name, counter in sorted(other._counters.items()):
            self.counter(name).inc(counter.value)
        for name, gauge in sorted(other._gauges.items()):
            self.gauge(name).set(gauge.value)
        for name, histogram in sorted(other._histograms.items()):
            self.histogram(name, histogram.max_samples).merge(histogram)
        if self.enabled:
            self.spans.extend(other.spans)
        return self

    # -- export -------------------------------------------------------------

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.spans.clear()
        self.events.clear()

    def snapshot(self) -> dict:
        """The whole registry as one JSON-serialisable document."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
            "spans": [s.to_dict() for s in self.spans],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)


#: Fallback registry used when no ``use_registry`` scope is active.  It is
#: enabled (cheap: counters are plain attribute adds) so ad-hoc library use
#: still accumulates numbers a caller can inspect via ``get_registry()``.
_global_registry = MetricsRegistry()

_active_registry: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_obs_registry"
)


def get_registry() -> MetricsRegistry:
    """The ambient registry instrumented code writes into."""
    registry = _active_registry.get(None)
    return registry if registry is not None else _global_registry


def set_registry(registry: MetricsRegistry) -> None:
    """Bind ``registry`` as ambient for the current context (no scope)."""
    _active_registry.set(registry)


def clear_registry() -> None:
    """Drop any ambient binding; :func:`get_registry` falls back global.

    A forked worker process inherits the parent's contextvar state, so
    instrumented code would write into a copy of the parent's registry
    that nobody ever snapshots.  Worker initialisers call this (via
    :func:`repro.obs.reset_worker_state`) before binding their own
    registry.
    """
    _active_registry.set(None)


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as ambient; restores the previous one on exit."""
    token = _active_registry.set(registry)
    try:
        yield registry
    finally:
        _active_registry.reset(token)
