"""Stage tracing — nested wall-time spans feeding the metrics registry.

:class:`span` is both a context manager and a decorator::

    with span("match"):
        with span("candidates"):
            ...

    @span("extract")
    def extract(...): ...

Spans nest per thread: a span opened inside another becomes its child,
building a stage tree.  When a *root* span closes, its finished
:class:`SpanRecord` tree is attached to the ambient registry
(:func:`repro.obs.get_registry`), and every span also feeds a
``stage.<name>.seconds`` histogram so repeated stages get latency
quantiles for free.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import get_registry


@dataclass
class SpanRecord:
    """One finished (or running) stage timing node."""

    name: str
    duration_s: float = 0.0
    children: list["SpanRecord"] = field(default_factory=list)

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "seconds": round(self.duration_s, 6)}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def find(self, name: str) -> "SpanRecord | None":
        """Depth-first lookup of a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


class _SpanStack(threading.local):
    def __init__(self) -> None:
        self.stack: list[SpanRecord] = []


_stack = _SpanStack()


def current_span() -> SpanRecord | None:
    """The innermost open span of this thread, if any."""
    return _stack.stack[-1] if _stack.stack else None


def reset_span_stack() -> None:
    """Forget any open spans of this thread.

    A worker process forked while the parent was inside a span inherits
    those open frames; spans the worker then finishes would attach to a
    phantom parent and never reach a registry.  Worker initialisers call
    this (via :func:`repro.obs.reset_worker_state`) so worker spans are
    roots again.
    """
    _stack.stack.clear()


class span:
    """Time a stage; use as ``with span("x"):`` or ``@span("x")``."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.record: SpanRecord | None = None
        self._t0 = 0.0

    def __enter__(self) -> SpanRecord:
        self.record = SpanRecord(name=self.name)
        _stack.stack.append(self.record)
        self._t0 = time.perf_counter()
        return self.record

    def __exit__(self, exc_type, exc, tb) -> None:
        record = self.record
        assert record is not None
        record.duration_s = time.perf_counter() - self._t0
        stack = _stack.stack
        if record in stack:
            # Normally ``record`` is the top frame; anything above it means
            # the stack desynchronised (e.g. reset_span_stack raced a fork)
            # and those stale frames are dropped with it.
            del stack[stack.index(record):]
        registry = get_registry()
        registry.histogram(f"stage.{record.name}.seconds").observe(record.duration_s)
        if stack:
            stack[-1].children.append(record)
        else:
            registry.record_span(record)
        self.record = None

    def __call__(self, fn):
        name = self.name

        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            with span(name):
                return fn(*args, **kwargs)

        return wrapped
