"""Stage tracing — nested wall-time spans feeding the metrics registry.

:class:`span` is both a context manager and a decorator::

    with span("match"):
        with span("candidates"):
            ...

    @span("extract")
    def extract(...): ...

Spans nest per thread: a span opened inside another becomes its child,
building a stage tree.  When a *root* span closes, its finished
:class:`SpanRecord` tree is attached to the ambient registry
(:func:`repro.obs.get_registry`), and every span also feeds a
``stage.<name>.seconds`` histogram so repeated stages get latency
quantiles for free.

Two orthogonal extensions serve the run journal:

* **identity** — when a journal is bound (:func:`repro.obs.get_journal`)
  each span draws a ``span_id``, inherits the run's ``trace_id`` and
  resolves its ``parent_id`` from the enclosing span — or, at stack
  bottom inside a worker, from the cross-process parent installed by
  :func:`repro.obs.context.use_parent_span` — and emits
  ``span_open``/``span_close`` journal events.  Without a journal none
  of this runs and a span costs what it did before.
* **detail spans** — ``span(name, detail=True)`` times one *unit* of a
  stage (one trip cleaned, one route matched).  Detail spans feed the
  ``stage.<name>.seconds`` histogram and the journal but never enter the
  thread's span stack, so they cannot appear in the registry's stage
  tree (tests pin that tree's exact shape) and cost nothing when no
  journal is bound beyond the histogram observation.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field

from repro.obs.context import current_parent_span_id, current_run, new_span_id
from repro.obs.journal import get_journal
from repro.obs.metrics import get_registry


@dataclass
class SpanRecord:
    """One finished (or running) stage timing node."""

    name: str
    duration_s: float = 0.0
    children: list["SpanRecord"] = field(default_factory=list)
    # Trace identity (populated only while a journal is bound; never part
    # of to_dict(), whose exact shape is pinned by tests and metrics.json).
    span_id: str | None = None
    trace_id: str | None = None
    parent_id: str | None = None

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "seconds": round(self.duration_s, 6)}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def find(self, name: str) -> "SpanRecord | None":
        """Depth-first lookup of a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


class _SpanStack(threading.local):
    def __init__(self) -> None:
        self.stack: list[SpanRecord] = []


_stack = _SpanStack()

#: Optional profiler hook: an object with ``span_opened(name)`` /
#: ``span_closed(name)`` methods, called from the opening thread for
#: every span (stage and detail).  None when no profiler is attached.
_span_observer = None


def set_span_observer(observer) -> None:
    """Install (or with ``None`` remove) the global span observer."""
    global _span_observer
    _span_observer = observer


def current_span() -> SpanRecord | None:
    """The innermost open span of this thread, if any."""
    return _stack.stack[-1] if _stack.stack else None


def reset_span_stack() -> None:
    """Forget any open spans of this thread.

    A worker process forked while the parent was inside a span inherits
    those open frames; spans the worker then finishes would attach to a
    phantom parent and never reach a registry.  Worker initialisers call
    this (via :func:`repro.obs.reset_worker_state`) so worker spans are
    roots again.
    """
    _stack.stack.clear()


class span:
    """Time a stage; use as ``with span("x"):`` or ``@span("x")``.

    ``detail=True`` marks a per-unit span (kept out of the stage tree,
    see module docstring); ``kind`` overrides the journal ``span_kind``
    (the executor uses ``"chunk"`` for its synthetic per-chunk spans);
    ``attrs`` are extra fields inlined into the span's journal event
    (unit ids, chunk indices).  Stage spans emit an open/close event
    pair; detail spans emit one self-contained ``span_close``.
    """

    def __init__(
        self,
        name: str,
        detail: bool = False,
        kind: str | None = None,
        attrs: dict | None = None,
    ) -> None:
        self.name = name
        self.detail = detail
        self.kind = kind if kind is not None else ("detail" if detail else "stage")
        self.attrs = attrs
        self.record: SpanRecord | None = None
        self._journal = None
        self._t0 = 0.0

    def __enter__(self) -> SpanRecord:
        record = SpanRecord(name=self.name)
        journal = get_journal()
        if journal.enabled:
            self._journal = journal
            stack = _stack.stack
            record.span_id = new_span_id()
            run = current_run()
            record.trace_id = run.trace_id if run is not None else None
            if stack:
                record.parent_id = stack[-1].span_id
            else:
                record.parent_id = current_parent_span_id()
            if not self.detail:
                journal.emit(
                    "span_open",
                    name=record.name,
                    span_id=record.span_id,
                    parent_id=record.parent_id,
                    trace_id=record.trace_id,
                    span_kind=self.kind,
                    **(self.attrs or {}),
                )
        if not self.detail:
            _stack.stack.append(record)
        observer = _span_observer
        if observer is not None:
            observer.span_opened(record.name)
        self.record = record
        self._t0 = time.perf_counter()
        return record

    def __exit__(self, exc_type, exc, tb) -> None:
        record = self.record
        assert record is not None
        record.duration_s = time.perf_counter() - self._t0
        registry = get_registry()
        registry.histogram(f"stage.{record.name}.seconds").observe(record.duration_s)
        observer = _span_observer
        if observer is not None:
            observer.span_closed(record.name)
        journal = self._journal
        if journal is not None:
            if self.detail:
                # Detail spans are leaves timing one unit; a single
                # self-contained close event (identity + attrs + timing)
                # halves their journal traffic vs an open/close pair.
                journal.emit(
                    "span_close",
                    name=record.name,
                    span_id=record.span_id,
                    parent_id=record.parent_id,
                    trace_id=record.trace_id,
                    span_kind=self.kind,
                    seconds=round(record.duration_s, 6),
                    status="ok" if exc_type is None else "error",
                    **(self.attrs or {}),
                )
            else:
                journal.emit(
                    "span_close",
                    name=record.name,
                    span_id=record.span_id,
                    seconds=round(record.duration_s, 6),
                    status="ok" if exc_type is None else "error",
                )
            self._journal = None
        if not self.detail:
            stack = _stack.stack
            if record in stack:
                # Normally ``record`` is the top frame; anything above it means
                # the stack desynchronised (e.g. reset_span_stack raced a fork)
                # and those stale frames are dropped with it.
                del stack[stack.index(record):]
            if stack:
                stack[-1].children.append(record)
            else:
                registry.record_span(record)
        self.record = None

    def __call__(self, fn):
        name, detail, kind, attrs = self.name, self.detail, self.kind, self.attrs

        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            with span(name, detail=detail, kind=kind, attrs=attrs):
                return fn(*args, **kwargs)

        return wrapped
