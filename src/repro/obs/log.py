"""Structured logging for the pipeline.

Every repro module logs through a child of the ``repro`` root logger
(:func:`get_logger`), so one :func:`configure` call controls the whole
pipeline.  Two output modes:

* human mode (default) — ``HH:MM:SS LEVEL logger message k=v ...``;
* JSON mode — one JSON object per line (``ts``, ``level``, ``logger``,
  ``event`` plus any ``extra={...}`` fields), ready for ingestion.

Until :func:`configure` is called nothing below WARNING is emitted, so
library users who never opt in pay only a disabled-level check.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

#: Name of the package root logger every repro logger hangs under.
ROOT_LOGGER = "repro"

#: Handler name used to find/replace our handler on re-configuration.
_HANDLER_NAME = "repro-obs"

#: Belt-and-braces ownership marker set as an attribute on our handlers.
#: Handler *names* are mutable (``logging.Handler.set_name``) and shared
#: test fixtures have been seen renaming handlers; re-configuration must
#: still replace ours rather than stack a second stream.
_OWNED_ATTR = "_repro_obs_owned"

#: Attributes present on every LogRecord; anything else came via ``extra``.
_RESERVED = frozenset(
    vars(logging.LogRecord("", 0, "", 0, "", (), None)).keys()
) | {"message", "asctime", "taskName"}


def _extra_fields(record: logging.LogRecord) -> dict:
    return {
        k: v
        for k, v in record.__dict__.items()
        if k not in _RESERVED and not k.startswith("_")
    }


class JsonFormatter(logging.Formatter):
    """One JSON object per log line; ``extra`` fields are inlined."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in _extra_fields(record).items():
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload)


class KeyValueFormatter(logging.Formatter):
    """Human-readable line with trailing ``key=value`` extras."""

    def format(self, record: logging.LogRecord) -> str:
        head = (
            f"{self.formatTime(record, '%H:%M:%S')} "
            f"{record.levelname:<7} {record.name} {record.getMessage()}"
        )
        extras = " ".join(f"{k}={v}" for k, v in _extra_fields(record).items())
        line = f"{head} {extras}" if extras else head
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def configure(
    level: int | str = "INFO",
    json_mode: bool = False,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """(Re)configure pipeline logging and return the root logger.

    Idempotent: calling again replaces the previous handler — matched by
    name *or* ownership marker, so replacement works even when an earlier
    call targeted a different stream or something renamed the handler —
    and closes it, so no log line is ever emitted twice and replaced
    streams are released.  Logs go to ``stream`` (default stderr, keeping
    stdout clean for artefacts and tables).
    """
    root = logging.getLogger(ROOT_LOGGER)
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level: {level!r}")
        level = resolved
    root.setLevel(level)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.set_name(_HANDLER_NAME)
    setattr(handler, _OWNED_ATTR, True)
    handler.setFormatter(JsonFormatter() if json_mode else KeyValueFormatter())
    for stale in [
        h
        for h in root.handlers
        if h.get_name() == _HANDLER_NAME or getattr(h, _OWNED_ATTR, False)
    ]:
        root.removeHandler(stale)
        try:
            stale.close()
        except (OSError, ValueError):  # pragma: no cover - stream already gone
            pass
    root.addHandler(handler)
    root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """Child logger under the ``repro`` root (``get_logger(__name__)``)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")
