"""Render run journals and metrics into the ``repro obs`` CLI outputs.

Four views over the artefacts a run leaves behind (``events.jsonl``,
``metrics.json``, tables):

* :func:`render_report` — one-screen run report: identity header, the
  Table 3 funnel as a waterfall, the reconstructed stage-timing tree,
  top-N slowest units, quarantine/retry/fault accounting;
* :func:`render_tail` — the last N journal events, one line each;
* :func:`render_trip` — everything the journal knows about one unit
  (lineage, detail spans, quarantine records) by trip/segment id;
* :func:`diff_runs` — artefact + counter comparison of two run
  directories, the acceptance check that two runs (say serial vs
  ``--workers 4``) produced the same science.

Everything here is pure text rendering over already-loaded data; the CLI
wiring lives in :mod:`repro.cli`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.journal import SpanNode, lineage_records, read_journal, reconstruct_spans

#: Counter prefixes whose values legitimately differ between equivalent
#: runs (scheduling artefacts: chunk counts, cache hit/miss splits per
#: process, pool restarts).  Mirrors the serial-vs-parallel equivalence
#: tests; everything else diverging means the runs did different science.
SCHEDULING_PREFIXES = ("parallel.", "routing.", "worker.")

#: Artefact files compared byte-wise by :func:`diff_runs` when present.
ARTEFACT_GLOBS = ("table*.txt", "fig*.txt", "errors.jsonl")


def run_meta(events: list[dict]) -> dict:
    """The journal's ``run_start`` header (empty dict if truncated away)."""
    for event in events:
        if event.get("kind") == "run_start":
            return event
    return {}


def run_status(events: list[dict]) -> dict | None:
    """The ``run_end`` footer, or ``None`` for a crashed/live run."""
    for event in reversed(events):
        if event.get("kind") == "run_end":
            return event
    return None


# -- run report --------------------------------------------------------------

_FUNNEL_STAGES = (
    ("trips ingested", "clean.trips_in"),
    ("segments cleaned", "clean.segments_out"),
    ("segments gate-crossing", "od.filtered_cleaned"),
    ("transitions (studied pairs)", "od.transitions_total"),
    ("within city centre", "od.within_centre"),
    ("post-filtered (kept)", "od.post_filter_kept"),
)


def _funnel_lines(counters: dict) -> list[str]:
    lines = ["Funnel (Table 3 waterfall):"]
    previous: int | None = None
    width = max(len(label) for label, _ in _FUNNEL_STAGES)
    for label, counter in _FUNNEL_STAGES:
        if counter not in counters:
            continue
        value = int(counters[counter])
        drop = "" if previous is None else f"  (-{previous - value})"
        bar = "#" * max(1, round(40 * value / max(1, int(counters[_FUNNEL_STAGES[0][1]]) or 1))) if value else ""
        lines.append(f"  {label:<{width}} {value:>7}{drop:<10} {bar}")
        previous = value
    quarantined = counters.get("trips.quarantined")
    if quarantined:
        lines.append(f"  {'quarantined units':<{width}} {int(quarantined):>7}")
    return lines if len(lines) > 1 else []


def _tree_lines(nodes: list[SpanNode], indent: int = 0) -> list[str]:
    lines: list[str] = []
    for node in nodes:
        seconds = "   never closed" if node.seconds is None else f"{node.seconds:9.3f}s"
        detail = ""
        if node.span_kind == "chunk":
            detail = "  [chunk]"
        lines.append(f"  {'  ' * indent}{node.name:<{28 - 2 * indent}} {seconds}{detail}")
        # Detail spans are numerous (one per unit); summarise instead of listing.
        stage_children = [c for c in node.children if c.span_kind != "detail"]
        detail_children = [c for c in node.children if c.span_kind == "detail"]
        lines.extend(_tree_lines(stage_children, indent + 1))
        if detail_children:
            closed = [c.seconds for c in detail_children if c.seconds is not None]
            total = sum(closed)
            lines.append(
                f"  {'  ' * (indent + 1)}"
                f"({len(detail_children)} {detail_children[0].name} spans, "
                f"{total:.3f}s total)"
            )
    return lines


def _detail_spans(events: list[dict]) -> list[dict]:
    """Closed detail spans (self-contained ``span_close`` events)."""
    return [
        event
        for event in events
        if event.get("kind") == "span_close"
        and event.get("span_kind") == "detail"
    ]


def _unit_label(event: dict) -> str:
    for key in ("trip_id", "segment_id", "transition_index", "row"):
        if event.get(key) is not None:
            return f"{key}={event[key]}"
    return "unit=?"


def render_report(
    events: list[dict], metrics: dict | None = None, top: int = 10
) -> str:
    """The one-screen run report ``repro obs report`` prints."""
    meta = run_meta(events)
    status = run_status(events)
    lines = ["Run report", "=========="]
    for key in ("run_id", "git_sha", "python", "command"):
        if meta.get(key):
            lines.append(f"{key:<9} {meta[key]}")
    if status is not None:
        lines.append(
            f"status    {status.get('status', '?')} "
            f"({status.get('wall_seconds', '?')}s wall)"
        )
    else:
        lines.append("status    incomplete (no run_end event — crashed or live)")
    lines.append("")

    counters = (metrics or {}).get("counters", {})
    funnel = _funnel_lines(counters)
    if funnel:
        lines.extend(funnel)
        lines.append("")

    roots = reconstruct_spans(events)
    if roots:
        lines.append("Stage tree (from journal spans):")
        lines.extend(_tree_lines(roots))
        lines.append("")

    details = _detail_spans(events)
    if details and top > 0:
        slowest = sorted(details, key=lambda d: -d.get("seconds", 0.0))[:top]
        lines.append(f"Slowest {len(slowest)} units:")
        for d in slowest:
            lines.append(
                f"  {d.get('seconds', 0.0):9.4f}s  {d.get('name', '?'):<16} "
                f"{_unit_label(d)}"
            )
        lines.append("")

    hmm_layers = counters.get("matching.hmm_layers")
    if hmm_layers:
        pairs = int(counters.get("matching.hmm_transition_pairs", 0))
        avoided = int(counters.get("matching.hmm_dijkstra_avoided", 0))
        lines.append("HMM batching:")
        lines.append(f"  layers decoded      {int(hmm_layers)}")
        lines.append(f"  transition pairs    {pairs} (batched per trip)")
        lines.append(f"  dijkstras avoided   {avoided} vs the scalar decoder")
        lines.append("")

    quarantines = [e for e in events if e.get("kind") == "quarantine"]
    retries = sum(1 for e in events if e.get("kind") == "retry")
    injected = sum(1 for e in events if e.get("kind") == "fault_injected")
    restarts = sum(1 for e in events if e.get("kind") == "worker_restart")
    if quarantines or retries or injected or restarts:
        lines.append("Degraded-mode accounting:")
        if quarantines:
            by_stage: dict[str, int] = {}
            for q in quarantines:
                by_stage[q.get("stage", "?")] = by_stage.get(q.get("stage", "?"), 0) + 1
            per_stage = ", ".join(f"{s}={n}" for s, n in sorted(by_stage.items()))
            lines.append(f"  quarantined   {len(quarantines)}  ({per_stage})")
        if retries:
            lines.append(f"  retries       {retries}")
        if injected:
            lines.append(f"  faults        {injected} injected")
        if restarts:
            lines.append(f"  pool restarts {restarts}")
        lines.append("")

    lineage = lineage_records(events)
    if lineage:
        lines.append(f"Lineage records: {len(lineage)} "
                     f"(query one with `repro obs trip <journal> <id>`)")
    return "\n".join(lines).rstrip() + "\n"


# -- tail --------------------------------------------------------------------


def _event_line(event: dict) -> str:
    kind = event.get("kind", "?")
    skip = {"kind", "i", "ts", "run_id"}
    fields = " ".join(
        f"{k}={event[k]}" for k in event if k not in skip and event[k] is not None
    )
    seq = event.get("i", "")
    return f"{seq:>6} {kind:<14} {fields}"


def render_tail(events: list[dict], n: int = 20) -> str:
    """The last ``n`` journal events, one formatted line each."""
    return "\n".join(_event_line(e) for e in events[-n:]) + "\n" if events else ""


# -- per-unit view -----------------------------------------------------------


def render_trip(events: list[dict], unit_id: int) -> str:
    """Everything the journal recorded about one trip/segment/transition."""
    lineage = lineage_records(events, unit_id=unit_id)
    quarantines = [
        e
        for e in events
        if e.get("kind") == "quarantine"
        and unit_id in (e.get("trip_id"), e.get("segment_id"), e.get("transition_index"))
    ]
    details = [
        d
        for d in _detail_spans(events)
        if unit_id in (d.get("trip_id"), d.get("segment_id"), d.get("transition_index"))
    ]
    if not lineage and not quarantines and not details:
        return f"no journal records for unit id {unit_id}\n"
    lines = [f"Unit {unit_id}", "--------"]
    for record in lineage:
        skip = {"kind", "i", "ts", "run_id"}
        fields = " ".join(
            f"{k}={record[k]}" for k in record if k not in skip and record[k] is not None
        )
        lines.append(f"lineage    {fields}")
    for d in details:
        lines.append(
            f"span       {d.get('name', '?')} {d.get('seconds', 0.0):.4f}s"
        )
    for q in quarantines:
        lines.append(
            f"quarantine stage={q.get('stage')} kind={q.get('qkind') or q.get('error_kind')} "
            f"message={q.get('message')!r}"
        )
    return "\n".join(lines) + "\n"


# -- run diff ----------------------------------------------------------------


@dataclass
class DiffResult:
    """Outcome of :func:`diff_runs`."""

    lines: list[str] = field(default_factory=list)
    divergent: bool = False

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def _comparable_counters(metrics: dict) -> dict:
    return {
        name: value
        for name, value in metrics.get("counters", {}).items()
        if not name.startswith(SCHEDULING_PREFIXES)
    }


def diff_runs(dir_a: str | Path, dir_b: str | Path) -> DiffResult:
    """Compare two run directories' artefacts and structural counters.

    Byte-compares every Table/figure artefact and ``errors.jsonl``, then
    the comparable (non-scheduling) counters of the two ``metrics.json``
    files.  Timings, ids and scheduling counters are out of scope — two
    runs *diverge* only if they produced different science.
    """
    dir_a, dir_b = Path(dir_a), Path(dir_b)
    result = DiffResult()
    names: list[str] = []
    for pattern in ARTEFACT_GLOBS:
        names.extend(
            sorted({p.name for p in (*dir_a.glob(pattern), *dir_b.glob(pattern))})
        )
    for name in names:
        a, b = dir_a / name, dir_b / name
        if not a.exists() or not b.exists():
            result.divergent = True
            missing = dir_a if not a.exists() else dir_b
            result.lines.append(f"DIFF {name}: missing in {missing}")
            continue
        if a.read_bytes() != b.read_bytes():
            result.divergent = True
            result.lines.append(f"DIFF {name}: contents differ")
        else:
            result.lines.append(f"  ok {name}")
    metrics_a, metrics_b = dir_a / "metrics.json", dir_b / "metrics.json"
    if metrics_a.exists() and metrics_b.exists():
        counters_a = _comparable_counters(json.loads(metrics_a.read_text()))
        counters_b = _comparable_counters(json.loads(metrics_b.read_text()))
        diverged = sorted(
            name
            for name in {*counters_a, *counters_b}
            if counters_a.get(name) != counters_b.get(name)
        )
        for name in diverged:
            result.divergent = True
            result.lines.append(
                f"DIFF counter {name}: "
                f"{counters_a.get(name)} != {counters_b.get(name)}"
            )
        if not diverged:
            result.lines.append(
                f"  ok metrics.json ({len(counters_a)} comparable counters)"
            )
    result.lines.append(
        "runs diverge" if result.divergent else "zero artefact divergence"
    )
    return result


def load_run(journal_path: str | Path) -> tuple[list[dict], dict | None]:
    """Load a journal plus its sibling ``metrics.json`` (if present)."""
    journal_path = Path(journal_path)
    events = read_journal(journal_path)
    metrics = None
    metrics_path = journal_path.parent / "metrics.json"
    if metrics_path.exists():
        metrics = json.loads(metrics_path.read_text())
    return events, metrics
