"""Run and trace identity — the context every span and journal event carries.

A *run* is one orchestrated execution (`repro study`, a library call to
:meth:`~repro.experiments.study.OuluStudy.run`, one CI bench).  Every run
gets a ``run_id``; every span within it carries the run's ``trace_id``
plus its own ``span_id``/``parent_id``, so the stage tree can be
reconstructed from a flat event stream even when spans were produced by
four worker processes.

Propagation across the process boundary uses a :class:`TraceCarrier`:
the orchestrator snapshots its context per chunk (with the chunk span as
the parent), ships the carrier with the chunk, and the worker activates
it before running — worker spans then re-parent under the orchestrator's
chunk span instead of becoming anonymous roots.

Identity never feeds a pipeline decision (ids are labels, not inputs),
so random ids do not threaten reproducibility; artefact comparisons
(`repro obs diff`) ignore them.
"""

from __future__ import annotations

import itertools
import os
import platform
import subprocess
import sys
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

#: Version of the journal/metrics metadata schema (bump on breaking
#: changes to event or meta layout; readers check it).
SCHEMA_VERSION = 1

#: Per-process prefix making span ids unique across a worker pool
#: without coordination; the suffix is a cheap local counter.
_PROC_PREFIX = uuid.uuid4().hex[:10]
_span_counter = itertools.count(1)


def _reseed_span_ids() -> None:
    """Give a forked child its own span-id prefix and counter.

    A fork-started pool worker inherits the parent's prefix *and*
    counter position, so every worker would mint the same ids — and
    colliding ids silently merge spans during journal reconstruction.
    """
    global _PROC_PREFIX, _span_counter
    _PROC_PREFIX = uuid.uuid4().hex[:10]
    _span_counter = itertools.count(1)


os.register_at_fork(after_in_child=_reseed_span_ids)


def new_run_id() -> str:
    """A fresh globally unique run id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh span id, unique across every process of a run."""
    return f"{_PROC_PREFIX}{next(_span_counter):08x}"


@dataclass(frozen=True)
class RunContext:
    """Identity of one run; picklable so workers can inherit it."""

    run_id: str
    trace_id: str

    @classmethod
    def create(cls) -> "RunContext":
        run_id = new_run_id()
        return cls(run_id=run_id, trace_id=run_id[:16])


@dataclass(frozen=True)
class TraceCarrier:
    """Trace context shipped across the process boundary with one chunk.

    ``parent_span_id`` is the orchestrator-side chunk span: worker spans
    opened at stack bottom adopt it as their parent, which is what makes
    a 4-worker journal reconstruct into the serial span tree.
    ``journal`` tells the worker whether to buffer journal events at all
    (no ambient journal in the orchestrator means buffering is waste).
    """

    run: RunContext | None = None
    parent_span_id: str | None = None
    journal: bool = False


_run_context: ContextVar[RunContext | None] = ContextVar("repro_obs_run", default=None)
_parent_span: ContextVar[str | None] = ContextVar("repro_obs_parent_span", default=None)


def current_run() -> RunContext | None:
    """The ambient run context, if an orchestrator installed one."""
    return _run_context.get()


def set_run_context(run: RunContext | None) -> None:
    """Bind ``run`` as ambient for the current context (no scope)."""
    _run_context.set(run)


@contextmanager
def use_run_context(run: RunContext) -> Iterator[RunContext]:
    """Scope ``run`` as ambient; restores the previous one on exit."""
    token = _run_context.set(run)
    try:
        yield run
    finally:
        _run_context.reset(token)


def current_parent_span_id() -> str | None:
    """Cross-process parent adopted by spans opened at stack bottom."""
    return _parent_span.get()


@contextmanager
def use_parent_span(span_id: str | None) -> Iterator[None]:
    """Scope the cross-process re-parenting target (worker side)."""
    token = _parent_span.set(span_id)
    try:
        yield
    finally:
        _parent_span.reset(token)


def reset_context() -> None:
    """Drop inherited run/parent bindings (worker initialiser hook)."""
    _run_context.set(None)
    _parent_span.set(None)


# -- run metadata ------------------------------------------------------------

_git_sha_cache: str | None = None


def git_sha() -> str:
    """The repo's HEAD commit, or ``"unknown"`` outside a git checkout."""
    global _git_sha_cache
    if _git_sha_cache is None:
        try:
            _git_sha_cache = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                cwd=Path(__file__).resolve().parent,
                check=True,
            ).stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _git_sha_cache = "unknown"
    return _git_sha_cache


def run_metadata(run: RunContext | None = None) -> dict:
    """The comparability header stamped into ``metrics.json``, the run
    journal and ``BENCH_*.json`` dumps: schema version, run identity,
    code version and interpreter — everything needed to decide whether
    two runs' numbers may be compared at all."""
    return {
        "schema_version": SCHEMA_VERSION,
        "run_id": run.run_id if run is not None else None,
        "trace_id": run.trace_id if run is not None else None,
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
