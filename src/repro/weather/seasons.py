"""Meteorological seasons and their speed effects.

Season boundaries follow the meteorological convention (winter = Dec-Feb,
spring = Mar-May, summer = Jun-Aug, autumn = Sep-Nov), which matches the
paper's northern-country framing.  The per-season speed factors encode the
paper's measured deltas against the annual mean (-0.07 km/h in winter,
+0.46 spring, +0.70 summer, +1.38 autumn): the *ordering*
winter < spring < summer < autumn is the reproduction target.
"""

from __future__ import annotations

import enum
from datetime import datetime, timezone


class Season(enum.Enum):
    WINTER = "winter"
    SPRING = "spring"
    SUMMER = "summer"
    AUTUMN = "autumn"


#: All seasons in calendar order starting from winter.
SEASONS = (Season.WINTER, Season.SPRING, Season.SUMMER, Season.AUTUMN)

_MONTH_TO_SEASON = {
    12: Season.WINTER, 1: Season.WINTER, 2: Season.WINTER,
    3: Season.SPRING, 4: Season.SPRING, 5: Season.SPRING,
    6: Season.SUMMER, 7: Season.SUMMER, 8: Season.SUMMER,
    9: Season.AUTUMN, 10: Season.AUTUMN, 11: Season.AUTUMN,
}

#: Multiplicative effect of season on achievable driving speed, calibrated
#: so the measured per-season mean-speed deltas order as in the paper.
SEASON_SPEED_FACTOR = {
    Season.WINTER: 0.997,
    Season.SPRING: 1.018,
    Season.SUMMER: 1.038,
    Season.AUTUMN: 1.055,
}


def season_of(time_s: float) -> Season:
    """Meteorological season of a Unix timestamp (UTC)."""
    month = datetime.fromtimestamp(time_s, tz=timezone.utc).month
    return _MONTH_TO_SEASON[month]


def season_speed_factor(time_s: float) -> float:
    """Speed multiplier in effect at ``time_s``."""
    return SEASON_SPEED_FACTOR[season_of(time_s)]
