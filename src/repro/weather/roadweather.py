"""FMI road-weather model substitute.

The paper obtains road-surface temperature from the FMI road weather model
(Kangas et al., 2006).  The substitute is a climatological model for Oulu:
a sinusoidal annual temperature cycle (coldest late January, warmest late
July) plus deterministic pseudo-random daily variation, classified into
the temperature bands Fig. 10 stratifies over.  It is deterministic in the
timestamp, so simulated trips and analysis code always agree on the
weather a trip was driven in.
"""

from __future__ import annotations

import hashlib
import math
from datetime import datetime, timezone

#: Temperature classes used for the Fig. 10 reproduction, ordered cold->warm.
TEMPERATURE_CLASSES = ("<=-10", "-10..0", "0..+10", ">+10")

#: Oulu climatology: annual mean and seasonal amplitude, degrees C.
_ANNUAL_MEAN_C = 3.0
_ANNUAL_AMPLITUDE_C = 14.5
#: Day of year of the temperature minimum (late January).
_COLDEST_DOY = 25
_DAILY_SIGMA_C = 4.0


class RoadWeatherModel:
    """Deterministic daily road temperature for the study area."""

    def __init__(self, seed: int = 2012) -> None:
        self.seed = seed

    def temperature_c(self, time_s: float) -> float:
        """Daily mean road temperature at a Unix timestamp."""
        dt = datetime.fromtimestamp(time_s, tz=timezone.utc)
        doy = dt.timetuple().tm_yday
        phase = 2.0 * math.pi * (doy - _COLDEST_DOY) / 365.25
        seasonal = _ANNUAL_MEAN_C - _ANNUAL_AMPLITUDE_C * math.cos(phase)
        return seasonal + self._daily_offset(dt.year, doy)

    def _daily_offset(self, year: int, doy: int) -> float:
        """Deterministic pseudo-random daily deviation in [-2.5σ, 2.5σ]."""
        digest = hashlib.sha256(f"{self.seed}:{year}:{doy}".encode()).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64  # uniform [0, 1)
        # Inverse-CDF-ish triangular shaping is enough for stratification.
        return (u - 0.5) * 2.0 * _DAILY_SIGMA_C

    def temperature_class(self, time_s: float) -> str:
        """The Fig. 10 temperature band at ``time_s``."""
        return temperature_class(self.temperature_c(time_s))

    def grip_factor(self, time_s: float) -> float:
        """Speed multiplier for slippery roads (1.0 above freezing).

        Mild by design: the paper found weather effects on low-speed share
        to be secondary to map features.
        """
        t = self.temperature_c(time_s)
        if t >= 0.0:
            return 1.0
        return max(0.9, 1.0 + 0.005 * t)  # -10 C -> 0.95


def temperature_class(temperature_c: float) -> str:
    """Band a temperature into the Fig. 10 classes."""
    if temperature_c <= -10.0:
        return TEMPERATURE_CLASSES[0]
    if temperature_c <= 0.0:
        return TEMPERATURE_CLASSES[1]
    if temperature_c <= 10.0:
        return TEMPERATURE_CLASSES[2]
    return TEMPERATURE_CLASSES[3]
