"""Weather substrate — seasons and the FMI road-weather substitute.

The paper stratifies speeds by season (Fig. 5) and by road-weather
temperature class from the FMI road weather model (Fig. 10).  We cannot
run the FMI model, so :mod:`repro.weather.roadweather` provides a
climatological substitute for Oulu: a seasonal temperature curve with
deterministic daily variation, classified into the same kind of
temperature bands.
"""

from repro.weather.roadweather import (
    TEMPERATURE_CLASSES,
    RoadWeatherModel,
    temperature_class,
)
from repro.weather.seasons import (
    SEASONS,
    SEASON_SPEED_FACTOR,
    Season,
    season_of,
    season_speed_factor,
)

__all__ = [
    "SEASONS",
    "SEASON_SPEED_FACTOR",
    "RoadWeatherModel",
    "Season",
    "TEMPERATURE_CLASSES",
    "season_of",
    "season_speed_factor",
    "temperature_class",
]
