"""The streaming micro-batch ingestion service.

Consumes route-point rows in arrival order and maintains per-taxi
incremental state: an open trip buffer, Table 2 segmentation rules
previewed on arrival, gate-crossing detection against the study gates,
and (optionally) a live serialisable
:class:`~repro.matching.MatcherState` fed fix by fix.  Closed trips fold
through the *same* stage functions the batch study runs —
``clean_trip_unit``, ``extract_segment``, ``match_task``,
``transition_route_stats`` and the Welford grid — in trip-id order, so a
replayed fleet produces artefacts byte-identical to ``repro study`` at
any micro-batch size (``tests/test_stream_equivalence.py``).

Ordering contract: the *first* row of each trip must arrive in
non-decreasing trip-id order (trip-major feeds, like the CSV layout,
satisfy this trivially).  A trip violating the contract is dead-lettered
through the Quarantine machinery (``stage="stream"``), never folded.
Stale open trips are closed once the event-time watermark passes their
last fix by ``trip_timeout_s``, which bounds the open-state memory.

With a checkpoint directory configured, the full service state — matcher
states, open buffers, window partials, folded aggregates and the error
ledger — is persisted content-addressed every ``checkpoint_every``
micro-batches; a killed service resumes from the latest checkpoint and
skips the already-ingested rows (``tests/test_stream_checkpoint.py``).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field

from repro.cleaning import CleaningPipeline, CleanResult
from repro.cleaning.filters import filter_segments
from repro.cleaning.pipeline import STAGES, CleaningReport
from repro.cleaning.segmentation import _stop_rule
from repro.faults import ErrorRateExceeded, Quarantine, TripError, inject_faults
from repro.faults import injector as _injector
from repro.faults.errors import ADVISORY_KINDS
from repro.features import GridAccumulator, cell_feature_counts
from repro.features.grid import CellStats
from repro.features.routestats import RouteStats, transition_route_stats
from repro.matching import HmmMatcher, IncrementalMatcher, MatcherState
from repro.obs import (
    MetricsRegistry,
    RunContext,
    current_run,
    get_journal,
    get_logger,
    get_registry,
    run_metadata,
    span,
    use_registry,
    use_run_context,
)
from repro.od import TransitionExtractor
from repro.od.transitions import FunnelRow
from repro.parallel import MatchTask, match_task, study_gates
from repro.roadnet import RouteCache, SyntheticCity, build_synthetic_oulu, make_routing_engine
from repro.stats import MixedModelResult, RandomInterceptModel
from repro.stream.checkpoint import CheckpointStore
from repro.stream.sources import open_source
from repro.experiments.study import StudyConfig
from repro.traces.io import _POINT_FIELDS, parse_point_row, row_trip_id
from repro.traces.model import RoutePoint, Trip

_log = get_logger(__name__)


@dataclass(frozen=True)
class StreamConfig:
    """Everything configurable about the streaming service."""

    #: The study parameters the stream must reproduce exactly (city,
    #: grid, transition, matcher, robustness, faults).  The executor's
    #: pool settings are ignored — streaming folds are inherently serial
    #: — but its vectorize/routing switches apply.
    study: StudyConfig = field(default_factory=StudyConfig)
    #: Input path (CSV, growing CSV, or fifo) for :func:`open_source`.
    input: str | None = None
    mode: str = "replay"                 # replay | tail | fifo
    batch_size: int = 64                 # rows per micro-batch
    #: Event-time watermark lag that closes a stale open trip.
    trip_timeout_s: float = 1800.0
    #: Width of the windowed aggregates (event time, seconds).
    window_s: float = 86_400.0
    #: Checkpoint every N micro-batches (0 disables checkpointing).
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    #: Feed open trips through a live :class:`MatcherState` on arrival
    #: (observational — final artefacts always come from the fold).
    live_match: bool = False
    #: Tail mode: stop after this long without input growth.
    idle_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.mode not in ("replay", "tail", "fifo"):
            raise ValueError("mode must be replay, tail or fifo")
        if self.checkpoint_every and self.checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")

    def fingerprint(self) -> str:
        """Identity of everything that shapes artefacts (resume guard)."""
        return repr((self.study, self.window_s, self.live_match))


@dataclass
class _OpenTrip:
    """Per-taxi incremental state while a trip is still open."""

    trip_id: int
    car_id: int
    points: list[RoutePoint] = field(default_factory=list)
    last_event_s: float = 0.0
    prev_xy: tuple[float, float] | None = None
    #: Table 2 rules previewed on arrival: ``{rule: hits}``.
    rule_preview: dict[int, int] = field(default_factory=dict)
    #: Gate names whose road the raw track crossed so far.
    gates_crossed: list[str] = field(default_factory=list)
    #: Live matcher state (``live_match`` only).
    matcher_state: MatcherState | None = None


@dataclass
class StreamResult:
    """What one service run folded — duck-typed to the table renderers.

    ``repro.experiments.tables``/``rendering`` consume ``clean``,
    ``funnel``, ``grid``, ``cell_features`` and ``stats_by_direction()``
    exactly as they do on a :class:`~repro.experiments.study.StudyResult`.
    Matched routes are deliberately *not* retained (bounded memory), so
    the figure generators that need them are batch-only.
    """

    config: StreamConfig
    city: SyntheticCity
    clean: CleanResult
    funnel: list[FunnelRow]
    route_stats: list[RouteStats]
    grid: GridAccumulator
    cell_features: dict
    mixed: MixedModelResult | None
    #: Closed window summaries in window order (event-time aggregates).
    windows: list[dict]
    #: Quarantined units in the batch reader's category order (io rows,
    #: empty trips, non-monotonic advisories, clean, match, then
    #: stream-only dead letters) — ``errors.jsonl`` content.
    errors: list[TripError] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    rows_ingested: int = 0
    trips_seen: int = 0
    transitions_total: int = 0
    kept_count: int = 0
    checkpoints_written: int = 0

    def stats_by_direction(self) -> dict[str, list[RouteStats]]:
        out: dict[str, list[RouteStats]] = {}
        for s in self.route_stats:
            out.setdefault(s.direction, []).append(s)
        return out


class StreamService:
    """Micro-batch ingestion over the batch study's stage functions."""

    def __init__(self, config: StreamConfig | None = None) -> None:
        self.config = config or StreamConfig()

    # -- lifecycle ----------------------------------------------------------

    def run(
        self,
        rows=None,
        run_context: RunContext | None = None,
        resume: bool = True,
        stop_after_checkpoints: int | None = None,
    ) -> StreamResult | None:
        """Consume the source to exhaustion and return the folded result.

        ``rows`` overrides the configured source with any iterator of
        ``(row_index, row_dict)`` pairs (the differential tests drive
        this directly).  With ``resume`` and a checkpoint directory, the
        latest checkpoint is restored first and already-ingested rows are
        skipped.  ``stop_after_checkpoints`` ends the run right after
        writing that many checkpoints *in this process* and returns
        ``None`` — the in-process half of the kill/resume tests (the
        other half is the fault plan's ``kill_chunk["stream"]`` hard
        kill).
        """
        config = self.config
        run_ctx = run_context or current_run() or RunContext.create()
        registry = MetricsRegistry()
        started = time.time()
        with use_run_context(run_ctx), use_registry(registry), \
                inject_faults(config.study.faults), span("stream"):
            self._build()
            start_index = 0
            if resume and config.checkpoint_dir is not None:
                start_index = self._try_resume()
            if rows is None:
                if config.input is None:
                    raise ValueError("no input configured and no rows given")
                rows = open_source(
                    config.mode, config.input,
                    start_index=start_index,
                    idle_timeout_s=config.idle_timeout_s,
                )
            result = self._consume(rows, start_index, stop_after_checkpoints)
            if result is None:
                return None
        ended = time.time()
        result.metrics = registry.snapshot()
        result.metrics["meta"] = {
            **run_metadata(run_ctx),
            "started": round(started, 3),
            "ended": round(ended, 3),
            "wall_seconds": round(ended - started, 3),
        }
        return result

    def _build(self) -> None:
        """Construct the per-run machinery and zeroed fold state."""
        study = self.config.study
        with span("build_city"):
            self.city = build_synthetic_oulu(study.city)
        projector = self.city.projector

        def to_xy(p):
            return projector.to_xy(p.lat, p.lon)

        self._to_xy = to_xy
        self._gates = study_gates(self.city)
        self._extractor = TransitionExtractor(
            self._gates, self.city.central_area, study.transition,
            vectorized=study.executor.vectorized,
        )
        self._pipeline = CleaningPipeline(
            vectorized=study.executor.vectorized,
            robustness=study.robustness,
        )
        self._route_cache = RouteCache(
            study.executor.route_cache_size,
            study.executor.route_cache_path,
        )
        engine = make_routing_engine(
            self.city.graph,
            study.executor.routing_engine,
            weight="length",
            ch_artifact=study.executor.ch_artifact_path,
        )
        if study.matcher == "hmm":
            self._matcher = HmmMatcher(
                self.city.graph, route_cache=self._route_cache,
                routing_engine=engine,
                vectorized=study.executor.vectorized,
                batch_routing=study.executor.batch_routing,
                vectorized_viterbi=study.executor.vectorized_viterbi,
            )
        else:
            self._matcher = IncrementalMatcher(
                self.city.graph, route_cache=self._route_cache,
                routing_engine=engine,
                vectorized=study.executor.vectorized,
                batch_routing=study.executor.batch_routing,
            )
        #: Dedicated live matcher (feed-only; no gap fill, no counters).
        self._live_matcher = IncrementalMatcher(
            self.city.graph, vectorized=study.executor.vectorized
        )
        self._checkpoints = (
            CheckpointStore(self.config.checkpoint_dir)
            if self.config.checkpoint_dir is not None else None
        )

        # Ingest state.
        self._rows_ingested = 0
        self._watermark = float("-inf")
        self._batch_seq = 0
        self._checkpoint_seq = 0
        self._truncated = False
        self._open: dict[int, _OpenTrip] = {}
        self._pending: dict[int, _OpenTrip] = {}
        self._retired: set[int] = set()
        self._dead: set[int] = set()
        self._max_opened = float("-inf")
        self._valid_trip_ids: set[int] = set()
        self._damaged_trip_ids: set[int] = set()

        # Fold state (mirrors the batch study's artefact accumulators).
        self._report = CleaningReport()
        self._stage_s = dict.fromkeys(STAGES, 0.0)
        self._next_segment_id = 1
        self._transition_count = 0
        self._kept_count = 0
        self._trips_folded = 0
        self._per_car: dict[int, dict[str, int]] = {}
        self._post_per_car: dict[int, int] = {}
        self._route_stats: list[RouteStats] = []
        self._grid = GridAccumulator(self.config.study.grid)
        self._speeds: list[float] = []
        self._cells: list = []
        self._windows_open: dict[int, dict] = {}
        self._windows_closed: list[dict] = []
        #: Closed windows by index, so an event-time straggler folds into
        #: the already-closed entry (a late firing) instead of opening a
        #: duplicate.
        self._windows_closed_by_index: dict[int, dict] = {}

        # Error ledger, held per batch-reader category so the final
        # errors.jsonl matches the batch layout regardless of the order
        # things actually happened in.
        self._io_q = Quarantine()
        self._q = Quarantine()
        self._io_errors: list[TripError] = []
        self._nonmono_errors: list[TripError] = []
        self._clean_errors: list[TripError] = []
        self._match_errors: list[TripError] = []
        self._stream_errors: list[TripError] = []

    # -- ingest -------------------------------------------------------------

    def _consume(
        self, rows, start_index: int, stop_after_checkpoints: int | None
    ) -> StreamResult | None:
        config = self.config
        self._rows_ingested = max(self._rows_ingested, start_index)
        registry = get_registry()
        journal = get_journal()
        wrote_here = 0
        batch_rows = 0
        for index, row in rows:
            self._ingest_row(index, row)
            self._rows_ingested = index + 1
            batch_rows += 1
            registry.counter("stream.rows_in").inc()
            if self._truncated:
                break
            if batch_rows >= config.batch_size:
                self._batch_seq += 1
                registry.counter("stream.batches").inc()
                self._close_stale()
                self._fold_ready()
                if journal.enabled:
                    journal.emit(
                        "stream.batch",
                        batch_seq=self._batch_seq,
                        rows=batch_rows,
                        rows_ingested=self._rows_ingested,
                        open_trips=len(self._open),
                        watermark=self._watermark
                        if self._watermark != float("-inf") else None,
                    )
                batch_rows = 0
                if (
                    config.checkpoint_every
                    and self._batch_seq % config.checkpoint_every == 0
                ):
                    self._write_checkpoint()
                    wrote_here += 1
                    if (
                        stop_after_checkpoints is not None
                        and wrote_here >= stop_after_checkpoints
                    ):
                        return None
        return self._finalize(wrote_here)

    def _ingest_row(self, index: int, row: dict) -> None:
        """One raw CSV row — the exact per-row logic of the batch reader."""
        if _injector.truncate_at(index):
            error = TripError(
                stage="io", kind="truncated_file",
                message=f"input truncated before row {index}",
                row=index, fault_tag="injected:io",
            )
            self._io_q.add(error)
            self._io_errors.append(error)
            self._truncated = True
            return
        fault_tag = None
        corrupted = _injector.corrupt_row(index, row)
        if corrupted is not None:
            row = corrupted
            fault_tag = "injected:io"
        try:
            point = parse_point_row(row)
        except ValueError as exc:
            get_registry().counter("io.rows_quarantined").inc()
            trip_id = row_trip_id(row)
            if trip_id is not None:
                self._damaged_trip_ids.add(trip_id)
            error = TripError(
                stage="io", kind=str(exc).split(":", 1)[0],
                message=str(exc), trip_id=trip_id, row=index,
                fault_tag=fault_tag,
            )
            self._io_q.add(error)
            self._io_errors.append(error)
            return
        self._accept(point, int(row["car_id"]))

    def _dead_letter(self, trip_id: int, kind: str, message: str) -> None:
        error = TripError(stage="stream", kind=kind, message=message,
                          trip_id=trip_id)
        self._q.add(error)
        self._stream_errors.append(error)
        self._dead.add(trip_id)
        get_registry().counter("stream.dead_letters").inc()
        journal = get_journal()
        if journal.enabled:
            # ``reason_kind``, not ``kind``: emit() kwargs merge into the
            # event record, whose own ``kind`` is the event name.
            journal.emit(
                "stream.dead_letter", trip_id=trip_id, reason_kind=kind
            )

    def _accept(self, point: RoutePoint, car_id: int) -> None:
        """Route one parsed fix into its per-taxi incremental state."""
        self._watermark = max(self._watermark, point.time_s)
        trip_id = point.trip_id
        if trip_id in self._dead:
            get_registry().counter("stream.dead_letter_rows").inc()
            return
        open_trip = self._open.get(trip_id)
        if open_trip is None:
            pending = self._pending.pop(trip_id, None)
            if pending is not None:
                # Late data for a timeout-closed but not-yet-folded trip:
                # reopen, nothing was lost.
                self._open[trip_id] = open_trip = pending
            elif trip_id in self._retired:
                self._dead_letter(
                    trip_id, "late_data",
                    f"trip {trip_id}: fix arrived after the trip was folded",
                )
                return
            elif trip_id < self._max_opened:
                self._dead_letter(
                    trip_id, "out_of_order_trip",
                    f"trip {trip_id}: first fix arrived after trip "
                    f"{int(self._max_opened)} opened (ordering contract)",
                )
                return
            else:
                open_trip = _OpenTrip(trip_id=trip_id, car_id=car_id)
                if self.config.live_match:
                    open_trip.matcher_state = self._live_matcher.begin(
                        segment_id=0, car_id=car_id
                    )
                self._open[trip_id] = open_trip
                self._max_opened = trip_id
                self._valid_trip_ids.add(trip_id)
                journal = get_journal()
                if journal.enabled:
                    journal.emit("stream.trip_open", trip_id=trip_id,
                                 car_id=car_id)
        registry = get_registry()
        prev = open_trip.points[-1] if open_trip.points else None
        open_trip.points.append(point)
        open_trip.last_event_s = max(open_trip.last_event_s, point.time_s)
        # On-arrival Table 2 rule preview (observational — the fold's
        # two-round segmentation is authoritative).
        if prev is not None:
            seg_config = self._pipeline.segmentation_config
            rule = _stop_rule(prev, point, seg_config, seg_config.rule1_window_s)
            if rule:
                open_trip.rule_preview[rule] = open_trip.rule_preview.get(rule, 0) + 1
                registry.counter("stream.rule_preview").inc()
        # On-arrival gate-crossing detection on the raw track.
        xy = self._to_xy(point)
        if open_trip.prev_xy is not None:
            for gate in self._gates:
                if gate.crossed_by(open_trip.prev_xy, xy):
                    registry.counter("stream.gate_crossings").inc()
                    if gate.name not in open_trip.gates_crossed:
                        open_trip.gates_crossed.append(gate.name)
        open_trip.prev_xy = xy
        if open_trip.matcher_state is not None:
            self._live_matcher.feed(open_trip.matcher_state, point, self._to_xy)
            registry.counter("stream.live_points").inc()

    # -- trip lifecycle -----------------------------------------------------

    def _close_stale(self) -> None:
        timeout = self.config.trip_timeout_s
        for trip_id in [
            t for t, o in self._open.items()
            if self._watermark - o.last_event_s > timeout
        ]:
            self._close(trip_id, reason="timeout")

    def _close(self, trip_id: int, reason: str) -> None:
        open_trip = self._open.pop(trip_id)
        self._pending[trip_id] = open_trip
        get_registry().counter("stream.trips_closed").inc()
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "stream.trip_close",
                trip_id=trip_id,
                reason=reason,
                points=len(open_trip.points),
                gates_crossed=list(open_trip.gates_crossed),
                rule_preview={
                    str(r): n for r, n in sorted(open_trip.rule_preview.items())
                },
                live_matched=len(open_trip.matcher_state.decided)
                if open_trip.matcher_state is not None else None,
            )

    def _fold_ready(self) -> None:
        """Fold every pending trip no earlier trip can still preempt."""
        frontier = min(self._open) if self._open else None
        ready = sorted(
            t for t in self._pending if frontier is None or t < frontier
        )
        for trip_id in ready:
            self._fold_trip(self._pending.pop(trip_id))

    # -- the fold (the batch study's stages, one trip at a time) ------------

    def _window_of(self, time_s: float) -> int:
        return int(time_s // self.config.window_s)

    def _window(self, index: int) -> dict:
        closed = self._windows_closed_by_index.get(index)
        if closed is not None:
            # Late data for a closed window: the feed's trip ids are not
            # event-time ordered (car-major replay), so folds can lag the
            # watermark by days.  Update the closed aggregate in place —
            # ``windows.jsonl`` reports final values either way.
            get_registry().counter("stream.window_late_folds").inc()
            return closed
        return self._windows_open.setdefault(index, {
            "window": index,
            "start_s": index * self.config.window_s,
            "end_s": (index + 1) * self.config.window_s,
            "trips": 0, "points": 0, "quarantined": 0, "segments": 0,
            "transitions": 0, "kept": 0, "speed_sum": 0.0, "speed_n": 0,
        })

    def _close_windows(self, all_windows: bool = False) -> None:
        # A window is final once the watermark has passed its end by the
        # trip timeout AND no buffered trip still starts inside it — a
        # straggler that opened near the window edge must fold into its
        # start window, never into a reopened duplicate.
        horizon = self._watermark - self.config.trip_timeout_s
        buffered = [
            t.points[0].time_s
            for t in (*self._open.values(), *self._pending.values())
            if t.points
        ]
        if buffered:
            horizon = min(horizon, min(buffered))
        journal = get_journal()
        registry = get_registry()
        for index in sorted(self._windows_open):
            window = self._windows_open[index]
            if not all_windows and window["end_s"] > horizon:
                continue
            del self._windows_open[index]
            self._windows_closed.append(window)
            self._windows_closed_by_index[index] = window
            registry.counter("stream.windows_closed").inc()
            if journal.enabled:
                journal.emit("stream.window_close", **window)

    def _fold_trip(self, open_trip: _OpenTrip) -> None:
        trip_id = open_trip.trip_id
        self._retired.add(trip_id)
        self._trips_folded += 1
        get_registry().counter("stream.trips_folded").inc()
        points = open_trip.points
        window = self._window(self._window_of(points[0].time_s))
        window["trips"] += 1
        window["points"] += len(points)
        # Batch-reader advisory: regressing point ids (kept; repaired).
        ids = [p.point_id for p in points]
        if any(b <= a for a, b in zip(ids, ids[1:])):
            error = TripError(
                stage="io", kind="non_monotonic_ids",
                message=f"trip {trip_id}: point ids not strictly "
                        "increasing (kept; ordering repair applies)",
                trip_id=trip_id,
            )
            self._io_q.add(error)
            self._nonmono_errors.append(error)
        trip = Trip(trip_id=trip_id, car_id=open_trip.car_id,
                    points=list(points))
        report = self._report
        report.trips_in += 1
        report.points_in += len(points)
        trip_result = self._pipeline.clean_trip_unit(trip)
        journal = get_journal()
        if isinstance(trip_result, TripError):
            self._q.add(trip_result)
            self._clean_errors.append(trip_result)
            report.errors.append(trip_result)
            window["quarantined"] += 1
            if journal.enabled:
                journal.emit(
                    "lineage", unit="trip", trip_id=trip_id,
                    disposition="quarantined", stage=trip_result.stage,
                    reason=trip_result.kind, fault_tag=trip_result.fault_tag,
                )
            self._close_windows()
            return
        if journal.enabled:
            journal.emit(
                "lineage", unit="trip", trip_id=trip_id,
                disposition="cleaned",
                segments=len(trip_result.segments),
                reordered=trip_result.reordered,
                duplicates_removed=trip_result.duplicates_removed,
                outliers_removed=trip_result.outliers_removed,
                out_of_bounds_removed=trip_result.out_of_bounds_removed,
                rules={
                    rule: hits
                    for rule, hits in sorted(
                        trip_result.segmentation.rule_hits.items()
                    )
                    if hits
                },
            )
        if trip_result.reordered:
            report.reordered_trips += 1
            report.reordering_saved_m += trip_result.reordering_saved_m
        report.duplicates_removed += trip_result.duplicates_removed
        report.outliers_removed += trip_result.outliers_removed
        report.out_of_bounds_removed += trip_result.out_of_bounds_removed
        report.segmentation.merge(trip_result.segmentation)
        for stage, seconds in trip_result.stage_seconds.items():
            self._stage_s[stage] += seconds
        # Fleet-sequential ids before the segment filter, as in the batch
        # fold (dropped segments consume ids too).
        for segment in trip_result.segments:
            segment.segment_id = self._next_segment_id
            self._next_segment_id += 1
        kept_segs, dropped_short, dropped_long = filter_segments(
            trip_result.segments, self._pipeline.filter_config
        )
        report.segments_dropped_short += dropped_short
        report.segments_dropped_long += dropped_long
        report.segments_out += len(kept_segs)
        report.points_out += sum(len(s.points) for s in kept_segs)
        window["segments"] += len(kept_segs)
        for seg in kept_segs:
            self._fold_segment(seg, window)
        self._close_windows()

    def _fold_segment(self, seg, window: dict) -> None:
        study = self.config.study
        extraction = self._extractor.extract_segment(seg, self._to_xy)
        stats = self._per_car.setdefault(
            extraction.car_id,
            {"total": 0, "filtered": 0, "transitions": 0, "centre": 0},
        )
        registry = get_registry()
        journal = get_journal()
        stats["total"] += 1
        registry.counter("od.segments_total").inc()
        transition = extraction.transition
        if journal.enabled:
            journal.emit(
                "lineage", unit="segment",
                segment_id=seg.segment_id,
                car_id=extraction.car_id,
                gate_crossed=extraction.crossed,
                direction=transition.direction if transition else None,
                within_centre=bool(transition.within_centre)
                if transition else False,
            )
        if not extraction.crossed:
            return
        stats["filtered"] += 1
        registry.counter("od.filtered_cleaned").inc()
        if transition is None:
            return
        stats["transitions"] += 1
        registry.counter("od.transitions_total").inc()
        if not transition.within_centre:
            return
        stats["centre"] += 1
        registry.counter("od.within_centre").inc()
        index = self._transition_count
        self._transition_count += 1
        window["transitions"] += 1
        task = MatchTask(
            index=index,
            points=tuple(transition.points()),
            segment_id=seg.segment_id,
            car_id=seg.car_id,
            origin=transition.origin,
            destination=transition.destination,
        )
        outcome = match_task(
            self._matcher, self._to_xy, self._extractor.gates_by_name,
            study.transition, task, robustness=study.robustness,
        )
        if journal.enabled:
            journal.emit(
                "lineage", unit="transition",
                transition_index=index,
                segment_id=seg.segment_id,
                car_id=seg.car_id,
                direction=transition.direction,
                matched=outcome.route is not None,
                kept=bool(outcome.kept),
                match_seconds=round(outcome.elapsed_s, 6),
                route_source=outcome.route_source,
                quarantined=outcome.error is not None,
            )
        if outcome.error is not None:
            self._q.add(outcome.error)
            self._match_errors.append(outcome.error)
        if outcome.route is None:
            transition.post_filtered_ok = False
            return
        transition.post_filtered_ok = outcome.kept
        if not outcome.kept:
            return
        self._kept_count += 1
        self._post_per_car[seg.car_id] = self._post_per_car.get(seg.car_id, 0) + 1
        window["kept"] += 1
        self._route_stats.append(
            transition_route_stats(
                transition, outcome.route, self.city.graph, self.city.map_db
            )
        )
        for m in outcome.route.matched:
            key = self._grid.add_point(m.snapped_xy, m.point.speed_kmh)
            self._speeds.append(m.point.speed_kmh)
            self._cells.append(key)
            window["speed_sum"] += m.point.speed_kmh
            window["speed_n"] += 1

    # -- finalisation -------------------------------------------------------

    def _finalize(self, wrote_here: int) -> StreamResult:
        study = self.config.study
        for trip_id in list(self._open):
            self._close(trip_id, reason="eof")
        self._fold_ready()
        assert not self._pending, "fold frontier left pending trips"
        self._close_windows(all_windows=True)
        # Batch-reader tail: trips whose every row was malformed.
        empty_errors: list[TripError] = []
        for trip_id in sorted(self._damaged_trip_ids - self._valid_trip_ids):
            error = TripError(
                stage="io", kind="empty_trip",
                message=f"trip {trip_id}: every row was malformed",
                trip_id=trip_id,
            )
            self._io_q.add(error)
            empty_errors.append(error)
        errors = (
            list(self._io_errors) + empty_errors + list(self._nonmono_errors)
            + list(self._clean_errors) + list(self._match_errors)
            + list(self._stream_errors)
        )
        # Degraded-mode verdict over the same populations as the batch
        # study: trips ingested + transitions matched; io records are
        # reported but never counted (the reader quarantine is separate
        # there too).
        max_rate = (
            study.robustness.max_error_rate
            if study.robustness is not None else None
        )
        counted = [
            e for e in (
                self._clean_errors + self._match_errors + self._stream_errors
            )
            if e.kind not in ADVISORY_KINDS
        ]
        total_units = len(self._valid_trip_ids) + self._transition_count
        if max_rate is not None:
            rate = len(counted) / max(1, total_units)
            if rate > max_rate:
                raise ErrorRateExceeded(rate, max_rate, errors)
        self._report.stage_seconds = dict(self._stage_s)
        self._pipeline._publish(self._report)
        funnel = [
            FunnelRow(
                car_id=car,
                total_segments=s["total"],
                filtered_cleaned=s["filtered"],
                transitions_total=s["transitions"],
                within_centre=s["centre"],
                post_filtered=self._post_per_car.get(car, 0),
            )
            for car, s in sorted(self._per_car.items())
        ]
        with span("features"):
            cell_features = cell_feature_counts(
                study.grid, self.city.map_db, self.city.graph,
                list(self._grid.cells()),
            )
        mixed: MixedModelResult | None = None
        with span("mixed_model"):
            if len(set(self._cells)) >= 3 and len(self._speeds) >= 10:
                mixed = RandomInterceptModel().fit(self._speeds, self._cells)
        if study.executor.route_cache_path is not None:
            self._route_cache.save()
        _log.info(
            "stream drained",
            extra={
                "rows": self._rows_ingested,
                "trips": self._trips_folded,
                "transitions": self._transition_count,
                "kept": self._kept_count,
                "errors": len(errors),
            },
        )
        return StreamResult(
            config=self.config,
            city=self.city,
            clean=CleanResult(segments=[], report=self._report),
            funnel=funnel,
            route_stats=list(self._route_stats),
            grid=self._grid,
            cell_features=cell_features,
            mixed=mixed,
            windows=sorted(self._windows_closed, key=lambda w: w["window"]),
            errors=errors,
            rows_ingested=self._rows_ingested,
            trips_seen=len(self._valid_trip_ids),
            transitions_total=self._transition_count,
            kept_count=self._kept_count,
            checkpoints_written=wrote_here,
        )

    # -- checkpoints --------------------------------------------------------

    def _write_checkpoint(self) -> None:
        self._checkpoint_seq += 1
        payload = self._checkpoint_payload()
        self._checkpoints.write(payload)
        plan = _injector.active_plan()
        if plan is not None and plan.kill_chunk.get("stream") == self._checkpoint_seq:
            # The chaos plan kills the service right after this
            # checkpoint lands — exactly like an OOM/SIGKILL, so the
            # resume path is what the crash tests actually exercise.
            os._exit(1)

    @staticmethod
    def _point_rows(points: list[RoutePoint]) -> list[list]:
        return [[getattr(p, name) for name in _POINT_FIELDS] for p in points]

    @staticmethod
    def _points_from_rows(rows: list[list]) -> list[RoutePoint]:
        return [RoutePoint(**dict(zip(_POINT_FIELDS, row))) for row in rows]

    def _open_trip_payload(self, open_trip: _OpenTrip) -> dict:
        return {
            "trip_id": open_trip.trip_id,
            "car_id": open_trip.car_id,
            "points": self._point_rows(open_trip.points),
            "last_event_s": open_trip.last_event_s,
            "prev_xy": list(open_trip.prev_xy)
            if open_trip.prev_xy is not None else None,
            "rule_preview": {
                str(r): n for r, n in sorted(open_trip.rule_preview.items())
            },
            "gates_crossed": list(open_trip.gates_crossed),
            "matcher_state": open_trip.matcher_state.to_payload()
            if open_trip.matcher_state is not None else None,
        }

    def _open_trip_from_payload(self, doc: dict) -> _OpenTrip:
        return _OpenTrip(
            trip_id=doc["trip_id"],
            car_id=doc["car_id"],
            points=self._points_from_rows(doc["points"]),
            last_event_s=doc["last_event_s"],
            prev_xy=tuple(doc["prev_xy"]) if doc["prev_xy"] is not None else None,
            rule_preview={int(r): n for r, n in doc["rule_preview"].items()},
            gates_crossed=list(doc["gates_crossed"]),
            matcher_state=MatcherState.from_payload(doc["matcher_state"])
            if doc["matcher_state"] is not None else None,
        )

    def _checkpoint_payload(self) -> dict:
        report = self._report
        return {
            "fingerprint": self.config.fingerprint(),
            "checkpoint_seq": self._checkpoint_seq,
            "batch_seq": self._batch_seq,
            "rows_ingested": self._rows_ingested,
            "watermark": self._watermark
            if self._watermark != float("-inf") else None,
            "truncated": self._truncated,
            "max_opened": int(self._max_opened)
            if self._max_opened != float("-inf") else None,
            "valid_trip_ids": sorted(self._valid_trip_ids),
            "damaged_trip_ids": sorted(self._damaged_trip_ids),
            "retired": sorted(self._retired),
            "dead": sorted(self._dead),
            "trips_folded": self._trips_folded,
            "next_segment_id": self._next_segment_id,
            "transition_count": self._transition_count,
            "kept_count": self._kept_count,
            "open": [
                self._open_trip_payload(self._open[t])
                for t in sorted(self._open)
            ],
            "pending": [
                self._open_trip_payload(self._pending[t])
                for t in sorted(self._pending)
            ],
            "report": {
                "trips_in": report.trips_in,
                "points_in": report.points_in,
                "reordered_trips": report.reordered_trips,
                "reordering_saved_m": report.reordering_saved_m,
                "duplicates_removed": report.duplicates_removed,
                "outliers_removed": report.outliers_removed,
                "out_of_bounds_removed": report.out_of_bounds_removed,
                "rule_hits": {
                    str(r): n
                    for r, n in sorted(report.segmentation.rule_hits.items())
                },
                "segments_created": report.segmentation.segments_created,
                "trips_processed": report.segmentation.trips_processed,
                "segments_dropped_short": report.segments_dropped_short,
                "segments_dropped_long": report.segments_dropped_long,
                "segments_out": report.segments_out,
                "points_out": report.points_out,
                "stage_seconds": dict(self._stage_s),
            },
            "per_car": {
                str(car): stats for car, stats in sorted(self._per_car.items())
            },
            "post_per_car": {
                str(car): n for car, n in sorted(self._post_per_car.items())
            },
            "route_stats": [asdict(s) for s in self._route_stats],
            # Grid cells in insertion order with their per-cell speed
            # sequences: restore replays the exact Welford adds.
            "grid": [
                {"key": list(key), "speeds": self._grid.speeds(key)}
                for key in self._grid.cells()
            ],
            "speeds": list(self._speeds),
            "cells": [list(key) for key in self._cells],
            "windows_open": [
                self._windows_open[i] for i in sorted(self._windows_open)
            ],
            "windows_closed": list(self._windows_closed),
            "errors": {
                "io": [e.to_dict() for e in self._io_errors],
                "nonmono": [e.to_dict() for e in self._nonmono_errors],
                "clean": [e.to_dict() for e in self._clean_errors],
                "match": [e.to_dict() for e in self._match_errors],
                "stream": [e.to_dict() for e in self._stream_errors],
            },
        }

    def _try_resume(self) -> int:
        """Restore the latest checkpoint; returns the next row index."""
        payload = self._checkpoints.latest()
        if payload is None:
            return 0
        if payload["fingerprint"] != self.config.fingerprint():
            raise ValueError(
                "checkpoint was written under a different stream/study "
                "configuration; refusing to resume"
            )
        self._checkpoint_seq = payload["checkpoint_seq"]
        self._batch_seq = payload["batch_seq"]
        self._rows_ingested = payload["rows_ingested"]
        self._watermark = (
            payload["watermark"] if payload["watermark"] is not None
            else float("-inf")
        )
        self._truncated = payload["truncated"]
        self._max_opened = (
            payload["max_opened"] if payload["max_opened"] is not None
            else float("-inf")
        )
        self._valid_trip_ids = set(payload["valid_trip_ids"])
        self._damaged_trip_ids = set(payload["damaged_trip_ids"])
        self._retired = set(payload["retired"])
        self._dead = set(payload["dead"])
        self._trips_folded = payload["trips_folded"]
        self._next_segment_id = payload["next_segment_id"]
        self._transition_count = payload["transition_count"]
        self._kept_count = payload["kept_count"]
        self._open = {
            doc["trip_id"]: self._open_trip_from_payload(doc)
            for doc in payload["open"]
        }
        self._pending = {
            doc["trip_id"]: self._open_trip_from_payload(doc)
            for doc in payload["pending"]
        }
        doc = payload["report"]
        report = self._report
        report.trips_in = doc["trips_in"]
        report.points_in = doc["points_in"]
        report.reordered_trips = doc["reordered_trips"]
        report.reordering_saved_m = doc["reordering_saved_m"]
        report.duplicates_removed = doc["duplicates_removed"]
        report.outliers_removed = doc["outliers_removed"]
        report.out_of_bounds_removed = doc["out_of_bounds_removed"]
        report.segmentation.rule_hits = {
            int(r): n for r, n in doc["rule_hits"].items()
        }
        report.segmentation.segments_created = doc["segments_created"]
        report.segmentation.trips_processed = doc["trips_processed"]
        report.segments_dropped_short = doc["segments_dropped_short"]
        report.segments_dropped_long = doc["segments_dropped_long"]
        report.segments_out = doc["segments_out"]
        report.points_out = doc["points_out"]
        self._stage_s.update(doc["stage_seconds"])
        self._per_car = {
            int(car): dict(stats)
            for car, stats in payload["per_car"].items()
        }
        self._post_per_car = {
            int(car): n for car, n in payload["post_per_car"].items()
        }
        self._route_stats = [RouteStats(**d) for d in payload["route_stats"]]
        for cell in payload["grid"]:
            key = tuple(cell["key"])
            stats = CellStats()
            for speed in cell["speeds"]:
                stats.add(speed)
            self._grid._cells[key] = stats
            self._grid._speeds[key] = list(cell["speeds"])
        self._speeds = list(payload["speeds"])
        self._cells = [tuple(key) for key in payload["cells"]]
        self._windows_open = {
            doc["window"]: dict(doc) for doc in payload["windows_open"]
        }
        self._windows_closed = [dict(d) for d in payload["windows_closed"]]
        self._windows_closed_by_index = {
            w["window"]: w for w in self._windows_closed
        }
        errors = payload["errors"]
        self._io_errors = [TripError(**d) for d in errors["io"]]
        self._nonmono_errors = [TripError(**d) for d in errors["nonmono"]]
        self._clean_errors = [TripError(**d) for d in errors["clean"]]
        self._match_errors = [TripError(**d) for d in errors["match"]]
        self._stream_errors = [TripError(**d) for d in errors["stream"]]
        report.errors = list(self._clean_errors)
        get_registry().counter("stream.resumes").inc()
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "stream.resume",
                checkpoint_seq=self._checkpoint_seq,
                rows_ingested=self._rows_ingested,
                open_trips=len(self._open),
                trips_folded=self._trips_folded,
            )
        _log.info(
            "resumed from checkpoint",
            extra={"checkpoint_seq": self._checkpoint_seq,
                   "rows_ingested": self._rows_ingested,
                   "open_trips": len(self._open)},
        )
        return self._rows_ingested


__all__ = ["StreamConfig", "StreamResult", "StreamService"]
