"""Row sources for the streaming service.

A source is an iterator of ``(row_index, row_dict)`` pairs over the
route-point CSV schema (``car_id`` + the seven point fields).  Three
modes cover the ``repro serve --input`` contract:

* ``replay`` — read an existing CSV front to back (the differential-test
  and benchmark mode: the stream sees exactly what ``repro study`` sees);
* ``tail`` — follow a growing CSV, polling for complete appended lines
  and stopping after ``idle_timeout_s`` without new data;
* ``fifo`` — read a named pipe until the writer closes it.

Row indices are the 0-based data-row positions (header excluded), which
is what checkpoints record as ``rows_ingested`` — a resumed service
skips every index below the checkpoint, giving exactly-once folding.
"""

from __future__ import annotations

import csv
import io
import time
from pathlib import Path
from typing import Iterator

RowStream = Iterator[tuple[int, dict]]

#: Poll interval while tailing a quiet file.
_TAIL_POLL_S = 0.05


def replay_rows(path: str | Path, start_index: int = 0) -> RowStream:
    """Replay an existing CSV; yields data rows from ``start_index`` on."""
    with Path(path).open(newline="", encoding="utf-8", errors="replace") as f:
        reader = csv.DictReader(f)
        for index, row in enumerate(reader):
            if index < start_index:
                continue
            yield index, row


def _parse_line(header: list[str], line: str) -> dict:
    """One CSV line -> row dict against ``header`` (tail/fifo modes)."""
    values = next(csv.reader(io.StringIO(line)))
    row = dict.fromkeys(header)
    row.update(zip(header, values))
    return row


def tail_rows(
    path: str | Path,
    start_index: int = 0,
    idle_timeout_s: float = 5.0,
    poll_s: float = _TAIL_POLL_S,
) -> RowStream:
    """Follow a growing CSV, yielding complete appended data rows.

    Only newline-terminated lines are consumed — a half-written tail is
    left in place and retried on the next poll, so a row is never parsed
    torn.  Stops after ``idle_timeout_s`` with no growth (the feed went
    quiet), which bounds the service's lifetime in tests.
    """
    path = Path(path)
    header: list[str] | None = None
    index = 0
    offset = 0
    idle_since = time.monotonic()
    buffer = ""
    while True:
        try:
            with path.open("r", encoding="utf-8", errors="replace") as f:
                f.seek(offset)
                chunk = f.read()
        except FileNotFoundError:
            chunk = ""
        if chunk:
            offset += len(chunk.encode("utf-8", errors="replace"))
            buffer += chunk
            idle_since = time.monotonic()
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                line = line.rstrip("\r")
                if not line:
                    continue
                if header is None:
                    header = next(csv.reader(io.StringIO(line)))
                    continue
                row = _parse_line(header, line)
                if index >= start_index:
                    yield index, row
                index += 1
        elif time.monotonic() - idle_since >= idle_timeout_s:
            return
        else:
            time.sleep(poll_s)


def fifo_rows(path: str | Path, start_index: int = 0) -> RowStream:
    """Read a named pipe (blocks until a writer connects, ends on EOF)."""
    with Path(path).open(newline="", encoding="utf-8", errors="replace") as f:
        reader = csv.DictReader(f)
        for index, row in enumerate(reader):
            if index < start_index:
                continue
            yield index, row


def open_source(
    mode: str,
    path: str | Path,
    start_index: int = 0,
    idle_timeout_s: float = 5.0,
) -> RowStream:
    """Dispatch on the ``repro serve --mode`` value."""
    if mode == "replay":
        return replay_rows(path, start_index)
    if mode == "tail":
        return tail_rows(path, start_index, idle_timeout_s=idle_timeout_s)
    if mode == "fifo":
        return fifo_rows(path, start_index)
    raise ValueError(f"unknown stream source mode {mode!r}")
