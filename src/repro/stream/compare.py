"""Artefact fingerprints for the stream==batch differential harness.

A fingerprint is a dict of named strings covering every artefact the
paper derives — cleaning report, Table 3 funnel, Table 4 route stats,
the Welford grid (down to the raw ``_m2`` partials, rendered as
``float.hex`` so "close" never passes for "equal"), cell features, the
mixed model and the error ledger.  Two runs are equivalent iff their
fingerprints are equal string-for-string; the pytest diff on a failing
component then names exactly which artefact diverged.

The batch and stream sides expose the same underlying objects, so both
:func:`study_fingerprint` and :func:`stream_fingerprint` are thin
adapters over one canonicaliser.
"""

from __future__ import annotations

import json
from dataclasses import asdict

from repro.cleaning.pipeline import CleaningReport
from repro.faults import TripError


def _hex(value: float) -> str:
    return float(value).hex()


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def artefact_fingerprint(
    *,
    clean_report: CleaningReport,
    funnel: list,
    route_stats: list,
    grid,
    cell_features: dict,
    mixed,
    errors: list[TripError],
) -> dict[str, str]:
    """Canonical strings for every comparable artefact of one run.

    Wall-clock fields (``stage_seconds``) are excluded — everything else,
    including float partials, must match bit for bit.
    """
    report_doc = {
        "trips_in": clean_report.trips_in,
        "points_in": clean_report.points_in,
        "reordered_trips": clean_report.reordered_trips,
        "reordering_saved_m": _hex(clean_report.reordering_saved_m),
        "duplicates_removed": clean_report.duplicates_removed,
        "outliers_removed": clean_report.outliers_removed,
        "out_of_bounds_removed": clean_report.out_of_bounds_removed,
        "rule_hits": {
            str(rule): hits
            for rule, hits in sorted(clean_report.segmentation.rule_hits.items())
        },
        "segments_created": clean_report.segmentation.segments_created,
        "trips_processed": clean_report.segmentation.trips_processed,
        "segments_dropped_short": clean_report.segments_dropped_short,
        "segments_dropped_long": clean_report.segments_dropped_long,
        "segments_out": clean_report.segments_out,
        "points_out": clean_report.points_out,
        "errors": [e.to_dict() for e in clean_report.errors],
    }
    grid_doc = [
        {
            "key": list(key),
            "n": stats.n,
            "mean": _hex(stats.mean),
            "m2": _hex(stats._m2),
            "speeds": [_hex(s) for s in grid.speeds(key)],
        }
        for key, stats in grid.cells().items()  # insertion order matters
    ]
    stats_doc = []
    for s in route_stats:
        doc = asdict(s)
        for name, value in doc.items():
            if isinstance(value, float):
                doc[name] = _hex(value)
        stats_doc.append(doc)
    mixed_doc = None
    if mixed is not None:
        mixed_doc = {
            "fixed_names": list(mixed.fixed_names),
            "fixed_effects": [_hex(v) for v in mixed.fixed_effects],
            "sigma2": _hex(mixed.sigma2),
            "sigma2_u": _hex(mixed.sigma2_u),
            "reml_criterion": _hex(mixed.reml_criterion),
            "reml_criterion_null": _hex(mixed.reml_criterion_null),
            "groups": [list(g) for g in mixed.groups],
            "blup": {str(g): _hex(v) for g, v in mixed.blup.items()},
            "blup_se": {str(g): _hex(v) for g, v in mixed.blup_se.items()},
            "group_sizes": {str(g): n for g, n in mixed.group_sizes.items()},
            "n": mixed.n,
        }
    return {
        "clean_report": _dumps(report_doc),
        "funnel": _dumps([asdict(row) for row in funnel]),
        "route_stats": _dumps(stats_doc),
        "grid": _dumps(grid_doc),
        "cell_features": _dumps(
            [[list(key), counts] for key, counts in sorted(cell_features.items())]
        ),
        "mixed": _dumps(mixed_doc),
        "errors": _dumps([e.to_dict() for e in errors]),
    }


def study_fingerprint(result, reader_errors: list[TripError] = ()) -> dict[str, str]:
    """Fingerprint of a batch :class:`~repro.experiments.study.StudyResult`.

    ``reader_errors`` are the CSV-ingest quarantine records (the study
    itself never reads CSVs) — prepended exactly where the stream ledger
    puts its io category.
    """
    return artefact_fingerprint(
        clean_report=result.clean.report,
        funnel=result.funnel,
        route_stats=result.route_stats,
        grid=result.grid,
        cell_features=result.cell_features,
        mixed=result.mixed,
        errors=list(reader_errors) + list(result.errors),
    )


def stream_fingerprint(result) -> dict[str, str]:
    """Fingerprint of a :class:`~repro.stream.service.StreamResult`."""
    return artefact_fingerprint(
        clean_report=result.clean.report,
        funnel=result.funnel,
        route_stats=result.route_stats,
        grid=result.grid,
        cell_features=result.cell_features,
        mixed=result.mixed,
        errors=result.errors,
    )
