"""Streaming micro-batch ingestion (``repro serve``).

Turns the batch study pipeline into a long-running service: route points
arrive in order, per-taxi state is held incrementally (open trip buffer,
Table 2 rule previews, gate-crossing detection, a live serialisable
:class:`~repro.matching.MatcherState`), and the grid/OD/funnel artefacts
are folded online with bounded memory.  A replayed fleet produces
artefacts byte-identical to ``repro study`` on the same input — enforced
by the differential suites in ``tests/test_stream_equivalence.py``.

* :mod:`repro.stream.sources` — replay / csv-tail / fifo row sources;
* :mod:`repro.stream.service` — the micro-batch service and its result;
* :mod:`repro.stream.checkpoint` — content-addressed checkpoints and the
  resume path;
* :mod:`repro.stream.compare` — artefact fingerprints for the
  differential harness.
"""

from repro.stream.checkpoint import CheckpointStore, load_checkpoint
from repro.stream.compare import (
    artefact_fingerprint,
    stream_fingerprint,
    study_fingerprint,
)
from repro.stream.service import StreamConfig, StreamResult, StreamService
from repro.stream.sources import open_source, replay_rows, tail_rows

__all__ = [
    "CheckpointStore",
    "StreamConfig",
    "StreamResult",
    "StreamService",
    "artefact_fingerprint",
    "load_checkpoint",
    "open_source",
    "replay_rows",
    "stream_fingerprint",
    "study_fingerprint",
]
