"""Checkpoint persistence for the streaming service.

A checkpoint is one JSON payload — matcher states, open trip buffers,
window partials, folded aggregates and the error ledger — persisted
content-addressed through the PR 7 shard store codecs: the payload's
canonical-JSON hash is the artefact key, so identical states dedupe and
a torn write can never be mistaken for a valid checkpoint.  A small
``CHECKPOINT`` pointer file (written atomically via tmp+rename) names
the latest key; resume reads the pointer, loads the artefact, and the
service skips every ingested row below ``rows_ingested``.

Floats survive exactly: canonical JSON uses Python ``repr`` floats both
ways, so a resumed Welford fold continues from bit-identical partials.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.obs import get_journal, get_registry
from repro.store.shards import ShardStore

#: Payload layout version; resume rejects anything else loudly.
CHECKPOINT_SCHEMA_VERSION = 1

#: Name of the latest-checkpoint pointer file inside the checkpoint dir.
POINTER_NAME = "CHECKPOINT"


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()


class CheckpointStore:
    """Content-addressed checkpoints in one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.store = ShardStore(self.root)

    def write(self, payload: dict) -> str:
        """Persist one checkpoint payload; returns its content key."""
        payload = dict(payload)
        payload["checkpoint_schema"] = CHECKPOINT_SCHEMA_VERSION
        blob = _canonical(payload)
        key = hashlib.blake2b(blob, digest_size=16).hexdigest()
        seq = payload.get("checkpoint_seq", 0)
        self.store.put(
            key,
            stage="stream_checkpoint",
            shard=f"ckpt-{seq}",
            meta=payload,
            columns={},
        )
        pointer = {
            "key": key,
            "checkpoint_seq": seq,
            "rows_ingested": payload.get("rows_ingested", 0),
        }
        tmp = self.root / f"{POINTER_NAME}.tmp-{os.getpid()}"
        tmp.write_text(json.dumps(pointer, sort_keys=True) + "\n")
        tmp.rename(self.root / POINTER_NAME)
        registry = get_registry()
        registry.counter("stream.checkpoints").inc()
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "stream.checkpoint",
                key=key,
                checkpoint_seq=seq,
                rows_ingested=pointer["rows_ingested"],
                bytes=len(blob),
            )
        return key

    def latest(self) -> dict | None:
        """The newest checkpoint payload, or ``None`` when absent/corrupt.

        A missing artefact behind a valid pointer (e.g. the store was
        garbage-collected) reads as "no checkpoint" — the service then
        starts from scratch, which is always safe.
        """
        pointer_path = self.root / POINTER_NAME
        if not pointer_path.exists():
            return None
        try:
            pointer = json.loads(pointer_path.read_text())
            key = pointer["key"]
        except (ValueError, KeyError):
            return None
        artefact = self.store.get(key, stage="stream_checkpoint")
        if artefact is None:
            return None
        payload = artefact.meta
        if payload.get("checkpoint_schema") != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError(
                f"checkpoint schema {payload.get('checkpoint_schema')!r} != "
                f"{CHECKPOINT_SCHEMA_VERSION} (incompatible checkpoint dir)"
            )
        return payload


def load_checkpoint(root: str | Path) -> dict | None:
    """Convenience: the latest payload under ``root`` (None when fresh)."""
    return CheckpointStore(root).latest()
