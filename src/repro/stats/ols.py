"""Ordinary least squares — model (1) of the paper.

``Y = Xb + e`` with Gaussian errors, solved via the normal equations with
NumPy's pseudo-inverse for rank safety.  Returns coefficient estimates
with standard errors and t statistics, enough to inspect associations
between map features and driving speed before moving to mixed models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class OlsResult:
    """Fitted OLS model."""

    names: tuple[str, ...]
    coefficients: tuple[float, ...]
    std_errors: tuple[float, ...]
    t_values: tuple[float, ...]
    sigma2: float
    r_squared: float
    n: int

    def coefficient(self, name: str) -> float:
        return self.coefficients[self.names.index(name)]

    def std_error(self, name: str) -> float:
        return self.std_errors[self.names.index(name)]


def fit_ols(
    y: list[float] | np.ndarray,
    covariates: dict[str, list[float] | np.ndarray],
    intercept: bool = True,
) -> OlsResult:
    """Fit ``y ~ covariates`` by least squares.

    ``covariates`` maps names to columns.  With ``intercept`` a constant
    column named ``"(intercept)"`` is prepended.
    """
    y_arr = np.asarray(y, dtype=float)
    n = y_arr.shape[0]
    if n == 0:
        raise ValueError("empty response")
    names: list[str] = []
    columns: list[np.ndarray] = []
    if intercept:
        names.append("(intercept)")
        columns.append(np.ones(n))
    for name, col in covariates.items():
        arr = np.asarray(col, dtype=float)
        if arr.shape[0] != n:
            raise ValueError(f"covariate {name!r} has length {arr.shape[0]}, expected {n}")
        names.append(name)
        columns.append(arr)
    x = np.column_stack(columns)
    p = x.shape[1]
    if n <= p:
        raise ValueError(f"need more observations ({n}) than parameters ({p})")
    xtx_inv = np.linalg.pinv(x.T @ x)
    beta = xtx_inv @ (x.T @ y_arr)
    residuals = y_arr - x @ beta
    dof = n - p
    sigma2 = float(residuals @ residuals) / dof
    se = np.sqrt(np.clip(np.diag(xtx_inv) * sigma2, 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        t_vals = np.where(se > 0, beta / se, np.inf)
    ss_tot = float(np.sum((y_arr - y_arr.mean()) ** 2))
    ss_res = float(residuals @ residuals)
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return OlsResult(
        names=tuple(names),
        coefficients=tuple(float(b) for b in beta),
        std_errors=tuple(float(s) for s in se),
        t_values=tuple(float(t) for t in t_vals),
        sigma2=sigma2,
        r_squared=r2,
        n=n,
    )
