"""Descriptive statistics — the six-number summaries of Table 4.

Quantiles use linear interpolation between order statistics (R's default
type 7), matching the environment the paper's summaries were computed in.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass


@dataclass(frozen=True)
class SixNumber:
    """Min / 1st quartile / median / mean / 3rd quartile / max."""

    minimum: float
    q1: float
    median: float
    mean: float
    q3: float
    maximum: float
    n: int

    def as_row(self) -> tuple[float, float, float, float, float, float]:
        """The Table 4 column order: Min, 1st Q, Med, Mean, 3rd Q, Max."""
        return (self.minimum, self.q1, self.median, self.mean, self.q3, self.maximum)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (ValueError on empty input)."""
    vals = list(values)
    if not vals:
        raise ValueError("mean of empty sequence")
    return sum(vals) / len(vals)


def variance(values: Iterable[float]) -> float:
    """Sample variance with Bessel's correction (0 for n < 2)."""
    vals = list(values)
    if len(vals) < 2:
        return 0.0
    m = mean(vals)
    return sum((v - m) ** 2 for v in vals) / (len(vals) - 1)


def quantile(values: Iterable[float], q: float) -> float:
    """Type-7 (R default) quantile of ``values`` at probability ``q``."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    vals = sorted(values)
    if not vals:
        raise ValueError("quantile of empty sequence")
    if len(vals) == 1:
        return vals[0]
    h = (len(vals) - 1) * q
    lo = math.floor(h)
    hi = math.ceil(h)
    if lo == hi:
        return vals[int(h)]
    return vals[lo] + (h - lo) * (vals[hi] - vals[lo])


def six_number_summary(values: Iterable[float]) -> SixNumber:
    """The Table 4 summary of a sample."""
    vals = sorted(values)
    if not vals:
        raise ValueError("summary of empty sequence")
    return SixNumber(
        minimum=vals[0],
        q1=quantile(vals, 0.25),
        median=quantile(vals, 0.5),
        mean=mean(vals),
        q3=quantile(vals, 0.75),
        maximum=vals[-1],
        n=len(vals),
    )
