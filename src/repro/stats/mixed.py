"""Linear mixed model with Gaussian random intercepts (models (2)-(3)).

The paper regularises per-cell mean speeds with a mixed model::

    Y_ij = x_ij' b + u_i + e_ij,   u_i ~ N(0, s_u^2),  e_ij ~ N(0, s^2)

where ``i`` indexes 200 m grid cells.  Variances are estimated by REML
("Variances estimated by REML, the BLUP predictions for the intercepts
for each cell"), profiling the criterion over the variance ratio
``lambda = s_u^2 / s^2``; the per-group structure makes every quantity
computable from group-level sufficient statistics, so fitting is O(N)
per candidate lambda.

BLUPs shrink each cell's residual mean toward zero by the factor
``n_i * lambda / (1 + n_i * lambda)`` — "borrowing information from the
cells with a lot of data to those with little data".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

import numpy as np


@dataclass(frozen=True)
class MixedModelResult:
    """A fitted random-intercept model."""

    fixed_names: tuple[str, ...]
    fixed_effects: tuple[float, ...]
    sigma2: float                 # residual variance s^2
    sigma2_u: float               # random-intercept variance s_u^2
    reml_criterion: float         # -2 * restricted log-likelihood (+ const)
    reml_criterion_null: float    # the same criterion at sigma_u^2 = 0
    groups: tuple[Hashable, ...]
    blup: dict[Hashable, float]
    blup_se: dict[Hashable, float]
    group_sizes: dict[Hashable, int]
    n: int

    @property
    def intercept(self) -> float:
        return self.fixed_effects[self.fixed_names.index("(intercept)")]

    def fixed_effect(self, name: str) -> float:
        return self.fixed_effects[self.fixed_names.index(name)]

    def blup_interval(self, group: Hashable, z: float = 1.96) -> tuple[float, float]:
        """Confidence limits of one group's BLUP (Fig. 8)."""
        b = self.blup[group]
        se = self.blup_se[group]
        return (b - z * se, b + z * se)

    def shrinkage(self, group: Hashable) -> float:
        """Shrinkage factor of one group (1 = no shrinkage)."""
        lam = self.sigma2_u / self.sigma2 if self.sigma2 > 0 else 0.0
        n_i = self.group_sizes[group]
        return n_i * lam / (1.0 + n_i * lam) if lam > 0 else 0.0

    @property
    def lrt_statistic(self) -> float:
        """REML likelihood-ratio statistic against sigma_u^2 = 0."""
        return max(0.0, self.reml_criterion_null - self.reml_criterion)

    @property
    def lrt_pvalue(self) -> float:
        """p-value of the group (geography) effect.

        The null puts the variance on its boundary, so the reference
        distribution is the 50:50 mixture of a point mass at zero and a
        chi-squared with one degree of freedom (Self & Liang).
        """
        stat = self.lrt_statistic
        if stat <= 0.0:
            return 1.0
        # chi2_1 survival: P(X > x) = erfc(sqrt(x / 2)).
        return 0.5 * math.erfc(math.sqrt(stat / 2.0))


class RandomInterceptModel:
    """REML fitting of a one-random-intercept mixed model."""

    def __init__(self, intercept: bool = True) -> None:
        self.intercept = intercept

    def fit(
        self,
        y: list[float] | np.ndarray,
        groups: list[Hashable],
        covariates: dict[str, list[float] | np.ndarray] | None = None,
    ) -> MixedModelResult:
        """Fit ``y ~ covariates + (1 | groups)`` by REML.

        Model (3) of the paper is the default: no covariates, only the
        global intercept and the per-cell random intercept.
        """
        y_arr = np.asarray(y, dtype=float)
        n = y_arr.shape[0]
        if n != len(groups):
            raise ValueError("y and groups must align")
        if n < 3:
            raise ValueError("need at least three observations")
        names: list[str] = []
        columns: list[np.ndarray] = []
        if self.intercept:
            names.append("(intercept)")
            columns.append(np.ones(n))
        for name, col in (covariates or {}).items():
            arr = np.asarray(col, dtype=float)
            if arr.shape[0] != n:
                raise ValueError(f"covariate {name!r} misaligned")
            names.append(name)
            columns.append(arr)
        if not columns:
            raise ValueError("model needs at least an intercept or one covariate")
        x = np.column_stack(columns)
        p = x.shape[1]

        # Group index bookkeeping.
        labels: list[Hashable] = []
        index: dict[Hashable, int] = {}
        gidx = np.empty(n, dtype=int)
        for row, g in enumerate(groups):
            if g not in index:
                index[g] = len(labels)
                labels.append(g)
            gidx[row] = index[g]
        k = len(labels)
        sizes = np.bincount(gidx, minlength=k).astype(float)

        # Per-group sufficient statistics.
        sum_y = np.zeros(k)
        np.add.at(sum_y, gidx, y_arr)
        sum_x = np.zeros((k, p))
        np.add.at(sum_x, gidx, x)
        xtx = x.T @ x
        xty = x.T @ y_arr
        yty = float(y_arr @ y_arr)

        def criterion(lam: float) -> tuple[float, np.ndarray, float]:
            """-2 REML (up to constant), GLS beta, profiled sigma^2."""
            c = lam / (1.0 + lam * sizes)           # per-group correction
            a = xtx - (sum_x * c[:, None]).T @ sum_x
            b = xty - sum_x.T @ (c * sum_y)
            s = yty - float(c @ (sum_y**2))
            try:
                beta = np.linalg.solve(a, b)
            except np.linalg.LinAlgError:
                beta = np.linalg.pinv(a) @ b
            q = max(s - float(beta @ b), 1e-12)
            dof = n - p
            sigma2 = q / dof
            sign, logdet_a = np.linalg.slogdet(a)
            if sign <= 0:
                logdet_a = math.inf
            crit = (
                dof * math.log(sigma2)
                + float(np.sum(np.log1p(lam * sizes)))
                + logdet_a
            )
            return crit, beta, sigma2

        lam_hat = _minimize_scalar_log(lambda lam: criterion(lam)[0])
        crit, beta, sigma2 = criterion(lam_hat)
        sigma2_u = lam_hat * sigma2
        crit_null, __, ___ = criterion(0.0)

        # BLUPs of the random intercepts and their prediction SEs.
        resid_sum = sum_y - sum_x @ beta
        shrink = lam_hat * sizes / (1.0 + lam_hat * sizes)
        # b_i = shrink_i * (mean residual of group i).
        blup_values = np.where(sizes > 0, shrink * resid_sum / np.maximum(sizes, 1.0), 0.0)
        blup_se = np.sqrt(np.maximum(sigma2_u * (1.0 - shrink), 0.0))

        return MixedModelResult(
            fixed_names=tuple(names),
            fixed_effects=tuple(float(b) for b in beta),
            sigma2=float(sigma2),
            sigma2_u=float(sigma2_u),
            reml_criterion=float(crit),
            reml_criterion_null=float(crit_null),
            groups=tuple(labels),
            blup={g: float(blup_values[index[g]]) for g in labels},
            blup_se={g: float(blup_se[index[g]]) for g in labels},
            group_sizes={g: int(sizes[index[g]]) for g in labels},
            n=n,
        )


def _minimize_scalar_log(f, lo: float = 1e-6, hi: float = 1e4, iters: int = 80) -> float:
    """Golden-section minimisation of ``f`` over lambda on a log grid.

    The REML criterion in lambda is unimodal for this model class; a
    coarse log-grid scan brackets the minimum, golden-section refines it.
    Returns 0 when the boundary (no group variance) wins.
    """
    grid = [0.0] + [10 ** e for e in np.linspace(math.log10(lo), math.log10(hi), 25)]
    values = [f(g) for g in grid]
    best = int(np.argmin(values))
    if best == 0:
        # Check a tiny interior point before settling on the boundary.
        if f(lo / 10) >= values[0]:
            return 0.0
        best = 1
    a = grid[max(best - 1, 0)] or lo / 10
    b = grid[min(best + 1, len(grid) - 1)]
    # Golden-section on log scale.
    la, lb = math.log(a), math.log(b)
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    c = lb - phi * (lb - la)
    d = la + phi * (lb - la)
    fc = f(math.exp(c))
    fd = f(math.exp(d))
    for __ in range(iters):
        if lb - la < 1e-10:
            break
        if fc < fd:
            lb, d, fd = d, c, fc
            c = lb - phi * (lb - la)
            fc = f(math.exp(c))
        else:
            la, c, fc = c, d, fd
            d = la + phi * (lb - la)
            fd = f(math.exp(d))
    return math.exp((la + lb) / 2.0)
