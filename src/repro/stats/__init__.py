"""Statistics (paper Sec. V).

* :mod:`repro.stats.descriptive` — the six-number summaries of Table 4;
* :mod:`repro.stats.ols` — ordinary least squares (model (1));
* :mod:`repro.stats.mixed` — the linear mixed model with Gaussian random
  intercepts (models (2)-(3)): REML variance estimation, BLUP intercept
  predictions with confidence limits;
* :mod:`repro.stats.qq` — normal QQ-plot data (Fig. 7).

Everything is implemented from first principles on NumPy; no statistical
package is required at runtime.
"""

from repro.stats.descriptive import SixNumber, mean, quantile, six_number_summary, variance
from repro.stats.mixed import MixedModelResult, RandomInterceptModel
from repro.stats.ols import OlsResult, fit_ols
from repro.stats.qq import normal_qq, normal_quantile

__all__ = [
    "MixedModelResult",
    "OlsResult",
    "RandomInterceptModel",
    "SixNumber",
    "fit_ols",
    "mean",
    "normal_qq",
    "normal_quantile",
    "quantile",
    "six_number_summary",
    "variance",
]
