"""Normal quantiles and QQ-plot data (Fig. 7).

The inverse normal CDF is implemented with Acklam's rational
approximation refined by one Halley step, giving ~1e-15 relative accuracy
without a SciPy dependency.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

# Acklam's coefficients.
_A = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
      1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
_B = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
      6.680131188771972e+01, -1.328068155288572e+01)
_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
      -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
      3.754408661907416e+00)
_P_LOW = 0.02425


def normal_quantile(p: float) -> float:
    """Inverse standard normal CDF at probability ``p`` in (0, 1)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be strictly inside (0, 1)")
    if p > 0.5:
        # Work in the lower tail: erfc-based refinement keeps full
        # precision there, and the normal quantile is antisymmetric.
        return -normal_quantile(1.0 - p)
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        x = (
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    elif p <= 1.0 - _P_LOW:
        q = p - 0.5
        r = q * q
        x = (
            (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5]) * q
        ) / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -(
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    # One Halley refinement step.
    e = 0.5 * math.erfc(-x / math.sqrt(2.0)) - p
    u = e * math.sqrt(2.0 * math.pi) * math.exp(x * x / 2.0)
    return x - u / (1.0 + x * u / 2.0)


def normal_qq(values: Iterable[float]) -> list[tuple[float, float]]:
    """QQ-plot data: (theoretical quantile, observed value) pairs.

    Plotting positions follow the Blom-style convention ``(i - 0.5) / n``
    over the sorted sample.
    """
    vals = sorted(values)
    n = len(vals)
    if n == 0:
        return []
    return [
        (normal_quantile((i + 0.5) / n), v) for i, v in enumerate(vals)
    ]


def qq_correlation(values: Iterable[float]) -> float:
    """Correlation between observed and theoretical quantiles.

    Near 1 when the sample is Gaussian — the quantitative version of
    "the Gaussian regularization indeed seems justified" (Fig. 7).
    """
    pairs = normal_qq(values)
    if len(pairs) < 3:
        return 1.0
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    n = len(pairs)
    mx = sum(xs) / n
    my = sum(ys) / n
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if sxx == 0.0 or syy == 0.0:
        return 1.0
    return sxy / math.sqrt(sxx * syy)
