"""Trace serialization: CSV for route points, JSONL for trips.

The paper's ingest pools device data over HTTP into PostgreSQL; here the
equivalent durable format is a flat route-point CSV (one row per point)
plus a trips JSONL with the per-trip header records.  Round-tripping is
lossless to float precision.

Reading is *robust by default*: the paper's feed contains garbage fixes
and so do real dumps (truncated lines, NaN coordinates, UTF-8 damage).
A malformed row never aborts ingestion — it is quarantined as a precise
:class:`~repro.faults.TripError` record (stage ``io``) and counted on
the ``io.rows_quarantined`` metric, while every parseable row still
lands in the returned fleet.  An active :class:`~repro.faults.FaultPlan`
can corrupt or truncate rows on the way in, exercising exactly this
path.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path

from repro.faults import Quarantine, TripError
from repro.faults import injector as _injector
from repro.obs import get_logger, get_registry
from repro.traces.model import FleetData, RoutePoint, Trip

_log = get_logger(__name__)

_POINT_FIELDS = ["point_id", "trip_id", "lat", "lon", "time_s", "speed_kmh", "fuel_ml"]


def write_points_csv(fleet: FleetData, path: str | Path) -> int:
    """Write all route points as CSV; returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["car_id"] + _POINT_FIELDS)
        for trip in fleet.trips:
            for p in trip.points:
                writer.writerow(
                    [trip.car_id, p.point_id, p.trip_id, repr(p.lat), repr(p.lon),
                     repr(p.time_s), repr(p.speed_kmh), repr(p.fuel_ml)]
                )
                count += 1
    return count


def parse_point_row(row: dict) -> RoutePoint:
    """Parse one CSV row strictly; raises ValueError on any damage.

    Shared by the batch reader below and the streaming ingest
    (:mod:`repro.stream.service`), so a row is judged malformed by
    exactly one definition on both paths.
    """
    missing = [name for name in ("car_id", *_POINT_FIELDS)
               if row.get(name) in (None, "")]
    if missing:
        raise ValueError(f"truncated_row: missing fields {missing}")
    try:
        point = RoutePoint(
            point_id=int(row["point_id"]),
            trip_id=int(row["trip_id"]),
            lat=float(row["lat"]),
            lon=float(row["lon"]),
            time_s=float(row["time_s"]),
            speed_kmh=float(row["speed_kmh"]),
            fuel_ml=float(row["fuel_ml"]),
        )
    except (TypeError, ValueError) as exc:
        raise ValueError(f"parse_error: {exc}") from exc
    if not (math.isfinite(point.lat) and math.isfinite(point.lon)
            and math.isfinite(point.time_s)):
        raise ValueError("non_finite: lat/lon/time must be finite")
    return point


#: Backwards-compatible alias (pre-streaming name).
_parse_point = parse_point_row


def row_trip_id(row: dict) -> int | None:
    """Best-effort trip id of a damaged row (for the error record)."""
    try:
        return int(row.get("trip_id") or "")
    except (TypeError, ValueError):
        return None


def read_points_csv(
    path: str | Path, quarantine: Quarantine | None = None
) -> FleetData:
    """Read a route-point CSV back into trips (grouped by trip id).

    Malformed rows (truncated lines, unparseable or non-finite values,
    UTF-8 garbage) are quarantined — recorded on ``quarantine`` when
    given, otherwise logged — never raised.  Trips whose rows were *all*
    malformed produce an ``empty_trip`` record; trips whose point ids
    regress produce a ``non_monotonic_ids`` record (the points are kept:
    ordering repair downstream handles them).
    """
    path = Path(path)
    quarantine = quarantine if quarantine is not None else Quarantine()
    registry = get_registry()
    trips: dict[int, Trip] = {}
    damaged_trip_ids: set[int] = set()
    with path.open(newline="", encoding="utf-8", errors="replace") as f:
        reader = csv.DictReader(f)
        for index, row in enumerate(reader):
            if _injector.truncate_at(index):
                quarantine.add(TripError(
                    stage="io", kind="truncated_file",
                    message=f"input truncated before row {index}",
                    row=index, fault_tag="injected:io",
                ))
                break
            fault_tag = None
            corrupted = _injector.corrupt_row(index, row)
            if corrupted is not None:
                row = corrupted
                fault_tag = "injected:io"
            try:
                point = parse_point_row(row)
            except ValueError as exc:
                registry.counter("io.rows_quarantined").inc()
                trip_id = row_trip_id(row)
                if trip_id is not None:
                    damaged_trip_ids.add(trip_id)
                quarantine.add(TripError(
                    stage="io", kind=str(exc).split(":", 1)[0],
                    message=str(exc), trip_id=trip_id, row=index,
                    fault_tag=fault_tag,
                ))
                continue
            trip = trips.get(point.trip_id)
            if trip is None:
                trip = Trip(trip_id=point.trip_id, car_id=int(row["car_id"]))
                trips[point.trip_id] = trip
            trip.points.append(point)
    for trip_id in sorted(damaged_trip_ids - set(trips)):
        quarantine.add(TripError(
            stage="io", kind="empty_trip",
            message=f"trip {trip_id}: every row was malformed",
            trip_id=trip_id,
        ))
    for trip in trips.values():
        ids = [p.point_id for p in trip.points]
        if any(b <= a for a, b in zip(ids, ids[1:])):
            quarantine.add(TripError(
                stage="io", kind="non_monotonic_ids",
                message=f"trip {trip.trip_id}: point ids not strictly "
                        "increasing (kept; ordering repair applies)",
                trip_id=trip.trip_id,
            ))
    if quarantine.errors:
        _log.warning(
            "rows quarantined during read",
            extra={"path": str(path), "errors": len(quarantine.errors)},
        )
    return FleetData(trips=sorted(trips.values(), key=lambda t: t.trip_id))


def write_trips_jsonl(fleet: FleetData, path: str | Path) -> int:
    """Write per-trip header records (summaries) as JSONL."""
    path = Path(path)
    count = 0
    with path.open("w") as f:
        for trip in fleet.trips:
            s = trip.summary()
            f.write(
                json.dumps(
                    {
                        "trip_id": s.trip_id,
                        "car_id": s.car_id,
                        "start_time_s": s.start_time_s,
                        "end_time_s": s.end_time_s,
                        "start_point": list(s.start_point),
                        "end_point": list(s.end_point),
                        "total_time_s": s.total_time_s,
                        "total_distance_m": s.total_distance_m,
                        "total_fuel_ml": s.total_fuel_ml,
                        "point_count": s.point_count,
                    }
                )
            )
            f.write("\n")
            count += 1
    return count


def read_trips_jsonl(path: str | Path) -> list[dict]:
    """Read trip header records (as dicts) from JSONL."""
    path = Path(path)
    out = []
    with path.open() as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
