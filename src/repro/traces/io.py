"""Trace serialization: CSV for route points, JSONL for trips.

The paper's ingest pools device data over HTTP into PostgreSQL; here the
equivalent durable format is a flat route-point CSV (one row per point)
plus a trips JSONL with the per-trip header records.  Round-tripping is
lossless to float precision.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.traces.model import FleetData, RoutePoint, Trip

_POINT_FIELDS = ["point_id", "trip_id", "lat", "lon", "time_s", "speed_kmh", "fuel_ml"]


def write_points_csv(fleet: FleetData, path: str | Path) -> int:
    """Write all route points as CSV; returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["car_id"] + _POINT_FIELDS)
        for trip in fleet.trips:
            for p in trip.points:
                writer.writerow(
                    [trip.car_id, p.point_id, p.trip_id, repr(p.lat), repr(p.lon),
                     repr(p.time_s), repr(p.speed_kmh), repr(p.fuel_ml)]
                )
                count += 1
    return count


def read_points_csv(path: str | Path) -> FleetData:
    """Read a route-point CSV back into trips (grouped by trip id)."""
    path = Path(path)
    trips: dict[int, Trip] = {}
    with path.open(newline="") as f:
        reader = csv.DictReader(f)
        for row in reader:
            trip_id = int(row["trip_id"])
            trip = trips.get(trip_id)
            if trip is None:
                trip = Trip(trip_id=trip_id, car_id=int(row["car_id"]))
                trips[trip_id] = trip
            trip.points.append(
                RoutePoint(
                    point_id=int(row["point_id"]),
                    trip_id=trip_id,
                    lat=float(row["lat"]),
                    lon=float(row["lon"]),
                    time_s=float(row["time_s"]),
                    speed_kmh=float(row["speed_kmh"]),
                    fuel_ml=float(row["fuel_ml"]),
                )
            )
    return FleetData(trips=sorted(trips.values(), key=lambda t: t.trip_id))


def write_trips_jsonl(fleet: FleetData, path: str | Path) -> int:
    """Write per-trip header records (summaries) as JSONL."""
    path = Path(path)
    count = 0
    with path.open("w") as f:
        for trip in fleet.trips:
            s = trip.summary()
            f.write(
                json.dumps(
                    {
                        "trip_id": s.trip_id,
                        "car_id": s.car_id,
                        "start_time_s": s.start_time_s,
                        "end_time_s": s.end_time_s,
                        "start_point": list(s.start_point),
                        "end_point": list(s.end_point),
                        "total_time_s": s.total_time_s,
                        "total_distance_m": s.total_distance_m,
                        "total_fuel_ml": s.total_fuel_ml,
                        "point_count": s.point_count,
                    }
                )
            )
            f.write("\n")
            count += 1
    return count


def read_trips_jsonl(path: str | Path) -> list[dict]:
    """Read trip header records (as dicts) from JSONL."""
    path = Path(path)
    out = []
    with path.open() as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
