"""Taxi trace substrate — the Driveco on-board logger substitute.

The paper's corpus is seven taxis logging GPS + OBD-II for a year in Oulu.
This package provides the same data in synthetic form:

* :mod:`repro.traces.model` — the record schema the paper describes
  (trips bounded by engine-off events; route points emitted on significant
  driving changes, carrying point id, trip id, lat/lon, timestamp, speed
  and fuel);
* :mod:`repro.traces.noise` — the error classes the cleaning stage must
  survive (arrival reordering, GPS jitter, coordinate glitches,
  duplicates);
* :mod:`repro.traces.simulator` — a stochastic fleet simulator driving the
  synthetic city with light stops, pedestrian hotspots, seasonal effects
  and event-based sampling;
* :mod:`repro.traces.io` — CSV/JSONL round-tripping;
* :mod:`repro.traces.arrays` — the struct-of-arrays columnar view the
  vectorized cleaning kernels consume.
"""

from repro.traces.arrays import TraceArrays
from repro.traces.model import FleetData, RoutePoint, Trip, TripSummary, trip_distance_m
from repro.traces.noise import NoiseSpec, apply_noise
from repro.traces.simulator import CustomerRun, FleetSpec, TaxiFleetSimulator

__all__ = [
    "CustomerRun",
    "FleetData",
    "FleetSpec",
    "NoiseSpec",
    "RoutePoint",
    "TaxiFleetSimulator",
    "TraceArrays",
    "Trip",
    "TripSummary",
    "apply_noise",
    "trip_distance_m",
]
