"""Trace data model — the record schema of Sec. III.

A *trip* is a run between two consecutive engine-off events, identified by
a trip id and carrying start/end time, total time, total distance and
total fuel.  A trip contains *route points*: there is no fixed sampling
rate — a point is generated when some significant change in driving
behaviour (a turn, a speed change) is registered.  Each route point stores
point id, trip id, latitude, longitude, timestamp, instantaneous speed and
cumulative fuel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.distance import haversine_m


@dataclass(frozen=True)
class RoutePoint:
    """One measurement of the on-board device.

    ``point_id`` is the server-assigned sequence number; ``time_s`` is a
    Unix timestamp.  ``speed_kmh`` is the instantaneous measured speed and
    ``fuel_ml`` the cumulative fuel used since the trip started.
    """

    point_id: int
    trip_id: int
    lat: float
    lon: float
    time_s: float
    speed_kmh: float = 0.0
    fuel_ml: float = 0.0

    def position(self) -> tuple[float, float]:
        return (self.lat, self.lon)


@dataclass
class Trip:
    """A run between two consecutive engine-off events."""

    trip_id: int
    car_id: int
    points: list[RoutePoint] = field(default_factory=list)

    @property
    def start_time_s(self) -> float:
        return self.points[0].time_s if self.points else 0.0

    @property
    def end_time_s(self) -> float:
        return self.points[-1].time_s if self.points else 0.0

    @property
    def total_time_s(self) -> float:
        return self.end_time_s - self.start_time_s

    @property
    def total_distance_m(self) -> float:
        return trip_distance_m(self.points)

    @property
    def total_fuel_ml(self) -> float:
        if not self.points:
            return 0.0
        return self.points[-1].fuel_ml - self.points[0].fuel_ml

    def __len__(self) -> int:
        return len(self.points)

    def summary(self) -> "TripSummary":
        """The per-trip header record the device uploads."""
        first = self.points[0] if self.points else None
        last = self.points[-1] if self.points else None
        return TripSummary(
            trip_id=self.trip_id,
            car_id=self.car_id,
            start_time_s=self.start_time_s,
            end_time_s=self.end_time_s,
            start_point=(first.lat, first.lon) if first else (0.0, 0.0),
            end_point=(last.lat, last.lon) if last else (0.0, 0.0),
            total_time_s=self.total_time_s,
            total_distance_m=self.total_distance_m,
            total_fuel_ml=self.total_fuel_ml,
            point_count=len(self.points),
        )

    def with_points(self, points: list[RoutePoint]) -> "Trip":
        """A copy of this trip with a different point list."""
        return Trip(trip_id=self.trip_id, car_id=self.car_id, points=list(points))


@dataclass(frozen=True)
class TripSummary:
    """The trip-level measurement record (paper Sec. III)."""

    trip_id: int
    car_id: int
    start_time_s: float
    end_time_s: float
    start_point: tuple[float, float]
    end_point: tuple[float, float]
    total_time_s: float
    total_distance_m: float
    total_fuel_ml: float
    point_count: int


@dataclass
class FleetData:
    """Everything a simulation (or ingest) produces: trips per car."""

    trips: list[Trip] = field(default_factory=list)

    def trips_for_car(self, car_id: int) -> list[Trip]:
        return [t for t in self.trips if t.car_id == car_id]

    def car_ids(self) -> list[int]:
        return sorted({t.car_id for t in self.trips})

    @property
    def point_count(self) -> int:
        return sum(len(t) for t in self.trips)

    def __len__(self) -> int:
        return len(self.trips)


def trip_distance_m(points: list[RoutePoint]) -> float:
    """Sum of great-circle hops between consecutive route points."""
    total = 0.0
    for a, b in zip(points, points[1:]):
        total += haversine_m(a.lat, a.lon, b.lat, b.lon)
    return total


def reorder_points(points: list[RoutePoint], key: str) -> list[RoutePoint]:
    """Points sorted by ``"point_id"`` or ``"time_s"`` (the two candidate
    orderings the cleaning stage compares)."""
    if key not in ("point_id", "time_s"):
        raise ValueError("key must be 'point_id' or 'time_s'")
    return sorted(points, key=lambda p: getattr(p, key))
