"""Taxi fleet simulator — the Driveco data source substitute.

Simulates seven taxis serving customers in the synthetic city for a study
period.  The output has exactly the properties the paper's pipeline is
built to handle:

* raw *trips* are whole engine-on shifts chaining several customer runs
  with idle waits between them (taxis "can drive almost the whole day
  without turning off the car engine"), so time-based segmentation is
  genuinely needed;
* route points are emitted *event-based* — on significant heading or speed
  changes, or after distance/time gaps — so there is no fixed sampling
  rate and map-matching gaps occur;
* driving speed reacts to the map: traffic-light stops, bus-stop and
  pedestrian-crossing interference, a crowded downtown hotspot, dead-end
  streets, seasonal and road-weather effects;
* route choice is noisy expected-time shortest path, so drivers "freely
  select routes" and occasionally take the eastern outer arterial that
  leaves the central area (feeding the Table 3 within-centre filter);
* every error class of Sec. IV.B is injected on top
  (:mod:`repro.traces.noise`).

The simulator also returns per-customer-run ground truth (edges driven,
gates crossed in order) so tests can verify the pipeline end to end.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from datetime import datetime, timezone

from repro.geo.geometry import Point, crossing_angle_deg
from repro.geo.polygon import ThickLine
from repro.roadnet.graph import RoadEdge
from repro.roadnet.routing import dijkstra
from repro.roadnet.synthcity import SyntheticCity
from repro.traces.model import FleetData, RoutePoint, Trip
from repro.traces.noise import NoiseSpec, apply_noise
from repro.weather.roadweather import RoadWeatherModel
from repro.weather.seasons import season_speed_factor


#: Fuel model constants: idle burn and the surcharge of accelerating back
#: to cruise after a full stop (kinetic energy refill) — low speed and
#: stop-and-go driving dominate fuel use, as in the paper's reference [28].
IDLE_FUEL_ML_S = 0.35
ACCELERATION_FUEL_ML = 10.0


def diurnal_speed_factor(time_s: float) -> float:
    """Mild time-of-day traffic effect on achievable speed.

    Morning and afternoon rush hours slow the fleet a few percent; the
    near-empty night streets are slightly faster.  Kept mild so the map
    effects (lights, hotspot) remain the dominant signal, as in the paper.
    """
    hour = datetime.fromtimestamp(time_s, tz=timezone.utc).hour
    if hour in (7, 8, 16, 17):
        return 0.94
    if hour >= 22 or hour <= 5:
        return 1.04
    return 1.0


class Region(enum.Enum):
    """Coarse origin/destination regions of the synthetic city."""

    CORE = "core"
    NORTH = "north"        # beyond gate T
    SOUTH_S = "south_s"    # beyond gate S
    SOUTH_L = "south_l"    # beyond gate L
    EAST_OUT = "east_out"  # outside the central area to the east


#: Markov chain over customer-run destination regions, conditioned on the
#: taxi's current region.  Calibrated so the Table 3 funnel proportions
#: (share of gate-crossing segments, share of studied transitions) match
#: the paper's shape.
REGION_TRANSITIONS: dict[Region, list[tuple[Region, float]]] = {
    Region.CORE: [
        (Region.CORE, 0.84),
        (Region.NORTH, 0.055),
        (Region.SOUTH_S, 0.05),
        (Region.SOUTH_L, 0.045),
        (Region.EAST_OUT, 0.01),
    ],
    Region.NORTH: [
        (Region.CORE, 0.63),
        (Region.SOUTH_S, 0.12),
        (Region.SOUTH_L, 0.09),
        (Region.NORTH, 0.14),
        (Region.EAST_OUT, 0.02),
    ],
    Region.SOUTH_S: [
        (Region.CORE, 0.61),
        (Region.NORTH, 0.11),
        (Region.SOUTH_L, 0.12),
        (Region.SOUTH_S, 0.14),
        (Region.EAST_OUT, 0.02),
    ],
    Region.SOUTH_L: [
        (Region.CORE, 0.63),
        (Region.NORTH, 0.12),
        (Region.SOUTH_S, 0.11),
        (Region.SOUTH_L, 0.14),
    ],
    Region.EAST_OUT: [
        (Region.CORE, 0.70),
        (Region.SOUTH_S, 0.15),
        (Region.NORTH, 0.15),
    ],
}


@dataclass(frozen=True)
class FleetSpec:
    """Parameters of the simulated study.

    Defaults are a scaled-down study (30 days); the paper's year-long
    corpus corresponds to ``n_days=365``.  All statistical shapes are
    scale-invariant; only absolute counts grow with ``n_days``.
    """

    n_taxis: int = 7
    n_days: int = 30
    start_date: str = "2012-10-01"
    seed: int = 42
    shifts_per_day: int = 2
    runs_per_shift_mean: float = 3.5
    step_m: float = 25.0
    noise: NoiseSpec = field(default_factory=NoiseSpec)
    #: Cruise speed as a fraction of the speed limit (drivers hover a bit
    #: below the limit; season/weather factors multiply on top).
    cruise_factor: float = 0.88
    # Traffic-light behaviour (paper: unfavourable wait 50-60 s, error
    # situations up to 200 s before blinking yellow).  The stop
    # probability is the *central* value; lights far from the centre stop
    # traffic less (fewer pedestrians, green waves), which reproduces the
    # paper's finding that light counts alone do not explain low speed.
    light_stop_prob: float = 0.55
    light_stop_prob_periphery: float = 0.15
    light_wait_range_s: tuple[float, float] = (8.0, 70.0)
    light_error_prob: float = 0.01
    light_error_wait_s: float = 200.0
    bus_stop_slow_prob: float = 0.25
    crossing_slow_prob: float = 0.12
    hotspot_cap_kmh: float = 10.0
    deadend_cap_kmh: float = 20.0
    # Event-based emission thresholds.
    emit_heading_deg: float = 28.0
    emit_speed_kmh: float = 12.0
    emit_dist_m: float = 230.0
    emit_time_s: float = 40.0
    # Idle dwell between customer runs, seconds.
    dwell_range_s: tuple[float, float] = (120.0, 1200.0)
    # Engine-off behaviour: a dwell at least this long may end the raw
    # trip (drivers cut the engine while queueing at ranks), producing the
    # many short engine-bounded trips the paper's corpus consists of.
    engine_off_dwell_s: float = 180.0
    engine_off_prob: float = 0.8

    def __post_init__(self) -> None:
        if self.n_taxis < 1 or self.n_days < 1:
            raise ValueError("need at least one taxi and one day")
        if self.step_m <= 0:
            raise ValueError("step_m must be positive")


@dataclass(frozen=True)
class CustomerRun:
    """Ground truth for one customer run inside a raw trip."""

    car_id: int
    trip_id: int
    start_time_s: float
    end_time_s: float
    origin_region: Region
    dest_region: Region
    edge_ids: tuple[int, ...]
    path_length_m: float
    gates_crossed: tuple[str, ...]


@dataclass
class _Sample:
    """One dense kinematic sample along a drive."""

    x: float
    y: float
    t: float
    v_kmh: float
    fuel_ml: float


class TaxiFleetSimulator:
    """Drives a synthetic fleet and emits Driveco-style raw data."""

    def __init__(self, city: SyntheticCity, spec: FleetSpec | None = None) -> None:
        self.city = city
        self.spec = spec or FleetSpec()
        self.weather = RoadWeatherModel(seed=self.spec.seed)
        self._rng = random.Random(self.spec.seed)
        self._furniture = self._collect_furniture()
        self._deadend_edges = self._collect_deadend_edges()
        self._region_nodes = self._classify_nodes()
        self._gates = {
            name: ThickLine(geom, city.spec.gate_half_width_m)
            for name, geom in city.gate_roads.items()
        }
        start = datetime.strptime(self.spec.start_date, "%Y-%m-%d")
        self._start_s = start.replace(tzinfo=timezone.utc).timestamp()
        # Per-(edge, direction) kinematic step tables, built lazily: edges
        # are traversed thousands of times, their geometry never changes.
        self._step_cache: dict[tuple[int, bool], tuple[float, list[tuple]]] = {}

    # -- precomputation -----------------------------------------------------

    def _collect_furniture(self) -> dict[int, list[tuple[float, str, float]]]:
        """Per-edge sorted (arc, kind, stop_prob) of nearby point objects.

        ``stop_prob`` only matters for traffic lights: it interpolates from
        the central to the peripheral value with the light's distance from
        the city centre (pedestrian pressure falls off outward).
        """
        spec = self.spec
        furniture: dict[int, list[tuple[float, str, float]]] = {}
        for obj in self.city.map_db.point_objects():
            r = math.hypot(obj.position[0], obj.position[1])
            t = min(1.0, r / 900.0)
            stop_prob = (
                spec.light_stop_prob * (1.0 - t) + spec.light_stop_prob_periphery * t
            )
            for edge in self.city.graph.edges_near(obj.position, 25.0):
                __, arc, dist = edge.geometry.project(obj.position)
                if dist <= 20.0:
                    furniture.setdefault(edge.edge_id, []).append(
                        (arc, obj.kind.value, stop_prob)
                    )
        for arcs in furniture.values():
            arcs.sort()
        return furniture

    def _collect_deadend_edges(self) -> set[int]:
        graph = self.city.graph
        dead = set()
        for edge in graph.edges():
            if graph.degree(edge.u) == 1 or graph.degree(edge.v) == 1:
                dead.add(edge.edge_id)
        return dead

    def _classify_nodes(self) -> dict[Region, list[int]]:
        pools: dict[Region, list[int]] = {r: [] for r in Region}
        for node in self.city.graph.nodes():
            x, y = node.position
            if y >= 1800.0:
                pools[Region.NORTH].append(node.node_id)
            elif y <= -1600.0 and x > 0.0:
                pools[Region.SOUTH_S].append(node.node_id)
            elif y <= -1600.0 and x < 0.0:
                pools[Region.SOUTH_L].append(node.node_id)
            elif x >= 1300.0:
                pools[Region.EAST_OUT].append(node.node_id)
            elif abs(x) <= 1100.0 and abs(y) <= 1100.0:
                pools[Region.CORE].append(node.node_id)
        for region, nodes in pools.items():
            if not nodes:
                raise RuntimeError(f"region {region} has no nodes; city layout broken")
        return pools

    # -- public API -------------------------------------------------------------

    def simulate(self) -> tuple[FleetData, list[CustomerRun]]:
        """Run the whole study; returns (raw fleet data, ground-truth runs)."""
        fleet = FleetData()
        runs: list[CustomerRun] = []
        trip_counter = 1
        for car_id in range(1, self.spec.n_taxis + 1):
            car_rng = random.Random(self.spec.seed * 1000 + car_id)
            activity = 0.7 + 0.6 * car_rng.random()  # cars differ in workload
            car_speed_factor = 0.95 + 0.1 * car_rng.random()
            point_counter = 1
            region = Region.CORE
            node = car_rng.choice(self._region_nodes[region])
            for day in range(self.spec.n_days):
                day_t0 = self._start_s + day * 86_400.0 + 6.5 * 3600.0
                for shift in range(self.spec.shifts_per_day):
                    shift_t0 = day_t0 + shift * 7.0 * 3600.0 + car_rng.uniform(0, 1800)
                    trips, shift_runs, node, region, point_counter, trip_counter = (
                        self._simulate_shift(
                            car_id,
                            trip_counter,
                            shift_t0,
                            node,
                            region,
                            point_counter,
                            activity,
                            car_speed_factor,
                            car_rng,
                        )
                    )
                    for trip in trips:
                        if len(trip) >= 2:
                            fleet.trips.append(
                                apply_noise(trip, self.spec.noise, car_rng)
                            )
                    runs.extend(shift_runs)
        return fleet, runs

    # -- shift simulation ---------------------------------------------------------

    def _simulate_shift(
        self,
        car_id: int,
        trip_counter: int,
        t0: float,
        node: int,
        region: Region,
        point_counter: int,
        activity: float,
        car_speed_factor: float,
        rng: random.Random,
    ) -> tuple[list[Trip], list[CustomerRun], int, Region, int, int]:
        """One shift: customer runs with dwells, split into engine-bounded
        trips (drivers cut the engine during long waits)."""
        spec = self.spec
        n_runs = max(1, round(rng.gauss(spec.runs_per_shift_mean * activity, 1.2)))
        trips: list[Trip] = []
        trip = Trip(trip_id=trip_counter, car_id=car_id)
        trip_counter += 1
        runs: list[CustomerRun] = []
        t = t0
        fuel = 0.0
        for __ in range(n_runs):
            next_region = self._pick_region(region, rng)
            target = rng.choice(self._region_nodes[next_region])
            if target == node:
                continue
            path_edges = self._route(node, target, rng)
            if not path_edges:
                continue
            samples = self._drive(node, path_edges, t, fuel, car_speed_factor, rng)
            if len(samples) < 2:
                continue
            emitted = self._emit(samples)
            for s in emitted:
                lat, lon = self.city.projector.to_latlon(s.x, s.y)
                trip.points.append(
                    RoutePoint(
                        point_id=point_counter,
                        trip_id=trip.trip_id,
                        lat=lat,
                        lon=lon,
                        time_s=s.t,
                        speed_kmh=max(0.0, s.v_kmh + rng.gauss(0.0, 0.8)),
                        fuel_ml=s.fuel_ml,
                    )
                )
                point_counter += 1
            gates = self._gates_crossed(samples)
            runs.append(
                CustomerRun(
                    car_id=car_id,
                    trip_id=trip.trip_id,
                    start_time_s=samples[0].t,
                    end_time_s=samples[-1].t,
                    origin_region=region,
                    dest_region=next_region,
                    edge_ids=tuple(e.edge_id for e, __ in path_edges),
                    path_length_m=sum(e.length for e, __ in path_edges),
                    gates_crossed=gates,
                )
            )
            t = samples[-1].t
            fuel = samples[-1].fuel_ml
            node = target
            region = next_region
            # Idle dwell waiting for the next customer.
            dwell = rng.uniform(*spec.dwell_range_s)
            engine_off = (
                dwell >= spec.engine_off_dwell_s
                and rng.random() < spec.engine_off_prob
            )
            pos = self.city.graph.node(node).position
            lat, lon = self.city.projector.to_latlon(pos[0], pos[1])
            if engine_off:
                # The trip ends here; the next run starts a fresh one with
                # its own engine-start fuel counter.
                trip.points.append(
                    RoutePoint(point_id=point_counter, trip_id=trip.trip_id,
                               lat=lat, lon=lon, time_s=t + 1.0,
                               speed_kmh=0.0, fuel_ml=fuel)
                )
                point_counter += 1
                if len(trip) >= 2:
                    trips.append(trip)
                trip = Trip(trip_id=trip_counter, car_id=car_id)
                trip_counter += 1
                fuel = 0.0
            else:
                fuel_after = fuel + IDLE_FUEL_ML_S * dwell
                for dwell_t in (t + 1.0, t + dwell):
                    trip.points.append(
                        RoutePoint(
                            point_id=point_counter,
                            trip_id=trip.trip_id,
                            lat=lat,
                            lon=lon,
                            time_s=dwell_t,
                            speed_kmh=0.0,
                            fuel_ml=fuel if dwell_t == t + 1.0 else fuel_after,
                        )
                    )
                    point_counter += 1
                fuel = fuel_after
            t += dwell
        if len(trip) >= 2:
            trips.append(trip)
        return trips, runs, node, region, point_counter, trip_counter

    def _pick_region(self, current: Region, rng: random.Random) -> Region:
        choices = REGION_TRANSITIONS[current]
        u = rng.random()
        acc = 0.0
        for region, p in choices:
            acc += p
            if u <= acc:
                return region
        return choices[-1][0]

    # -- routing --------------------------------------------------------------------

    def _route(
        self, source: int, target: int, rng: random.Random
    ) -> list[tuple[RoadEdge, int]]:
        """Noisy expected-time shortest path as (edge, from_node) pairs."""
        noise_cache: dict[int, float] = {}

        def weight(edge: RoadEdge) -> float:
            mult = noise_cache.get(edge.edge_id)
            if mult is None:
                mult = math.exp(rng.gauss(0.0, 0.18))
                noise_cache[edge.edge_id] = mult
            lights = sum(
                1
                for __, kind, ___ in self._furniture.get(edge.edge_id, ())
                if kind == "traffic_light"
            )
            return (edge.travel_time_s + 6.0 * lights) * mult

        dist = dijkstra(self.city.graph, source, target, weight_fn=weight)
        if target not in dist:
            return []
        # Reconstruct as (edge, from_node) pairs.
        seq: list[tuple[RoadEdge, int]] = []
        node = target
        while True:
            __, prev_node, prev_edge = dist[node]
            if prev_node is None:
                break
            seq.append((self.city.graph.edge(prev_edge), prev_node))
            node = prev_node
        seq.reverse()
        return seq

    # -- driving --------------------------------------------------------------------

    def _edge_steps(self, edge: RoadEdge, from_node: int) -> tuple[float, list[tuple]]:
        """Cached per-step static data of an oriented edge traversal.

        Returns ``(step_length, steps)`` where each step is
        ``(x, y, heading, limit_kmh, in_hotspot, furniture_kinds)`` —
        everything about the step that does not depend on the trip.
        """
        forward = from_node == edge.u
        key = (edge.edge_id, forward)
        cached = self._step_cache.get(key)
        if cached is not None:
            return cached
        geom = edge.geometry_from(from_node)
        length = geom.length
        furniture = self._oriented_furniture(edge, from_node)
        n_steps = max(1, int(math.ceil(length / self.spec.step_m)))
        step = length / n_steps
        steps = []
        fi = 0
        for k in range(n_steps):
            arc = (k + 0.5) * step
            x, y = geom.interpolate(arc)
            heading = geom.heading_at(arc)
            canonical_arc = arc if forward else length - arc
            limit = edge.span_at(canonical_arc).speed_limit_kmh
            hot = self.city.in_hotspot((x, y))
            kinds = []
            while fi < len(furniture) and furniture[fi][0] <= (k + 1) * step:
                kinds.append((furniture[fi][1], furniture[fi][2]))
                fi += 1
            steps.append((x, y, heading, limit, hot, tuple(kinds)))
        result = (step, steps)
        self._step_cache[key] = result
        return result

    def _drive(
        self,
        start_node: int,
        path: list[tuple[RoadEdge, int]],
        t0: float,
        fuel0: float,
        car_speed_factor: float,
        rng: random.Random,
    ) -> list[_Sample]:
        """Dense kinematic simulation along a path."""
        spec = self.spec
        base_factor = (
            spec.cruise_factor
            * season_speed_factor(t0)
            * self.weather.grip_factor(t0)
            * diurnal_speed_factor(t0)
            * car_speed_factor
        )
        samples: list[_Sample] = []
        t = t0
        fuel = fuel0
        prev_heading: Point | None = None
        for edge, from_node in path:
            step, steps = self._edge_steps(edge, from_node)
            is_deadend = edge.edge_id in self._deadend_edges
            for x, y, heading, limit, hot, kinds in steps:
                v = limit * base_factor * math.exp(rng.gauss(0.0, 0.07))
                if hot:
                    v = min(v, spec.hotspot_cap_kmh * math.exp(rng.gauss(0.0, 0.25)))
                if is_deadend:
                    v = min(v, spec.deadend_cap_kmh)
                if prev_heading is not None:
                    turn = crossing_angle_deg(prev_heading, heading)
                    if turn > 40.0:
                        v = min(v, 18.0)
                prev_heading = heading
                wait = 0.0
                for kind, stop_prob in kinds:
                    if kind == "traffic_light":
                        if rng.random() < spec.light_error_prob:
                            v = min(v, rng.uniform(3.0, 8.0))  # queue crawl
                            wait += rng.uniform(100.0, spec.light_error_wait_s)
                        elif rng.random() < stop_prob:
                            v = min(v, rng.uniform(3.0, 8.0))  # queue crawl
                            wait += rng.uniform(*spec.light_wait_range_s)
                        else:
                            v = min(v, 15.0)
                    elif kind == "bus_stop":
                        if rng.random() < spec.bus_stop_slow_prob:
                            v = min(v, 20.0)
                    elif kind == "pedestrian_crossing":
                        if rng.random() < spec.crossing_slow_prob:
                            v = min(v, 20.0)
                v = max(v, 3.0)
                v_mps = v / 3.6
                dt = step / v_mps
                fuel += dt * (IDLE_FUEL_ML_S + v_mps * (0.055 + 0.0012 * v_mps))
                t += dt
                samples.append(_Sample(x=x, y=y, t=t, v_kmh=v, fuel_ml=fuel))
                if wait > 0.0:
                    # Idling at the light plus the acceleration surcharge of
                    # getting back up to speed afterwards.
                    fuel += IDLE_FUEL_ML_S * wait + ACCELERATION_FUEL_ML
                    t += wait
                    samples.append(_Sample(x=x, y=y, t=t, v_kmh=0.0, fuel_ml=fuel))
        return samples

    def _oriented_furniture(
        self, edge: RoadEdge, from_node: int
    ) -> list[tuple[float, str, float]]:
        arcs = self._furniture.get(edge.edge_id, [])
        if from_node == edge.u:
            return arcs
        return sorted((edge.length - arc, kind, prob) for arc, kind, prob in arcs)

    # -- emission --------------------------------------------------------------------

    def _emit(self, samples: list[_Sample]) -> list[_Sample]:
        """Event-based route-point emission (no fixed sampling rate)."""
        spec = self.spec
        if not samples:
            return []
        emitted = [samples[0]]
        last = samples[0]
        last_heading: Point | None = None
        dist_acc = 0.0
        prev = samples[0]
        for s in samples[1:-1]:
            dx = s.x - prev.x
            dy = s.y - prev.y
            dist_acc += math.hypot(dx, dy)
            heading = (dx, dy) if (dx, dy) != (0.0, 0.0) else last_heading
            trigger = False
            if last_heading is not None and heading is not None:
                if crossing_angle_deg(last_heading, heading) > spec.emit_heading_deg:
                    trigger = True
            if abs(s.v_kmh - last.v_kmh) > spec.emit_speed_kmh:
                trigger = True
            if dist_acc > spec.emit_dist_m:
                trigger = True
            if s.t - last.t > spec.emit_time_s:
                trigger = True
            if trigger:
                emitted.append(s)
                last = s
                last_heading = heading
                dist_acc = 0.0
            prev = s
        emitted.append(samples[-1])
        return emitted

    # -- ground truth ------------------------------------------------------------------

    def _gates_crossed(self, samples: list[_Sample]) -> tuple[str, ...]:
        """Ordered gate crossings of a dense sample sequence."""
        crossed: list[tuple[float, str]] = []
        for name, gate in self._gates.items():
            x0, y0, x1, y1 = gate.bounds()
            for a, b in zip(samples, samples[1:]):
                # Cheap bounding-box rejection before the exact capsule test.
                if max(a.x, b.x) < x0 or min(a.x, b.x) > x1:
                    continue
                if max(a.y, b.y) < y0 or min(a.y, b.y) > y1:
                    continue
                if gate.crossed_by(
                    (a.x, a.y), (b.x, b.y), min_angle_deg=45.0, max_angle_deg=90.0
                ):
                    crossed.append((a.t, name))
                    break  # first crossing of this gate is enough
        crossed.sort()
        return tuple(name for __, name in crossed)
