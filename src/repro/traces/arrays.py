"""Struct-of-arrays trace representation.

:class:`TraceArrays` holds one trip's route points as parallel NumPy
columns — the shape the vectorized cleaning kernels consume.  The
row-oriented :class:`~repro.traces.model.RoutePoint` dataclasses stay the
canonical interchange format; ``from_trip``/``from_points`` and
``to_points`` convert losslessly between the two, and the gap arrays
(per-gap great-circle distance and time delta) are computed once and
cached so ordering repair, Table 2 segmentation and the segment-length
filters all share a single geometry pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.distance import EARTH_RADIUS_M
from repro.geo.vector import gap_metrics
from repro.traces.model import RoutePoint, Trip


@dataclass
class TraceArrays:
    """One trip's route points as parallel columns.

    ``x``/``y`` are optional precomputed plane coordinates (present when a
    projector was supplied at construction).  Columns must be treated as
    read-only; the cached gap arrays assume they never change.
    """

    point_id: np.ndarray   # (n,) int64
    lat: np.ndarray        # (n,) float64, degrees
    lon: np.ndarray        # (n,) float64, degrees
    time_s: np.ndarray     # (n,) float64
    speed_kmh: np.ndarray  # (n,) float64
    fuel_ml: np.ndarray    # (n,) float64
    x: np.ndarray | None = None  # (n,) float64, metres east of the reference
    y: np.ndarray | None = None  # (n,) float64, metres north of the reference
    _gaps: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- converters ---------------------------------------------------------

    @classmethod
    def from_points(cls, points: list[RoutePoint], projector=None) -> "TraceArrays":
        """Columnar view of a point list.

        ``projector`` is an optional
        :class:`~repro.geo.projection.LocalProjector`; when given, the
        ``x``/``y`` columns are filled with exactly the values its scalar
        ``to_xy`` would produce (same operations, batched).
        """
        n = len(points)
        point_id = np.fromiter((p.point_id for p in points), dtype=np.int64, count=n)
        lat = np.fromiter((p.lat for p in points), dtype=np.float64, count=n)
        lon = np.fromiter((p.lon for p in points), dtype=np.float64, count=n)
        time_s = np.fromiter((p.time_s for p in points), dtype=np.float64, count=n)
        speed = np.fromiter((p.speed_kmh for p in points), dtype=np.float64, count=n)
        fuel = np.fromiter((p.fuel_ml for p in points), dtype=np.float64, count=n)
        x = y = None
        if projector is not None:
            x = np.radians(lon - projector.ref_lon) * projector._cos_ref * EARTH_RADIUS_M
            y = np.radians(lat - projector.ref_lat) * EARTH_RADIUS_M
        return cls(
            point_id=point_id, lat=lat, lon=lon, time_s=time_s,
            speed_kmh=speed, fuel_ml=fuel, x=x, y=y,
        )

    @classmethod
    def from_trip(cls, trip: Trip, projector=None) -> "TraceArrays":
        return cls.from_points(trip.points, projector=projector)

    def to_points(self, trip_id: int) -> list[RoutePoint]:
        """Row-oriented points (the exact inverse of ``from_points``)."""
        return [
            RoutePoint(
                point_id=int(self.point_id[i]),
                trip_id=trip_id,
                lat=float(self.lat[i]),
                lon=float(self.lon[i]),
                time_s=float(self.time_s[i]),
                speed_kmh=float(self.speed_kmh[i]),
                fuel_ml=float(self.fuel_ml[i]),
            )
            for i in range(len(self))
        ]

    def __len__(self) -> int:
        return int(self.lat.shape[0])

    # -- columnar (de)serialisation -----------------------------------------

    #: The persisted columns, in schema order (``x``/``y`` are derived
    #: and never persisted).
    COLUMN_NAMES = ("point_id", "lat", "lon", "time_s", "speed_kmh", "fuel_ml")

    def columns(self) -> dict[str, np.ndarray]:
        """The persistable columns by name (views, not copies)."""
        return {name: getattr(self, name) for name in self.COLUMN_NAMES}

    @classmethod
    def from_columns(cls, columns: dict[str, np.ndarray]) -> "TraceArrays":
        """Wrap existing columns without copying.

        The arrays are adopted as-is — passing ``np.load(...,
        mmap_mode="r")`` views gives a zero-copy, memory-mapped trace:
        column data stays on disk until a kernel actually touches it,
        which is how the shard store serves cleaned traces
        (:mod:`repro.store.shards`).  Columns must be treated as
        read-only, like every ``TraceArrays``.
        """
        return cls(**{name: columns[name] for name in cls.COLUMN_NAMES})

    # -- cached gap geometry ------------------------------------------------

    def gaps(self) -> tuple[np.ndarray, np.ndarray]:
        """``(dist_m, dt_s)`` arrays over consecutive-point gaps (cached)."""
        if self._gaps is None:
            self._gaps = gap_metrics(self.lat, self.lon, self.time_s)
        return self._gaps

    def gap_distances_m(self) -> np.ndarray:
        return self.gaps()[0]

    def gap_dt_s(self) -> np.ndarray:
        return self.gaps()[1]

    def total_distance_m(self) -> float:
        """Trip length — sum of the great-circle hops."""
        return float(np.sum(self.gap_distances_m()))

    def distance_under(self, order: np.ndarray) -> float:
        """Trip length when the points are visited in ``order``.

        ``order`` is an index permutation (e.g. ``np.argsort`` of the
        point-id or timestamp column) — this is the quantity the ordering
        repair compares between the two candidate orderings.
        """
        from repro.geo.vector import haversine_m_vec

        lat = self.lat[order]
        lon = self.lon[order]
        if lat.shape[0] < 2:
            return 0.0
        return float(np.sum(haversine_m_vec(lat[:-1], lon[:-1], lat[1:], lon[1:])))
