"""Error injection — the data problems the paper's cleaning stage removes.

Real Driveco data suffers (Sec. IV.B and related work [17][21]):

* *arrival reordering* — device-to-server latency scrambles the stored
  sequence, so point id order and timestamp order disagree;
* *GPS jitter* — a few metres of position noise on every fix;
* *coordinate glitches* — rare large position jumps;
* *duplicate points* — the same fix uploaded twice.

:func:`apply_noise` injects all of these into a clean simulated trip, in a
way the cleaning pipeline can provably undo (the true sequence survives in
whichever ordering was not corrupted).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.geo.distance import destination_point
from repro.traces.model import RoutePoint, Trip


@dataclass(frozen=True)
class NoiseSpec:
    """Error-injection parameters (all probabilities per trip or per point)."""

    gps_sigma_m: float = 4.0
    reorder_prob: float = 0.25          # per trip: scramble id-vs-time order
    reorder_swaps: int = 3              # adjacent swaps applied when scrambling
    glitch_prob: float = 0.004          # per point: large coordinate jump
    glitch_distance_m: float = 500.0
    duplicate_prob: float = 0.003       # per point: duplicated upload
    dropout_prob: float = 0.0           # per point: fix lost in transmission

    def __post_init__(self) -> None:
        for name in ("reorder_prob", "glitch_prob", "duplicate_prob", "dropout_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")


def apply_noise(trip: Trip, spec: NoiseSpec, rng: random.Random) -> Trip:
    """Return a noisy copy of ``trip``.

    GPS jitter perturbs every fix.  With probability ``reorder_prob`` the
    trip's orderings are de-synchronised: either a few *point ids* are
    swapped (server assigned arrival order wrongly — timestamps remain
    correct) or a few *timestamps* are swapped (device clock latency — ids
    remain correct).  Glitches and duplicates are appended per point.
    """
    points = [_jitter(p, spec.gps_sigma_m, rng) for p in trip.points]

    if spec.dropout_prob > 0.0 and len(points) > 2:
        # First and last fixes always arrive (trip boundary records).
        kept = [points[0]]
        kept.extend(
            p for p in points[1:-1] if rng.random() >= spec.dropout_prob
        )
        kept.append(points[-1])
        points = kept

    noisy: list[RoutePoint] = []
    for p in points:
        if rng.random() < spec.glitch_prob:
            bearing = rng.uniform(0.0, 360.0)
            lat, lon = destination_point(p.lat, p.lon, bearing, spec.glitch_distance_m)
            p = replace(p, lat=lat, lon=lon)
        noisy.append(p)
        if rng.random() < spec.duplicate_prob:
            noisy.append(replace(p, point_id=p.point_id))

    if len(noisy) >= 4 and rng.random() < spec.reorder_prob:
        corrupt_ids = rng.random() < 0.5
        for __ in range(spec.reorder_swaps):
            i = rng.randrange(0, len(noisy) - 1)
            a, b = noisy[i], noisy[i + 1]
            if corrupt_ids:
                noisy[i] = replace(a, point_id=b.point_id)
                noisy[i + 1] = replace(b, point_id=a.point_id)
            else:
                noisy[i] = replace(a, time_s=b.time_s)
                noisy[i + 1] = replace(b, time_s=a.time_s)
        # Store rows in arrival order (by the possibly-corrupted ids), the
        # order the server would materialise them in.
        noisy.sort(key=lambda p: p.point_id)

    return trip.with_points(noisy)


def _jitter(p: RoutePoint, sigma_m: float, rng: random.Random) -> RoutePoint:
    if sigma_m <= 0.0:
        return p
    distance = abs(rng.gauss(0.0, sigma_m))
    bearing = rng.uniform(0.0, 360.0)
    lat, lon = destination_point(p.lat, p.lon, bearing, distance)
    return replace(p, lat=lat, lon=lon)


def reordering_damage(trip: Trip) -> int:
    """Count of adjacent pairs whose id order and time order disagree.

    A diagnostic used in tests and the ordering-repair ablation: zero means
    the two candidate orderings agree.
    """
    damage = 0
    pts = trip.points
    for a, b in zip(pts, pts[1:]):
        if (a.point_id < b.point_id) != (a.time_s <= b.time_s):
            damage += 1
    return damage
