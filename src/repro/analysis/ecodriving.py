"""Eco-routing and the Driving coach.

Two follow-ons the paper points at:

* *eco-routing* (Minett et al. [24]): compare alternative routes between
  an origin and destination by expected fuel, using the same fuel model
  the fleet burns and expected light-stop delays from the map;
* the *Driving coach* of the authors' prior work [31]: a post-driving
  per-driver report ranking fuel economy and low-speed exposure against
  the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.routestats import RouteStats
from repro.roadnet.digiroad import MapDatabase
from repro.roadnet.elements import PointObjectKind
from repro.roadnet.graph import RoadEdge, RoadGraph
from repro.roadnet.routing import dijkstra

#: Fuel model shared with the simulator (ml/s idle, ml per stop).
IDLE_FUEL_ML_S = 0.35
ACCELERATION_FUEL_ML = 10.0
#: Expected share of lights that stop a vehicle, and the mean wait.
LIGHT_STOP_PROB = 0.4
LIGHT_MEAN_WAIT_S = 35.0


@dataclass(frozen=True)
class RouteFuelEstimate:
    """Expected cost of one candidate route."""

    label: str
    edge_ids: tuple[int, ...]
    distance_m: float
    expected_time_s: float
    expected_stops: float
    expected_fuel_ml: float

    @property
    def fuel_per_km(self) -> float:
        return self.expected_fuel_ml / max(self.distance_m / 1000.0, 1e-9)


def _edge_lights(edge: RoadEdge, map_db: MapDatabase) -> int:
    coords = edge.geometry.coords
    centre = (
        float(coords[:, 0].mean()),
        float(coords[:, 1].mean()),
    )
    radius = edge.length / 2.0 + 25.0
    count = 0
    for obj in map_db.objects_near(centre, radius, PointObjectKind.TRAFFIC_LIGHT):
        if edge.geometry.distance_to(obj.position) <= 20.0:
            count += 1
    return count


def estimate_route_fuel(
    graph: RoadGraph, map_db: MapDatabase, edge_ids: tuple[int, ...], label: str
) -> RouteFuelEstimate:
    """Expected fuel of a route from the shared consumption model."""
    distance = 0.0
    time_s = 0.0
    stops = 0.0
    fuel = 0.0
    for edge_id in edge_ids:
        edge = graph.edge(edge_id)
        distance += edge.length
        v_mps = max(edge.speed_limit_kmh, 5.0) / 3.6
        dt = edge.length / v_mps
        time_s += dt
        fuel += dt * (IDLE_FUEL_ML_S + v_mps * (0.055 + 0.0012 * v_mps))
        n_lights = _edge_lights(edge, map_db)
        edge_stops = n_lights * LIGHT_STOP_PROB
        stops += edge_stops
        wait = edge_stops * LIGHT_MEAN_WAIT_S
        time_s += wait
        fuel += wait * IDLE_FUEL_ML_S + edge_stops * ACCELERATION_FUEL_ML
    return RouteFuelEstimate(
        label=label,
        edge_ids=tuple(edge_ids),
        distance_m=distance,
        expected_time_s=time_s,
        expected_stops=stops,
        expected_fuel_ml=fuel,
    )


def _k_alternatives(
    graph: RoadGraph, source: int, target: int, k: int
) -> list[tuple[int, ...]]:
    """Up to ``k`` distinct routes via iterative edge penalisation.

    The shortest path is computed, its edges are penalised, and routing
    repeats — a simple, deterministic alternative generator good enough
    for eco-route comparison.
    """
    penalties: dict[int, float] = {}
    seen: set[tuple[int, ...]] = set()
    routes: list[tuple[int, ...]] = []
    for __ in range(k * 3):
        def weight(edge: RoadEdge) -> float:
            return edge.travel_time_s * penalties.get(edge.edge_id, 1.0)

        dist = dijkstra(graph, source, target, weight_fn=weight)
        if target not in dist:
            break
        edges: list[int] = []
        node = target
        while True:
            __cost, prev_node, prev_edge = dist[node]
            if prev_node is None:
                break
            edges.append(prev_edge)
            node = prev_node
        edges.reverse()
        key = tuple(edges)
        if key and key not in seen:
            seen.add(key)
            routes.append(key)
            if len(routes) >= k:
                break
        for edge_id in key:
            penalties[edge_id] = penalties.get(edge_id, 1.0) * 1.6
    return routes


def eco_route_comparison(
    graph: RoadGraph,
    map_db: MapDatabase,
    source: int,
    target: int,
    k: int = 3,
) -> list[RouteFuelEstimate]:
    """Compare up to ``k`` alternative routes by expected fuel, best first."""
    routes = _k_alternatives(graph, source, target, k)
    estimates = [
        estimate_route_fuel(graph, map_db, route, label=f"alternative {i + 1}")
        for i, route in enumerate(routes)
    ]
    estimates.sort(key=lambda e: e.expected_fuel_ml)
    return estimates


@dataclass(frozen=True)
class DriverReport:
    """One taxi's post-driving report."""

    car_id: int
    n_transitions: int
    fuel_per_km_ml: float
    low_speed_pct: float
    fuel_percentile: float       # share of fleet with lower fuel/km
    low_speed_percentile: float


class DrivingCoach:
    """Fleet-relative per-driver analysis (prior-work [31] style)."""

    def __init__(self, route_stats: list[RouteStats]) -> None:
        if not route_stats:
            raise ValueError("driving coach needs at least one route stat")
        self.route_stats = route_stats

    def _per_car(self) -> dict[int, tuple[float, float, int]]:
        by_car: dict[int, list[RouteStats]] = {}
        for s in self.route_stats:
            by_car.setdefault(s.car_id, []).append(s)
        out = {}
        for car, stats in by_car.items():
            fuel_per_km = sum(s.fuel_ml for s in stats) / max(
                sum(s.route_distance_km for s in stats), 1e-9
            )
            low = sum(s.low_speed_pct for s in stats) / len(stats)
            out[car] = (fuel_per_km, low, len(stats))
        return out

    def report(self, car_id: int) -> DriverReport:
        """The report for one driver (KeyError when the car has no data)."""
        per_car = self._per_car()
        if car_id not in per_car:
            raise KeyError(f"no transitions for car {car_id}")
        fuel, low, n = per_car[car_id]
        fuels = sorted(v[0] for v in per_car.values())
        lows = sorted(v[1] for v in per_car.values())
        return DriverReport(
            car_id=car_id,
            n_transitions=n,
            fuel_per_km_ml=fuel,
            low_speed_pct=low,
            fuel_percentile=_percentile_of(fuels, fuel),
            low_speed_percentile=_percentile_of(lows, low),
        )

    def fleet_reports(self) -> list[DriverReport]:
        """Reports for every car, most fuel-efficient first."""
        reports = [self.report(car) for car in self._per_car()]
        reports.sort(key=lambda r: r.fuel_per_km_ml)
        return reports


def _percentile_of(sorted_values: list[float], value: float) -> float:
    below = sum(1 for v in sorted_values if v < value)
    return 100.0 * below / len(sorted_values)
