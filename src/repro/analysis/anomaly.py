"""Trajectory anomaly detection.

A classic application of cleaned taxi OD data: flag transitions whose
driven route deviates from every route variant regular traffic uses
between the same gates (possible detours), or whose duration is far out
of line with the direction's distribution (possible meter padding or
severe congestion).  Builds directly on the route-frequency profiles of
:mod:`repro.analysis.routefreq`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.routefreq import (
    DirectionProfile,
    build_direction_profiles,
    overlap_fraction,
    route_signature,
)
from repro.matching.types import MatchedRoute
from repro.od.transitions import Transition
from repro.stats.descriptive import quantile


@dataclass(frozen=True)
class AnomalyFlags:
    """Why one transition was flagged."""

    segment_id: int
    car_id: int
    direction: str
    route_overlap: float       # best overlap with a *frequent* variant
    duration_ratio: float      # observed / direction median duration
    spatial_anomaly: bool
    temporal_anomaly: bool

    @property
    def is_anomalous(self) -> bool:
        return self.spatial_anomaly or self.temporal_anomaly


@dataclass(frozen=True)
class AnomalyConfig:
    """Flagging thresholds."""

    min_overlap: float = 0.4          # below: route unlike anything frequent
    frequent_share: float = 0.10      # a variant is "frequent" above this
    max_duration_ratio: float = 1.8   # above: temporally anomalous
    min_trips_per_direction: int = 5  # need a baseline to call anomalies

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_overlap <= 1.0:
            raise ValueError("min_overlap must be a fraction")
        if self.max_duration_ratio <= 1.0:
            raise ValueError("max_duration_ratio must exceed 1")


def _frequent_signatures(profile: DirectionProfile, config: AnomalyConfig):
    frequent = [v.signature for v in profile.variants
                if v.share >= config.frequent_share]
    # Degenerate case: nothing crosses the share bar (all routes unique);
    # fall back to the most frequent variant as the baseline.
    if not frequent and profile.variants:
        frequent = [profile.most_frequent().signature]
    return frequent


def detect_anomalies(
    pairs: list[tuple[Transition, MatchedRoute]],
    config: AnomalyConfig | None = None,
) -> list[AnomalyFlags]:
    """Flag anomalous transitions; returns one record per scored trip.

    Directions with fewer than ``min_trips_per_direction`` observed trips
    are skipped (no meaningful baseline).
    """
    config = config or AnomalyConfig()
    profiles = build_direction_profiles(pairs)
    durations: dict[str, list[float]] = {}
    for transition, route in pairs:
        durations.setdefault(transition.direction, []).append(
            route.end_time_s - route.start_time_s
        )

    out: list[AnomalyFlags] = []
    for transition, route in pairs:
        direction = transition.direction
        profile = profiles[direction]
        if profile.n_trips < config.min_trips_per_direction:
            continue
        signature = route_signature(route)
        frequent = _frequent_signatures(profile, config)
        best_overlap = max(
            (overlap_fraction(signature, f) for f in frequent), default=0.0
        )
        median = quantile(durations[direction], 0.5)
        duration = route.end_time_s - route.start_time_s
        ratio = duration / median if median > 0 else 1.0
        out.append(
            AnomalyFlags(
                segment_id=route.segment_id,
                car_id=route.car_id,
                direction=direction,
                route_overlap=best_overlap,
                duration_ratio=ratio,
                spatial_anomaly=best_overlap < config.min_overlap,
                temporal_anomaly=ratio > config.max_duration_ratio,
            )
        )
    return out


def anomaly_rate(flags: list[AnomalyFlags]) -> float:
    """Share of scored transitions flagged anomalous."""
    if not flags:
        return 0.0
    return sum(1 for f in flags if f.is_anomalous) / len(flags)
