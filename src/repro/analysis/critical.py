"""Functionally critical network locations.

Zhou et al. [3] (the paper's related work) identify functionally critical
locations from taxi trajectories.  Two complementary criticality measures
are implemented:

* *usage criticality* — how much observed (matched) traffic an edge
  carries;
* *structural criticality* — how much the network's average shortest
  path degrades when the edge is removed, estimated over sampled OD
  pairs.

Edges that score high on both are the locations whose failure would hurt
the city most.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.matching.types import MatchedRoute
from repro.roadnet.graph import RoadGraph
from repro.roadnet.routing import dijkstra


@dataclass(frozen=True)
class CriticalEdge:
    """One edge's criticality scores."""

    edge_id: int
    usage: int                 # matched traversals observed
    detour_factor: float       # avg shortest-path growth when removed
    disconnects: int           # sampled pairs that become unreachable

    @property
    def is_critical(self) -> bool:
        return self.disconnects > 0 or self.detour_factor > 1.10


def usage_counts(routes: list[MatchedRoute]) -> dict[int, int]:
    """Matched traversal counts per edge."""
    counts: dict[int, int] = {}
    for route in routes:
        for edge_id in route.edge_ids:
            counts[edge_id] = counts.get(edge_id, 0) + 1
    return counts


def _sample_pairs(graph: RoadGraph, n: int, rng: random.Random) -> list[tuple[int, int]]:
    nodes = [node.node_id for node in graph.nodes()]
    pairs = []
    while len(pairs) < n:
        a = rng.choice(nodes)
        b = rng.choice(nodes)
        if a != b:
            pairs.append((a, b))
    return pairs


def _pair_costs(
    graph: RoadGraph, pairs: list[tuple[int, int]], skip_edge: int | None
) -> list[float | None]:
    """Shortest-path cost per pair (None where unreachable)."""

    def weight(edge):
        if skip_edge is not None and edge.edge_id == skip_edge:
            return math.inf
        return edge.length

    costs: list[float | None] = []
    for a, b in pairs:
        dist = dijkstra(graph, a, b, weight_fn=weight)
        entry = dist.get(b)
        if entry is None or not math.isfinite(entry[0]):
            costs.append(None)
        else:
            costs.append(entry[0])
    return costs


def critical_edges(
    graph: RoadGraph,
    routes: list[MatchedRoute],
    top_k: int = 10,
    n_pairs: int = 40,
    seed: int = 3,
) -> list[CriticalEdge]:
    """Score the ``top_k`` most used edges by removal impact.

    Only observed high-usage edges are stress-tested (removal analysis is
    quadratic in candidates otherwise); results are sorted by usage.
    """
    counts = usage_counts(routes)
    candidates = sorted(counts, key=lambda e: -counts[e])[:top_k]
    rng = random.Random(seed)
    pairs = _sample_pairs(graph, n_pairs, rng)
    base = _pair_costs(graph, pairs, skip_edge=None)
    out = []
    for edge_id in candidates:
        removed = _pair_costs(graph, pairs, skip_edge=edge_id)
        # Detour is compared pairwise over pairs reachable both ways, so
        # a disconnection cannot masquerade as a shortcut.
        ratios = [
            r / b for b, r in zip(base, removed)
            if b is not None and r is not None and b > 0
        ]
        detour = sum(ratios) / len(ratios) if ratios else math.inf
        disconnects = sum(
            1 for b, r in zip(base, removed) if b is not None and r is None
        )
        out.append(
            CriticalEdge(
                edge_id=edge_id,
                usage=counts[edge_id],
                detour_factor=detour,
                disconnects=disconnects,
            )
        )
    out.sort(key=lambda c: -c.usage)
    return out
