"""Information-discovery extensions.

The paper's conclusions and related-work section sketch several follow-on
analyses; this package implements them on top of the core pipeline:

* :mod:`repro.analysis.hotspots` — pick-up/drop-off hotspot detection
  from dwell events (Li et al. [5], Liu et al. [11], Wang et al. [13])
  via a from-scratch DBSCAN;
* :mod:`repro.analysis.pedestrians` — a WiFi-client crowd model in the
  spirit of Kostakos et al. [29], fused with cell speed residuals to
  explain slow areas that map features alone cannot (the paper's
  "area B");
* :mod:`repro.analysis.trafficstate` — per-edge traffic-state estimation
  from matched probe points (Kong et al. [14]);
* :mod:`repro.analysis.ecodriving` — eco-routing route comparison
  (Minett et al. [24]) and the per-driver "Driving coach" report of the
  authors' prior work [31].
"""

from repro.analysis.anomaly import (
    AnomalyConfig,
    AnomalyFlags,
    anomaly_rate,
    detect_anomalies,
)
from repro.analysis.critical import CriticalEdge, critical_edges, usage_counts
from repro.analysis.ecodriving import (
    DriverReport,
    DrivingCoach,
    RouteFuelEstimate,
    eco_route_comparison,
)
from repro.analysis.hotspots import DwellEvent, Hotspot, dbscan, detect_hotspots, extract_dwells
from repro.analysis.odflows import (
    GateDistanceMatrix,
    OdMatrix,
    build_od_matrix,
    flow_table,
    gate_distance_matrix,
)
from repro.analysis.pedestrians import PedestrianModel, fuse_with_intercepts
from repro.analysis.routefreq import (
    DirectionDetour,
    DirectionProfile,
    RouteVariant,
    build_direction_profiles,
    direction_detours,
    overlap_fraction,
    route_length_m,
    route_signature,
)
from repro.analysis.trafficstate import EdgeState, TrafficStateEstimator

__all__ = [
    "AnomalyConfig",
    "AnomalyFlags",
    "CriticalEdge",
    "DirectionDetour",
    "DirectionProfile",
    "DriverReport",
    "DrivingCoach",
    "DwellEvent",
    "EdgeState",
    "GateDistanceMatrix",
    "Hotspot",
    "OdMatrix",
    "PedestrianModel",
    "RouteFuelEstimate",
    "RouteVariant",
    "TrafficStateEstimator",
    "anomaly_rate",
    "build_direction_profiles",
    "build_od_matrix",
    "critical_edges",
    "dbscan",
    "detect_anomalies",
    "detect_hotspots",
    "direction_detours",
    "eco_route_comparison",
    "extract_dwells",
    "flow_table",
    "fuse_with_intercepts",
    "gate_distance_matrix",
    "overlap_fraction",
    "route_length_m",
    "route_signature",
    "usage_counts",
]
