"""Spatio-temporal OD flow analysis.

The related work (Zhu et al. [2], Liu et al. [12]) reads city structure
out of taxi OD flows.  This module aggregates the simulator's ground
truth (or any run list) into a region-to-region flow matrix with
hour-of-day profiles, plus the summary indices urban studies use:
flow symmetry and core dominance.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone

from repro.traces.simulator import CustomerRun, Region


@dataclass(frozen=True)
class OdMatrix:
    """Region-to-region trip counts with hourly profiles."""

    counts: dict[tuple[Region, Region], int]
    hourly: dict[int, int]
    n_trips: int

    def flow(self, origin: Region, destination: Region) -> int:
        return self.counts.get((origin, destination), 0)

    def outflow(self, region: Region) -> int:
        return sum(c for (o, __), c in self.counts.items() if o is region)

    def inflow(self, region: Region) -> int:
        return sum(c for (__, d), c in self.counts.items() if d is region)

    def symmetry(self, a: Region, b: Region) -> float:
        """min/max balance of the two directed flows (1 = symmetric)."""
        ab = self.flow(a, b)
        ba = self.flow(b, a)
        if ab == 0 and ba == 0:
            return 1.0
        return min(ab, ba) / max(ab, ba)

    def core_share(self) -> float:
        """Share of trips touching the core (origin or destination)."""
        touching = sum(
            c for (o, d), c in self.counts.items()
            if o is Region.CORE or d is Region.CORE
        )
        return touching / self.n_trips if self.n_trips else 0.0

    def peak_hour(self) -> int:
        """Hour of day with the most trip starts."""
        if not self.hourly:
            return 0
        return max(self.hourly, key=lambda h: (self.hourly[h], -h))


def build_od_matrix(runs: list[CustomerRun]) -> OdMatrix:
    """Aggregate customer runs into an OD matrix."""
    counts: dict[tuple[Region, Region], int] = {}
    hourly: dict[int, int] = {}
    for run in runs:
        key = (run.origin_region, run.dest_region)
        counts[key] = counts.get(key, 0) + 1
        hour = datetime.fromtimestamp(run.start_time_s, tz=timezone.utc).hour
        hourly[hour] = hourly.get(hour, 0) + 1
    return OdMatrix(counts=counts, hourly=hourly, n_trips=len(runs))


def flow_table(matrix: OdMatrix) -> list[list]:
    """The OD matrix as printable rows (origin x destination)."""
    regions = list(Region)
    rows = []
    for origin in regions:
        row: list = [origin.value]
        for destination in regions:
            row.append(matrix.flow(origin, destination))
        rows.append(row)
    return rows
