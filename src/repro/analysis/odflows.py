"""Spatio-temporal OD flow analysis.

The related work (Zhu et al. [2], Liu et al. [12]) reads city structure
out of taxi OD flows.  This module aggregates the simulator's ground
truth (or any run list) into a region-to-region flow matrix with
hour-of-day profiles, plus the summary indices urban studies use:
flow symmetry and core dominance.

:func:`gate_distance_matrix` adds the network side of the picture: the
shortest driving distance between every pair of OD gates, resolved as a
single batched query (one many-to-many matrix on a CH engine) instead of
one shortest-path call per gate pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timezone

from repro.obs import get_registry
from repro.od.gates import Gate
from repro.roadnet.graph import RoadGraph
from repro.roadnet.routing import RouteBatch, RouteCache
from repro.traces.simulator import CustomerRun, Region


@dataclass(frozen=True)
class OdMatrix:
    """Region-to-region trip counts with hourly profiles."""

    counts: dict[tuple[Region, Region], int]
    hourly: dict[int, int]
    n_trips: int

    def flow(self, origin: Region, destination: Region) -> int:
        return self.counts.get((origin, destination), 0)

    def outflow(self, region: Region) -> int:
        return sum(c for (o, __), c in self.counts.items() if o is region)

    def inflow(self, region: Region) -> int:
        return sum(c for (__, d), c in self.counts.items() if d is region)

    def symmetry(self, a: Region, b: Region) -> float:
        """min/max balance of the two directed flows (1 = symmetric)."""
        ab = self.flow(a, b)
        ba = self.flow(b, a)
        if ab == 0 and ba == 0:
            return 1.0
        return min(ab, ba) / max(ab, ba)

    def core_share(self) -> float:
        """Share of trips touching the core (origin or destination)."""
        touching = sum(
            c for (o, d), c in self.counts.items()
            if o is Region.CORE or d is Region.CORE
        )
        return touching / self.n_trips if self.n_trips else 0.0

    def peak_hour(self) -> int:
        """Hour of day with the most trip starts."""
        if not self.hourly:
            return 0
        return max(self.hourly, key=lambda h: (self.hourly[h], -h))


def build_od_matrix(runs: list[CustomerRun]) -> OdMatrix:
    """Aggregate customer runs into an OD matrix."""
    counts: dict[tuple[Region, Region], int] = {}
    hourly: dict[int, int] = {}
    for run in runs:
        key = (run.origin_region, run.dest_region)
        counts[key] = counts.get(key, 0) + 1
        hour = datetime.fromtimestamp(run.start_time_s, tz=timezone.utc).hour
        hourly[hour] = hourly.get(hour, 0) + 1
    return OdMatrix(counts=counts, hourly=hourly, n_trips=len(runs))


def flow_table(matrix: OdMatrix) -> list[list]:
    """The OD matrix as printable rows (origin x destination)."""
    regions = list(Region)
    rows = []
    for origin in regions:
        row: list = [origin.value]
        for destination in regions:
            row.append(matrix.flow(origin, destination))
        rows.append(row)
    return rows


@dataclass(frozen=True)
class GateDistanceMatrix:
    """Shortest network distances between every ordered gate pair.

    ``anchor_nodes`` records the graph node each gate was snapped to (the
    node nearest the gate road's midpoint); ``distances`` holds the
    driving distance in metres for every ordered name pair, ``inf`` when
    no legal route exists.
    """

    names: tuple[str, ...]
    anchor_nodes: dict[str, int]
    distances: dict[tuple[str, str], float]

    def distance(self, origin: str, destination: str) -> float:
        return self.distances[(origin, destination)]

    def direction_distance(self, direction: str) -> float:
        """Distance for a transition direction label like ``"T-S"``."""
        origin, sep, destination = direction.partition("-")
        if not sep:
            raise ValueError(f"not a direction label: {direction!r}")
        return self.distance(origin, destination)

    def table(self) -> list[list]:
        """Printable rows (origin x destination, metres)."""
        rows = []
        for origin in self.names:
            row: list = [origin]
            for destination in self.names:
                d = self.distances[(origin, destination)]
                row.append("-" if math.isinf(d) else round(d))
            rows.append(row)
        return rows


def gate_distance_matrix(
    graph: RoadGraph,
    gates: list[Gate],
    engine=None,
    route_cache: RouteCache | None = None,
) -> GateDistanceMatrix:
    """Route every gate-to-gate pair in one batched query.

    Each gate is anchored at the graph node nearest its road midpoint;
    all ordered pairs then resolve through one
    :class:`~repro.roadnet.routing.RouteBatch` call — a single
    many-to-many matrix query on a CH ``engine``, a plain loop on the
    flat engines — so the distances are identical to per-pair
    :func:`~repro.roadnet.routing.shortest_path` answers.
    """
    anchors: dict[str, int] = {}
    for gate in gates:
        midpoint = gate.road.interpolate(gate.road.length / 2.0)
        node = graph.nearest_node(midpoint)
        if node is None:
            raise ValueError(f"gate {gate.name!r}: no graph node near road")
        anchors[gate.name] = node.node_id
    names = tuple(gate.name for gate in gates)
    pairs = [
        (anchors[o], anchors[d])
        for o in names
        for d in names
        if anchors[o] != anchors[d]
    ]
    batch = RouteBatch(graph, weight="length", cache=route_cache, engine=engine)
    resolved = batch.resolve(pairs)
    distances: dict[tuple[str, str], float] = {}
    for o in names:
        for d in names:
            if anchors[o] == anchors[d]:
                distances[(o, d)] = 0.0
            else:
                path = resolved[(anchors[o], anchors[d])]
                distances[(o, d)] = path.cost if path.found else math.inf
    get_registry().counter("analysis.gate_matrix_builds").inc()
    return GateDistanceMatrix(
        names=names, anchor_nodes=anchors, distances=distances
    )
