"""Traffic-state estimation from probe vehicles.

GPS-equipped taxis are floating probes; pooling their matched point
speeds per road edge and hour-of-day estimates the network traffic state
(Kong et al. [14]).  The estimator is incremental: feed it matched
routes, then query per-edge states, coverage, and congestion ratios
against the free-flow speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone

from repro.features.grid import CellStats
from repro.matching.types import MatchedRoute
from repro.roadnet.graph import RoadGraph


@dataclass(frozen=True)
class EdgeState:
    """Estimated traffic state of one edge in one time bin."""

    edge_id: int
    hour_bin: int
    n_observations: int
    mean_speed_kmh: float
    speed_variance: float
    free_flow_kmh: float

    @property
    def congestion_ratio(self) -> float:
        """Observed over free-flow speed; below 1 means slower than limit."""
        if self.free_flow_kmh <= 0:
            return 1.0
        return self.mean_speed_kmh / self.free_flow_kmh


def _hour_of(time_s: float) -> int:
    return datetime.fromtimestamp(time_s, tz=timezone.utc).hour


class TrafficStateEstimator:
    """Pools matched point speeds per (edge, hour bin)."""

    def __init__(self, graph: RoadGraph, bin_hours: int = 24) -> None:
        if not 1 <= bin_hours <= 24 or 24 % bin_hours != 0:
            raise ValueError("bin_hours must divide 24")
        self.graph = graph
        self.bin_hours = bin_hours
        self._stats: dict[tuple[int, int], CellStats] = {}

    def _bin(self, time_s: float) -> int:
        return _hour_of(time_s) // self.bin_hours

    def add_route(self, route: MatchedRoute) -> int:
        """Ingest one matched route; returns observations added."""
        added = 0
        for m in route.matched:
            key = (m.edge_id, self._bin(m.point.time_s))
            stats = self._stats.get(key)
            if stats is None:
                stats = CellStats()
                self._stats[key] = stats
            stats.add(m.point.speed_kmh)
            added += 1
        return added

    def edge_state(self, edge_id: int, hour_bin: int = 0) -> EdgeState | None:
        """The estimated state of one edge/bin (None when unobserved)."""
        stats = self._stats.get((edge_id, hour_bin))
        if stats is None:
            return None
        edge = self.graph.edge(edge_id)
        return EdgeState(
            edge_id=edge_id,
            hour_bin=hour_bin,
            n_observations=stats.n,
            mean_speed_kmh=stats.mean,
            speed_variance=stats.variance,
            free_flow_kmh=edge.speed_limit_kmh,
        )

    def states(self, min_observations: int = 3) -> list[EdgeState]:
        """All sufficiently observed edge states."""
        out = []
        for (edge_id, hour_bin), stats in self._stats.items():
            if stats.n >= min_observations:
                state = self.edge_state(edge_id, hour_bin)
                if state is not None:
                    out.append(state)
        return out

    def coverage(self) -> float:
        """Fraction of graph edges with at least one observation."""
        observed = {edge_id for edge_id, __ in self._stats}
        total = self.graph.edge_count
        return len(observed) / total if total else 0.0

    def congested_edges(
        self, threshold: float = 0.6, min_observations: int = 5
    ) -> list[EdgeState]:
        """Edges whose observed speed falls below ``threshold`` x free flow."""
        return sorted(
            (
                s for s in self.states(min_observations)
                if s.congestion_ratio < threshold
            ),
            key=lambda s: s.congestion_ratio,
        )
