"""Route-frequency analysis and route recommendation.

Li et al. [18] mine how frequently taxis drive different routes between
the same endpoints; the paper's conclusions see "personalised route
recommendation" as the application of its map-context pipeline.  This
module canonicalises matched routes into edge-sequence signatures, counts
route variants per OD direction, and recommends the variant with the best
observed travel time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.types import MatchedRoute
from repro.od.transitions import Transition

RouteSignature = tuple[int, ...]


@dataclass(frozen=True)
class RouteVariant:
    """One distinct route between an OD pair."""

    direction: str
    signature: RouteSignature
    count: int
    share: float
    mean_time_s: float
    best_time_s: float


@dataclass(frozen=True)
class DirectionProfile:
    """All observed route variants of one direction."""

    direction: str
    n_trips: int
    variants: tuple[RouteVariant, ...]

    @property
    def n_variants(self) -> int:
        return len(self.variants)

    @property
    def diversity(self) -> float:
        """Effective number of routes (inverse Simpson index).

        1.0 means everyone drives the same route; the paper's drivers
        "freely selected the routes", so values above 1 are expected.
        """
        if not self.variants:
            return 0.0
        return 1.0 / sum(v.share**2 for v in self.variants)

    def most_frequent(self) -> RouteVariant:
        return max(self.variants, key=lambda v: v.count)

    def fastest(self) -> RouteVariant:
        """The recommendation: the variant with the best mean time."""
        return min(self.variants, key=lambda v: v.mean_time_s)


def route_signature(route: MatchedRoute) -> RouteSignature:
    """Canonical signature: the ordered edge-id sequence, deduplicated of
    immediate repeats (matching noise can re-enter an edge)."""
    out: list[int] = []
    for edge_id in route.edge_ids:
        if not out or out[-1] != edge_id:
            out.append(edge_id)
    return tuple(out)


def build_direction_profiles(
    pairs: list[tuple[Transition, MatchedRoute]],
) -> dict[str, DirectionProfile]:
    """Group matched transitions into per-direction route profiles."""
    grouped: dict[str, dict[RouteSignature, list[float]]] = {}
    for transition, route in pairs:
        signature = route_signature(route)
        duration = route.end_time_s - route.start_time_s
        grouped.setdefault(transition.direction, {}).setdefault(
            signature, []
        ).append(duration)
    profiles: dict[str, DirectionProfile] = {}
    for direction, variants in grouped.items():
        n_trips = sum(len(times) for times in variants.values())
        rows = []
        for signature, times in variants.items():
            rows.append(
                RouteVariant(
                    direction=direction,
                    signature=signature,
                    count=len(times),
                    share=len(times) / n_trips,
                    mean_time_s=sum(times) / len(times),
                    best_time_s=min(times),
                )
            )
        rows.sort(key=lambda v: -v.count)
        profiles[direction] = DirectionProfile(
            direction=direction, n_trips=n_trips, variants=tuple(rows)
        )
    return profiles


def overlap_fraction(a: RouteSignature, b: RouteSignature) -> float:
    """Shared-edge fraction of two routes (Jaccard on edge sets)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    return len(sa & sb) / len(sa | sb)


@dataclass(frozen=True)
class DirectionDetour:
    """How far one direction's observed routes stray from the shortest.

    ``shortest_m`` is the gate-to-gate network distance from a
    :class:`~repro.analysis.odflows.GateDistanceMatrix`; ``typical_m``
    and ``fastest_m`` are the driven lengths of the direction's most
    frequent and recommended (fastest mean time) variants.
    """

    direction: str
    shortest_m: float
    typical_m: float
    fastest_m: float

    @property
    def typical_detour(self) -> float:
        """Driven/shortest length ratio of the most frequent variant."""
        return self.typical_m / self.shortest_m if self.shortest_m else 1.0

    @property
    def fastest_detour(self) -> float:
        return self.fastest_m / self.shortest_m if self.shortest_m else 1.0


def route_length_m(graph, signature: RouteSignature) -> float:
    """Driven length of a route signature (sum of edge lengths)."""
    return sum(graph.edge(edge_id).length for edge_id in signature)


def direction_detours(
    graph,
    profiles: dict[str, DirectionProfile],
    matrix,
) -> dict[str, DirectionDetour]:
    """Detour statistics per direction against one gate-to-gate matrix.

    ``matrix`` is a :class:`~repro.analysis.odflows.GateDistanceMatrix`
    (built once, from a single batched query) keyed by the same gate
    names the direction labels are made of; directions whose gates are
    not in the matrix — or with no finite shortest distance — are
    skipped.
    """
    out: dict[str, DirectionDetour] = {}
    for direction, profile in sorted(profiles.items()):
        if not profile.variants:
            continue
        try:
            shortest = matrix.direction_distance(direction)
        except (KeyError, ValueError):
            continue
        if shortest == float("inf"):
            continue
        out[direction] = DirectionDetour(
            direction=direction,
            shortest_m=shortest,
            typical_m=route_length_m(graph, profile.most_frequent().signature),
            fastest_m=route_length_m(graph, profile.fastest().signature),
        )
    return out
