"""Pedestrian crowd model and fusion with speed residuals.

The paper explains area B (slow cells with no lights or bus stops) by
real pedestrian movements, citing the city-wide WiFi study of Kostakos
et al.  This module provides the matching data source: a deterministic
WiFi-access-point client-count model whose crowd mass follows the city's
hotspot polygons, plus the fusion step — regressing the mixed model's
cell intercepts on pedestrian counts to show pedestrians explain slowness
beyond static map features.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.features.grid import CellKey, GridSpec
from repro.roadnet.synthcity import SyntheticCity
from repro.stats.ols import OlsResult, fit_ols


@dataclass(frozen=True)
class AccessPoint:
    """One WiFi access point with a mean client load."""

    ap_id: int
    position: tuple[float, float]
    base_clients: float


class PedestrianModel:
    """Deterministic WiFi client counts over the study area.

    Access points sit on a coarse grid over the centre; their client load
    decays with distance from the centre and is boosted inside hotspot
    polygons (where the crowds actually are).  Counts are deterministic
    in (ap, hour) so analysis code is reproducible.
    """

    def __init__(self, city: SyntheticCity, spacing_m: float = 200.0,
                 extent_m: float = 1000.0, seed: int = 29) -> None:
        self.city = city
        self.seed = seed
        self.access_points: list[AccessPoint] = []
        ap_id = 1
        steps = int(2 * extent_m / spacing_m) + 1
        for i in range(steps):
            for j in range(steps):
                x = -extent_m + i * spacing_m
                y = -extent_m + j * spacing_m
                r = math.hypot(x, y)
                base = 30.0 * math.exp(-r / 500.0)
                if city.in_hotspot((x, y)):
                    base += 60.0
                if base >= 1.0:
                    self.access_points.append(
                        AccessPoint(ap_id=ap_id, position=(x, y), base_clients=base)
                    )
                    ap_id += 1

    def clients_at(self, ap: AccessPoint, hour: int) -> float:
        """Expected connected clients at one AP for an hour of day."""
        if not 0 <= hour <= 23:
            raise ValueError("hour must be in 0..23")
        # Diurnal shape: quiet nights, lunchtime and evening peaks.
        diurnal = 0.15 + 0.85 * math.exp(-((hour - 14.5) ** 2) / 18.0)
        jitter = self._jitter(ap.ap_id, hour)
        return max(0.0, ap.base_clients * diurnal * (1.0 + jitter))

    def _jitter(self, ap_id: int, hour: int) -> float:
        digest = hashlib.sha256(f"{self.seed}:{ap_id}:{hour}".encode()).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        return (u - 0.5) * 0.3

    def cell_counts(self, spec: GridSpec, hour: int = 14) -> dict[CellKey, float]:
        """Total expected clients per analysis-grid cell."""
        out: dict[CellKey, float] = {}
        for ap in self.access_points:
            key = spec.cell_of(ap.position)
            out[key] = out.get(key, 0.0) + self.clients_at(ap, hour)
        return out


def fuse_with_intercepts(
    intercepts: dict[CellKey, float],
    pedestrian_counts: dict[CellKey, float],
    cell_features: dict[CellKey, dict[str, int]],
) -> OlsResult:
    """Regress cell intercepts on pedestrians, controlling for map features.

    A negative pedestrian coefficient means crowds slow traffic beyond
    what lights/bus stops/crossings explain — the paper's area-B reading.
    """
    cells = sorted(intercepts)
    y = [intercepts[c] for c in cells]
    covariates = {
        "pedestrians": [pedestrian_counts.get(c, 0.0) for c in cells],
        "traffic_lights": [
            float(cell_features.get(c, {}).get("traffic_lights", 0)) for c in cells
        ],
        "bus_stops": [
            float(cell_features.get(c, {}).get("bus_stops", 0)) for c in cells
        ],
        "pedestrian_crossings": [
            float(cell_features.get(c, {}).get("pedestrian_crossings", 0))
            for c in cells
        ],
    }
    return fit_ols(y, covariates)
