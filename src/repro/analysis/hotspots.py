"""Pick-up/drop-off hotspot detection.

Taxis dwell where customers appear; clustering the dwell locations
reveals the hotspots the related work mines taxi traces for.  The
detector extracts dwell events from cleaned raw trips (stationary gaps
between trip segments) and clusters them with DBSCAN, implemented from
scratch on the grid spatial index.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.geometry import Point
from repro.geo.index import GridIndex
from repro.traces.model import FleetData

#: A gap counts as a dwell when the vehicle moved less than this ...
DWELL_MAX_MOVE_M = 40.0
#: ... over at least this long.
DWELL_MIN_DURATION_S = 150.0


@dataclass(frozen=True)
class DwellEvent:
    """One stationary period of one taxi (a likely customer event)."""

    car_id: int
    trip_id: int
    position: Point          # local metric plane
    start_s: float
    duration_s: float


@dataclass(frozen=True)
class Hotspot:
    """A cluster of dwell events."""

    centroid: Point
    n_events: int
    n_cars: int
    total_dwell_s: float
    member_indices: tuple[int, ...]


def extract_dwells(fleet: FleetData, to_xy) -> list[DwellEvent]:
    """Find stationary gaps in raw trips.

    ``to_xy`` converts a route point to plane coordinates.  Consecutive
    points closer than :data:`DWELL_MAX_MOVE_M` over at least
    :data:`DWELL_MIN_DURATION_S` form one dwell (merged while it lasts).
    """
    dwells: list[DwellEvent] = []
    for trip in fleet.trips:
        points = sorted(trip.points, key=lambda p: p.time_s)
        i = 0
        while i < len(points) - 1:
            x0, y0 = to_xy(points[i])
            j = i + 1
            while j < len(points):
                xj, yj = to_xy(points[j])
                if math.hypot(xj - x0, yj - y0) > DWELL_MAX_MOVE_M:
                    break
                j += 1
            duration = points[j - 1].time_s - points[i].time_s
            if duration >= DWELL_MIN_DURATION_S:
                dwells.append(
                    DwellEvent(
                        car_id=trip.car_id,
                        trip_id=trip.trip_id,
                        position=(x0, y0),
                        start_s=points[i].time_s,
                        duration_s=duration,
                    )
                )
                i = j
            else:
                i += 1
    return dwells


def dbscan(
    points: list[Point], eps: float, min_pts: int
) -> list[int]:
    """Density-based clustering; returns a label per point (-1 = noise).

    Classic DBSCAN with neighbourhood queries served by the grid index,
    so the overall cost is near-linear for city-scale inputs.
    """
    if eps <= 0 or min_pts < 1:
        raise ValueError("eps must be positive and min_pts at least 1")
    index: GridIndex[int] = GridIndex(cell_size=max(eps, 1.0))
    for i, p in enumerate(points):
        index.insert(i, p[0], p[1], p[0], p[1])

    def neighbours(i: int) -> list[int]:
        px, py = points[i]
        out = []
        for j in index.query_radius((px, py), eps):
            qx, qy = points[j]
            if math.hypot(px - qx, py - qy) <= eps:
                out.append(j)
        return out

    labels = [None] * len(points)
    cluster = -1
    for i in range(len(points)):
        if labels[i] is not None:
            continue
        seeds = neighbours(i)
        if len(seeds) < min_pts:
            labels[i] = -1
            continue
        cluster += 1
        labels[i] = cluster
        queue = [j for j in seeds if j != i]
        while queue:
            j = queue.pop()
            if labels[j] == -1:
                labels[j] = cluster       # border point, was noise
            if labels[j] is not None:
                continue
            labels[j] = cluster
            j_neigh = neighbours(j)
            if len(j_neigh) >= min_pts:
                queue.extend(k for k in j_neigh if labels[k] is None or labels[k] == -1)
    return [lab if lab is not None else -1 for lab in labels]


def detect_hotspots(
    dwells: list[DwellEvent], eps: float = 150.0, min_pts: int = 5
) -> list[Hotspot]:
    """Cluster dwell events into hotspots, largest first."""
    if not dwells:
        return []
    labels = dbscan([d.position for d in dwells], eps, min_pts)
    groups: dict[int, list[int]] = {}
    for i, label in enumerate(labels):
        if label >= 0:
            groups.setdefault(label, []).append(i)
    hotspots = []
    for members in groups.values():
        xs = [dwells[i].position[0] for i in members]
        ys = [dwells[i].position[1] for i in members]
        hotspots.append(
            Hotspot(
                centroid=(sum(xs) / len(xs), sum(ys) / len(ys)),
                n_events=len(members),
                n_cars=len({dwells[i].car_id for i in members}),
                total_dwell_s=sum(dwells[i].duration_s for i in members),
                member_indices=tuple(members),
            )
        )
    hotspots.sort(key=lambda h: -h.n_events)
    return hotspots
