"""Typed row store with schema validation.

A :class:`Table` holds rows as plain dicts validated against a declared
schema.  It is deliberately small: enough to model the paper's PostgreSQL
tables (trips, route points, junction pairs, traffic elements) with honest
type checking, primary keys, and incremental secondary indexes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping
from dataclasses import dataclass
from typing import Any

Row = dict[str, Any]


@dataclass(frozen=True)
class Column:
    """A table column: name, accepted Python type(s), nullability.

    ``type_`` may be a type or a tuple of types (``isinstance`` semantics).
    A ``check`` callable, when given, must return True for valid values.
    """

    name: str
    type_: type | tuple[type, ...]
    nullable: bool = False
    check: Callable[[Any], bool] | None = None

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` when ``value`` is not acceptable."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return
        if not isinstance(value, self.type_):
            raise SchemaError(
                f"column {self.name!r} expects {self.type_}, got {type(value).__name__}"
            )
        if self.check is not None and not self.check(value):
            raise SchemaError(f"column {self.name!r} check failed for {value!r}")


class SchemaError(ValueError):
    """Row does not conform to the table schema."""


class ConstraintError(ValueError):
    """Primary-key or uniqueness violation."""


@dataclass
class _TableStats:
    inserts: int = 0
    deletes: int = 0
    updates: int = 0
    scans: int = 0


class Table:
    """A typed in-memory table.

    Rows are stored in a dict keyed by primary key.  When ``pk`` is omitted
    an auto-increment integer key named ``"id"`` is generated.  Secondary
    indexes (see :mod:`repro.store.index`) and spatial columns register
    themselves via :meth:`attach_observer` and are maintained on every
    mutation.
    """

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        pk: str | None = None,
    ) -> None:
        self.name = name
        self.columns: dict[str, Column] = {}
        for col in columns:
            if col.name in self.columns:
                raise SchemaError(f"duplicate column {col.name!r}")
            self.columns[col.name] = col
        self._auto_pk = pk is None
        self.pk = pk if pk is not None else "id"
        if self._auto_pk and "id" not in self.columns:
            self.columns["id"] = Column("id", int)
        if self.pk not in self.columns:
            raise SchemaError(f"primary key {self.pk!r} is not a column")
        self._rows: dict[Any, Row] = {}
        self._next_id = 1
        self._observers: list[Any] = []
        self._indexes: dict[str, Any] = {}
        self.stats = _TableStats()

    # -- observers ---------------------------------------------------------

    def attach_observer(self, observer: Any) -> None:
        """Register an index-like observer.

        Observers must implement ``on_insert(pk, row)`` and
        ``on_delete(pk, row)``.  Existing rows are replayed on attach.
        """
        self._observers.append(observer)
        for key, row in self._rows.items():
            observer.on_insert(key, row)

    def register_index(self, column: str, index: Any) -> None:
        """Make an index available to the query planner for ``column``.

        The most recently registered index per column wins (a sorted index
        registered after a hash index takes over range queries).
        """
        if column not in self.columns:
            raise SchemaError(f"no column {column!r} in table {self.name!r}")
        self._indexes[column] = index

    def index_for(self, column: str) -> Any | None:
        """The registered index on ``column``, if any."""
        return self._indexes.get(column)

    # -- mutation ----------------------------------------------------------

    def insert(self, row: Mapping[str, Any]) -> Any:
        """Insert a row; returns its primary key.

        Unknown columns are rejected; missing nullable columns become None;
        a missing auto primary key is generated.
        """
        data: Row = dict(row)
        unknown = set(data) - set(self.columns)
        if unknown:
            raise SchemaError(f"unknown column(s) {sorted(unknown)!r} for table {self.name!r}")
        if self._auto_pk and self.pk not in data:
            data[self.pk] = self._next_id
            self._next_id += 1
        for col in self.columns.values():
            if col.name not in data:
                data[col.name] = None
            col.validate(data[col.name])
        key = data[self.pk]
        if key in self._rows:
            raise ConstraintError(f"duplicate primary key {key!r} in table {self.name!r}")
        if self._auto_pk and isinstance(key, int) and key >= self._next_id:
            self._next_id = key + 1
        self._rows[key] = data
        self.stats.inserts += 1
        for obs in self._observers:
            obs.on_insert(key, data)
        return key

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> list[Any]:
        """Insert several rows, returning their primary keys."""
        return [self.insert(r) for r in rows]

    def delete(self, key: Any) -> Row:
        """Remove and return the row with primary key ``key``."""
        try:
            row = self._rows.pop(key)
        except KeyError:
            raise KeyError(f"no row {key!r} in table {self.name!r}") from None
        self.stats.deletes += 1
        for obs in self._observers:
            obs.on_delete(key, row)
        return row

    def update(self, key: Any, **changes: Any) -> Row:
        """Update columns of an existing row; primary key may not change."""
        if self.pk in changes:
            raise ConstraintError("primary key cannot be updated")
        row = self.get(key)
        unknown = set(changes) - set(self.columns)
        if unknown:
            raise SchemaError(f"unknown column(s) {sorted(unknown)!r}")
        new_row = dict(row)
        new_row.update(changes)
        for name, value in changes.items():
            self.columns[name].validate(value)
        for obs in self._observers:
            obs.on_delete(key, row)
        self._rows[key] = new_row
        self.stats.updates += 1
        for obs in self._observers:
            obs.on_insert(key, new_row)
        return new_row

    def clear(self) -> None:
        """Remove all rows (observers are notified per row)."""
        for key in list(self._rows):
            self.delete(key)

    # -- access ------------------------------------------------------------

    def get(self, key: Any) -> Row:
        """Row with primary key ``key`` (KeyError if absent)."""
        try:
            return self._rows[key]
        except KeyError:
            raise KeyError(f"no row {key!r} in table {self.name!r}") from None

    def get_or_none(self, key: Any) -> Row | None:
        return self._rows.get(key)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Any) -> bool:
        return key in self._rows

    def __iter__(self) -> Iterator[Row]:
        self.stats.scans += 1
        return iter(list(self._rows.values()))

    def keys(self) -> list[Any]:
        return list(self._rows.keys())

    def rows(self) -> list[Row]:
        """All rows (a fresh list; mutating it does not affect the table)."""
        self.stats.scans += 1
        return list(self._rows.values())

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows, cols={list(self.columns)})"


def field_names(table: Table) -> list[str]:
    """Column names of ``table`` in declaration order."""
    return list(table.columns)
