"""Secondary indexes over :class:`~repro.store.table.Table`.

Two kinds, mirroring what the paper's PostgreSQL schema would use:

* :class:`HashIndex` — equality lookups (``trip_id -> route points``);
* :class:`SortedIndex` — range scans (``timestamp BETWEEN ..``) backed by a
  sorted key list maintained with :mod:`bisect`.

Both are table observers: attach them with ``table.attach_observer(index)``
(done automatically by the convenience constructors) and they stay
consistent through inserts, updates and deletes.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator
from typing import Any

from repro.store.table import Row, Table


class HashIndex:
    """Equality index on one column.

    Maps column value -> set of primary keys.  ``None`` values are indexed
    too (under ``None``), matching SQL ``IS NULL`` scans.
    """

    def __init__(self, table: Table, column: str) -> None:
        if column not in table.columns:
            raise KeyError(f"no column {column!r} in table {table.name!r}")
        self.table = table
        self.column = column
        self._map: dict[Any, set[Any]] = {}
        table.attach_observer(self)
        table.register_index(column, self)

    # observer protocol ----------------------------------------------------

    def on_insert(self, pk: Any, row: Row) -> None:
        self._map.setdefault(row[self.column], set()).add(pk)

    def on_delete(self, pk: Any, row: Row) -> None:
        bucket = self._map.get(row[self.column])
        if bucket is not None:
            bucket.discard(pk)
            if not bucket:
                del self._map[row[self.column]]

    # queries ---------------------------------------------------------------

    def lookup(self, value: Any) -> list[Row]:
        """Rows whose indexed column equals ``value``."""
        return [self.table.get(pk) for pk in self._map.get(value, ())]

    def keys(self, value: Any) -> set[Any]:
        """Primary keys whose indexed column equals ``value``."""
        return set(self._map.get(value, set()))

    def distinct_values(self) -> list[Any]:
        """All distinct indexed values."""
        return list(self._map.keys())

    def __len__(self) -> int:
        return len(self._map)


class SortedIndex:
    """Range index on one column (values must be mutually comparable)."""

    def __init__(self, table: Table, column: str) -> None:
        if column not in table.columns:
            raise KeyError(f"no column {column!r} in table {table.name!r}")
        self.table = table
        self.column = column
        self._keys: list[Any] = []       # sorted column values
        self._pks: list[Any] = []        # primary keys aligned with _keys
        table.attach_observer(self)
        table.register_index(column, self)

    # observer protocol ----------------------------------------------------

    def on_insert(self, pk: Any, row: Row) -> None:
        value = row[self.column]
        if value is None:
            return
        i = bisect.bisect_right(self._keys, value)
        self._keys.insert(i, value)
        self._pks.insert(i, pk)

    def on_delete(self, pk: Any, row: Row) -> None:
        value = row[self.column]
        if value is None:
            return
        i = bisect.bisect_left(self._keys, value)
        while i < len(self._keys) and self._keys[i] == value:
            if self._pks[i] == pk:
                del self._keys[i]
                del self._pks[i]
                return
            i += 1

    # queries ---------------------------------------------------------------

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Row]:
        """Rows with indexed value in the given (optionally open) range."""
        if low is None:
            i0 = 0
        elif include_low:
            i0 = bisect.bisect_left(self._keys, low)
        else:
            i0 = bisect.bisect_right(self._keys, low)
        if high is None:
            i1 = len(self._keys)
        elif include_high:
            i1 = bisect.bisect_right(self._keys, high)
        else:
            i1 = bisect.bisect_left(self._keys, high)
        for pk in self._pks[i0:i1]:
            yield self.table.get(pk)

    def min(self) -> Any:
        """Smallest indexed value (None when empty)."""
        return self._keys[0] if self._keys else None

    def max(self) -> Any:
        """Largest indexed value (None when empty)."""
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._keys)
