"""Embedded typed table store — the pipeline's PostgreSQL/PostGIS substitute.

The paper stores trips, route points and the road-network graph in
PostgreSQL 9.1 with PostGIS, and manipulates them with SQL/PLpgSQL.  This
package provides the same logical capabilities in pure Python:

* :class:`~repro.store.table.Table` — a typed, schema-validated row store
  with per-column type checking and auto-increment primary keys;
* :class:`~repro.store.index.HashIndex` / :class:`~repro.store.index.SortedIndex`
  — equality and range indexes maintained incrementally;
* :mod:`repro.store.query` — a small composable predicate/query layer
  (select, where, order_by, aggregate);
* :class:`~repro.store.spatial.SpatialColumn` — a PostGIS-style spatial
  index over a geometry column (radius / box / nearest queries);
* :class:`~repro.store.database.Database` — a named container of tables.
"""

from repro.store.database import Database
from repro.store.index import HashIndex, SortedIndex
from repro.store.query import (
    Query,
    and_,
    between,
    eq,
    ge,
    gt,
    in_,
    le,
    lt,
    ne,
    not_,
    or_,
    where,
)
from repro.store.spatial import SpatialColumn
from repro.store.table import Column, Row, Table

__all__ = [
    "Column",
    "Database",
    "HashIndex",
    "Query",
    "Row",
    "SortedIndex",
    "SpatialColumn",
    "Table",
    "and_",
    "between",
    "eq",
    "ge",
    "gt",
    "in_",
    "le",
    "lt",
    "ne",
    "not_",
    "or_",
    "where",
]
