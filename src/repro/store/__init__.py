"""Embedded typed table store — the pipeline's PostgreSQL/PostGIS substitute.

The paper stores trips, route points and the road-network graph in
PostgreSQL 9.1 with PostGIS, and manipulates them with SQL/PLpgSQL.  This
package provides the same logical capabilities in pure Python:

* :class:`~repro.store.table.Table` — a typed, schema-validated row store
  with per-column type checking and auto-increment primary keys;
* :class:`~repro.store.index.HashIndex` / :class:`~repro.store.index.SortedIndex`
  — equality and range indexes maintained incrementally;
* :mod:`repro.store.query` — a small composable predicate/query layer
  (select, where, order_by, aggregate);
* :class:`~repro.store.spatial.SpatialColumn` — a PostGIS-style spatial
  index over a geometry column (radius / box / nearest queries);
* :class:`~repro.store.database.Database` — a named container of tables.

It also hosts the **sharded artefact store** behind ``repro study``'s
delta recomputation: :class:`~repro.store.shards.ShardStore` persists
per-(city, day) stage outputs content-addressed by
:mod:`repro.store.cachekey`, and :class:`~repro.store.planner.StudyPlanner`
(imported directly, not re-exported — it pulls in the pipeline stages)
recomputes only dirty shards.
"""

from repro.store.cachekey import (
    EXCLUDED_FIELDS,
    STAGE_FIELDS,
    STAGES,
    canonical,
    chain_key,
    code_version,
    config_key,
    shard_input_hash,
)
from repro.store.database import Database
from repro.store.index import HashIndex, SortedIndex
from repro.store.query import (
    Query,
    and_,
    between,
    eq,
    ge,
    gt,
    in_,
    le,
    lt,
    ne,
    not_,
    or_,
    where,
)
from repro.store.shards import ShardArtefact, ShardStore, StoreConfig, StoreError
from repro.store.spatial import SpatialColumn
from repro.store.table import Column, Row, Table

__all__ = [
    "Column",
    "Database",
    "EXCLUDED_FIELDS",
    "HashIndex",
    "Query",
    "Row",
    "STAGES",
    "STAGE_FIELDS",
    "ShardArtefact",
    "ShardStore",
    "SortedIndex",
    "SpatialColumn",
    "StoreConfig",
    "StoreError",
    "Table",
    "canonical",
    "chain_key",
    "code_version",
    "config_key",
    "shard_input_hash",
    "and_",
    "between",
    "eq",
    "ge",
    "gt",
    "in_",
    "le",
    "lt",
    "ne",
    "not_",
    "or_",
    "where",
]
