"""A named container of tables — the "DBMS" the pipeline runs against."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.store.table import Column, Table


class Database:
    """Holds named tables; mirrors the single PostgreSQL database the paper
    stores trips, route points and the road graph in."""

    def __init__(self, name: str = "taxidb") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}

    def create_table(
        self, name: str, columns: Iterable[Column], pk: str | None = None
    ) -> Table:
        """Create and register a table; name must be unique."""
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, columns, pk=pk)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table (KeyError if absent)."""
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table {name!r} in database {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def table_names(self) -> list[str]:
        return list(self._tables)

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={self.table_names()})"
