"""Content-hash keys for the sharded study store.

Every artefact in :class:`~repro.store.shards.ShardStore` is addressed by
a blake2b key derived from three ingredients:

1. the **input shard bytes** — the raw route points of the shard's trips,
   hashed column-by-column (:func:`shard_input_hash`);
2. the **canonicalised study config** — the subset of
   :class:`~repro.experiments.study.StudyConfig` fields the producing
   stage actually depends on (:data:`STAGE_FIELDS`), rendered to
   canonical JSON (:func:`canonical`);
3. the **code version** — a hash over every ``repro`` source file
   (:func:`code_version`), so any code change is a full cache miss.

Stage keys chain (:func:`chain_key`): the ``extract`` key hashes the
``clean`` key, which hashes the input shard — a config change dirties a
stage and everything downstream of it, and nothing upstream.

Every ``StudyConfig`` field MUST appear either in :data:`STAGE_FIELDS`
or in :data:`EXCLUDED_FIELDS` (with a reason); ``tools/lint_cache_keys.py``
enforces this, so a newly added config knob cannot silently produce
stale cache hits.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path

#: Bumped whenever the artefact layout or codecs change shape; part of
#: every key, so old stores simply miss instead of mis-decoding.
SCHEMA_VERSION = 1

#: The cached pipeline stages, in DAG order.
STAGES = ("clean", "extract", "match", "features")

#: Which ``StudyConfig`` fields each stage's key hashes.  A stage's key
#: also chains the previous stage's key, so fields only need to appear
#: at the first stage that consumes them — e.g. ``city`` first matters
#: when gate geometry enters at ``extract``.
STAGE_FIELDS: dict[str, tuple[str, ...]] = {
    "clean": ("robustness", "faults"),
    "extract": ("city", "transition"),
    "match": ("city", "transition", "matcher", "robustness", "faults"),
    # Chained off the match key, which already covers everything the
    # Table 4 route statistics depend on.
    "features": (),
}

#: ``StudyConfig`` fields that never enter a key, with the reason why.
#: The lint accepts a field here as covered; keep the reasons honest.
EXCLUDED_FIELDS: dict[str, str] = {
    "fleet": "captured by the input shard bytes every key already hashes",
    "executor": "scheduling only; serial/parallel byte-identity is enforced "
                "by tests, and the vectorized kernels (cleaning/candidate "
                "batch, batched gap-fill, vectorized Viterbi) are "
                "bitwise-equivalent to their scalar references",
    "store": "where artefacts live, not what they contain",
    "grid": "consumed only by the orchestrator fold (grid replay, Table 5); "
            "no shard artefact depends on it",
}


def canonical(obj) -> object:
    """A JSON-serialisable canonical form of a config value.

    Dataclasses become sorted field dicts, dict keys are stringified and
    sorted at serialisation time, tuples become lists.  Floats pass
    through untouched — ``json.dumps`` renders the shortest round-trip
    repr, so distinct doubles always produce distinct key material.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.init
        }
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__!r} for cache keying"
    )


def _hash_doc(doc: object) -> str:
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode(), digest_size=20).hexdigest()


def config_key(config, stage: str) -> str:
    """Key material for one stage's slice of the study config."""
    doc = {
        "schema": SCHEMA_VERSION,
        "stage": stage,
        "fields": {
            name: canonical(getattr(config, name))
            for name in STAGE_FIELDS[stage]
        },
    }
    return _hash_doc(doc)


def city_key(config) -> str:
    """Short identity of the city spec — the shard label's city half."""
    return _hash_doc(canonical(config.city))


def shard_input_hash(trips) -> str:
    """Content hash of a shard's raw input trips.

    Hashes the columnar bytes of every route point (ids, coordinates,
    timestamps, speeds, fuel) plus the trip identities — exactly the
    data the pipeline consumes, so byte-identical inputs always hit and
    any edited fix is a miss.
    """
    from repro.traces.arrays import TraceArrays

    h = hashlib.blake2b(digest_size=20)
    for trip in trips:
        h.update(f"t|{trip.trip_id}|{trip.car_id}|{len(trip.points)}".encode())
        arrays = TraceArrays.from_trip(trip)
        for name, column in sorted(arrays.columns().items()):
            h.update(name.encode())
            h.update(column.tobytes())
    return h.hexdigest()


def chain_key(*parts: str) -> str:
    """Key of a stage artefact from its upstream key and config key."""
    h = hashlib.blake2b(digest_size=20)
    for part in parts:
        h.update(part.encode())
        h.update(b"|")
    return h.hexdigest()


@lru_cache(maxsize=1)
def _source_version() -> str:
    """blake2b over every ``repro`` source file (path + bytes)."""
    root = Path(__file__).resolve().parent.parent  # src/repro
    h = hashlib.blake2b(digest_size=20)
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        h.update(str(path.relative_to(root)).encode())
        h.update(path.read_bytes())
    return h.hexdigest()


def code_version() -> str:
    """The code-version ingredient of every cache key.

    Any change to a ``repro`` source file produces a new version — a
    coarse but safe invalidation (a full miss beats a stale hit).  The
    ``REPRO_CODE_VERSION`` environment variable overrides it, which is
    how tests and CI simulate version bumps without editing files.
    """
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    return _source_version()
