"""Composable predicate queries over tables, with index-aware planning.

A tiny relational query layer: predicates are *structured* comparator
objects (still plain callables ``Row -> bool``), combined with
:func:`and_` / :func:`or_`, and executed by :class:`Query` which supports
projection, ordering, limits and simple aggregates.

Because comparators carry their column, operator and operand, the query
planner can serve them from a registered :class:`~repro.store.index.HashIndex`
(equality, IN) or :class:`~repro.store.index.SortedIndex` (ranges) instead
of scanning the table — the subset of SQL planning the paper's PLpgSQL
pre-processing leaned on.  ``Query.plan()`` explains the chosen strategy.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Any

from repro.store.table import Row, Table

Predicate = Callable[[Row], bool]


@dataclass(frozen=True)
class Comparison:
    """A structured single-column comparison predicate."""

    column: str
    op: str           # one of: eq ne lt le gt ge in between isnull
    value: Any = None
    high: Any = None  # only for "between"

    _OPS = {
        "eq": operator.eq, "ne": operator.ne,
        "lt": operator.lt, "le": operator.le,
        "gt": operator.gt, "ge": operator.ge,
    }

    def __call__(self, row: Row) -> bool:
        v = row.get(self.column)
        if self.op == "isnull":
            return v is None
        if v is None:
            return False
        if self.op == "in":
            return v in self.value
        if self.op == "between":
            return self.value <= v <= self.high
        return self._OPS[self.op](v, self.value)

    def describe(self) -> str:
        if self.op == "isnull":
            return f"{self.column} IS NULL"
        if self.op == "in":
            return f"{self.column} IN ({len(self.value)} values)"
        if self.op == "between":
            return f"{self.column} BETWEEN {self.value!r} AND {self.high!r}"
        symbol = {"eq": "=", "ne": "<>", "lt": "<", "le": "<=",
                  "gt": ">", "ge": ">="}[self.op]
        return f"{self.column} {symbol} {self.value!r}"


def eq(column: str, value: Any) -> Predicate:
    """``column = value`` (NULL never matches; ``eq(c, None)`` is IS NULL)."""
    if value is None:
        return Comparison(column, "isnull")
    return Comparison(column, "eq", value)


def ne(column: str, value: Any) -> Predicate:
    """``column <> value``."""
    return Comparison(column, "ne", value)


def lt(column: str, value: Any) -> Predicate:
    """``column < value``."""
    return Comparison(column, "lt", value)


def le(column: str, value: Any) -> Predicate:
    """``column <= value``."""
    return Comparison(column, "le", value)


def gt(column: str, value: Any) -> Predicate:
    """``column > value``."""
    return Comparison(column, "gt", value)


def ge(column: str, value: Any) -> Predicate:
    """``column >= value``."""
    return Comparison(column, "ge", value)


def in_(column: str, values: Iterable[Any]) -> Predicate:
    """``column IN (values)``."""
    return Comparison(column, "in", frozenset(values))


def between(column: str, low: Any, high: Any) -> Predicate:
    """``column BETWEEN low AND high`` (inclusive)."""
    return Comparison(column, "between", low, high)


def and_(*preds: Predicate) -> Predicate:
    """Conjunction of predicates."""
    return lambda row: all(p(row) for p in preds)


def or_(*preds: Predicate) -> Predicate:
    """Disjunction of predicates."""
    return lambda row: any(p(row) for p in preds)


def not_(pred: Predicate) -> Predicate:
    """Negation of a predicate."""
    return lambda row: not pred(row)


class Query:
    """A lazily-built query over a table.

    Example::

        rows = (Query(points)
                .where(eq("trip_id", 42))
                .order_by("timestamp")
                .all())

    When the table has a registered index covering one of the ``where``
    comparisons (see :meth:`repro.store.table.Table.register_index`), the
    planner fetches the candidate rows from the index and applies the
    remaining predicates to that subset instead of scanning the table.
    """

    def __init__(self, table: Table) -> None:
        self.table = table
        self._preds: list[Predicate] = []
        self._order: str | None = None
        self._desc = False
        self._limit: int | None = None

    def where(self, pred: Predicate) -> "Query":
        """Add a filter predicate (AND semantics across calls)."""
        self._preds.append(pred)
        return self

    def order_by(self, column: str, desc: bool = False) -> "Query":
        """Order results by a column."""
        self._order = column
        self._desc = desc
        return self

    def limit(self, n: int) -> "Query":
        """Keep at most ``n`` rows."""
        if n < 0:
            raise ValueError("limit must be non-negative")
        self._limit = n
        return self

    # planning -----------------------------------------------------------------

    def _pick_index(self):
        """(index, comparison) serving one predicate, or (None, None)."""
        for pred in self._preds:
            if not isinstance(pred, Comparison):
                continue
            index = self.table.index_for(pred.column)
            if index is None:
                continue
            kind = type(index).__name__
            if kind == "HashIndex" and pred.op in ("eq", "in", "isnull"):
                return index, pred
            if kind == "SortedIndex" and pred.op in (
                "lt", "le", "gt", "ge", "between", "eq"
            ):
                return index, pred
        return None, None

    def plan(self) -> str:
        """Explain the access path this query would use."""
        index, pred = self._pick_index()
        if index is None:
            return f"full scan of {self.table.name!r}"
        return (
            f"{type(index).__name__} on {self.table.name!r}.{pred.column} "
            f"for [{pred.describe()}]"
        )

    def _candidates(self) -> tuple[list[Row], Predicate | None]:
        """Candidate rows plus the predicate the index already satisfied."""
        index, pred = self._pick_index()
        if index is None:
            return self.table.rows(), None
        kind = type(index).__name__
        if kind == "HashIndex":
            if pred.op == "eq":
                return index.lookup(pred.value), pred
            if pred.op == "isnull":
                return index.lookup(None), pred
            rows: list[Row] = []
            for value in pred.value:
                rows.extend(index.lookup(value))
            return rows, pred
        # SortedIndex range scans.
        if pred.op == "eq":
            return list(index.range(pred.value, pred.value)), pred
        if pred.op == "between":
            return list(index.range(pred.value, pred.high)), pred
        if pred.op == "lt":
            return list(index.range(None, pred.value, include_high=False)), pred
        if pred.op == "le":
            return list(index.range(None, pred.value)), pred
        if pred.op == "gt":
            return list(index.range(pred.value, None, include_low=False)), pred
        return list(index.range(pred.value, None)), pred  # ge

    # execution --------------------------------------------------------------

    def _matching(self) -> list[Row]:
        rows, served = self._candidates()
        remaining = [p for p in self._preds if p is not served]
        if remaining:
            pred = and_(*remaining)
            rows = [r for r in rows if pred(r)]
        else:
            rows = list(rows)
        if self._order is not None:
            col = self._order
            rows.sort(key=lambda r: r.get(col), reverse=self._desc)
        if self._limit is not None:
            rows = rows[: self._limit]
        return rows

    def all(self) -> list[Row]:
        """Execute and return matching rows."""
        return self._matching()

    def first(self) -> Row | None:
        """First matching row or None."""
        rows = self._matching()
        return rows[0] if rows else None

    def count(self) -> int:
        """Number of matching rows."""
        return len(self._matching())

    def values(self, column: str) -> list[Any]:
        """Column values of matching rows."""
        return [r.get(column) for r in self._matching()]

    def sum(self, column: str) -> float:
        """Sum of a numeric column over matching rows (NULLs skipped)."""
        return float(sum(v for v in self.values(column) if v is not None))

    def avg(self, column: str) -> float | None:
        """Mean of a numeric column (None when no non-NULL values)."""
        vals = [v for v in self.values(column) if v is not None]
        if not vals:
            return None
        return float(sum(vals)) / len(vals)

    def group_by(self, column: str) -> dict[Any, list[Row]]:
        """Group matching rows by a column value."""
        groups: dict[Any, list[Row]] = {}
        for row in self._matching():
            groups.setdefault(row.get(column), []).append(row)
        return groups


def where(table: Table, pred: Predicate) -> list[Row]:
    """Shorthand for ``Query(table).where(pred).all()``."""
    return Query(table).where(pred).all()
