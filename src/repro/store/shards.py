"""Sharded, content-addressed store of study intermediates.

Artefacts — one per (shard, stage) — live under ``<root>/objects`` in a
directory named by their content-hash key (see
:mod:`repro.store.cachekey`)::

    <root>/
      STORE_VERSION
      objects/<key[:2]>/<key>/
        meta.json        artefact header + codec payload (JSON)
        c_<name>.npy     one file per numeric column
        used             LRU touch file (mtime = last hit)

Columns are loaded with ``np.load(..., mmap_mode="r")`` — zero-copy,
memory-mapped reads; the bytes stay on disk until a consumer touches
them.  Writes are atomic (staged into a sibling temp directory, then
renamed), so an interrupted run can never leave a half-written artefact
under a valid key.  A corrupt or truncated artefact is dropped and
reported as a miss — the planner recomputes, never crashes.

Hits, misses, writes, corruption and evictions are surfaced through
``store.*`` counters on the ambient metrics registry and ``store``
journal events.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs import get_journal, get_logger, get_registry

_log = get_logger(__name__)

#: On-disk layout version; mismatched stores are rejected loudly rather
#: than silently mis-read.
STORE_LAYOUT_VERSION = 1


@dataclass(frozen=True)
class StoreConfig:
    """Where (and whether) a study persists shard artefacts."""

    dir: str


@dataclass
class ShardArtefact:
    """One loaded artefact: codec payload plus memory-mapped columns."""

    key: str
    stage: str
    shard: str
    meta: dict
    columns: dict[str, np.ndarray]


class StoreError(RuntimeError):
    """The store root exists but is not a compatible shard store."""


class ShardStore:
    """Content-addressed artefact store rooted at one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        version_file = self.root / "STORE_VERSION"
        if version_file.exists():
            found = version_file.read_text().strip()
            if found != str(STORE_LAYOUT_VERSION):
                raise StoreError(
                    f"{self.root} is a v{found} store; this build reads "
                    f"v{STORE_LAYOUT_VERSION}"
                )
        else:
            self.objects.mkdir(parents=True, exist_ok=True)
            version_file.write_text(f"{STORE_LAYOUT_VERSION}\n")

    # -- addressing ---------------------------------------------------------

    def _dir_for(self, key: str) -> Path:
        return self.objects / key[:2] / key

    def __contains__(self, key: str) -> bool:
        return (self._dir_for(key) / "meta.json").exists()

    # -- read ---------------------------------------------------------------

    def get(self, key: str, stage: str = "", shard: str = "") -> ShardArtefact | None:
        """Load an artefact, or ``None`` on miss or corruption.

        Column arrays come back memory-mapped read-only.  Any load
        failure (truncated ``.npy``, mangled JSON, missing column file)
        counts as ``store.corrupt``, removes the damaged artefact and
        reports a miss — the caller recomputes.
        """
        path = self._dir_for(key)
        registry = get_registry()
        if not (path / "meta.json").exists():
            self._account("miss", stage, shard, key)
            return None
        try:
            header = json.loads((path / "meta.json").read_text())
            if header.get("key") != key:
                raise ValueError("key mismatch in meta.json")
            columns = {
                name: np.load(path / f"c_{name}.npy", mmap_mode="r",
                              allow_pickle=False)
                for name in header.get("columns", [])
            }
        except Exception as exc:  # corrupt artefact: recompute, don't crash
            registry.counter("store.corrupt").inc()
            _log.warning(
                "dropping corrupt shard artefact",
                extra={"key": key, "stage": stage, "error": str(exc)},
            )
            shutil.rmtree(path, ignore_errors=True)
            self._account("miss", stage, shard, key)
            return None
        (path / "used").touch()
        self._account("hit", stage, shard, key)
        return ShardArtefact(
            key=key,
            stage=header.get("stage", stage),
            shard=header.get("shard", shard),
            meta=header.get("meta", {}),
            columns=columns,
        )

    # -- write --------------------------------------------------------------

    def put(
        self,
        key: str,
        stage: str,
        shard: str,
        meta: dict,
        columns: dict[str, np.ndarray],
    ) -> None:
        """Persist one artefact atomically; an existing key wins.

        Everything is staged into a sibling temp directory and renamed
        into place, so a crash mid-write leaves only an ignorable
        ``<key>.tmp-*`` orphan (cleared by :meth:`gc`).
        """
        final = self._dir_for(key)
        if (final / "meta.json").exists():
            return
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = final.parent / f"{key}.tmp-{id(self) & 0xFFFF:x}"
        shutil.rmtree(tmp, ignore_errors=True)
        tmp.mkdir()
        try:
            for name, column in columns.items():
                np.save(tmp / f"c_{name}.npy", np.ascontiguousarray(column),
                        allow_pickle=False)
            header = {
                "layout": STORE_LAYOUT_VERSION,
                "key": key,
                "stage": stage,
                "shard": shard,
                "columns": sorted(columns),
                "meta": meta,
            }
            (tmp / "meta.json").write_text(
                json.dumps(header, sort_keys=True) + "\n"
            )
            (tmp / "used").touch()
            try:
                tmp.rename(final)
            except OSError:
                # Lost a race with another writer; content-addressing
                # guarantees both sides wrote identical bytes.
                shutil.rmtree(tmp, ignore_errors=True)
                return
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        registry = get_registry()
        registry.counter("store.writes").inc()
        if stage:
            registry.counter(f"store.writes.{stage}").inc()
        journal = get_journal()
        if journal.enabled:
            journal.emit("store", outcome="write", stage=stage, shard=shard,
                         key=key)

    # -- maintenance --------------------------------------------------------

    def drop(self, key: str) -> None:
        """Remove one artefact (used when a decode turns out poisoned)."""
        shutil.rmtree(self._dir_for(key), ignore_errors=True)

    def ls(self) -> list[dict]:
        """One manifest record per stored artefact, stable order.

        Sorted by (shard, stage, key) — the debugging view ``repro store
        ls`` prints and CI uploads to diagnose cache churn.
        """
        records = []
        if not self.objects.exists():
            return records
        for meta_path in self.objects.glob("*/*/meta.json"):
            path = meta_path.parent
            try:
                header = json.loads(meta_path.read_text())
            except Exception:
                header = {"key": path.name, "stage": "?", "shard": "?"}
            size = sum(f.stat().st_size for f in path.iterdir() if f.is_file())
            used = path / "used"
            records.append({
                "key": header.get("key", path.name),
                "stage": header.get("stage", "?"),
                "shard": header.get("shard", "?"),
                "bytes": size,
                "last_used": (used if used.exists() else meta_path).stat().st_mtime,
            })
        records.sort(key=lambda r: (r["shard"], r["stage"], r["key"]))
        return records

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_s: float | None = None,
        now: float | None = None,
    ) -> list[dict]:
        """Evict artefacts, least-recently-used first; returns evictions.

        ``max_age_s`` drops anything not hit within the window;
        ``max_bytes`` then evicts oldest-used artefacts until the store
        fits.  Orphaned temp directories from interrupted writes are
        always cleared.  ``now`` is injectable for tests.
        """
        import time

        now = time.time() if now is None else now
        evicted: list[dict] = []
        if self.objects.exists():
            for tmp in self.objects.glob("*/*.tmp-*"):
                shutil.rmtree(tmp, ignore_errors=True)
        records = sorted(self.ls(), key=lambda r: r["last_used"])
        total = sum(r["bytes"] for r in records)
        for record in list(records):
            too_old = (
                max_age_s is not None
                and now - record["last_used"] > max_age_s
            )
            too_big = max_bytes is not None and total > max_bytes
            if not (too_old or too_big):
                continue
            shutil.rmtree(self._dir_for(record["key"]), ignore_errors=True)
            total -= record["bytes"]
            evicted.append(record)
        if evicted:
            get_registry().counter("store.evictions").inc(len(evicted))
        return evicted

    # -- accounting ---------------------------------------------------------

    def _account(self, outcome: str, stage: str, shard: str, key: str) -> None:
        registry = get_registry()
        name = "hits" if outcome == "hit" else "misses"
        registry.counter(f"store.{name}").inc()
        if stage:
            registry.counter(f"store.{name}.{stage}").inc()
        journal = get_journal()
        if journal.enabled:
            journal.emit("store", outcome=outcome, stage=stage, shard=shard,
                         key=key)
