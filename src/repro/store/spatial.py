"""Spatial extension for tables — the PostGIS-flavoured part of the store.

A :class:`SpatialColumn` watches a table column holding either a point
``(x, y)`` tuple or a :class:`~repro.geo.geometry.LineString` and maintains
a :class:`~repro.geo.index.GridIndex` over it, giving the radius / box /
nearest queries the paper's pipeline issues against PostGIS.
"""

from __future__ import annotations

from typing import Any

from repro.geo.geometry import LineString, Point
from repro.geo.index import GridIndex
from repro.store.table import Row, Table


class SpatialColumn:
    """Grid-indexed geometry column of a table.

    The column value of each row must be a point ``(x, y)`` tuple, a
    :class:`LineString`, or None (unindexed).  Query results are rows,
    refined by exact geometric distance where it matters.
    """

    def __init__(self, table: Table, column: str, cell_size: float = 100.0) -> None:
        if column not in table.columns:
            raise KeyError(f"no column {column!r} in table {table.name!r}")
        self.table = table
        self.column = column
        self._index: GridIndex[Any] = GridIndex(cell_size)
        table.attach_observer(self)

    # observer protocol ----------------------------------------------------

    def on_insert(self, pk: Any, row: Row) -> None:
        geom = row[self.column]
        if geom is None:
            return
        box = _bounds(geom)
        self._index.insert(pk, *box)

    def on_delete(self, pk: Any, row: Row) -> None:
        if row[self.column] is None:
            return
        if pk in self._index:
            self._index.remove(pk)

    # queries ----------------------------------------------------------------

    def within_radius(self, p: Point, radius: float) -> list[Row]:
        """Rows whose geometry lies within ``radius`` metres of ``p``."""
        out = []
        for pk in self._index.query_radius(p, radius):
            row = self.table.get(pk)
            if _distance(row[self.column], p) <= radius:
                out.append(row)
        return out

    def in_box(self, x_min: float, y_min: float, x_max: float, y_max: float) -> list[Row]:
        """Rows whose geometry bounding box intersects the query box."""
        return [self.table.get(pk) for pk in self._index.query_box(x_min, y_min, x_max, y_max)]

    def nearest(self, p: Point, max_radius: float = float("inf")) -> Row | None:
        """Row with geometry nearest ``p`` (exact distance), or None.

        Candidates are gathered from the grid by expanding radius, then
        ranked by exact geometric distance.
        """
        radius = self._index.cell_size
        while radius <= max_radius * 2.0 or radius <= self._index.cell_size * 2.0:
            candidates = self._index.query_radius(p, min(radius, max_radius))
            if candidates:
                best = min(
                    candidates,
                    key=lambda pk: _distance(self.table.get(pk)[self.column], p),
                )
                d = _distance(self.table.get(best)[self.column], p)
                if d <= max_radius:
                    return self.table.get(best)
                return None
            if radius > max_radius:
                return None
            radius *= 2.0
            if radius > 1e9:
                return None
        return None

    def __len__(self) -> int:
        return len(self._index)


def _bounds(geom: Any) -> tuple[float, float, float, float]:
    if isinstance(geom, LineString):
        coords = geom.coords
        return (
            float(coords[:, 0].min()),
            float(coords[:, 1].min()),
            float(coords[:, 0].max()),
            float(coords[:, 1].max()),
        )
    x, y = geom
    return (float(x), float(y), float(x), float(y))


def _distance(geom: Any, p: Point) -> float:
    if isinstance(geom, LineString):
        return geom.distance_to(p)
    import math

    return math.hypot(geom[0] - p[0], geom[1] - p[1])
