"""Delta-recomputation planner for the study pipeline.

:class:`StudyPlanner` turns the study's clean → extract → match →
features stages into a DAG over **shards** — one shard per (city, day)
of input trips.  For every stage of every shard it derives a
content-hash key (:mod:`repro.store.cachekey`), probes the
:class:`~repro.store.shards.ShardStore`, decodes hits and recomputes
only the dirty shards; the orchestrator then folds the reassembled
global per-unit lists exactly as a cold run would, which is what makes
warm results byte-identical.

The codecs here serialise the per-unit stage outputs
(:class:`~repro.cleaning.pipeline.TripCleanResult`,
:class:`~repro.od.transitions.SegmentExtraction`,
:class:`~repro.parallel.tasks.MatchOutcome`,
:class:`~repro.features.routestats.RouteStats`) into numeric columns
plus a JSON meta payload.  Identity caveat: artefacts never embed
fleet-global values (renumbered segment ids, global transition indices)
— those are reassigned at fold time from the aligned decode context, so
editing one day's input can never leak stale ids out of another day's
cached artefacts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.cleaning.pipeline import TripCleanResult
from repro.cleaning.segmentation import SegmentationReport, TripSegment
from repro.faults import TripError
from repro.features.routestats import RouteStats
from repro.matching.types import MatchedPoint, MatchedRoute
from repro.obs import get_logger, get_registry, span
from repro.od.gates import CrossingEvent
from repro.od.transitions import SegmentExtraction, Transition
from repro.parallel.tasks import MatchOutcome
from repro.store.cachekey import (
    chain_key,
    city_key,
    code_version,
    config_key,
    shard_input_hash,
)
from repro.store.shards import ShardArtefact, ShardStore
from repro.traces.model import RoutePoint

_log = get_logger(__name__)

#: Cleaning stages whose per-trip wall times travel inside the artefact
#: (mirrors ``repro.cleaning.pipeline.STAGES`` minus the fold-time
#: segment filter) — cached trips replay their recorded timings, so the
#: folded accounting table is identical warm or cold.
_CLEAN_STAGES = ("ordering", "duplicates", "outliers", "bounds", "segmentation")

_POINT_FIELDS = (
    ("point_id", np.int64),
    ("trip_id", np.int64),
    ("lat", np.float64),
    ("lon", np.float64),
    ("time_s", np.float64),
    ("speed_kmh", np.float64),
    ("fuel_ml", np.float64),
)


def shard_day(trip) -> int:
    """The (city, day) shard a trip belongs to: its start's epoch day."""
    if not trip.points:
        return 0
    return int(trip.points[0].time_s // 86_400.0)


# -- point packing ----------------------------------------------------------


def _pack_points(point_lists: list[list[RoutePoint]]) -> tuple[dict, np.ndarray]:
    """Concatenate point lists into columns plus per-list [start, end) ranges."""
    total = sum(len(pl) for pl in point_lists)
    columns = {
        f"p_{name}": np.empty(total, dtype=dtype)
        for name, dtype in _POINT_FIELDS
    }
    ranges = np.empty((len(point_lists), 2), dtype=np.int64)
    cursor = 0
    for i, points in enumerate(point_lists):
        ranges[i] = (cursor, cursor + len(points))
        for p in points:
            for name, __ in _POINT_FIELDS:
                columns[f"p_{name}"][cursor] = getattr(p, name)
            cursor += 1
    return columns, ranges


def _unpack_points(columns: dict, start: int, end: int) -> list[RoutePoint]:
    cols = [columns[f"p_{name}"] for name, __ in _POINT_FIELDS]
    return [
        RoutePoint(
            point_id=int(cols[0][i]),
            trip_id=int(cols[1][i]),
            lat=float(cols[2][i]),
            lon=float(cols[3][i]),
            time_s=float(cols[4][i]),
            speed_kmh=float(cols[5][i]),
            fuel_ml=float(cols[6][i]),
        )
        for i in range(start, end)
    ]


# -- clean codec ------------------------------------------------------------


def encode_clean(entries: list) -> tuple[dict, dict]:
    """``TripCleanResult | TripError`` per shard trip → (meta, columns)."""
    trips_meta = []
    point_lists: list[list[RoutePoint]] = []
    distances: list[float] = []
    for entry in entries:
        if isinstance(entry, TripError):
            trips_meta.append({"error": dataclasses.asdict(entry)})
            continue
        seg_meta = []
        for seg in entry.segments:
            seg_meta.append({
                "segment_id": seg.segment_id,
                "trip_id": seg.trip_id,
                "car_id": seg.car_id,
                "index": seg.index,
            })
            point_lists.append(seg.points)
            cached = seg._distance_m
            distances.append(float("nan") if cached is None else cached)
        trips_meta.append({
            "reordered": entry.reordered,
            "reordering_saved_m": entry.reordering_saved_m,
            "duplicates_removed": entry.duplicates_removed,
            "outliers_removed": entry.outliers_removed,
            "out_of_bounds_removed": entry.out_of_bounds_removed,
            "rule_hits": {str(k): v for k, v in entry.segmentation.rule_hits.items()},
            "segments_created": entry.segmentation.segments_created,
            "trips_processed": entry.segmentation.trips_processed,
            "stage_seconds": {
                stage: entry.stage_seconds.get(stage, 0.0)
                for stage in _CLEAN_STAGES
            },
            "segments": seg_meta,
        })
    columns, ranges = _pack_points(point_lists)
    columns["seg_ranges"] = ranges
    columns["seg_distance_m"] = np.array(distances, dtype=np.float64)
    return {"trips": trips_meta}, columns


def decode_clean(art: ShardArtefact) -> list:
    entries: list = []
    seg_cursor = 0
    ranges = art.columns["seg_ranges"]
    distances = art.columns["seg_distance_m"]
    for trip_meta in art.meta["trips"]:
        if "error" in trip_meta:
            entries.append(TripError(**trip_meta["error"]))
            continue
        segments = []
        for seg_meta in trip_meta["segments"]:
            start, end = (int(v) for v in ranges[seg_cursor])
            seg = TripSegment(
                segment_id=int(seg_meta["segment_id"]),
                trip_id=int(seg_meta["trip_id"]),
                car_id=int(seg_meta["car_id"]),
                index=int(seg_meta["index"]),
                points=_unpack_points(art.columns, start, end),
            )
            cached = float(distances[seg_cursor])
            if not np.isnan(cached):
                # Re-seed the memoised length with the value the
                # producing kernel computed, so fold-time filters see
                # bit-identical distances.
                seg._distance_m = cached
            segments.append(seg)
            seg_cursor += 1
        report = SegmentationReport(
            rule_hits={int(k): v for k, v in trip_meta["rule_hits"].items()},
            segments_created=int(trip_meta["segments_created"]),
            trips_processed=int(trip_meta["trips_processed"]),
        )
        entries.append(TripCleanResult(
            segments=segments,
            reordered=bool(trip_meta["reordered"]),
            reordering_saved_m=float(trip_meta["reordering_saved_m"]),
            duplicates_removed=int(trip_meta["duplicates_removed"]),
            outliers_removed=int(trip_meta["outliers_removed"]),
            out_of_bounds_removed=int(trip_meta["out_of_bounds_removed"]),
            segmentation=report,
            stage_seconds={
                stage: float(trip_meta["stage_seconds"][stage])
                for stage in _CLEAN_STAGES
            },
        ))
    return entries


# -- extract codec ----------------------------------------------------------


def encode_extract(entries: list[SegmentExtraction]) -> tuple[dict, dict]:
    gates: list[str] = []
    gate_index: dict[str, int] = {}

    def gate_id(name: str) -> int:
        if name not in gate_index:
            gate_index[name] = len(gates)
            gates.append(name)
        return gate_index[name]

    n = len(entries)
    crossed = np.zeros(n, dtype=np.int8)
    has_t = np.zeros(n, dtype=np.int8)
    within = np.zeros(n, dtype=np.int8)
    o_gate = np.zeros(n, dtype=np.int16)
    d_gate = np.zeros(n, dtype=np.int16)
    o_index = np.zeros(n, dtype=np.int64)
    d_index = np.zeros(n, dtype=np.int64)
    o_time = np.zeros(n, dtype=np.float64)
    d_time = np.zeros(n, dtype=np.float64)
    for i, entry in enumerate(entries):
        crossed[i] = entry.crossed
        t = entry.transition
        if t is None:
            continue
        has_t[i] = 1
        within[i] = bool(t.within_centre)
        o_gate[i] = gate_id(t.origin)
        d_gate[i] = gate_id(t.destination)
        o_index[i] = t.origin_event.index
        d_index[i] = t.destination_event.index
        o_time[i] = t.origin_event.time_s
        d_time[i] = t.destination_event.time_s
    columns = {
        "crossed": crossed, "has_transition": has_t, "within": within,
        "o_gate": o_gate, "d_gate": d_gate, "o_index": o_index,
        "d_index": d_index, "o_time": o_time, "d_time": d_time,
    }
    return {"gates": gates, "entries": n}, columns


def decode_extract(
    art: ShardArtefact, segments: list[TripSegment]
) -> list[SegmentExtraction]:
    gates = art.meta["gates"]
    cols = art.columns
    entries = []
    for i, seg in enumerate(segments):
        transition = None
        if cols["has_transition"][i]:
            origin = gates[int(cols["o_gate"][i])]
            destination = gates[int(cols["d_gate"][i])]
            transition = Transition(
                segment=seg,
                origin=origin,
                destination=destination,
                origin_event=CrossingEvent(
                    gate=origin,
                    index=int(cols["o_index"][i]),
                    time_s=float(cols["o_time"][i]),
                ),
                destination_event=CrossingEvent(
                    gate=destination,
                    index=int(cols["d_index"][i]),
                    time_s=float(cols["d_time"][i]),
                ),
                within_centre=bool(cols["within"][i]),
            )
        entries.append(SegmentExtraction(
            car_id=seg.car_id,
            crossed=bool(cols["crossed"][i]),
            transition=transition,
        ))
    return entries


# -- match codec ------------------------------------------------------------


def encode_match(entries: list[MatchOutcome]) -> tuple[dict, dict]:
    outcome_meta = []
    n = len(entries)
    kept = np.zeros(n, dtype=np.int8)
    has_route = np.zeros(n, dtype=np.int8)
    elapsed = np.zeros(n, dtype=np.float64)
    gaps = np.zeros(n, dtype=np.int64)
    m_ranges = np.zeros((n, 2), dtype=np.int64)
    e_ranges = np.zeros((n, 2), dtype=np.int64)
    point_lists: list[list[RoutePoint]] = []
    edge_id: list[int] = []
    arc_m: list[float] = []
    snap_x: list[float] = []
    snap_y: list[float] = []
    mdist: list[float] = []
    score: list[float] = []
    edge_seq: list[tuple[int, int]] = []
    m_cursor = e_cursor = 0
    for i, outcome in enumerate(entries):
        outcome_meta.append({
            "error": dataclasses.asdict(outcome.error)
            if outcome.error is not None else None,
            "source": outcome.route_source,
        })
        kept[i] = bool(outcome.kept)
        elapsed[i] = outcome.elapsed_s
        route = outcome.route
        if route is None:
            m_ranges[i] = (m_cursor, m_cursor)
            e_ranges[i] = (e_cursor, e_cursor)
            continue
        has_route[i] = 1
        gaps[i] = route.gaps_filled
        point_lists.append([m.point for m in route.matched])
        for m in route.matched:
            edge_id.append(m.edge_id)
            arc_m.append(m.arc_m)
            snap_x.append(m.snapped_xy[0])
            snap_y.append(m.snapped_xy[1])
            mdist.append(m.match_distance_m)
            score.append(m.score)
        m_ranges[i] = (m_cursor, m_cursor + len(route.matched))
        m_cursor += len(route.matched)
        edge_seq.extend(route.edge_sequence)
        e_ranges[i] = (e_cursor, e_cursor + len(route.edge_sequence))
        e_cursor += len(route.edge_sequence)
    columns, __ = _pack_points(point_lists)
    columns.pop("seg_ranges", None)
    columns.update({
        "kept": kept, "has_route": has_route, "elapsed_s": elapsed,
        "gaps_filled": gaps, "m_ranges": m_ranges, "e_ranges": e_ranges,
        "m_edge_id": np.array(edge_id, dtype=np.int64),
        "m_arc_m": np.array(arc_m, dtype=np.float64),
        "m_snap_x": np.array(snap_x, dtype=np.float64),
        "m_snap_y": np.array(snap_y, dtype=np.float64),
        "m_match_distance_m": np.array(mdist, dtype=np.float64),
        "m_score": np.array(score, dtype=np.float64),
        "edge_seq": np.array(edge_seq, dtype=np.int64).reshape(-1, 2),
    })
    return {"outcomes": outcome_meta}, columns


def decode_match(
    art: ShardArtefact,
    indices: list[int],
    transitions: list[Transition],
) -> list[MatchOutcome]:
    """Rebuild outcomes; global index and segment ids come from context."""
    cols = art.columns
    entries = []
    for i, (global_index, transition) in enumerate(zip(indices, transitions)):
        meta = art.meta["outcomes"][i]
        route = None
        if cols["has_route"][i]:
            m_start, m_end = (int(v) for v in cols["m_ranges"][i])
            e_start, e_end = (int(v) for v in cols["e_ranges"][i])
            points = _unpack_points(cols, m_start, m_end)
            matched = [
                MatchedPoint(
                    point=points[j - m_start],
                    edge_id=int(cols["m_edge_id"][j]),
                    arc_m=float(cols["m_arc_m"][j]),
                    snapped_xy=(float(cols["m_snap_x"][j]),
                                float(cols["m_snap_y"][j])),
                    match_distance_m=float(cols["m_match_distance_m"][j]),
                    score=float(cols["m_score"][j]),
                )
                for j in range(m_start, m_end)
            ]
            route = MatchedRoute(
                # Renumbered per run at fold time — never from the cache.
                segment_id=transition.segment.segment_id,
                car_id=transition.segment.car_id,
                matched=matched,
                edge_sequence=[
                    (int(cols["edge_seq"][j][0]), int(cols["edge_seq"][j][1]))
                    for j in range(e_start, e_end)
                ],
                gaps_filled=int(cols["gaps_filled"][i]),
            )
        error = meta["error"]
        entries.append(MatchOutcome(
            index=global_index,
            route=route,
            kept=bool(cols["kept"][i]),
            error=TripError(**error) if error is not None else None,
            elapsed_s=float(cols["elapsed_s"][i]),
            route_source=meta["source"],
        ))
    return entries


# -- features codec ---------------------------------------------------------

_STATS_FLOAT = ("route_time_h", "route_distance_km", "low_speed_pct",
                "normal_speed_pct", "fuel_ml")
_STATS_INT = ("car_id", "n_traffic_lights", "n_junctions",
              "n_pedestrian_crossings", "n_bus_stops")


def encode_features(rows: list[RouteStats]) -> tuple[dict, dict]:
    columns = {
        name: np.array([getattr(r, name) for r in rows], dtype=np.float64)
        for name in _STATS_FLOAT
    }
    columns.update({
        name: np.array([getattr(r, name) for r in rows], dtype=np.int64)
        for name in _STATS_INT
    })
    meta = {
        "direction": [r.direction for r in rows],
        "season": [r.season for r in rows],
    }
    return meta, columns


def decode_features(art: ShardArtefact) -> list[RouteStats]:
    n = len(art.meta["direction"])
    return [
        RouteStats(
            direction=art.meta["direction"][i],
            season=art.meta["season"][i],
            **{name: float(art.columns[name][i]) for name in _STATS_FLOAT},
            **{name: int(art.columns[name][i]) for name in _STATS_INT},
        )
        for i in range(n)
    ]


# -- the planner ------------------------------------------------------------


@dataclass
class Shard:
    """One (city, day) input shard and its per-stage artefact keys."""

    day: int
    label: str
    positions: list[int] = field(default_factory=list)  # fleet.trips indices
    keys: dict[str, str] = field(default_factory=dict)


class StudyPlanner:
    """Plans and serves the study's stages from a :class:`ShardStore`.

    Lifecycle: :meth:`plan` groups the simulated fleet into shards and
    derives the chained stage keys; the four ``*_stage`` methods then
    each probe the store per shard, decode hits, hand the flattened
    misses to the stage's ``compute`` callable (the caller's existing
    serial-or-parallel path), persist the freshly computed shard
    artefacts, and return the per-unit results in global order — ready
    for the unchanged orchestrator fold.
    """

    def __init__(self, store: ShardStore, config) -> None:
        self.store = store
        self.config = config
        self.shards: list[Shard] = []
        self._day_of_trip: dict[int, int] = {}

    # -- planning -----------------------------------------------------------

    def plan(self, fleet) -> list[Shard]:
        """Shard the fleet by (city, day) and derive every stage key."""
        with span("store_plan"):
            code = code_version()
            city = city_key(self.config)[:8]
            cfg = {stage: config_key(self.config, stage)
                   for stage in ("clean", "extract", "match", "features")}
            by_day: dict[int, Shard] = {}
            for pos, trip in enumerate(fleet.trips):
                day = shard_day(trip)
                shard = by_day.get(day)
                if shard is None:
                    shard = by_day[day] = Shard(day=day, label=f"{city}-d{day}")
                shard.positions.append(pos)
                self._day_of_trip[trip.trip_id] = day
            for day in sorted(by_day):
                shard = by_day[day]
                input_hash = shard_input_hash(
                    [fleet.trips[p] for p in shard.positions]
                )
                k = chain_key("clean", code, input_hash, cfg["clean"])
                shard.keys["clean"] = k
                k = chain_key("extract", code, k, cfg["extract"])
                shard.keys["extract"] = k
                k = chain_key("match", code, k, cfg["match"])
                shard.keys["match"] = k
                shard.keys["features"] = chain_key(
                    "features", code, k, cfg["features"]
                )
                self.shards.append(shard)
            get_registry().gauge("store.shards_planned").set(len(self.shards))
            _log.info(
                "study sharded",
                extra={"shards": len(self.shards), "trips": len(fleet.trips)},
            )
        return self.shards

    def _shard_of_trip(self, trip_id: int) -> int:
        return self._day_of_trip[trip_id]

    # -- generic stage runner -----------------------------------------------

    def _run_stage(self, stage, unit_days, compute, encode, decode):
        """Serve one stage: cached shards decode, dirty shards recompute.

        ``unit_days`` maps each global unit position to its shard day (in
        global unit order); ``decode(artefact, indices)`` rebuilds a
        shard's results from its artefact and the global indices of its
        units; ``compute(indices)`` computes results for the given
        global indices, aligned.  Returns the full results list in
        global order.
        """
        by_day: dict[int, list[int]] = {shard.day: [] for shard in self.shards}
        for pos, day in enumerate(unit_days):
            by_day[day].append(pos)
        results: list = [None] * len(unit_days)
        misses: list[tuple[Shard, list[int]]] = []
        registry = get_registry()
        for shard in self.shards:
            indices = by_day[shard.day]
            art = self.store.get(shard.keys[stage], stage, shard.label)
            decoded = None
            if art is not None:
                try:
                    decoded = decode(art, indices)
                    if len(decoded) != len(indices):
                        raise ValueError(
                            f"{len(decoded)} entries for {len(indices)} units"
                        )
                except Exception as exc:
                    registry.counter("store.decode_errors").inc()
                    _log.warning(
                        "undecodable shard artefact; recomputing",
                        extra={"stage": stage, "shard": shard.label,
                               "error": str(exc)},
                    )
                    self.store.drop(shard.keys[stage])
                    decoded = None
            if decoded is None:
                misses.append((shard, indices))
                continue
            for pos, value in zip(indices, decoded):
                results[pos] = value
        if misses:
            registry.counter("store.recomputed").inc(len(misses))
            registry.counter(f"store.recomputed.{stage}").inc(len(misses))
            flat = [pos for __, indices in misses for pos in indices]
            flat.sort()
            computed = compute(flat)
            for pos, value in zip(flat, computed):
                results[pos] = value
            for shard, indices in misses:
                meta, columns = encode([results[pos] for pos in indices])
                self.store.put(
                    shard.keys[stage], stage, shard.label, meta, columns
                )
        return results

    # -- stages -------------------------------------------------------------

    def clean_stage(self, fleet, compute_trips) -> list:
        """Per-trip cleaning results (``TripCleanResult | TripError``)."""
        unit_days = [self._shard_of_trip(t.trip_id) for t in fleet.trips]
        return self._run_stage(
            "clean",
            unit_days,
            compute=lambda idx: compute_trips([fleet.trips[i] for i in idx]),
            encode=encode_clean,
            decode=lambda art, idx: decode_clean(art),
        )

    def extract_stage(self, segments, compute_segments) -> list:
        """Per-segment funnel outcomes (``SegmentExtraction``)."""
        unit_days = [self._shard_of_trip(s.trip_id) for s in segments]
        return self._run_stage(
            "extract",
            unit_days,
            compute=lambda idx: compute_segments([segments[i] for i in idx]),
            encode=encode_extract,
            decode=lambda art, idx: decode_extract(
                art, [segments[i] for i in idx]
            ),
        )

    def match_stage(self, tasks, transitions, compute_tasks) -> list:
        """Per-transition match outcomes (``MatchOutcome``).

        ``tasks`` and ``transitions`` are aligned by transition index;
        recomputed subsets keep their global ``MatchTask.index``, so the
        compute path is exactly the cold one.
        """
        unit_days = [
            self._shard_of_trip(t.segment.trip_id) for t in transitions
        ]

        def compute(indices: list[int]) -> list:
            outcomes = compute_tasks([tasks[i] for i in indices])
            outcomes.sort(key=lambda o: o.index)
            return outcomes

        return self._run_stage(
            "match",
            unit_days,
            compute=compute,
            encode=encode_match,
            decode=lambda art, idx: decode_match(
                art, idx, [transitions[i] for i in idx]
            ),
        )

    def features_stage(self, kept, transitions, matched, compute_one) -> dict:
        """Table 4 route statistics for the kept transitions, by index."""
        unit_days = [
            self._shard_of_trip(transitions[i].segment.trip_id) for i in kept
        ]
        rows = self._run_stage(
            "features",
            unit_days,
            compute=lambda idx: [
                compute_one(transitions[kept[i]], matched[kept[i]])
                for i in idx
            ],
            encode=encode_features,
            decode=lambda art, idx: decode_features(art),
        )
        return {kept_index: row for kept_index, row in zip(kept, rows)}
