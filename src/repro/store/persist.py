"""Durable snapshots of the embedded store.

Tables whose columns hold JSON-friendly scalars (plus tuples and
:class:`~repro.geo.geometry.LineString` geometries, which get codecs) can
be saved to and restored from a single JSON file — the "pg_dump" of the
substitute DBMS.  Restoring replays rows through normal inserts, so
schema validation and attached indexes stay consistent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.geo.geometry import LineString
from repro.store.database import Database
from repro.store.table import Column, Table


def _encode_value(value: Any) -> Any:
    if isinstance(value, LineString):
        return {"__geom__": [[float(x), float(y)] for x, y in value]}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot persist value of type {type(value).__name__}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__geom__" in value:
            return LineString(value["__geom__"])
        if "__tuple__" in value:
            return tuple(_decode_value(v) for v in value["__tuple__"])
    return value


_TYPE_CODES = {int: "int", float: "float", str: "str", bool: "bool",
               tuple: "tuple", LineString: "geom"}
_CODE_TYPES = {code: type_ for type_, code in _TYPE_CODES.items()}


def _encode_column(col: Column) -> dict:
    types = col.type_ if isinstance(col.type_, tuple) else (col.type_,)
    codes = []
    for t in types:
        if t not in _TYPE_CODES:
            raise TypeError(
                f"column {col.name!r} holds unpersistable type {t.__name__}"
            )
        codes.append(_TYPE_CODES[t])
    return {"name": col.name, "types": codes, "nullable": col.nullable}


def _decode_column(data: dict) -> Column:
    types = tuple(_CODE_TYPES[c] for c in data["types"])
    return Column(
        name=data["name"],
        type_=types if len(types) > 1 else types[0],
        nullable=data["nullable"],
    )


def save_table(table: Table, path: str | Path) -> int:
    """Write one table's schema and rows as JSON; returns the row count."""
    payload = {
        "name": table.name,
        "pk": table.pk,
        "auto_pk": table._auto_pk,
        "columns": [_encode_column(c) for c in table.columns.values()],
        "rows": [
            {k: _encode_value(v) for k, v in row.items()} for row in table.rows()
        ],
    }
    Path(path).write_text(json.dumps(payload))
    return len(payload["rows"])


def load_table(path: str | Path) -> Table:
    """Restore a table saved with :func:`save_table`."""
    payload = json.loads(Path(path).read_text())
    columns = [_decode_column(c) for c in payload["columns"]]
    table = Table(
        payload["name"],
        columns,
        pk=None if payload["auto_pk"] else payload["pk"],
    )
    for row in payload["rows"]:
        table.insert({k: _decode_value(v) for k, v in row.items()})
    return table


def save_database(db: Database, path: str | Path) -> int:
    """Write a whole database snapshot; returns the total row count."""
    tables = []
    total = 0
    for table in db:
        payload = {
            "name": table.name,
            "pk": table.pk,
            "auto_pk": table._auto_pk,
            "columns": [_encode_column(c) for c in table.columns.values()],
            "rows": [
                {k: _encode_value(v) for k, v in row.items()}
                for row in table.rows()
            ],
        }
        total += len(payload["rows"])
        tables.append(payload)
    Path(path).write_text(json.dumps({"name": db.name, "tables": tables}))
    return total


def load_database(path: str | Path) -> Database:
    """Restore a database snapshot saved with :func:`save_database`."""
    payload = json.loads(Path(path).read_text())
    db = Database(payload["name"])
    for tdata in payload["tables"]:
        columns = [_decode_column(c) for c in tdata["columns"]]
        table = db.create_table(
            tdata["name"], columns,
            pk=None if tdata["auto_pk"] else tdata["pk"],
        )
        for row in tdata["rows"]:
            table.insert({k: _decode_value(v) for k, v in row.items()})
    return db
