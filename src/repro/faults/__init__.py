"""Fault injection and degraded-mode execution.

The paper's premise is that raw taxi feeds are unreliable; a production
pipeline over them must be too-tolerant-to-notice.  This package makes
failure a first-class, *deterministic* citizen:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded hash-based
  description of which units fail and how (no RNG state);
* :mod:`repro.faults.injector` — the process-local injector pipeline
  code consults at its failure points (:func:`maybe_inject`);
* :mod:`repro.faults.guard` — :func:`guarded_call` per-unit isolation
  with bounded retry-with-backoff (:class:`RobustnessConfig`);
* :mod:`repro.faults.errors` — :class:`TripError` quarantine records,
  the :class:`Quarantine` collector behind ``errors.jsonl``, and the
  :class:`ErrorRateExceeded` run-level threshold.

Chaos is opt-in: with no active plan every hook is a single ``None``
check, and with ``robustness=None`` pipelines fail fast exactly as
before.  See ``docs/robustness.md``.
"""

from repro.faults.errors import (
    ErrorRateExceeded,
    Quarantine,
    TripError,
    read_errors_jsonl,
)
from repro.faults.guard import RobustnessConfig, guarded_call, is_transient
from repro.faults.injector import (
    InjectedFault,
    InjectedTimeout,
    activate,
    active_plan,
    deactivate,
    inject_faults,
    maybe_inject,
)
from repro.faults.plan import FaultPlan

__all__ = [
    "ErrorRateExceeded",
    "FaultPlan",
    "InjectedFault",
    "InjectedTimeout",
    "Quarantine",
    "RobustnessConfig",
    "TripError",
    "activate",
    "active_plan",
    "deactivate",
    "guarded_call",
    "inject_faults",
    "is_transient",
    "maybe_inject",
    "read_errors_jsonl",
]
