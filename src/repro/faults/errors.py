"""Quarantine records — structured per-unit failure accounting.

The paper's raw feed is unreliable by construction (Sec. IV.B: delayed,
out-of-order and plain wrong fixes); at production scale the pipeline
itself is, too — a worker dies, an input file is truncated, a routing
query times out.  Degraded-mode execution turns each of those into a
:class:`TripError` record collected by a :class:`Quarantine` instead of
an aborted run; the run only fails when the *rate* of quarantined units
exceeds the configured threshold (:class:`ErrorRateExceeded`).

Every record is one JSON object in ``errors.jsonl``::

    {"stage": "match", "kind": "InjectedFault", "message": "...",
     "trip_id": null, "segment_id": 17, "transition_index": 4,
     "fault_tag": "injected:match"}

``fault_tag`` distinguishes deterministic test chaos (``injected:*``,
see :mod:`repro.faults.plan`) from organic failures (``None``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.obs import get_journal, get_logger, get_registry

_log = get_logger(__name__)

#: Record kinds that describe *kept* data (a repair stage handles them
#: downstream).  They appear in ``errors.jsonl`` for auditability but do
#: not count toward the ``--max-error-rate`` verdict — healthy feeds
#: contain arrival reordering by design (paper Sec. IV.B).
ADVISORY_KINDS = frozenset({"non_monotonic_ids"})


class ErrorRateExceeded(RuntimeError):
    """Raised when quarantined units exceed ``max_error_rate``.

    Carries the quarantine's records so orchestrators (the CLI) can still
    persist ``errors.jsonl`` for a failed run.
    """

    def __init__(self, rate: float, max_rate: float, errors: list["TripError"]) -> None:
        super().__init__(
            f"error rate {rate:.3f} exceeds --max-error-rate {max_rate:.3f} "
            f"({len(errors)} units quarantined)"
        )
        self.rate = rate
        self.max_rate = max_rate
        self.errors = errors


@dataclass(frozen=True)
class TripError:
    """One quarantined unit of work (a trip, row or transition).

    ``stage`` names the pipeline stage that failed (``io``, ``clean``,
    ``match``, ``routing``); ``kind`` is the exception type (or a
    symbolic kind for ingest problems like ``truncated_row``).  Exactly
    one of the identity fields is usually set, matching the stage's unit.
    """

    stage: str
    kind: str
    message: str
    trip_id: int | None = None
    segment_id: int | None = None
    transition_index: int | None = None
    row: int | None = None
    fault_tag: str | None = None

    @classmethod
    def from_exception(
        cls,
        stage: str,
        exc: BaseException,
        *,
        trip_id: int | None = None,
        segment_id: int | None = None,
        transition_index: int | None = None,
        row: int | None = None,
    ) -> "TripError":
        return cls(
            stage=stage,
            kind=type(exc).__name__,
            message=str(exc),
            trip_id=trip_id,
            segment_id=segment_id,
            transition_index=transition_index,
            row=row,
            fault_tag=getattr(exc, "fault_tag", None),
        )

    def to_dict(self) -> dict:
        return asdict(self)


class Quarantine:
    """Collector of :class:`TripError` records for one run.

    Records accumulate in fold order (the orchestrator adds worker-side
    errors while folding chunk results by input position), so the
    ``errors.jsonl`` it writes is deterministic for any worker count.
    """

    def __init__(self, max_error_rate: float | None = None) -> None:
        self.max_error_rate = max_error_rate
        self.errors: list[TripError] = []

    def __len__(self) -> int:
        return len(self.errors)

    def add(self, error: TripError) -> None:
        self.errors.append(error)
        get_registry().counter("trips.quarantined").inc()
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "quarantine",
                stage=error.stage,
                error_kind=error.kind,
                message=error.message,
                trip_id=error.trip_id,
                segment_id=error.segment_id,
                transition_index=error.transition_index,
                row=error.row,
                fault_tag=error.fault_tag,
            )
        _log.warning(
            "unit quarantined",
            extra={"stage": error.stage, "kind": error.kind,
                   "fault_tag": error.fault_tag or "organic"},
        )

    def extend(self, errors: list[TripError]) -> None:
        for error in errors:
            self.add(error)

    def dropped(self) -> list[TripError]:
        """Records whose unit was actually lost (advisory kinds excluded)."""
        return [e for e in self.errors if e.kind not in ADVISORY_KINDS]

    def rate(self, total_units: int) -> float:
        """Dropped fraction of ``total_units`` processed units."""
        return len(self.dropped()) / max(1, total_units)

    def check(self, total_units: int) -> None:
        """Fail the run if the error rate exceeds the threshold."""
        if self.max_error_rate is None:
            return
        rate = self.rate(total_units)
        if rate > self.max_error_rate:
            raise ErrorRateExceeded(rate, self.max_error_rate, list(self.errors))

    def by_stage(self) -> dict[str, list[TripError]]:
        out: dict[str, list[TripError]] = {}
        for error in self.errors:
            out.setdefault(error.stage, []).append(error)
        return out

    def write_jsonl(self, path: str | Path) -> int:
        """Write one JSON object per quarantined unit; returns the count."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as f:
            for error in self.errors:
                f.write(json.dumps(error.to_dict()))
                f.write("\n")
        return len(self.errors)


def read_errors_jsonl(path: str | Path) -> list[TripError]:
    """Load an ``errors.jsonl`` back into records (for tests/tooling)."""
    out: list[TripError] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(TripError(**json.loads(line)))
    return out
