"""Degradation guards: per-unit isolation plus bounded retry-with-backoff.

:func:`guarded_call` is the pipeline's failure boundary.  It runs one
unit of work (one trip's cleaning, one transition's matching); a raised
exception becomes a :class:`~repro.faults.errors.TripError` *value*
instead of propagating, after transient failures (timeouts, injected
transient faults) have been retried a bounded number of times with
exponential backoff.  Backoff delays never influence results — they only
pace re-attempts — so the layer adds no wall-clock dependence to
artefacts (enforced by ``tools/lint_nondeterminism.py``).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.faults.errors import TripError
from repro.faults import injector
from repro.obs import get_journal, get_logger, get_registry

_log = get_logger(__name__)

#: Exception types treated as transient (retried) even without an
#: explicit ``transient`` attribute.  Injected timeouts are TimeoutError
#: subclasses, so chaos and organic timeouts take the same path.
TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    TimeoutError,
    ConnectionError,
    InterruptedError,
)


@dataclass(frozen=True)
class RobustnessConfig:
    """Degraded-mode execution knobs (CLI ``--max-error-rate`` etc.).

    ``max_error_rate`` is the quarantined fraction of processed units
    above which the run fails; ``retries`` bounds re-attempts of
    *transient* failures, paced by ``backoff_base_s * multiplier**n``.
    """

    max_error_rate: float = 0.05
    retries: int = 2
    backoff_base_s: float = 0.01
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_error_rate <= 1.0:
            raise ValueError("max_error_rate must be in [0, 1]")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")


def is_transient(exc: BaseException) -> bool:
    """Retry-eligible: marked transient, or a known transient type."""
    if getattr(exc, "transient", False):
        return True
    return isinstance(exc, TRANSIENT_TYPES)


def guarded_call(
    stage: str,
    fn: Callable,
    *args,
    robustness: RobustnessConfig,
    trip_id: int | None = None,
    segment_id: int | None = None,
    transition_index: int | None = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Run ``fn(*args)`` inside a degradation guard.

    Returns ``(result, None)`` on success or ``(None, TripError)`` when
    the unit fails after bounded retries.  Only transient exceptions are
    retried; everything else quarantines immediately (replaying a
    deterministic failure is wasted work).
    """
    registry = get_registry()
    last_exc: BaseException | None = None
    for attempt in range(robustness.retries + 1):
        injector.enter_guard()
        try:
            result = fn(*args)
        except Exception as exc:  # noqa: BLE001 - the guard is the boundary
            last_exc = exc
            if attempt < robustness.retries and is_transient(exc):
                registry.counter("faults.retries").inc()
                journal = get_journal()
                if journal.enabled:
                    journal.emit(
                        "retry",
                        stage=stage,
                        attempt=attempt + 1,
                        error_kind=type(exc).__name__,
                        trip_id=trip_id,
                        segment_id=segment_id,
                        transition_index=transition_index,
                    )
                delay = robustness.backoff_base_s * (
                    robustness.backoff_multiplier**attempt
                )
                if delay > 0:
                    sleep(delay)
                continue
            break
        else:
            if attempt > 0:
                registry.counter("faults.retry_success").inc()
            return result, None
        finally:
            injector.exit_guard()
    error = TripError.from_exception(
        stage,
        last_exc,
        trip_id=trip_id,
        segment_id=segment_id,
        transition_index=transition_index,
    )
    _log.warning(
        "unit failed inside guard",
        extra={"stage": stage, "kind": error.kind,
               "fault_tag": error.fault_tag or "organic"},
    )
    return None, error
