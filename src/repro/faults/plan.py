"""Seeded fault plans — deterministic chaos, no RNG state.

A :class:`FaultPlan` decides *up front* which units of a run fail and
how, using a keyed hash of ``(seed, stage, unit key)`` rather than any
mutable random state.  That makes chaos runs reproducible across
processes and replayable across machines: the same plan injects exactly
the same faults into the same trips whether the pipeline runs serially
or across a worker pool, which is what lets the chaos suite assert that
surviving-trip artefacts are bitwise identical to a fault-free run.

Fault taxonomy (see ``docs/robustness.md``):

* ``corrupt_row_rate`` / ``truncate_after_rows`` — ingest faults applied
  while :func:`repro.traces.io.read_points_csv` reads raw rows;
* ``clean_error_rate`` — exceptions raised inside per-trip cleaning;
* ``match_error_rate`` — exceptions raised inside map-matching of chosen
  transitions;
* ``route_error_rate`` — timeouts raised inside routing-engine queries
  (only while a degradation guard is active, so they are isolatable);
* ``transient_rate`` — fraction of raising faults that succeed when the
  bounded retry layer re-attempts them;
* ``kill_chunk`` — ``{task kind: chunk index}`` of one worker-pool chunk
  whose process is killed mid-run (``os._exit``), exercising pool
  replacement and exactly-once chunk resubmission.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable description of the faults to inject."""

    seed: int = 0
    corrupt_row_rate: float = 0.0
    truncate_after_rows: int | None = None
    clean_error_rate: float = 0.0
    match_error_rate: float = 0.0
    route_error_rate: float = 0.0
    transient_rate: float = 0.0
    kill_chunk: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("corrupt_row_rate", "clean_error_rate", "match_error_rate",
                     "route_error_rate", "transient_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")

    # -- deterministic selection --------------------------------------------

    def roll(self, stage: str, key: object) -> float:
        """Uniform-in-[0,1) hash of ``(seed, stage, key)``; pure function."""
        digest = hashlib.blake2b(
            f"{self.seed}|{stage}|{key!r}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / 2**64

    def rate_for(self, stage: str) -> float:
        return {
            "io": self.corrupt_row_rate,
            "clean": self.clean_error_rate,
            "match": self.match_error_rate,
            "routing": self.route_error_rate,
        }.get(stage, 0.0)

    def picks(self, stage: str, key: object) -> bool:
        """True when the plan injects a fault into this stage/unit."""
        rate = self.rate_for(stage)
        return rate > 0.0 and self.roll(stage, key) < rate

    def is_transient(self, stage: str, key: object) -> bool:
        """Whether a picked fault clears on retry (a second roll)."""
        return (
            self.transient_rate > 0.0
            and self.roll("transient", (stage, key)) < self.transient_rate
        )

    # -- serialisation (CLI --fault-plan) -----------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "corrupt_row_rate": self.corrupt_row_rate,
            "truncate_after_rows": self.truncate_after_rows,
            "clean_error_rate": self.clean_error_rate,
            "match_error_rate": self.match_error_rate,
            "route_error_rate": self.route_error_rate,
            "transient_rate": self.transient_rate,
            "kill_chunk": dict(self.kill_chunk),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown fault plan keys: {unknown}")
        kwargs = dict(doc)
        if "kill_chunk" in kwargs and kwargs["kill_chunk"] is not None:
            kwargs["kill_chunk"] = {
                str(kind): int(index) for kind, index in kwargs["kill_chunk"].items()
            }
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))
