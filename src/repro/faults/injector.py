"""The process-local fault injector.

One plan is *active* per process at a time.  Orchestrators scope it with
:func:`inject_faults`; pool workers activate the plan shipped in their
:class:`~repro.parallel.WorkerPayload` at init (:func:`activate`).
Instrumented code calls :func:`maybe_inject` at its failure points —
a single module-global ``None`` check when no chaos is configured, so
the production path pays nothing measurable.

Transient faults raise on the first attempt for a given ``(stage, key)``
and pass on re-attempts (per-process attempt counts), which is what the
bounded retry layer in :mod:`repro.faults.guard` recovers from.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.faults.plan import FaultPlan
from repro.obs import get_journal, get_logger, get_registry

_log = get_logger(__name__)


class InjectedFault(RuntimeError):
    """A deliberately injected failure (chaos testing only).

    ``transient`` marks faults that clear on retry; ``fault_tag``
    (``injected:<stage>``) travels into the quarantine record so the
    chaos suite can account for every injection.
    """

    def __init__(self, stage: str, key: object, transient: bool = False) -> None:
        super().__init__(f"injected {stage} fault for {key!r}")
        self.stage = stage
        self.key = key
        self.transient = transient
        self.fault_tag = f"injected:{stage}"


class InjectedTimeout(InjectedFault, TimeoutError):
    """An injected routing-query timeout (always retry-eligible)."""


#: The process's active plan plus per-(stage, key) attempt counts.
_active_plan: FaultPlan | None = None
_attempts: dict[tuple[str, object], int] = {}

#: Depth of degradation guards currently on the stack (see guard.py).
#: Deep injection points (routing) only fire inside a guard, so an
#: injected fault is always isolatable to one quarantined unit.
_guard_depth = 0


def activate(plan: FaultPlan | None) -> None:
    """Install ``plan`` as this process's active plan (None clears)."""
    global _active_plan
    _active_plan = plan
    _attempts.clear()


def deactivate() -> None:
    activate(None)


def active_plan() -> FaultPlan | None:
    return _active_plan


@contextmanager
def inject_faults(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Scope ``plan`` as active; restores the previous plan on exit."""
    global _active_plan
    previous = _active_plan
    activate(plan)
    try:
        yield plan
    finally:
        activate(previous)


def enter_guard() -> None:
    global _guard_depth
    _guard_depth += 1


def exit_guard() -> None:
    global _guard_depth
    _guard_depth -= 1


def in_guard() -> bool:
    return _guard_depth > 0


def maybe_inject(stage: str, key: object, require_guard: bool = False) -> None:
    """Raise an :class:`InjectedFault` when the active plan picks this unit.

    ``require_guard=True`` suppresses injection outside a degradation
    guard — used by deep shared code (routing queries) that is also
    called from unguarded analysis paths.
    """
    plan = _active_plan
    if plan is None:
        return
    if require_guard and not in_guard():
        return
    if not plan.picks(stage, key):
        return
    transient = plan.is_transient(stage, key)
    if transient:
        count = _attempts[(stage, key)] = _attempts.get((stage, key), 0) + 1
        if count > 1:
            return  # transient fault clears on the retry
    registry = get_registry()
    registry.counter("faults.injected").inc()
    registry.counter(f"faults.injected.{stage}").inc()
    journal = get_journal()
    if journal.enabled:
        journal.emit(
            "fault_injected", stage=stage, key=repr(key), transient=transient
        )
    _log.warning(
        "fault injected",
        extra={"stage": stage, "key": repr(key), "transient": transient},
    )
    if stage == "routing":
        raise InjectedTimeout(stage, key, transient)
    raise InjectedFault(stage, key, transient)


# -- ingest corruption (non-raising faults) ---------------------------------


def corrupt_row(index: int, row: dict) -> dict | None:
    """Return a corrupted copy of a raw CSV row when the plan picks it.

    Ingest faults do not raise — they damage the data (the paper's
    garbage fixes) and rely on the robust reader to quarantine the row.
    Returns ``None`` when no corruption applies.
    """
    plan = _active_plan
    if plan is None or not plan.picks("io", index):
        return None
    get_registry().counter("faults.injected").inc()
    get_registry().counter("faults.injected.io").inc()
    damaged = dict(row)
    # Rotate through the corruption modes deterministically by key hash.
    mode = int(plan.roll("io_mode", index) * 3)
    if mode == 0:
        damaged["lat"] = "nan"
    elif mode == 1:
        damaged["time_s"] = "garbage�"
    else:
        damaged["point_id"] = None  # truncated line: field missing entirely
    return damaged


def truncate_at(index: int) -> bool:
    """True when the plan truncates the input before raw row ``index``."""
    plan = _active_plan
    if plan is None or plan.truncate_after_rows is None:
        return False
    if index < plan.truncate_after_rows:
        return False
    get_registry().counter("faults.injected").inc()
    get_registry().counter("faults.injected.io").inc()
    return True
