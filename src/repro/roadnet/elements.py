"""Digiroad-style data model.

Traffic elements are the smallest units of road centre-line geometry; each
has a unique identifier, a digitization direction, and characteristic
attributes (functional class, length, speed limit).  Point objects (bus
stops, traffic lights, pedestrian crossings) and segmented line-like
attributes (speed restrictions over an arc-length range) hang off the
elements, as in the real database.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.geo.geometry import LineString, Point


class FunctionalClass(enum.IntEnum):
    """Digiroad functional road classes (1 = highest)."""

    MAIN_ROAD = 1
    REGIONAL_ROAD = 2
    CONNECTING_ROAD = 3
    ARTERIAL_STREET = 4
    COLLECTOR_STREET = 5
    RESIDENTIAL_STREET = 6


class FlowDirection(enum.Enum):
    """Allowed traffic flow relative to the digitization direction."""

    BOTH = "both"
    FORWARD = "forward"       # only along digitization direction
    BACKWARD = "backward"     # only against digitization direction

    def reversed(self) -> "FlowDirection":
        if self is FlowDirection.FORWARD:
            return FlowDirection.BACKWARD
        if self is FlowDirection.BACKWARD:
            return FlowDirection.FORWARD
        return FlowDirection.BOTH


class PointObjectKind(enum.Enum):
    """Transportation-system point object kinds the paper fetches."""

    TRAFFIC_LIGHT = "traffic_light"
    BUS_STOP = "bus_stop"
    PEDESTRIAN_CROSSING = "pedestrian_crossing"
    JUNCTION_MARKER = "junction_marker"


@dataclass(frozen=True)
class TrafficElement:
    """One traffic element: identifier, geometry and core attributes.

    ``geometry`` runs in the digitization direction.  ``speed_limit_kmh``
    is the default limit; finer-grained restrictions are expressed as
    :class:`SegmentedAttribute` rows in the map database.
    """

    element_id: int
    geometry: LineString
    functional_class: FunctionalClass = FunctionalClass.COLLECTOR_STREET
    speed_limit_kmh: float = 40.0
    flow: FlowDirection = FlowDirection.BOTH
    name: str = ""

    @property
    def length_m(self) -> float:
        return self.geometry.length

    def start(self) -> Point:
        return self.geometry.start()

    def end(self) -> Point:
        return self.geometry.end()

    def __post_init__(self) -> None:
        if self.speed_limit_kmh <= 0.0:
            raise ValueError("speed limit must be positive")


@dataclass(frozen=True)
class PointObject:
    """A transportation-system point object (light, stop, crossing)."""

    object_id: int
    kind: PointObjectKind
    position: Point
    element_id: int | None = None
    attributes: tuple[tuple[str, Any], ...] = field(default=())

    def attribute(self, name: str, default: Any = None) -> Any:
        for key, value in self.attributes:
            if key == name:
                return value
        return default


@dataclass(frozen=True)
class SegmentedAttribute:
    """Line-like attribute data over an arc range of one element.

    Road addresses and speed restrictions are the paper's examples; the
    value applies on ``element_id`` from ``start_m`` to ``end_m`` measured
    along the digitization direction.
    """

    element_id: int
    name: str
    start_m: float
    end_m: float
    value: Any

    def __post_init__(self) -> None:
        if self.end_m <= self.start_m:
            raise ValueError("segmented attribute needs start_m < end_m")

    def covers(self, arc_m: float) -> bool:
        """True when the attribute applies at arc position ``arc_m``."""
        return self.start_m <= arc_m <= self.end_m
