"""The map database — storage and spatial queries over Digiroad-style data.

:class:`MapDatabase` keeps traffic elements, point objects and segmented
attributes in :mod:`repro.store` tables with spatial columns, exposing the
queries the pipeline issues: elements near a point, point objects within a
radius or along an element, and the speed limit at an arc position
(segmented restrictions override the element default).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.geo.geometry import LineString, Point
from repro.roadnet.elements import (
    PointObject,
    PointObjectKind,
    SegmentedAttribute,
    TrafficElement,
)
from repro.store import Column, Database, HashIndex, SpatialColumn


class MapDatabase:
    """Digiroad substitute: elements + point objects + segmented attributes."""

    def __init__(self, spatial_cell_m: float = 150.0) -> None:
        self.db = Database("digiroad")
        self._elements = self.db.create_table(
            "traffic_elements",
            [
                Column("element_id", int),
                Column("element", TrafficElement),
                Column("geometry", LineString),
            ],
            pk="element_id",
        )
        self._objects = self.db.create_table(
            "point_objects",
            [
                Column("object_id", int),
                Column("object", PointObject),
                Column("kind", str),
                Column("position", tuple),
                Column("element_id", int, nullable=True),
            ],
            pk="object_id",
        )
        self._attrs = self.db.create_table(
            "segmented_attributes",
            [
                Column("id", int),
                Column("element_id", int),
                Column("name", str),
                Column("attr", SegmentedAttribute),
            ],
        )
        self._element_geom = SpatialColumn(self._elements, "geometry", spatial_cell_m)
        self._object_geom = SpatialColumn(self._objects, "position", spatial_cell_m)
        self._objects_by_kind = HashIndex(self._objects, "kind")
        self._objects_by_element = HashIndex(self._objects, "element_id")
        self._attrs_by_element = HashIndex(self._attrs, "element_id")

    # -- loading -------------------------------------------------------------

    def add_element(self, element: TrafficElement) -> None:
        """Register one traffic element (unique ``element_id``)."""
        self._elements.insert(
            {
                "element_id": element.element_id,
                "element": element,
                "geometry": element.geometry,
            }
        )

    def add_elements(self, elements: Iterable[TrafficElement]) -> None:
        for element in elements:
            self.add_element(element)

    def add_point_object(self, obj: PointObject) -> None:
        """Register one point object (light / bus stop / crossing)."""
        self._objects.insert(
            {
                "object_id": obj.object_id,
                "object": obj,
                "kind": obj.kind.value,
                "position": tuple(obj.position),
                "element_id": obj.element_id,
            }
        )

    def add_point_objects(self, objects: Iterable[PointObject]) -> None:
        for obj in objects:
            self.add_point_object(obj)

    def add_segmented_attribute(self, attr: SegmentedAttribute) -> None:
        """Register a segmented line-like attribute row."""
        self.element(attr.element_id)  # validate the element exists
        self._attrs.insert({"element_id": attr.element_id, "name": attr.name, "attr": attr})

    # -- element access --------------------------------------------------------

    def element(self, element_id: int) -> TrafficElement:
        """Traffic element by id (KeyError if absent)."""
        return self._elements.get(element_id)["element"]

    def elements(self) -> list[TrafficElement]:
        """All traffic elements."""
        return [row["element"] for row in self._elements.rows()]

    def element_count(self) -> int:
        return len(self._elements)

    def elements_near(self, p: Point, radius: float) -> list[TrafficElement]:
        """Elements whose geometry passes within ``radius`` of ``p``."""
        rows = self._element_geom.within_radius(p, radius)
        return [row["element"] for row in rows]

    def nearest_element(self, p: Point, max_radius: float = 500.0) -> TrafficElement | None:
        """Element nearest to ``p`` within ``max_radius`` (None if none)."""
        row = self._element_geom.nearest(p, max_radius)
        return None if row is None else row["element"]

    # -- point object access ----------------------------------------------------

    def point_object(self, object_id: int) -> PointObject:
        return self._objects.get(object_id)["object"]

    def point_objects(self, kind: PointObjectKind | None = None) -> list[PointObject]:
        """All point objects, optionally restricted to one kind."""
        if kind is None:
            return [row["object"] for row in self._objects.rows()]
        return [row["object"] for row in self._objects_by_kind.lookup(kind.value)]

    def objects_near(
        self, p: Point, radius: float, kind: PointObjectKind | None = None
    ) -> list[PointObject]:
        """Point objects within ``radius`` of ``p`` (optionally one kind)."""
        rows = self._object_geom.within_radius(p, radius)
        objs = [row["object"] for row in rows]
        if kind is not None:
            objs = [o for o in objs if o.kind is kind]
        return objs

    def objects_on_element(
        self, element_id: int, kind: PointObjectKind | None = None
    ) -> list[PointObject]:
        """Point objects attached to one traffic element."""
        objs = [row["object"] for row in self._objects_by_element.lookup(element_id)]
        if kind is not None:
            objs = [o for o in objs if o.kind is kind]
        return objs

    def count_objects(self, kind: PointObjectKind) -> int:
        """Total count of point objects of one kind."""
        return len(self._objects_by_kind.keys(kind.value))

    def feature_census(self) -> dict[str, int]:
        """Counts of every point-object kind (for the study-area census)."""
        return {kind.value: self.count_objects(kind) for kind in PointObjectKind}

    # -- attributes ---------------------------------------------------------------

    def segmented_attributes(self, element_id: int, name: str | None = None) -> list[SegmentedAttribute]:
        """Segmented attributes on an element, optionally filtered by name."""
        attrs = [row["attr"] for row in self._attrs_by_element.lookup(element_id)]
        if name is not None:
            attrs = [a for a in attrs if a.name == name]
        return attrs

    def speed_limit_at(self, element_id: int, arc_m: float) -> float:
        """Speed limit at an arc position, honouring segmented restrictions.

        The most restrictive (lowest) covering restriction wins; the element
        default applies when no restriction covers the position.
        """
        element = self.element(element_id)
        limits = [
            float(a.value)
            for a in self.segmented_attributes(element_id, "speed_limit")
            if a.covers(arc_m)
        ]
        if limits:
            return min(limits)
        return element.speed_limit_kmh

    def attribute_at(self, element_id: int, name: str, arc_m: float) -> Any | None:
        """First segmented attribute value of ``name`` covering ``arc_m``."""
        for attr in self.segmented_attributes(element_id, name):
            if attr.covers(arc_m):
                return attr.value
        return None
