"""Deterministic synthetic downtown-Oulu generator.

The paper's map is a proprietary Digiroad extract of Oulu.  This module
builds a structurally equivalent substitute: a dense downtown grid with a
pedestrian hotspot, three gate arterials (T north, S south-east, L
south-west) at the key entry/exit points, a light-free western bypass
(fast T<->L alternative), an eastern outer arterial *outside* the central
area (so some gate-to-gate transitions legitimately leave the centre and
get filtered, as in Table 3), dead-end stubs (visible in the Fig. 9
intercept map), and point objects placed deterministically with counts
calibrated to the paper's study-area census {67 traffic lights, 48 bus
stops, 293 pedestrian crossings}.

Everything is seeded and reproducible; the city is a plain
:class:`~repro.roadnet.digiroad.MapDatabase` plus the prepared road graph,
so the rest of the pipeline cannot tell it apart from a real extract.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.geo.geometry import LineString, Point, segment_intersection
from repro.geo.polygon import Polygon
from repro.geo.projection import LocalProjector
from repro.roadnet.digiroad import MapDatabase
from repro.roadnet.elements import (
    FlowDirection,
    FunctionalClass,
    PointObject,
    PointObjectKind,
    TrafficElement,
)
from repro.roadnet.graph import RoadGraph
from repro.roadnet.graphbuild import JunctionPair, build_road_graph

#: First synthetic element id (cosmetic nod to the paper's Table 1 ids).
FIRST_ELEMENT_ID = 121_000


@dataclass(frozen=True)
class StreetSpec:
    """One straight street of the synthetic city (before element splitting)."""

    name: str
    a: Point
    b: Point
    functional_class: FunctionalClass
    speed_limit_kmh: float
    flow: FlowDirection = FlowDirection.BOTH


@dataclass(frozen=True)
class CitySpec:
    """Parameters of the synthetic city.

    Defaults reproduce the study-area feature census of the paper
    ({67, 48, 293} lights/bus stops/pedestrian crossings) on a grid whose
    scale matches downtown Oulu (200 m blocks).
    """

    ref_lat: float = 65.0121
    ref_lon: float = 25.4651
    grid_half_m: float = 1000.0
    grid_spacing_m: float = 200.0
    n_traffic_lights: int = 67
    n_bus_stops: int = 48
    n_pedestrian_crossings: int = 293
    gate_half_width_m: float = 60.0
    max_element_length_m: float = 120.0
    seed: int = 20120110

    def __post_init__(self) -> None:
        if self.grid_spacing_m <= 0 or self.grid_half_m <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.grid_half_m % self.grid_spacing_m != 0:
            raise ValueError("grid_half_m must be a multiple of grid_spacing_m")


@dataclass
class SyntheticCity:
    """The generated city: map database, prepared graph, gates and regions."""

    spec: CitySpec
    map_db: MapDatabase
    graph: RoadGraph
    junction_pairs: list[JunctionPair]
    gate_roads: dict[str, LineString]
    central_area: Polygon
    hotspots: list[Polygon]
    projector: LocalProjector
    streets: list[StreetSpec] = field(default_factory=list)

    def in_hotspot(self, p: Point) -> bool:
        """Is ``p`` inside a crowded pedestrian hotspot?"""
        return any(h.contains(p) for h in self.hotspots)

    def feature_census(self) -> dict[str, int]:
        """Point-object counts plus the junction count ("crossings")."""
        census = self.map_db.feature_census()
        census["junctions"] = sum(
            1 for n in self.graph.nodes() if self.graph.degree(n.node_id) >= 3
        )
        return census


def _street_list(spec: CitySpec) -> list[StreetSpec]:
    """The full street inventory of the synthetic city."""
    half = spec.grid_half_m
    step = spec.grid_spacing_m
    streets: list[StreetSpec] = []
    xs = [(-half) + i * step for i in range(int(2 * half / step) + 1)]

    def ns_class(x: float) -> tuple[FunctionalClass, float, FlowDirection]:
        if x == 0.0:
            return FunctionalClass.ARTERIAL_STREET, 40.0, FlowDirection.BOTH
        if x == -half:
            # The western bypass corridor: a light-free T<->L alternative
            # (the paper's Fig. 6 region "below line D" has few features).
            return FunctionalClass.CONNECTING_ROAD, 40.0, FlowDirection.BOTH
        if x == half:
            return FunctionalClass.RESIDENTIAL_STREET, 30.0, FlowDirection.BOTH
        if abs(x) == 600.0:
            return FunctionalClass.COLLECTOR_STREET, 40.0, FlowDirection.BOTH
        if x == 200.0:  # one-way pair flanking the main axis, like real downtowns
            return FunctionalClass.RESIDENTIAL_STREET, 30.0, FlowDirection.FORWARD
        if x == -200.0:
            return FunctionalClass.RESIDENTIAL_STREET, 30.0, FlowDirection.BACKWARD
        return FunctionalClass.RESIDENTIAL_STREET, 30.0, FlowDirection.BOTH

    def ew_class(y: float) -> tuple[FunctionalClass, float, FlowDirection]:
        if y == 0.0:
            return FunctionalClass.ARTERIAL_STREET, 40.0, FlowDirection.BOTH
        if abs(y) == half:
            return FunctionalClass.RESIDENTIAL_STREET, 30.0, FlowDirection.BOTH
        if abs(y) == 600.0:
            return FunctionalClass.COLLECTOR_STREET, 40.0, FlowDirection.BOTH
        return FunctionalClass.RESIDENTIAL_STREET, 30.0, FlowDirection.BOTH

    # Downtown grid (north-south streets digitized south->north, east-west
    # streets west->east).
    for x in xs:
        cls, limit, flow = ns_class(x)
        streets.append(StreetSpec(f"ns_{int(x)}", (x, -half), (x, half), cls, limit, flow))
    for y in xs:
        cls, limit, flow = ew_class(y)
        streets.append(StreetSpec(f"ew_{int(y)}", (-half, y), (half, y), cls, limit, flow))

    # Gate arterials beyond the grid.
    streets.append(
        StreetSpec(
            "arterial_T", (0.0, half), (0.0, 2400.0),
            FunctionalClass.CONNECTING_ROAD, 60.0,
        )
    )
    streets.append(
        StreetSpec(
            "arterial_S", (600.0, -2200.0), (600.0, -half),
            FunctionalClass.CONNECTING_ROAD, 50.0,
        )
    )
    streets.append(
        StreetSpec(
            "arterial_L", (-600.0, -2200.0), (-600.0, -half),
            FunctionalClass.CONNECTING_ROAD, 50.0,
        )
    )
    # Western bypass leg joining the grid edge to the southern connector.
    streets.append(
        StreetSpec(
            "bypass_W", (-half, -1400.0), (-half, -half),
            FunctionalClass.CONNECTING_ROAD, 50.0,
        )
    )
    # Southern connector carrying the S and L gates.
    streets.append(
        StreetSpec(
            "connector_south", (-half, -1400.0), (1400.0, -1400.0),
            FunctionalClass.ARTERIAL_STREET, 50.0,
        )
    )
    # Eastern outer arterial (outside the central area) and its link.
    streets.append(
        StreetSpec(
            "outer_E", (1400.0, -1400.0), (1400.0, 600.0),
            FunctionalClass.CONNECTING_ROAD, 45.0,
        )
    )
    streets.append(
        StreetSpec(
            "link_E", (half, 600.0), (1400.0, 600.0),
            FunctionalClass.ARTERIAL_STREET, 40.0,
        )
    )
    # The T gate road: a short cross street on the northern arterial.
    streets.append(
        StreetSpec(
            "gate_T_road", (-150.0, 1600.0), (150.0, 1600.0),
            FunctionalClass.RESIDENTIAL_STREET, 30.0,
        )
    )
    # Suburb streets beyond the gates: trip origins/destinations outside
    # the central area, so gate transitions have somewhere to come from.
    streets.append(
        StreetSpec("suburb_N1", (-400.0, 2000.0), (400.0, 2000.0),
                   FunctionalClass.COLLECTOR_STREET, 40.0)
    )
    streets.append(
        StreetSpec("suburb_N2", (-300.0, 2400.0), (300.0, 2400.0),
                   FunctionalClass.COLLECTOR_STREET, 40.0)
    )
    streets.append(
        StreetSpec("suburb_S1", (200.0, -1800.0), (1000.0, -1800.0),
                   FunctionalClass.COLLECTOR_STREET, 40.0)
    )
    streets.append(
        StreetSpec("suburb_L1", (-1000.0, -1800.0), (-200.0, -1800.0),
                   FunctionalClass.COLLECTOR_STREET, 40.0)
    )
    # Dead-end stubs (the paper's Fig. 9 highlights dead-end slowdowns).
    streets.append(
        StreetSpec("stub_E", (half, 200.0), (1300.0, 200.0),
                   FunctionalClass.RESIDENTIAL_STREET, 30.0)
    )
    streets.append(
        StreetSpec("stub_W", (-1300.0, -200.0), (-half, -200.0),
                   FunctionalClass.RESIDENTIAL_STREET, 30.0)
    )
    streets.append(
        StreetSpec("stub_N", (400.0, half), (400.0, 1300.0),
                   FunctionalClass.RESIDENTIAL_STREET, 30.0)
    )
    streets.append(
        StreetSpec("stub_S", (-400.0, -1300.0), (-400.0, -half),
                   FunctionalClass.RESIDENTIAL_STREET, 30.0)
    )
    return streets


def _split_street(
    street: StreetSpec, others: list[StreetSpec]
) -> list[tuple[Point, Point]]:
    """Split a street at every intersection with other streets."""
    a, b = street.a, street.b
    length = math.hypot(b[0] - a[0], b[1] - a[1])
    cuts: dict[float, Point] = {0.0: a, length: b}
    for other in others:
        if other is street:
            continue
        hit = segment_intersection(a, b, other.a, other.b)
        if hit is None:
            continue
        arc = math.hypot(hit[0] - a[0], hit[1] - a[1])
        # Quantize so floating error does not create duplicate cut points.
        arc = round(arc, 3)
        if 0.0 < arc < length:
            cuts[arc] = hit
    ordered = sorted(cuts.items())
    return [
        (ordered[i][1], ordered[i + 1][1]) for i in range(len(ordered) - 1)
    ]


def _blocks_to_elements(
    street: StreetSpec,
    blocks: list[tuple[Point, Point]],
    spec: CitySpec,
    rng: random.Random,
    next_id: list[int],
) -> list[TrafficElement]:
    """Turn street blocks into traffic elements.

    Blocks longer than ``spec.max_element_length_m`` are split into equal
    pieces, so merged graph edges genuinely contain several elements (the
    structure paper Table 1 shows).  Digitization direction is randomly
    flipped per element to exercise direction handling; flow is adjusted so
    the street's one-way semantics are preserved.
    """
    elements: list[TrafficElement] = []
    for block_a, block_b in blocks:
        block_len = math.hypot(block_b[0] - block_a[0], block_b[1] - block_a[1])
        if block_len <= 0.0:
            continue
        n_pieces = max(1, int(math.ceil(block_len / spec.max_element_length_m)))
        for k in range(n_pieces):
            t0 = k / n_pieces
            t1 = (k + 1) / n_pieces
            p0 = (
                block_a[0] + t0 * (block_b[0] - block_a[0]),
                block_a[1] + t0 * (block_b[1] - block_a[1]),
            )
            p1 = (
                block_a[0] + t1 * (block_b[0] - block_a[0]),
                block_a[1] + t1 * (block_b[1] - block_a[1]),
            )
            reversed_ = rng.random() < 0.5
            if reversed_:
                geometry = LineString([p1, p0])
                flow = street.flow.reversed()
            else:
                geometry = LineString([p0, p1])
                flow = street.flow
            elements.append(
                TrafficElement(
                    element_id=next_id[0],
                    geometry=geometry,
                    functional_class=street.functional_class,
                    speed_limit_kmh=street.speed_limit_kmh,
                    flow=flow,
                    name=street.name,
                )
            )
            next_id[0] += 1
    return elements


def _grid_intersections(spec: CitySpec) -> list[Point]:
    """All grid intersection points, nearest-to-centre first."""
    half = spec.grid_half_m
    step = spec.grid_spacing_m
    xs = [(-half) + i * step for i in range(int(2 * half / step) + 1)]
    pts = [(x, y) for x in xs for y in xs]
    pts.sort(key=lambda p: (math.hypot(p[0], p[1]), p[1], p[0]))
    return pts


def _place_point_objects(
    spec: CitySpec, map_db: MapDatabase, rng: random.Random
) -> None:
    """Deterministically place lights, pedestrian crossings and bus stops."""
    intersections = _grid_intersections(spec)
    next_object_id = 1

    def attach(position: Point) -> int | None:
        element = map_db.nearest_element(position, max_radius=80.0)
        return None if element is None else element.element_id

    # Traffic lights: the busiest (most central) intersections first, which
    # leaves the grid edge and the bypass light-free, as in real Oulu.
    for p in intersections[: spec.n_traffic_lights]:
        map_db.add_point_object(
            PointObject(
                object_id=next_object_id,
                kind=PointObjectKind.TRAFFIC_LIGHT,
                position=p,
                element_id=attach(p),
            )
        )
        next_object_id += 1

    # Pedestrian crossings: four arms per central intersection, offset a
    # dozen metres from the corner, until the census target is met.
    placed = 0
    arm_offsets = [(12.0, 0.0), (-12.0, 0.0), (0.0, 12.0), (0.0, -12.0)]
    for p in intersections:
        for dx, dy in arm_offsets:
            if placed >= spec.n_pedestrian_crossings:
                break
            pos = (p[0] + dx, p[1] + dy)
            map_db.add_point_object(
                PointObject(
                    object_id=next_object_id,
                    kind=PointObjectKind.PEDESTRIAN_CROSSING,
                    position=pos,
                    element_id=attach(pos),
                )
            )
            next_object_id += 1
            placed += 1
        if placed >= spec.n_pedestrian_crossings:
            break

    # Bus stops: spaced along the arterial streets, most central first.
    arterial_axes: list[tuple[Point, Point]] = [
        ((0.0, -spec.grid_half_m), (0.0, 2400.0)),       # main NS axis + T arterial
        ((-spec.grid_half_m, 0.0), (spec.grid_half_m, 0.0)),  # main EW axis
        ((600.0, -2200.0), (600.0, -spec.grid_half_m)),  # S arterial
        ((-600.0, -2200.0), (-600.0, -spec.grid_half_m)),  # L arterial
        ((-spec.grid_half_m, 600.0), (spec.grid_half_m, 600.0)),
        ((-spec.grid_half_m, -600.0), (spec.grid_half_m, -600.0)),
        ((600.0, -spec.grid_half_m), (600.0, spec.grid_half_m)),
        ((-600.0, -spec.grid_half_m), (-600.0, spec.grid_half_m)),
    ]
    candidates: list[tuple[Point, tuple[float, float]]] = []
    for a, b in arterial_axes:
        axis_len = math.hypot(b[0] - a[0], b[1] - a[1])
        n_stops = int(axis_len // 250.0)
        for k in range(1, n_stops + 1):
            t = k * 250.0 / axis_len
            x = a[0] + t * (b[0] - a[0])
            y = a[1] + t * (b[1] - a[1])
            # Offset to the kerb side, alternating along the axis so both
            # travel directions are served.  With right-hand traffic, the
            # kerb side determines which direction the stop serves — the
            # attribute the paper's Digiroad extract lacked.
            side = 1.0 if k % 2 == 0 else -1.0
            if a[0] == b[0]:
                candidates.append(((x + side * 8.0, y), (0.0, side)))
            else:
                candidates.append(((x, y + side * 8.0), (-side, 0.0)))
    candidates.sort(key=lambda c: (math.hypot(c[0][0], c[0][1]), c[0][1], c[0][0]))
    for pos, serves in candidates[: spec.n_bus_stops]:
        map_db.add_point_object(
            PointObject(
                object_id=next_object_id,
                kind=PointObjectKind.BUS_STOP,
                position=pos,
                element_id=attach(pos),
                attributes=(("serves_heading", serves),),
            )
        )
        next_object_id += 1


def build_synthetic_oulu(spec: CitySpec | None = None) -> SyntheticCity:
    """Build the synthetic city: map database, graph, gates and regions."""
    spec = spec or CitySpec()
    rng = random.Random(spec.seed)
    streets = _street_list(spec)

    map_db = MapDatabase()
    next_id = [FIRST_ELEMENT_ID]
    for street in streets:
        blocks = _split_street(street, streets)
        map_db.add_elements(_blocks_to_elements(street, blocks, spec, rng, next_id))

    _place_point_objects(spec, map_db, rng)

    graph, junction_pairs = build_road_graph(map_db.elements())

    gate_roads = {
        "T": LineString([(-150.0, 1600.0), (150.0, 1600.0)]),
        "S": LineString([(450.0, -1400.0), (750.0, -1400.0)]),
        "L": LineString([(-750.0, -1400.0), (-450.0, -1400.0)]),
    }
    central_area = Polygon.rectangle(-1200.0, -1750.0, 1200.0, 1750.0)
    hotspots = [Polygon.rectangle(-250.0, -50.0, 250.0, 250.0)]
    projector = LocalProjector(spec.ref_lat, spec.ref_lon)

    return SyntheticCity(
        spec=spec,
        map_db=map_db,
        graph=graph,
        junction_pairs=junction_pairs,
        gate_roads=gate_roads,
        central_area=central_area,
        hotspots=hotspots,
        projector=projector,
        streets=streets,
    )
