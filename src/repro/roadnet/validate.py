"""Digital-map quality validation.

The paper closes on the point that "accuracy and correctness of the
digital map information is important" for trajectory analysis.  This
module audits a map database and its prepared graph for the defect
classes that break the pipeline: degenerate geometry, disconnected
components, one-way traps (nodes a vehicle can enter but never leave),
point objects detached from the network, and implausible attributes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.roadnet.digiroad import MapDatabase
from repro.roadnet.graph import RoadGraph

#: Speed limits outside this band are implausible for a street network.
SPEED_LIMIT_RANGE_KMH = (5.0, 120.0)
#: A point object farther than this from any element is detached.
OBJECT_ATTACH_RADIUS_M = 50.0
#: Elements shorter than this are degenerate slivers.
MIN_ELEMENT_LENGTH_M = 0.5


@dataclass(frozen=True)
class MapIssue:
    """One detected map defect."""

    kind: str
    subject: int          # element/object/node id, component index
    detail: str


@dataclass
class MapValidationReport:
    """All issues found, grouped by kind."""

    issues: list[MapIssue] = field(default_factory=list)
    n_elements: int = 0
    n_objects: int = 0
    n_nodes: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def by_kind(self) -> dict[str, list[MapIssue]]:
        out: dict[str, list[MapIssue]] = {}
        for issue in self.issues:
            out.setdefault(issue.kind, []).append(issue)
        return out

    def counts(self) -> dict[str, int]:
        return {kind: len(items) for kind, items in self.by_kind().items()}


def _components(graph: RoadGraph) -> list[set[int]]:
    """Connected components of the graph, ignoring one-way direction."""
    seen: set[int] = set()
    components = []
    for node in graph.nodes():
        if node.node_id in seen:
            continue
        component = {node.node_id}
        queue = deque([node.node_id])
        while queue:
            current = queue.popleft()
            for neighbour in graph.neighbors(current, respect_oneway=False):
                if neighbour not in component:
                    component.add(neighbour)
                    queue.append(neighbour)
        seen |= component
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def _oneway_traps(graph: RoadGraph) -> list[int]:
    """Nodes that can be entered but never left (one-way sinks)."""
    traps = []
    for node in graph.nodes():
        enterable = any(
            edge.allows(edge.other(node.node_id))
            for edge in graph.out_edges(node.node_id, respect_oneway=False)
        )
        leavable = bool(graph.out_edges(node.node_id, respect_oneway=True))
        if enterable and not leavable:
            traps.append(node.node_id)
    return traps


def validate_map(map_db: MapDatabase, graph: RoadGraph) -> MapValidationReport:
    """Audit a map database and its prepared graph."""
    report = MapValidationReport(
        n_elements=map_db.element_count(),
        n_objects=len(map_db.point_objects()),
        n_nodes=graph.node_count,
    )

    for element in map_db.elements():
        if element.length_m < MIN_ELEMENT_LENGTH_M:
            report.issues.append(
                MapIssue("degenerate_element", element.element_id,
                         f"length {element.length_m:.2f} m")
            )
        lo, hi = SPEED_LIMIT_RANGE_KMH
        if not lo <= element.speed_limit_kmh <= hi:
            report.issues.append(
                MapIssue("implausible_speed_limit", element.element_id,
                         f"{element.speed_limit_kmh:.0f} km/h")
            )

    for obj in map_db.point_objects():
        nearest = map_db.nearest_element(obj.position, OBJECT_ATTACH_RADIUS_M)
        if nearest is None:
            report.issues.append(
                MapIssue("detached_object", obj.object_id,
                         f"{obj.kind.value} farther than "
                         f"{OBJECT_ATTACH_RADIUS_M:.0f} m from any element")
            )
        if obj.element_id is not None and map_db._elements.get_or_none(obj.element_id) is None:
            report.issues.append(
                MapIssue("dangling_object_reference", obj.object_id,
                         f"references missing element {obj.element_id}")
            )

    for edge in graph.edges():
        if not edge.forward_allowed and not edge.backward_allowed:
            report.issues.append(
                MapIssue("impassable_edge", edge.edge_id,
                         "merged one-way elements conflict; no legal direction")
            )

    components = _components(graph)
    for index, component in enumerate(components[1:], start=1):
        report.issues.append(
            MapIssue("disconnected_component", index,
                     f"{len(component)} nodes unreachable from the main network")
        )

    for node_id in _oneway_traps(graph):
        report.issues.append(
            MapIssue("oneway_trap", node_id,
                     "node can be entered but never left")
        )

    return report
